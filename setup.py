"""Legacy setup shim: lets ``pip install -e .`` work without the ``wheel``
package (the offline environment cannot PEP-660-build editable wheels)."""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Reproduction of 'A Generic Solution to Integrate SQL and Analytics "
        "for Big Data' (EDBT 2015)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy>=1.24"],
)
