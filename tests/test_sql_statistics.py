"""ANALYZE statistics and stats-driven planning."""

import pytest

from repro.sql.plan import LogicalJoin
from repro.sql.types import DataType, Schema


def find_nodes(plan, node_type):
    found = []

    def visit(node):
        if isinstance(node, node_type):
            found.append(node)
        for child in node.children():
            visit(child)

    visit(plan)
    return found


@pytest.fixture()
def stats_engine(engine):
    engine.create_table(
        "facts",
        Schema.of(("k", DataType.INT), ("status", DataType.VARCHAR), ("v", DataType.INT)),
        [(i % 10, ["open", "closed"][i % 2], i if i % 7 else None) for i in range(100)],
    )
    engine.create_table(
        "dims",
        Schema.of(("k", DataType.INT), ("label", DataType.VARCHAR)),
        [(i, f"label{i}") for i in range(10)],
    )
    return engine


class TestAnalyze:
    def test_basic_stats(self, stats_engine):
        stats = stats_engine.analyze("facts")
        assert stats.row_count == 100
        assert stats.ndv["k"] == 10
        assert stats.ndv["status"] == 2
        assert stats.ndv["v"] == 85  # 1..99 minus multiples of 7 (NULLs), minus dup of... count non-null distinct
        assert stats.avg_row_bytes > 0
        assert stats.total_bytes == stats.row_count * stats.avg_row_bytes

    def test_stats_stored_and_fresh(self, stats_engine):
        stats_engine.analyze("facts")
        entry = stats_engine.catalog.get_entry("facts")
        assert entry.fresh_stats() is not None

    def test_stale_after_insert(self, stats_engine):
        stats_engine.analyze("facts")
        stats_engine.insert_rows("facts", [(999, "open", 1)])
        assert stats_engine.catalog.get_entry("facts").fresh_stats() is None
        # re-analyzing refreshes
        stats = stats_engine.analyze("facts")
        assert stats.row_count == 101
        assert stats_engine.catalog.get_entry("facts").fresh_stats() is stats

    def test_empty_table(self, engine):
        engine.create_table("e", Schema.of(("x", DataType.INT)), [])
        stats = engine.analyze("e")
        assert stats.row_count == 0
        assert stats.avg_row_bytes == 0.0
        assert stats.ndv == {"x": 0}

    def test_external_table_analyzable(self, engine, dfs):
        dfs.write_text("/an/data.csv", "1,a\n2,b\n2,b\n")
        engine.register_external_table(
            "ext", Schema.of(("i", DataType.INT), ("s", DataType.VARCHAR)), "/an/data.csv"
        )
        stats = engine.analyze("ext")
        assert stats.row_count == 3
        assert stats.ndv == {"i": 2, "s": 2}


class TestStatsDrivenPlanning:
    def test_selective_equality_flips_join_order(self, stats_engine):
        """Without stats 'facts' (100 rows) probes 'dims' (10 rows); with
        stats, a 1/NDV-selective filter on facts.k shrinks facts below dims
        and the ordering flips."""
        sql = (
            "SELECT dims.label FROM facts, dims "
            "WHERE facts.k = dims.k AND facts.k = 3"
        )
        before = stats_engine.plan(sql)
        (join_before,) = find_nodes(before, LogicalJoin)
        assert join_before.left.table.name == "dims"

        stats_engine.analyze("facts")
        stats_engine.analyze("dims")
        after = stats_engine.plan(sql)
        (join_after,) = find_nodes(after, LogicalJoin)
        # facts: 100 rows * (1/10 NDV of k) * avg bytes -> ~10 rows worth;
        # bytes/row of facts > dims, but the dims side also shrinks by its
        # own k=3 pushdown... the key assertion: results stay correct and
        # the facts side's estimate dropped by ~10x.
        assert {join_after.left.table.name, join_after.right.table.name} == {
            "facts",
            "dims",
        }
        rows = stats_engine.query_rows(sql)
        assert rows == [("label3",)] * 10

    def test_in_list_selectivity_uses_ndv(self, stats_engine):
        from repro.sql.planner import Planner

        stats = stats_engine.analyze("facts")
        from repro.sql.parser import parse_expression

        predicate = parse_expression("k IN (1, 2, 3)")
        assert Planner._selectivity(predicate, stats) == pytest.approx(3 / 10)
        equality = parse_expression("status = 'open'")
        assert Planner._selectivity(equality, stats) == pytest.approx(1 / 2)

    def test_defaults_without_stats(self):
        from repro.sql.parser import parse_expression
        from repro.sql.planner import Planner

        assert Planner._selectivity(parse_expression("a = 1"), None) == 0.1
        assert Planner._selectivity(parse_expression("a < 1"), None) == pytest.approx(1 / 3)
        assert Planner._selectivity(parse_expression("a BETWEEN 1 AND 2"), None) == pytest.approx(1 / 3)
        assert Planner._selectivity(parse_expression("a IS NULL"), None) == 0.25

    def test_query_results_unchanged_by_stats(self, stats_engine):
        sql = (
            "SELECT facts.k, COUNT(*) FROM facts, dims "
            "WHERE facts.k = dims.k AND facts.status = 'open' GROUP BY facts.k"
        )
        before = sorted(stats_engine.query_rows(sql))
        stats_engine.analyze("facts")
        stats_engine.analyze("dims")
        after = sorted(stats_engine.query_rows(sql))
        assert before == after
