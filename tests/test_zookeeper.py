"""ZooKeeperLite and coordinator-state resilience (§6)."""

import pytest

from repro import make_deployment
from repro.cluster.cost import CostLedger
from repro.sql.types import DataType, Schema
from repro.transfer.channel import ChannelId
from repro.transfer.zk import CoordinatorStateStore, ZkError, ZooKeeperLite


class TestZnodes:
    def test_create_get_set(self):
        zk = ZooKeeperLite()
        zk.create("/a", b"one")
        assert zk.get("/a") == (b"one", 0)
        assert zk.set("/a", b"two") == 1
        assert zk.get("/a") == (b"two", 1)

    def test_compare_and_set(self):
        zk = ZooKeeperLite()
        zk.create("/a", b"x")
        zk.set("/a", b"y", expected_version=0)
        with pytest.raises(ZkError, match="version conflict"):
            zk.set("/a", b"z", expected_version=0)

    def test_parent_must_exist(self):
        zk = ZooKeeperLite()
        with pytest.raises(ZkError, match="parent"):
            zk.create("/a/b")

    def test_duplicate_create_rejected(self):
        zk = ZooKeeperLite()
        zk.create("/a")
        with pytest.raises(ZkError, match="exists"):
            zk.create("/a")

    def test_ensure_path(self):
        zk = ZooKeeperLite()
        zk.ensure_path("/x/y/z")
        assert zk.exists("/x") and zk.exists("/x/y") and zk.exists("/x/y/z")
        zk.ensure_path("/x/y/z")  # idempotent

    def test_children(self):
        zk = ZooKeeperLite()
        zk.ensure_path("/app/b")
        zk.ensure_path("/app/a")
        zk.create("/app/a/leaf")
        assert zk.children("/app") == ["a", "b"]
        assert zk.children("/") == ["app"]

    def test_delete_leaf_only(self):
        zk = ZooKeeperLite()
        zk.ensure_path("/a/b")
        with pytest.raises(ZkError, match="children"):
            zk.delete("/a")
        zk.delete("/a/b")
        zk.delete("/a")
        assert not zk.exists("/a")

    def test_bad_paths(self):
        zk = ZooKeeperLite()
        with pytest.raises(ZkError):
            zk.create("relative")
        with pytest.raises(ZkError):
            zk.create("/trailing/")


class TestEphemerals:
    def test_ephemeral_dies_with_session(self):
        zk = ZooKeeperLite()
        zk.start_session("worker-1")
        zk.create("/alive", b"", ephemeral_owner="worker-1")
        assert zk.exists("/alive")
        removed = zk.close_session("worker-1")
        assert removed == ["/alive"]
        assert not zk.exists("/alive")

    def test_ephemeral_needs_session(self):
        zk = ZooKeeperLite()
        with pytest.raises(ZkError, match="session"):
            zk.create("/x", ephemeral_owner="ghost")

    def test_duplicate_session_rejected(self):
        zk = ZooKeeperLite()
        zk.start_session("s")
        with pytest.raises(ZkError):
            zk.start_session("s")


class TestWatches:
    def test_one_shot_change_watch(self):
        zk = ZooKeeperLite()
        zk.create("/w", b"")
        events = []
        zk.watch("/w", lambda path, event: events.append((path, event)))
        zk.set("/w", b"1")
        zk.set("/w", b"2")  # watch already fired and disarmed
        assert events == [("/w", "changed")]

    def test_creation_watch(self):
        zk = ZooKeeperLite()
        events = []
        zk.watch("/later", lambda p, e: events.append(e))
        zk.create("/later")
        assert events == ["created"]

    def test_deletion_watch_via_session_close(self):
        zk = ZooKeeperLite()
        zk.start_session("s")
        zk.create("/eph", ephemeral_owner="s")
        events = []
        zk.watch("/eph", lambda p, e: events.append(e))
        zk.close_session("s")
        assert events == ["deleted"]


class TestSessionExpiry:
    def test_expiry_removes_ephemerals_and_fires_watches(self):
        """§6 failure detection: a worker that stops heartbeating has its ZK
        session expired; its ephemeral znodes vanish and watchers learn."""
        zk = ZooKeeperLite()
        zk.start_session("worker-2")
        zk.ensure_path("/workers")
        zk.create("/workers/2", b"10.0.0.2", ephemeral_owner="worker-2")
        zk.create("/workers/2-standby", b"", ephemeral_owner="worker-2")
        events = []
        zk.watch("/workers/2", lambda path, event: events.append((path, event)))
        removed = zk.expire_session("worker-2")
        assert sorted(removed) == ["/workers/2", "/workers/2-standby"]
        assert events == [("/workers/2", "deleted")]
        assert not zk.exists("/workers/2")
        # The session is gone: its ephemerals cannot come back under it.
        with pytest.raises(ZkError, match="session"):
            zk.create("/workers/2", ephemeral_owner="worker-2")

    def test_expiring_unknown_session_raises(self):
        zk = ZooKeeperLite()
        with pytest.raises(ZkError, match="expire"):
            zk.expire_session("never-started")
        zk.start_session("once")
        zk.close_session("once")
        with pytest.raises(ZkError, match="expire"):
            zk.expire_session("once")

    def test_persistent_nodes_survive_expiry(self):
        zk = ZooKeeperLite()
        zk.start_session("s")
        zk.ensure_path("/app")  # persistent
        zk.create("/app/eph", b"", ephemeral_owner="s")
        zk.expire_session("s")
        assert zk.exists("/app")
        assert not zk.exists("/app/eph")

    def test_expiry_mid_transfer_names_the_restart_group(self):
        """The §6 tie-in: each streaming SQL worker holds an ephemeral
        znode; when its session expires mid-transfer, the deletion watch
        hands the coordinator exactly that worker's restart plan — the
        failed worker plus its k paired ML workers, nobody else."""
        deployment = make_deployment(block_size=64 * 1024)
        coordinator = deployment.coordinator
        engine = deployment.engine
        engine.create_table(
            "pts", Schema.of(("x", DataType.DOUBLE)), [(float(i),) for i in range(40)]
        )
        coordinator.create_session(
            "expiry", command="noop", conf_props={"record.format": "raw"}
        )
        engine.query_rows(
            "SELECT * FROM TABLE(stream_transfer((SELECT x FROM pts), 'expiry')) AS s"
        )
        coordinator.wait_result("expiry")

        zk = ZooKeeperLite()
        zk.ensure_path("/sessions/expiry")
        session = coordinator.session("expiry")
        for worker_id in session.sql_workers:
            zk.start_session(f"sql-{worker_id}")
            zk.create(
                f"/sessions/expiry/{worker_id}",
                b"",
                ephemeral_owner=f"sql-{worker_id}",
            )
        plans = []

        def on_deleted(worker_id):
            def callback(_path, event):
                if event == "deleted":
                    plans.append(coordinator.session("expiry").restart_plan(worker_id))

            return callback

        for worker_id in session.sql_workers:
            zk.watch(f"/sessions/expiry/{worker_id}", on_deleted(worker_id))
        zk.expire_session("sql-1")
        assert len(plans) == 1
        plan = plans[0]
        assert plan["restart_sql_worker"] == 1
        assert plan["restart_ml_workers"] == [
            cid.index for cid in session.groups[1]
        ]
        # Only worker 1's k readers restart; every other group is untouched.
        k = len(session.groups[1])
        others = {i for w, g in session.groups.items() if w != 1 for i in (c.index for c in g)}
        assert not others & set(plan["restart_ml_workers"])
        assert len(plan["restart_ml_workers"]) == k


class TestCoordinatorResilience:
    def test_session_metadata_mirrored_and_recoverable(self):
        """§6: with the state store attached, a replacement coordinator can
        see exactly which sessions were in flight, their ML command, and
        which SQL workers had registered when the original died."""
        zk = ZooKeeperLite()
        store = CoordinatorStateStore(zk)
        deployment = make_deployment(block_size=64 * 1024)
        coordinator = deployment.coordinator
        coordinator.state_store = store

        engine = deployment.engine
        engine.create_table(
            "pts", Schema.of(("x", DataType.DOUBLE)), [(float(i),) for i in range(40)]
        )
        coordinator.create_session(
            "resilient", command="noop", conf_props={"record.format": "raw"}
        )
        engine.query_rows(
            "SELECT * FROM TABLE(stream_transfer((SELECT x FROM pts), 'resilient')) AS s"
        )
        coordinator.wait_result("resilient")

        # The original coordinator "dies"; a fresh observer reads the store.
        recovered = CoordinatorStateStore(zk)
        assert "resilient" in recovered.sessions()
        view = recovered.session_view("resilient")
        assert view["command"] == "noop"
        assert view["status"] == "completed"
        assert sorted(view["workers"]) == [0, 1, 2, 3]
        assert all(w["total"] == 4 for w in view["workers"].values())

    def test_failed_session_status_recorded(self):
        zk = ZooKeeperLite()
        store = CoordinatorStateStore(zk)
        deployment = make_deployment(block_size=64 * 1024)
        coordinator = deployment.coordinator
        coordinator.state_store = store
        engine = deployment.engine
        engine.create_table("t", Schema.of(("x", DataType.INT)), [(1,)])
        coordinator.create_session(
            "doomed", command="not_a_command", conf_props={"record.format": "raw"}
        )
        with pytest.raises(Exception):
            engine.query_rows(
                "SELECT * FROM TABLE(stream_transfer((SELECT x FROM t), 'doomed')) AS s"
            )
        view = store.session_view("doomed")
        assert view["status"] == "failed"


class TestFailoverSemantics:
    """The exact ZooKeeperLite behaviours coordinator HA leans on."""

    def test_lease_loss_is_observed_before_expiry_returns(self):
        """Leader election hinges on this: the deletion watch on an expired
        ephemeral lease fires *synchronously inside* ``expire_session``, so
        a standby's takeover completes before the expiry call returns."""
        zk = ZooKeeperLite()
        zk.start_session("leader-0")
        zk.ensure_path("/coordinators")
        zk.create("/coordinators/leader", b"leader-0", ephemeral_owner="leader-0")
        elected = []

        def takeover(_path, event):
            if event == "deleted":
                zk.start_session("leader-1")
                zk.create(
                    "/coordinators/leader", b"leader-1", ephemeral_owner="leader-1"
                )
                elected.append("leader-1")

        zk.watch("/coordinators/leader", takeover)
        zk.expire_session("leader-0")
        assert elected == ["leader-1"]
        assert zk.get("/coordinators/leader")[0] == b"leader-1"

    def test_versioned_set_fences_the_slower_of_two_leaders(self):
        """Fencing: two would-be leaders read the epoch at the same version
        and both try to CAS-bump it — exactly one write can win."""
        zk = ZooKeeperLite()
        zk.create("/epoch", b"0")
        _data, version = zk.get("/epoch")
        zk.set("/epoch", b"1", expected_version=version)  # fast leader wins
        with pytest.raises(ZkError, match="version conflict"):
            zk.set("/epoch", b"1", expected_version=version)  # slow one loses

    def test_fenced_store_refuses_stale_epoch_writes(self):
        zk = ZooKeeperLite()
        zk.ensure_path("/coordinators")
        zk.create(CoordinatorStateStore.EPOCH_PATH, b"1")
        old_term = CoordinatorStateStore(zk).for_epoch(1)
        old_term.record_session("s", "noop", {})
        old_term.record_status("s", "launched")  # current term: accepted
        zk.set(CoordinatorStateStore.EPOCH_PATH, b"2")  # a new leader took over
        with pytest.raises(ZkError, match="fenced"):
            old_term.record_status("s", "completed")
        # The journal still holds the last *accepted* write, untouched.
        assert CoordinatorStateStore(zk).session_view("s")["status"] == "launched"

    def test_session_view_roundtrips_full_control_state(self):
        """Satellite check: everything a takeover needs — registrations,
        split plan, ML claims, recovery log, status — survives the journal
        round-trip with types intact."""
        zk = ZooKeeperLite()
        store = CoordinatorStateStore(zk)
        groups = {
            0: [ChannelId(0, 0), ChannelId(0, 1)],
            1: [ChannelId(1, 2), ChannelId(1, 3)],
        }
        store.record_session(
            "s",
            "svm_with_sgd",
            {"record.format": "labeled_csv"},
            args={"iterations": 5},
            settings={"buffer_bytes": 4096, "batch_rows": 16, "spill_dir": None},
        )
        store.record_worker("s", 0, "10.0.0.2", 2)
        store.record_worker("s", 1, "10.0.0.3", 2)
        store.record_splits("s", groups)
        store.record_ml_claim("s", ChannelId(0, 0))
        store.record_ml_claim("s", ChannelId(1, 2))
        store.record_recovery("s", {"sql_worker_id": 1, "reason": "stale"})
        store.record_status("s", "launched")

        view = CoordinatorStateStore(zk).session_view("s")
        assert view["command"] == "svm_with_sgd"
        assert view["args"] == {"iterations": 5}
        assert view["settings"]["batch_rows"] == 16
        assert sorted(view["workers"]) == [0, 1]
        assert view["groups"] == groups
        assert view["ml_claims"] == [ChannelId(0, 0), ChannelId(1, 2)]
        assert view["recovery_log"] == [{"sql_worker_id": 1, "reason": "stale"}]
        assert view["status"] == "launched"

    def test_reregistration_overwrites_instead_of_duplicating(self):
        """The idempotent-handshake contract at the journal level: writing
        the same worker twice bumps the znode version, not the child count."""
        zk = ZooKeeperLite()
        store = CoordinatorStateStore(zk)
        store.record_session("s", "noop", {})
        store.record_worker("s", 0, "10.0.0.2", 1)
        store.record_worker("s", 0, "10.0.0.2", 1)
        assert zk.children("/coordinator/sessions/s/workers") == ["0"]
        assert zk.get("/coordinator/sessions/s/workers/0")[1] == 1  # version bumped

    def test_journal_traffic_is_metered(self):
        ledger = CostLedger()
        store = CoordinatorStateStore(ZooKeeperLite(), ledger=ledger)
        store.record_session("s", "noop", {})
        store.record_status("s", "launched")
        assert ledger.get("zk.journal") > 0
