"""ZooKeeperLite and coordinator-state resilience (§6)."""

import pytest

from repro import make_deployment
from repro.sql.types import DataType, Schema
from repro.transfer.zk import CoordinatorStateStore, ZkError, ZooKeeperLite


class TestZnodes:
    def test_create_get_set(self):
        zk = ZooKeeperLite()
        zk.create("/a", b"one")
        assert zk.get("/a") == (b"one", 0)
        assert zk.set("/a", b"two") == 1
        assert zk.get("/a") == (b"two", 1)

    def test_compare_and_set(self):
        zk = ZooKeeperLite()
        zk.create("/a", b"x")
        zk.set("/a", b"y", expected_version=0)
        with pytest.raises(ZkError, match="version conflict"):
            zk.set("/a", b"z", expected_version=0)

    def test_parent_must_exist(self):
        zk = ZooKeeperLite()
        with pytest.raises(ZkError, match="parent"):
            zk.create("/a/b")

    def test_duplicate_create_rejected(self):
        zk = ZooKeeperLite()
        zk.create("/a")
        with pytest.raises(ZkError, match="exists"):
            zk.create("/a")

    def test_ensure_path(self):
        zk = ZooKeeperLite()
        zk.ensure_path("/x/y/z")
        assert zk.exists("/x") and zk.exists("/x/y") and zk.exists("/x/y/z")
        zk.ensure_path("/x/y/z")  # idempotent

    def test_children(self):
        zk = ZooKeeperLite()
        zk.ensure_path("/app/b")
        zk.ensure_path("/app/a")
        zk.create("/app/a/leaf")
        assert zk.children("/app") == ["a", "b"]
        assert zk.children("/") == ["app"]

    def test_delete_leaf_only(self):
        zk = ZooKeeperLite()
        zk.ensure_path("/a/b")
        with pytest.raises(ZkError, match="children"):
            zk.delete("/a")
        zk.delete("/a/b")
        zk.delete("/a")
        assert not zk.exists("/a")

    def test_bad_paths(self):
        zk = ZooKeeperLite()
        with pytest.raises(ZkError):
            zk.create("relative")
        with pytest.raises(ZkError):
            zk.create("/trailing/")


class TestEphemerals:
    def test_ephemeral_dies_with_session(self):
        zk = ZooKeeperLite()
        zk.start_session("worker-1")
        zk.create("/alive", b"", ephemeral_owner="worker-1")
        assert zk.exists("/alive")
        removed = zk.close_session("worker-1")
        assert removed == ["/alive"]
        assert not zk.exists("/alive")

    def test_ephemeral_needs_session(self):
        zk = ZooKeeperLite()
        with pytest.raises(ZkError, match="session"):
            zk.create("/x", ephemeral_owner="ghost")

    def test_duplicate_session_rejected(self):
        zk = ZooKeeperLite()
        zk.start_session("s")
        with pytest.raises(ZkError):
            zk.start_session("s")


class TestWatches:
    def test_one_shot_change_watch(self):
        zk = ZooKeeperLite()
        zk.create("/w", b"")
        events = []
        zk.watch("/w", lambda path, event: events.append((path, event)))
        zk.set("/w", b"1")
        zk.set("/w", b"2")  # watch already fired and disarmed
        assert events == [("/w", "changed")]

    def test_creation_watch(self):
        zk = ZooKeeperLite()
        events = []
        zk.watch("/later", lambda p, e: events.append(e))
        zk.create("/later")
        assert events == ["created"]

    def test_deletion_watch_via_session_close(self):
        zk = ZooKeeperLite()
        zk.start_session("s")
        zk.create("/eph", ephemeral_owner="s")
        events = []
        zk.watch("/eph", lambda p, e: events.append(e))
        zk.close_session("s")
        assert events == ["deleted"]


class TestCoordinatorResilience:
    def test_session_metadata_mirrored_and_recoverable(self):
        """§6: with the state store attached, a replacement coordinator can
        see exactly which sessions were in flight, their ML command, and
        which SQL workers had registered when the original died."""
        zk = ZooKeeperLite()
        store = CoordinatorStateStore(zk)
        deployment = make_deployment(block_size=64 * 1024)
        coordinator = deployment.coordinator
        coordinator.state_store = store

        engine = deployment.engine
        engine.create_table(
            "pts", Schema.of(("x", DataType.DOUBLE)), [(float(i),) for i in range(40)]
        )
        coordinator.create_session(
            "resilient", command="noop", conf_props={"record.format": "raw"}
        )
        engine.query_rows(
            "SELECT * FROM TABLE(stream_transfer((SELECT x FROM pts), 'resilient')) AS s"
        )
        coordinator.wait_result("resilient")

        # The original coordinator "dies"; a fresh observer reads the store.
        recovered = CoordinatorStateStore(zk)
        assert "resilient" in recovered.sessions()
        view = recovered.session_view("resilient")
        assert view["command"] == "noop"
        assert view["status"] == "completed"
        assert sorted(view["workers"]) == [0, 1, 2, 3]
        assert all(w["total"] == 4 for w in view["workers"].values())

    def test_failed_session_status_recorded(self):
        zk = ZooKeeperLite()
        store = CoordinatorStateStore(zk)
        deployment = make_deployment(block_size=64 * 1024)
        coordinator = deployment.coordinator
        coordinator.state_store = store
        engine = deployment.engine
        engine.create_table("t", Schema.of(("x", DataType.INT)), [(1,)])
        coordinator.create_session(
            "doomed", command="not_a_command", conf_props={"record.format": "raw"}
        )
        with pytest.raises(Exception):
            engine.query_rows(
                "SELECT * FROM TABLE(stream_transfer((SELECT x FROM t), 'doomed')) AS s"
            )
        view = store.session_view("doomed")
        assert view["status"] == "failed"
