"""Rewriter and matching edge cases beyond the paper's examples."""

import pytest

from repro.caching.cache import CacheManager
from repro.rewriter.matching import extract_shape, match_full_cache, match_recode_map
from repro.rewriter.rewriter import QueryRewriter
from repro.transform import (
    DummyCodeUDF,
    EffectCodeUDF,
    LocalDistinctUDF,
    OrthogonalCodeUDF,
    RecodeMap,
    RecodeUDF,
    TransformService,
)
from repro.transform.spec import TransformSpec

PREP = (
    "SELECT U.age, U.gender, C.amount, C.abandoned "
    "FROM carts C, users U WHERE C.userid = U.userid AND U.country = 'USA'"
)
SPEC = TransformSpec(recode=("gender", "abandoned"), dummy=("gender",), label="abandoned")


@pytest.fixture()
def env(users_carts):
    engine = users_carts
    transforms = TransformService()
    cache = CacheManager(engine, transforms)
    for udf in (
        LocalDistinctUDF(),
        RecodeUDF(transforms),
        DummyCodeUDF(transforms),
        EffectCodeUDF(transforms),
        OrthogonalCodeUDF(transforms),
    ):
        engine.register_table_udf(udf)
    return engine, transforms, cache, QueryRewriter(engine, transforms, cache=cache)


class TestOrPredicates:
    def test_identical_or_conjunct_matches(self, env):
        engine, _t, _c, _r = env
        sql = (
            "SELECT U.gender FROM carts C, users U "
            "WHERE C.userid = U.userid AND (U.country = 'USA' OR U.country = 'DE')"
        )
        shape = extract_shape(engine.parse(sql), engine)
        assert shape is not None
        assert match_full_cache(shape, shape) is not None
        assert match_recode_map(shape, SPEC, shape, SPEC) is not None

    def test_different_or_conjunct_misses(self, env):
        engine, _t, _c, _r = env
        cached_sql = (
            "SELECT U.gender FROM carts C, users U "
            "WHERE C.userid = U.userid AND (U.country = 'USA' OR U.country = 'DE')"
        )
        new_sql = (
            "SELECT U.gender FROM carts C, users U "
            "WHERE C.userid = U.userid AND (U.country = 'USA' OR U.country = 'FR')"
        )
        cached = extract_shape(engine.parse(cached_sql), engine)
        new = extract_shape(engine.parse(new_sql), engine)
        # An OR is an opaque conjunct: no implication reasoning, so no reuse.
        assert match_full_cache(new, cached) is None
        assert match_recode_map(new, SPEC, cached, SPEC) is None


class TestAliasedProjections:
    def test_projection_alias_does_not_block_matching(self, env):
        """Matching compares projected *expressions*, not output names."""
        engine, transforms, cache, rewriter = env
        plan = rewriter.plan(PREP, SPEC)
        rows = engine.query_rows(plan.pass1_sql)
        recode_map = RecodeMap.from_distinct_rows(rows)
        transforms.register(plan.map_handle, recode_map)
        cache.store_recode_map(PREP, SPEC, recode_map)

        renamed = (
            "SELECT U.age AS customer_age, U.gender, C.amount, C.abandoned "
            "FROM carts C, users U "
            "WHERE C.userid = U.userid AND U.country = 'USA' AND C.year = 2014"
        )
        plan2 = rewriter.plan(renamed, SPEC)
        assert plan2.kind == "recode_map_cache"


class TestExpansionCodings:
    def test_effect_spec_through_rewriter(self, env):
        engine, transforms, _c, rewriter = env
        spec = TransformSpec(recode=("abandoned",), effect=("gender",), label="abandoned")
        plan = rewriter.plan(PREP, spec)
        assert "effect_code" in plan.inner_sql
        rows = engine.query_rows(plan.pass1_sql)
        transforms.register(plan.map_handle, RecodeMap.from_distinct_rows(rows))
        result = engine.query_rows(plan.inner_sql)
        # schema: age, gender_e1, amount, abandoned — gender in {1,-1}
        assert {row[1] for row in result} <= {1, -1}

    def test_orthogonal_spec_through_rewriter(self, env):
        engine, transforms, _c, rewriter = env
        spec = TransformSpec(
            recode=("abandoned",), orthogonal=("gender",), label="abandoned"
        )
        plan = rewriter.plan(PREP, spec)
        assert "orthogonal_code" in plan.inner_sql
        rows = engine.query_rows(plan.pass1_sql)
        transforms.register(plan.map_handle, RecodeMap.from_distinct_rows(rows))
        result = engine.query_rows(plan.inner_sql)
        values = sorted({round(row[1], 6) for row in result})
        assert len(values) == 2 and values[0] == -values[1]

    def test_expansion_collision_rejected(self):
        with pytest.raises(ValueError, match="at most one"):
            TransformSpec(dummy=("gender",), effect=("gender",))

    def test_label_cannot_be_expanded(self):
        with pytest.raises(ValueError, match="expanded away"):
            TransformSpec(dummy=("abandoned",), label="abandoned")


class TestFullCacheWithEffectCoding:
    def test_cached_view_serves_effect_spec(self, env):
        """The recoded-stage cache composes with any expansion coding."""
        engine, transforms, cache, rewriter = env
        base_plan = rewriter.plan(PREP, SPEC)
        rows = engine.query_rows(base_plan.pass1_sql)
        recode_map = RecodeMap.from_distinct_rows(rows)
        transforms.register(base_plan.map_handle, recode_map)
        handle = cache.store_recode_map(PREP, SPEC, recode_map)
        recode_sql = (
            f"SELECT * FROM TABLE(recode(({PREP}), '{handle}', "
            "'gender', 'abandoned')) AS __r"
        )
        engine.create_materialized_view("effect_view", recode_sql)
        cache.store_transformed(PREP, SPEC, "effect_view", handle)

        effect_spec = TransformSpec(
            recode=("abandoned",), effect=("gender",), label="abandoned"
        )
        plan = rewriter.plan(PREP, effect_spec)
        assert plan.kind == "full_cache"
        assert "effect_code" in plan.inner_sql
        assert "carts" not in plan.inner_sql
        result = engine.query_rows(plan.inner_sql)
        assert len(result) == 6
        assert {row[1] for row in result} <= {1, -1}
