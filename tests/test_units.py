"""Byte-size and duration helpers."""

import pytest
from hypothesis import given, strategies as st

from repro.common.units import format_bytes, format_duration, parse_bytes


class TestParseBytes:
    def test_plain_int(self):
        assert parse_bytes(4096) == 4096

    def test_plain_float(self):
        assert parse_bytes(10.9) == 10

    def test_numeric_string(self):
        assert parse_bytes("1234") == 1234

    def test_decimal_units(self):
        assert parse_bytes("4KB") == 4_000
        assert parse_bytes("56GB") == 56_000_000_000
        assert parse_bytes("1.5MB") == 1_500_000
        assert parse_bytes("2TB") == 2_000_000_000_000

    def test_binary_units(self):
        assert parse_bytes("1KiB") == 1024
        assert parse_bytes("1MiB") == 1024**2
        assert parse_bytes("2GiB") == 2 * 1024**3

    def test_bare_letter_unit(self):
        assert parse_bytes("4K") == 4000
        assert parse_bytes("3M") == 3_000_000

    def test_whitespace_and_case(self):
        assert parse_bytes("  56 gb ") == 56_000_000_000

    def test_bad_input_raises(self):
        with pytest.raises(ValueError):
            parse_bytes("lots")
        with pytest.raises(ValueError):
            parse_bytes("12XB")

    @given(st.integers(min_value=0, max_value=10**15))
    def test_roundtrip_through_format_is_close(self, n):
        text = format_bytes(n)
        # format rounds to one decimal; parsing it back stays within 5%.
        parsed = parse_bytes(text)
        assert abs(parsed - n) <= max(0.05 * n, 1)


class TestFormatBytes:
    def test_small(self):
        assert format_bytes(512) == "512 B"

    def test_kb(self):
        assert format_bytes(4_000) == "4.0 KB"

    def test_gb(self):
        assert format_bytes(5.6e9) == "5.6 GB"

    def test_tb_cap(self):
        assert format_bytes(2.3e13) == "23.0 TB"


class TestFormatDuration:
    def test_seconds(self):
        assert format_duration(43.0) == "43.0 s"

    def test_minutes(self):
        assert format_duration(300) == "5m 00s"

    def test_hours(self):
        assert format_duration(7320) == "2h 02m"

    def test_negative(self):
        assert format_duration(-5) == "-5.0 s"
