"""Dataset (RDD) operations and ingestion jobs."""

import numpy as np
import pytest

from repro.cluster.cluster import make_paper_cluster
from repro.hdfs.filesystem import DistributedFileSystem
from repro.iofmt.inputformat import JobConf
from repro.iofmt.text import CsvInputFormat
from repro.ml.dataset import Dataset, LabeledPoint, labeled_point_from_fields
from repro.ml.job import MLJob


class TestDataset:
    def test_from_records_round_robin(self):
        ds = Dataset.from_records(range(10), num_partitions=3)
        assert ds.num_partitions == 3
        assert ds.count() == 10
        assert sorted(ds.collect()) == list(range(10))

    def test_map_filter(self):
        ds = Dataset.from_records(range(10), 2)
        out = ds.map(lambda x: x * 2).filter(lambda x: x > 10)
        assert sorted(out.collect()) == [12, 14, 16, 18]

    def test_map_partitions(self):
        ds = Dataset.from_records(range(9), 3)
        sums = ds.map_partitions(lambda p: [sum(p)])
        assert sums.count() == 3
        assert sum(sums.collect()) == sum(range(9))

    def test_sample_deterministic(self):
        ds = Dataset.from_records(range(1000), 4)
        a = ds.sample(0.3, seed=5).collect()
        b = ds.sample(0.3, seed=5).collect()
        assert a == b
        assert 200 < len(a) < 400

    def test_first(self):
        ds = Dataset([[], [42]])
        assert ds.first() == 42
        with pytest.raises(IndexError):
            Dataset([[]]).first()

    def test_to_arrays(self):
        points = [LabeledPoint(1.0, np.array([1.0, 2.0])), LabeledPoint(0.0, np.array([3.0, 4.0]))]
        X, y = Dataset([points]).to_arrays()
        assert X.shape == (2, 2)
        assert list(y) == [1.0, 0.0]

    def test_to_arrays_empty(self):
        X, y = Dataset([[]]).to_arrays()
        assert X.size == 0 and y.size == 0

    def test_partition_arrays_skips_empty(self):
        points = [LabeledPoint(1.0, np.array([1.0]))]
        parts = Dataset([points, []]).partition_arrays()
        assert len(parts) == 1

    def test_invalid_partition_count(self):
        with pytest.raises(ValueError):
            Dataset.from_records([], 0)


class TestLabeledPoint:
    def test_equality_and_hash(self):
        a = LabeledPoint(1.0, np.array([1.0, 2.0]))
        b = LabeledPoint(1.0, np.array([1.0, 2.0]))
        c = LabeledPoint(0.0, np.array([1.0, 2.0]))
        assert a == b and hash(a) == hash(b)
        assert a != c

    def test_from_fields_default_label_last(self):
        point = labeled_point_from_fields(["1.5", "2", "0"])
        assert point.label == 0.0
        assert list(point.features) == [1.5, 2.0]

    def test_from_fields_label_index(self):
        point = labeled_point_from_fields([1, 2.5, 3], label_index=0)
        assert point.label == 1.0
        assert list(point.features) == [2.5, 3.0]

    def test_from_fields_negative_index(self):
        point = labeled_point_from_fields([1, 2, 3], label_index=-2)
        assert point.label == 2.0
        assert list(point.features) == [1.0, 3.0]


class TestMLJobIngest:
    def make_env(self):
        cluster = make_paper_cluster()
        dfs = DistributedFileSystem(cluster, block_size=256)
        return cluster, dfs

    def test_ingest_text_to_labeled_points(self):
        cluster, dfs = self.make_env()
        lines = "\n".join(f"{i},{i * 2},{i % 2}" for i in range(300)) + "\n"
        dfs.write_text("/ml/data.csv", lines)
        job = MLJob(
            cluster=cluster,
            input_format=CsvInputFormat(),
            conf=JobConf({"input.path": "/ml/data.csv"}, dfs=dfs),
            num_workers=6,
            record_parser=lambda fields: labeled_point_from_fields(fields),
        )
        dataset, stats = job.ingest()
        assert stats.records == 300
        assert dataset.count() == 300
        assert stats.bytes == dfs.status("/ml/data.csv").length
        point = dataset.first()
        assert point.label in (0.0, 1.0)
        assert point.features.shape == (2,)

    def test_one_worker_per_split(self):
        cluster, dfs = self.make_env()
        dfs.write_text("/ml/d.csv", "1,2\n" * 500)
        job = MLJob(
            cluster=cluster,
            input_format=CsvInputFormat(),
            conf=JobConf({"input.path": "/ml/d.csv"}, dfs=dfs),
            num_workers=4,
        )
        dataset, stats = job.ingest()
        assert dataset.num_partitions == stats.num_splits

    def test_locality_counted(self):
        cluster, dfs = self.make_env()
        dfs.write_text("/ml/d.csv", "1,2\n" * 100, client_ip=cluster.workers[0].ip)
        job = MLJob(
            cluster=cluster,
            input_format=CsvInputFormat(),
            conf=JobConf({"input.path": "/ml/d.csv"}, dfs=dfs),
            num_workers=2,
        )
        _dataset, stats = job.ingest()
        assert stats.local_splits == stats.num_splits  # replicas on cluster nodes

    def test_empty_input(self):
        cluster, dfs = self.make_env()
        dfs.write_text("/ml/empty.csv", "")
        job = MLJob(
            cluster=cluster,
            input_format=CsvInputFormat(),
            conf=JobConf({"input.path": "/ml/empty.csv"}, dfs=dfs),
            num_workers=4,
        )
        dataset, stats = job.ingest()
        assert dataset.count() == 0
        assert stats.records == 0

    def test_ingest_accounting(self):
        cluster, dfs = self.make_env()
        dfs.write_text("/ml/a.csv", "1,2\n" * 50)
        before = cluster.ledger.snapshot()
        MLJob(
            cluster=cluster,
            input_format=CsvInputFormat(),
            conf=JobConf({"input.path": "/ml/a.csv"}, dfs=dfs),
            num_workers=2,
        ).ingest()
        delta = cluster.ledger.delta(before, cluster.ledger.snapshot())
        assert delta["ml.ingest"] == 200
