"""Retail workload generator: schemas, determinism, scale accounting."""

import pytest

from repro import make_deployment
from repro.workloads import generate_retail
from repro.workloads.retail import (
    CARTS_SCHEMA,
    PAPER_CARTS_BYTES,
    PREP_SQL,
    RECODE_REUSE_SQL,
    SUBSET_SQL,
    USERS_SCHEMA,
)


@pytest.fixture(scope="module")
def generated():
    deployment = make_deployment(block_size=64 * 1024)
    workload = generate_retail(
        deployment.engine, deployment.dfs, num_users=200, num_carts=2_000, seed=3
    )
    return deployment, workload


class TestGeneration:
    def test_tables_registered_and_sized(self, generated):
        deployment, wl = generated
        (users_count,) = deployment.engine.query_rows("SELECT COUNT(*) FROM users")
        (carts_count,) = deployment.engine.query_rows("SELECT COUNT(*) FROM carts")
        assert users_count == (200,)
        assert carts_count == (2000,)

    def test_stored_as_text_on_dfs(self, generated):
        deployment, wl = generated
        assert deployment.dfs.is_dir(wl.users_path)
        assert deployment.dfs.total_size(wl.carts_path) == wl.carts_bytes
        # one part file per worker node, like an MPP load
        assert len(deployment.dfs.list_files(wl.carts_path)) == 4

    def test_carts_row_width_near_paper(self, generated):
        """The paper's carts table is 56 GB / 1B rows = 56 B/row; ours must
        land close so the transformed/input size ratio is faithful."""
        _d, wl = generated
        width = wl.carts_bytes / wl.num_carts
        assert 48 <= width <= 66

    def test_byte_scale_maps_to_paper(self, generated):
        _d, wl = generated
        assert wl.byte_scale == pytest.approx(PAPER_CARTS_BYTES / wl.carts_bytes)

    def test_referential_integrity(self, generated):
        deployment, _wl = generated
        (orphans,) = deployment.engine.query_rows(
            "SELECT COUNT(*) FROM carts C LEFT JOIN users U ON C.userid = U.userid "
            "WHERE U.userid IS NULL"
        )
        assert orphans == (0,)

    def test_label_both_classes_present(self, generated):
        deployment, _wl = generated
        rows = deployment.engine.query_rows(
            "SELECT abandoned, COUNT(*) FROM carts GROUP BY abandoned"
        )
        assert {r[0] for r in rows} == {"Yes", "No"}
        counts = {r[0]: r[1] for r in rows}
        assert min(counts.values()) > 0.15 * 2000  # not degenerate

    def test_label_correlates_with_gender(self, generated):
        """The generator plants signal: females abandon more often."""
        deployment, _wl = generated
        rows = deployment.engine.query_rows(
            "SELECT U.gender, AVG(CASE WHEN C.abandoned = 'Yes' THEN 1.0 ELSE 0.0 END) "
            "FROM carts C, users U WHERE C.userid = U.userid GROUP BY U.gender"
        )
        rates = {g: r for g, r in rows}
        assert rates["F"] > rates["M"] + 0.1

    def test_deterministic_under_seed(self):
        d1 = make_deployment(block_size=64 * 1024)
        d2 = make_deployment(block_size=64 * 1024)
        w1 = generate_retail(d1.engine, d1.dfs, num_users=50, num_carts=500, seed=9)
        w2 = generate_retail(d2.engine, d2.dfs, num_users=50, num_carts=500, seed=9)
        assert d1.dfs.read_text(w1.carts_path + "/part-00000") == d2.dfs.read_text(
            w2.carts_path + "/part-00000"
        )

    def test_different_seeds_differ(self):
        d1 = make_deployment(block_size=64 * 1024)
        d2 = make_deployment(block_size=64 * 1024)
        w1 = generate_retail(d1.engine, d1.dfs, num_users=50, num_carts=500, seed=1)
        w2 = generate_retail(d2.engine, d2.dfs, num_users=50, num_carts=500, seed=2)
        assert d1.dfs.read_text(w1.carts_path + "/part-00000") != d2.dfs.read_text(
            w2.carts_path + "/part-00000"
        )


class TestCannedQueries:
    def test_prep_query_runs(self, generated):
        deployment, wl = generated
        rows = deployment.engine.query_rows(wl.prep_sql)
        assert len(rows) > 0
        assert len(rows[0]) == 4

    def test_subset_query_runs(self, generated):
        deployment, _wl = generated
        rows = deployment.engine.query_rows(SUBSET_SQL)
        assert all(len(r) == 3 for r in rows)

    def test_recode_reuse_query_runs(self, generated):
        deployment, _wl = generated
        rows = deployment.engine.query_rows(RECODE_REUSE_SQL)
        assert all(len(r) == 5 for r in rows)

    def test_schema_constants(self):
        assert USERS_SCHEMA.names == ["userid", "age", "gender", "country"]
        assert "abandoned" in CARTS_SCHEMA.names
        assert "year" in CARTS_SCHEMA.names
        assert "USA" in PREP_SQL
