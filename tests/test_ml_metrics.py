"""Evaluation metrics against hand-computed references."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.common.errors import MLError
from repro.ml import metrics


Y_TRUE = np.array([1, 1, 0, 0, 1, 0])
Y_PRED = np.array([1, 0, 0, 1, 1, 0])


class TestClassification:
    def test_accuracy(self):
        assert metrics.accuracy(Y_TRUE, Y_PRED) == pytest.approx(4 / 6)

    def test_confusion_matrix(self):
        cm = metrics.confusion_matrix(Y_TRUE, Y_PRED)
        assert cm == {"tp": 2, "fp": 1, "tn": 2, "fn": 1}

    def test_precision_recall_f1(self):
        assert metrics.precision(Y_TRUE, Y_PRED) == pytest.approx(2 / 3)
        assert metrics.recall(Y_TRUE, Y_PRED) == pytest.approx(2 / 3)
        assert metrics.f1_score(Y_TRUE, Y_PRED) == pytest.approx(2 / 3)

    def test_degenerate_no_positive_predictions(self):
        y_true = np.array([1, 0])
        y_pred = np.array([0, 0])
        assert metrics.precision(y_true, y_pred) == 0.0
        assert metrics.recall(y_true, y_pred) == 0.0
        assert metrics.f1_score(y_true, y_pred) == 0.0

    def test_length_mismatch(self):
        with pytest.raises(MLError):
            metrics.accuracy([1], [1, 0])

    def test_empty(self):
        with pytest.raises(MLError):
            metrics.accuracy([], [])


class TestAuc:
    def test_perfect_ranking(self):
        y = np.array([0, 0, 1, 1])
        scores = np.array([0.1, 0.2, 0.8, 0.9])
        assert metrics.auc(y, scores) == 1.0

    def test_inverted_ranking(self):
        y = np.array([0, 0, 1, 1])
        scores = np.array([0.9, 0.8, 0.2, 0.1])
        assert metrics.auc(y, scores) == 0.0

    def test_random_is_half(self):
        rng = np.random.default_rng(0)
        y = rng.integers(0, 2, 5000)
        scores = rng.random(5000)
        assert metrics.auc(y, scores) == pytest.approx(0.5, abs=0.03)

    def test_ties_averaged(self):
        y = np.array([0, 1])
        scores = np.array([0.5, 0.5])
        assert metrics.auc(y, scores) == 0.5

    def test_single_class_rejected(self):
        with pytest.raises(MLError):
            metrics.auc(np.array([1, 1]), np.array([0.1, 0.2]))

    @given(
        labels=st.lists(st.sampled_from([0, 1]), min_size=4, max_size=40).filter(
            lambda ls: 0 in ls and 1 in ls
        ),
        seed=st.integers(0, 100),
    )
    def test_matches_pairwise_definition(self, labels, seed):
        """AUC equals P(score(pos) > score(neg)) + 0.5 P(tie), by brute force."""
        rng = np.random.default_rng(seed)
        scores = rng.integers(0, 5, len(labels)).astype(float)  # force ties
        y = np.array(labels)
        positives = scores[y == 1]
        negatives = scores[y == 0]
        wins = sum((p > n) + 0.5 * (p == n) for p in positives for n in negatives)
        expected = wins / (len(positives) * len(negatives))
        assert metrics.auc(y, scores) == pytest.approx(expected)


class TestRegression:
    def test_rmse(self):
        assert metrics.rmse([1, 2, 3], [1, 2, 3]) == 0.0
        assert metrics.rmse([0, 0], [3, 4]) == pytest.approx((12.5) ** 0.5)

    def test_r2_perfect(self):
        assert metrics.r2_score([1, 2, 3], [1, 2, 3]) == 1.0

    def test_r2_mean_predictor_is_zero(self):
        y = np.array([1.0, 2.0, 3.0])
        assert metrics.r2_score(y, np.full(3, y.mean())) == pytest.approx(0.0)

    def test_r2_constant_target(self):
        assert metrics.r2_score([2, 2], [2, 2]) == 1.0
        assert metrics.r2_score([2, 2], [1, 3]) == 0.0
