"""Chaos explorer: schedule serde, run determinism, invariants, shrinking.

The determinism property (DESIGN §13) is the load-bearing test here: two
runs of the same ``(seed, schedule)`` pair on fresh deployments must
produce byte-identical fingerprints — outcomes, full byte ledger, and the
injected-fault multiset.  Everything else (replayable JSON, trustworthy
ddmin probes, CI's minimized artifacts) leans on it.
"""

import pytest

from repro.sim import (
    ChaosExplorer,
    ChaosScenario,
    FaultAction,
    FaultSchedule,
    InvariantViolation,
)

pytestmark = pytest.mark.timeout(300)


# --------------------------------------------------------------------------
# Schedules and their FaultConfig compilation
# --------------------------------------------------------------------------


class TestScheduleSerde:
    def test_json_round_trip_is_lossless(self):
        schedule = FaultSchedule(
            seed=7,
            actions=(
                FaultAction("kill_sql", site="0", at=1),
                FaultAction("send_stall", rate=0.2, seconds=10.0),
            ),
        )
        assert FaultSchedule.from_json(schedule.to_json()) == schedule

    def test_unknown_action_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultAction("frobnicate")

    def test_to_config_compiles_kills_and_unbudgeted_rates(self):
        schedule = FaultSchedule(
            seed=7,
            actions=(
                FaultAction("kill_sql", site="0", at=1),
                FaultAction("kill_ml", site="2", at=10),
                FaultAction("send_stall", rate=0.2, seconds=10.0),
                FaultAction("send_drop", rate=0.05),
            ),
        )
        config = schedule.to_config()
        assert config.seed == 7
        assert config.kill_at == {0: 1}
        assert config.kill_ml_at == {2: 10}
        assert config.send_stall_rate == 0.2
        assert config.stall_seconds == 10.0
        assert config.send_drop_rate == 0.05
        # No global event budget: a shared counter is consumed in
        # thread-arrival order, which would make the injected set (and the
        # fingerprint) interleaving-dependent.
        assert config.max_events is None
        # Same hazard for point kills: schedules scope one-shots
        # per-session so the victim set is interleaving-independent.
        assert config.scoped_kills is True

    def test_sampler_is_a_pure_function_of_seed_and_index(self):
        first = ChaosExplorer(base_seed=5).sample_schedule(3)
        again = ChaosExplorer(base_seed=5).sample_schedule(3)
        assert first == again
        assert 1 <= len(first.actions) <= 3
        assert ChaosExplorer(base_seed=6).sample_schedule(3) != first


# --------------------------------------------------------------------------
# Determinism property (satellite): same (seed, schedule) -> same bytes
# --------------------------------------------------------------------------

FAULTY_SCHEDULES = (
    FaultSchedule(
        seed=101,
        actions=(
            FaultAction("kill_sql", site="0", at=1),
            FaultAction("send_stall", rate=0.2, seconds=10.0),
        ),
    ),
    FaultSchedule(
        seed=202,
        actions=(
            FaultAction("kill_ml", site="1", at=10),
            FaultAction("send_drop", rate=0.2),
        ),
    ),
    FaultSchedule(
        seed=303,
        actions=(
            FaultAction("kill_coordinator", site="matchmaking", at=0),
            FaultAction("lease_expire", site="mid_stream", at=1),
        ),
    ),
)


class TestDeterminism:
    @pytest.mark.parametrize(
        "schedule", FAULTY_SCHEDULES, ids=lambda s: f"seed{s.seed}"
    )
    def test_identical_schedule_identical_fingerprint(self, schedule):
        explorer = ChaosExplorer()
        runs = [explorer.run(schedule) for _ in range(2)]
        assert runs[0].fingerprint() == runs[1].fingerprint()
        # These faults are all survivable: kills fail over, stalls and
        # drops retry — the standing invariants hold on every run.
        for result in runs:
            assert result.violations == []

    def test_fault_free_schedule_upholds_every_invariant(self):
        explorer = ChaosExplorer()
        result = explorer.run(FaultSchedule(seed=0))
        assert result.violations == []
        result.raise_for_violations()  # no-op when clean
        assert len(result.outcomes) == explorer.scenario.num_sessions
        assert all(o["error_type"] is None for o in result.outcomes)
        assert result.events == []
        # A second fault-free run reproduces the baseline bit for bit.
        assert explorer.run(FaultSchedule(seed=0)).fingerprint() == result.fingerprint()

    def test_faulty_run_recovers_inside_virtual_time(self):
        explorer = ChaosExplorer()
        result = explorer.run(FAULTY_SCHEDULES[0])
        # The 10-second stalls and retry backoffs elapsed virtually.
        assert result.virtual_seconds >= 10.0
        assert result.wall_seconds < result.virtual_seconds
        assert result.events  # the schedule actually injected something
        assert result.stats["wedged"] == []


# --------------------------------------------------------------------------
# Shrinking: ddmin to a minimal replayable cause
# --------------------------------------------------------------------------


class TestShrinking:
    #: Four survivable decoys around one action that (under the strict
    #: all-sessions-complete bar) is a failure all by itself.
    PLANTED = FaultSchedule(
        seed=55,
        actions=(
            FaultAction("send_drop", rate=0.05),
            FaultAction("lease_expire", site="create_session", at=0),
            FaultAction("kill_ml", site="3", at=1),
            FaultAction("send_stall", rate=0.05, seconds=0.5),
            FaultAction("handshake_drop", site="split_plan"),
        ),
    )

    def test_ddmin_isolates_the_single_failing_action(self):
        explorer = ChaosExplorer(require_all_complete=True)
        minimized, result = explorer.shrink(self.PLANTED)
        assert result.failed
        assert [a.describe() for a in minimized.actions] == ["kill_ml[3]@1rows"]
        with pytest.raises(InvariantViolation, match="kill_ml"):
            result.raise_for_violations()

    def test_minimized_schedule_replays_identically_from_json(self):
        explorer = ChaosExplorer(require_all_complete=True)
        minimized, result = explorer.shrink(self.PLANTED)
        replay = explorer.replay(minimized.to_json())
        assert replay.failed
        assert replay.fingerprint() == result.fingerprint()

    def test_passing_schedule_shrinks_to_itself(self):
        explorer = ChaosExplorer()  # default bar: typed failures are fine
        schedule = FaultSchedule(
            seed=9, actions=(FaultAction("send_drop", rate=0.05),)
        )
        minimized, result = explorer.shrink(schedule)
        assert not result.failed
        assert minimized == schedule


# --------------------------------------------------------------------------
# Bounded exploration
# --------------------------------------------------------------------------


class TestExplore:
    def test_bounded_search_runs_and_reports(self):
        explorer = ChaosExplorer(base_seed=11)
        report = explorer.explore(rounds=2, wall_budget_s=60.0)
        assert report.rounds_run == 2
        summary = report.summary()
        assert summary["rounds_requested"] == 2
        assert summary["total_faults_injected"] >= 1
        assert summary["virtual_seconds_total"] > 0.0
        # The serving plane survives these sampled schedules: every
        # failure mode they hit is one the stack recovers from.
        assert report.failures == []

    def test_scenario_knobs_flow_into_session_ids(self):
        scenario = ChaosScenario(num_sessions=2)
        assert scenario.session_ids() == ["chaos_0", "chaos_1"]
