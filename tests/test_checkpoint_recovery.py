"""§6 checkpoint-based ML-stage recovery (chaos acceptance tests).

Every scenario is parametrized over RNG seeds and must deliver a model
**weight-for-weight identical** to a fault-free run — resuming from a
checkpoint, replaying the input from the §5 cache, or re-running the
rewritten query may cost extra work (charged to dedicated ledger
counters) but must never change the answer.

When ``CHAOS_ARTIFACTS_DIR`` is set (the CI chaos step), each scenario
dumps its fault-event log and checkpoint directory there before
asserting, so failures upload a full forensic trail.
"""

import json
import os
import pathlib

import numpy as np
import pytest

from repro import make_deployment
from repro.checkpoint import CheckpointStore
from repro.cluster.cluster import make_paper_cluster
from repro.faults import FaultConfig, FaultInjector
from repro.hdfs.filesystem import DistributedFileSystem
from repro.ml.dataset import Dataset, LabeledPoint
from repro.ml.system import MLSystem
from repro.workloads import generate_retail

SEEDS = (7, 11, 23)
SVM_ARGS = {"iterations": 8}


def make_dep(**kwargs):
    dep = make_deployment(block_size=64 * 1024, batch_rows=16, **kwargs)
    workload = generate_retail(dep.engine, dep.dfs, num_users=60, num_carts=400)
    dep.pipeline.byte_scale = workload.byte_scale
    return dep, workload


def run_stream(dep, workload, **kwargs):
    return dep.pipeline.run_insql_stream(
        workload.prep_sql, workload.spec, command="svm_with_sgd", args=SVM_ARGS, **kwargs
    )


def assert_same_model(a, b):
    """Weight-for-weight identity, across the iterative model families."""
    assert type(a) is type(b)
    for attr in ("weights", "centers"):
        if hasattr(a, attr):
            assert np.array_equal(getattr(a, attr), getattr(b, attr))
    for attr in ("intercept", "cost"):
        if hasattr(a, attr):
            assert getattr(a, attr) == getattr(b, attr)


def dump_artifacts(name, injector=None, store=None, job_id=None):
    """CI forensics: fault-event log + raw checkpoint files (opt-in)."""
    art_dir = os.environ.get("CHAOS_ARTIFACTS_DIR")
    if not art_dir:
        return
    root = pathlib.Path(art_dir) / name
    root.mkdir(parents=True, exist_ok=True)
    if injector is not None:
        events = [{"kind": e.kind, "site": e.site} for e in injector.events]
        (root / "fault_events.json").write_text(json.dumps(events, indent=2))
    if store is not None and job_id is not None:
        ckpt_dir = root / "checkpoints"
        ckpt_dir.mkdir(exist_ok=True)
        for fname, blob in store.export(job_id).items():
            (ckpt_dir / fname).write_bytes(blob)


# --------------------------------------------------------------------------
# Tier 1: resume from checkpoint, in place
# --------------------------------------------------------------------------


class TestResumeFromCheckpoint:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_streamed_training_kill_resumes_weight_identical(self, seed):
        base_dep, base_wl = make_dep()
        baseline = run_stream(base_dep, base_wl)

        injector = FaultInjector(FaultConfig(seed=seed, kill_train_at=3))
        dep, workload = make_dep(fault_injector=injector, checkpoint_interval=1)
        result = run_stream(dep, workload)
        dump_artifacts(
            f"stream_kill_resume_seed{seed}",
            injector,
            dep.ml.checkpoint_store,
            result.lineage.job_id,
        )

        assert result.ml_recovery_tier == "resume_checkpoint"
        assert result.ml_result.train_attempts == 2
        assert result.ml_result.resumed_from_iteration == 3
        assert result.attempts == 1  # recovered in place, no pipeline restart
        assert_same_model(result.ml_result.model, baseline.ml_result.model)
        assert [e.kind for e in injector.events].count("iteration_kill") == 1
        assert dep.coordinator.recovery.summary()["ml_recoveries"] == 1

    @pytest.mark.parametrize(
        ("command", "args"),
        [
            ("logistic_regression", {"iterations": 6, "step": 0.5}),
            ("svm_with_sgd", {"iterations": 6}),
            ("linear_regression", {"solver": "sgd", "iterations": 6}),
            ("kmeans", {"k": 3, "max_iterations": 8}),
        ],
    )
    def test_every_iterative_algorithm_resumes_weight_identical(self, command, args):
        def dataset():
            if command == "kmeans":
                records = [
                    np.array([float(i % 5), float((i * 3) % 7)]) for i in range(120)
                ]
            else:
                records = [
                    LabeledPoint(float(i % 2), np.array([float(i % 7), float(i % 3)]))
                    for i in range(120)
                ]
            return Dataset([records[i::4] for i in range(4)])

        baseline = MLSystem(make_paper_cluster(2)).train_local(command, args, dataset())

        cluster = make_paper_cluster(2)
        dfs = DistributedFileSystem(cluster, block_size=64 * 1024, replication=2)
        store = CheckpointStore(dfs, ledger=cluster.ledger)
        injector = FaultInjector(FaultConfig(seed=7, kill_train_at=3))
        ml = MLSystem(
            cluster,
            checkpoint_store=store,
            checkpoint_interval=1,
            fault_injector=injector,
        )
        result = ml.train_local(command, args, dataset())
        dump_artifacts(f"algorithm_resume_{command}", injector, store, f"mljob_{command}")

        assert result.train_attempts == 2
        assert result.resumed_from_iteration == 3
        assert_same_model(result.model, baseline.model)


# --------------------------------------------------------------------------
# Tiers 2/3: lineage replay (cache, then rewritten query)
# --------------------------------------------------------------------------


class TestLineageReplayLadder:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_no_checkpoint_kill_replays_rewritten_query(self, seed):
        base_dep, base_wl = make_dep()
        baseline = run_stream(base_dep, base_wl)

        injector = FaultInjector(FaultConfig(seed=seed, kill_train_at=3))
        dep, workload = make_dep(fault_injector=injector)  # checkpointing OFF
        result = run_stream(dep, workload)
        dump_artifacts(f"replay_query_seed{seed}", injector)

        assert result.ml_recovery_tier == "replay_query"
        assert result.degraded_from is None
        assert result.ml_result.recovered_via == "replay_query"
        assert_same_model(result.ml_result.model, baseline.ml_result.model)
        tiers = [ev.tier for ev in dep.coordinator.recovery.ml_recovery_events]
        assert tiers == ["replay_query"]
        # Replayed input is charged to its own counter, not the stream's.
        assert dep.cluster.ledger.get("ml.replay") > 0

    @pytest.mark.parametrize("seed", SEEDS)
    def test_warm_cache_never_escalates_past_replay_cache(self, seed):
        base_dep, base_wl = make_dep()
        baseline = run_stream(base_dep, base_wl)

        injector = FaultInjector(FaultConfig(seed=seed, kill_train_at=3))
        dep, workload = make_dep(fault_injector=injector)  # checkpointing OFF
        dep.pipeline.populate_caches(workload.prep_sql, workload.spec)
        result = run_stream(dep, workload, use_cache=True)
        dump_artifacts(f"replay_cache_seed{seed}", injector)

        assert result.lineage.cache_state is not None
        assert result.ml_recovery_tier == "replay_cache"
        assert_same_model(result.ml_result.model, baseline.ml_result.model)
        tiers = [ev.tier for ev in dep.coordinator.recovery.ml_recovery_events]
        assert tiers == ["replay_cache"]
        assert "replay_query" not in tiers and "full_restart" not in tiers


# --------------------------------------------------------------------------
# Checkpoint-subsystem chaos: corruption and write failures
# --------------------------------------------------------------------------


class TestCheckpointChaos:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_fully_corrupt_checkpoints_degrade_to_fresh_start(self, seed):
        """checkpoint.corrupt at rate 1.0: every snapshot is damaged, every
        load detects it, and the resume restores nothing — training restarts
        from scratch and still matches the fault-free model exactly."""
        base_dep, base_wl = make_dep()
        baseline = run_stream(base_dep, base_wl)

        injector = FaultInjector(
            FaultConfig(seed=seed, kill_train_at=3, checkpoint_corrupt_rate=1.0)
        )
        dep, workload = make_dep(fault_injector=injector, checkpoint_interval=1)
        result = run_stream(dep, workload)
        dump_artifacts(
            f"corrupt_checkpoints_seed{seed}",
            injector,
            dep.ml.checkpoint_store,
            result.lineage.job_id,
        )

        assert result.ml_result.train_attempts == 2
        assert result.ml_result.resumed_from_iteration is None  # nothing restorable
        assert dep.ml.checkpoint_store.corrupt_detected > 0
        assert_same_model(result.ml_result.model, baseline.ml_result.model)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_checkpoint_write_failure_never_fails_a_healthy_run(self, seed):
        base_dep, base_wl = make_dep()
        baseline = run_stream(base_dep, base_wl)

        injector = FaultInjector(
            FaultConfig(seed=seed, checkpoint_write_fail_rate=1.0, max_events=1)
        )
        dep, workload = make_dep(fault_injector=injector, checkpoint_interval=1)
        result = run_stream(dep, workload)
        dump_artifacts(
            f"write_fail_seed{seed}",
            injector,
            dep.ml.checkpoint_store,
            result.lineage.job_id,
        )

        assert result.ml_recovery_tier is None
        assert result.ml_result.train_attempts == 1
        assert dep.ml.checkpoint_store.write_failures == 1
        assert [e.kind for e in injector.events] == ["checkpoint_write_fail"]
        assert_same_model(result.ml_result.model, baseline.ml_result.model)


# --------------------------------------------------------------------------
# Figure 3/4 protection + graceful degradation
# --------------------------------------------------------------------------


class TestFaultFreeInvariance:
    def test_checkpointing_on_leaves_transfer_bytes_untouched(self):
        """Checkpoint traffic rides its own ledger counters: turning the
        subsystem on (with a disabled injector installed, so the guarded
        protocol is active too) changes no fault-free transfer byte total."""
        plain_dep, plain_wl = make_dep()
        before_p = plain_dep.cluster.ledger.snapshot()
        plain = run_stream(plain_dep, plain_wl)
        delta_p = plain_dep.cluster.ledger.delta(
            before_p, plain_dep.cluster.ledger.snapshot()
        )

        dep, workload = make_dep(
            fault_injector=FaultInjector.disabled(), checkpoint_interval=2
        )
        assert dep.coordinator.recovery is not None
        before_g = dep.cluster.ledger.snapshot()
        guarded = run_stream(dep, workload)
        delta_g = dep.cluster.ledger.delta(before_g, dep.cluster.ledger.snapshot())

        assert delta_g["stream.sent"] == delta_p["stream.sent"]
        assert delta_g["ml.ingest"] == delta_p["ml.ingest"]
        assert delta_g.get("ml.replay", 0) == 0
        assert delta_p.get("checkpoint.write", 0) == 0
        assert delta_g["checkpoint.write"] > 0  # the snapshots really happened
        assert guarded.ml_recovery_tier is None
        assert_same_model(guarded.ml_result.model, plain.ml_result.model)


class TestDegradeToDfs:
    def test_degraded_run_matches_fault_free_materialized_model(self):
        """An ML-reader kill (an *ingest* fault — rows lost in flight, so no
        replay tier is sound) with transient channel drops along the way
        exhausts the streaming attempt; ``degrade_to_dfs`` falls back to the
        materialized path and must reproduce the fault-free insql model
        exactly, with the retries visible in the ledger."""
        base_dep, base_wl = make_dep()
        baseline = base_dep.pipeline.run_insql(
            base_wl.prep_sql, base_wl.spec, command="svm_with_sgd", args=SVM_ARGS
        )

        injector = FaultInjector(
            FaultConfig(seed=7, kill_ml_at={0: 5}, send_drop_rate=0.2, max_events=8)
        )
        dep, workload = make_dep(fault_injector=injector)
        result = run_stream(dep, workload, max_attempts=1, degrade_to_dfs=True)
        dump_artifacts("degrade_to_dfs", injector)

        assert result.degraded_from == "insql+stream"
        assert result.approach == "insql"
        kinds = [e.kind for e in injector.events]
        assert "kill_ml" in kinds
        # The transient drops were absorbed by in-place send retries.
        assert dep.coordinator.recovery.summary()["send_retries"] > 0
        assert_same_model(result.ml_result.model, baseline.ml_result.model)
