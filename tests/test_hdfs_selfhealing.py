"""Self-healing storage plane: checksums, failover, repair, ENOSPC ladders."""

import pytest

from repro.cluster.cluster import make_paper_cluster
from repro.cluster.cost import CostLedger
from repro.common.errors import (
    BlockCorruptError,
    BlockError,
    CheckpointError,
    DataNodeDownError,
    HdfsError,
    StorageFullError,
)
from repro.checkpoint.store import CheckpointStore, encode_checkpoint
from repro.faults.injector import FaultConfig, FaultInjector
from repro.hdfs.datanode import DataNode, block_crc
from repro.hdfs.filesystem import DistributedFileSystem
from repro.hdfs.namenode import NameNode
from repro.transfer.buffers import SpillableBuffer

HEAD_IP = "10.0.0.1"  # the head node hosts no DataNode: all reads remote


class FakeClock:
    """Minimal now()-only clock for heartbeat/TTL tests."""

    def __init__(self, t: float = 0.0):
        self.t = t

    def now(self) -> float:
        return self.t


def make_dfs(num_workers: int = 4, **kwargs) -> DistributedFileSystem:
    cluster = make_paper_cluster(num_workers)
    kwargs.setdefault("block_size", 64)
    kwargs.setdefault("replication", 3)
    return DistributedFileSystem(cluster, **kwargs)


# --------------------------------------------------------------- checksums


class TestChecksummedReads:
    def test_corrupt_replica_detected_and_failed_over(self):
        dfs = make_dfs()
        payload = bytes(range(256))
        client = dfs.cluster.workers[0].ip
        dfs.write_bytes("/f", payload, client_ip=client)
        # Rot the client-local replica of every block: the preferred copy.
        for loc in dfs.block_locations("/f"):
            dfs.datanodes[client].corrupt_replica(loc.block_id)
        before = dfs.ledger.snapshot()
        assert dfs.read_bytes("/f", client_ip=client) == payload
        delta = dfs.ledger.delta(before, dfs.ledger.snapshot())
        assert delta.get("dfs.read.failover", 0) >= 1
        assert dfs.namenode.bad_replica_reports >= 1

    def test_bad_replica_dropped_from_block_map(self):
        dfs = make_dfs()
        dfs.write_bytes("/f", b"x" * 64)
        loc = dfs.block_locations("/f")[0]
        victim = loc.hosts[0]
        dfs.datanodes[victim].corrupt_replica(loc.block_id)
        dfs.read_bytes("/f")
        assert victim not in dfs.namenode.block_replicas(loc.block_id)

    def test_all_replicas_corrupt_raises_typed(self):
        dfs = make_dfs()
        dfs.write_bytes("/f", b"y" * 64)
        loc = dfs.block_locations("/f")[0]
        for host in loc.hosts:
            dfs.datanodes[host].corrupt_replica(loc.block_id)
        with pytest.raises(BlockError):
            dfs.read_bytes("/f")

    def test_datanode_down_failover_and_report(self):
        dfs = make_dfs()
        payload = b"z" * 200
        client = dfs.cluster.workers[1].ip
        dfs.write_bytes("/f", payload, client_ip=client)
        dfs.datanodes[client].stop()
        assert dfs.read_bytes("/f", client_ip=client) == payload
        assert not dfs.namenode.is_live(client)
        assert dfs.namenode.dead_datanode_reports >= 1

    def test_direct_read_of_corrupt_replica_is_typed(self):
        dfs = make_dfs()
        dfs.write_bytes("/f", b"q" * 64)
        loc = dfs.block_locations("/f")[0]
        dfs.datanodes[loc.hosts[0]].corrupt_replica(loc.block_id)
        with pytest.raises(BlockCorruptError):
            dfs.datanodes[loc.hosts[0]].read_block(loc.block_id)


# ---------------------------------------------------- read rotation (satellite)


class TestReadRotation:
    def test_remote_net_bytes_invariant_under_rotation_seed(self):
        """Rotation spreads replica choice but never changes the byte bill."""
        totals = []
        for seed in (7, 8, 99):
            dfs = make_dfs(seed=seed)
            dfs.write_bytes("/f", b"r" * 1000, client_ip=dfs.cluster.workers[0].ip)
            before = dfs.ledger.snapshot()
            dfs.read_bytes("/f", client_ip=HEAD_IP)  # head: every block remote
            delta = dfs.ledger.delta(before, dfs.ledger.snapshot())
            totals.append((delta["dfs.read"], delta["dfs.read.remote_net"]))
        assert len(set(totals)) == 1
        assert totals[0] == (1000, 1000)

    def test_rotation_spreads_nonlocal_reads(self):
        dfs = make_dfs()
        dfs.write_bytes("/f", b"s" * 1000)  # ~16 blocks
        with dfs.open("/f", client_ip=HEAD_IP) as reader:
            first_choices = {
                reader._replica_order(loc)[0] for loc in dfs.block_locations("/f")
            }
        assert len(first_choices) > 1, "every non-local read hit one replica"

    def test_rotation_is_deterministic(self):
        orders = []
        for _ in range(2):
            dfs = make_dfs(seed=7)
            dfs.write_bytes("/f", b"d" * 1000)
            with dfs.open("/f", client_ip=HEAD_IP) as reader:
                orders.append(
                    [reader._replica_order(loc) for loc in dfs.block_locations("/f")]
                )
        assert orders[0] == orders[1]

    def test_local_replica_still_preferred(self):
        dfs = make_dfs()
        client = dfs.cluster.workers[2].ip
        dfs.write_bytes("/f", b"l" * 64, client_ip=client)
        before = dfs.ledger.snapshot()
        dfs.read_bytes("/f", client_ip=client)
        delta = dfs.ledger.delta(before, dfs.ledger.snapshot())
        assert delta.get("dfs.read.remote_net", 0) == 0


# --------------------------------------------------- writer abort (satellite)


class TestWriterAbort:
    def test_exception_in_context_cleans_up(self):
        dfs = make_dfs()
        used_before = sum(d.used_bytes() for d in dfs.datanodes.values())
        with pytest.raises(RuntimeError):
            with dfs.create("/partial") as writer:
                writer.write(b"x" * 500)
                raise RuntimeError("mid-write crash")
        assert not dfs.exists("/partial")
        assert sum(d.used_bytes() for d in dfs.datanodes.values()) == used_before
        # The path is reusable after the abort.
        dfs.write_bytes("/partial", b"ok")
        assert dfs.read_bytes("/partial") == b"ok"

    def test_explicit_abort_is_idempotent(self):
        dfs = make_dfs()
        writer = dfs.create("/a")
        writer.write(b"x" * 200)
        writer.abort()
        writer.abort()
        assert not dfs.exists("/a")

    def test_close_after_abort_raises(self):
        dfs = make_dfs()
        writer = dfs.create("/a")
        writer.write(b"x")
        writer.abort()
        with pytest.raises(HdfsError):
            writer.close()


# ----------------------------------------------- idempotent writes (satellite)


class TestIdempotentWriteBlock:
    def test_identical_rewrite_is_noop(self):
        dfs = make_dfs()
        dn = next(iter(dfs.datanodes.values()))
        dn.write_block("b1", b"same")
        dn.write_block("b1", b"same")
        assert dn.used_bytes() == 4
        assert dn.block_count() == 1

    def test_divergent_rewrite_raises(self):
        dfs = make_dfs()
        dn = next(iter(dfs.datanodes.values()))
        dn.write_block("b1", b"one")
        with pytest.raises(BlockError):
            dn.write_block("b1", b"two")

    def test_rewrite_idempotent_even_after_rot(self):
        """Idempotency keys on the recorded checksum, so a rotted stored
        copy still accepts the same logical content as a no-op."""
        dfs = make_dfs()
        dn = next(iter(dfs.datanodes.values()))
        dn.write_block("b1", b"payload!")
        dn.corrupt_replica("b1")
        dn.write_block("b1", b"payload!")  # must not raise


# ------------------------------------------------------- liveness + heartbeats


class TestLiveness:
    def test_heartbeat_ttl_expiry_and_revival(self):
        nn = NameNode(["10.0.0.2", "10.0.0.3"], heartbeat_ttl_s=10.0)
        nn.heartbeat("10.0.0.2", 0.0)
        assert nn.expire_heartbeats(5.0) == []
        assert nn.expire_heartbeats(11.0) == ["10.0.0.2"]
        assert not nn.is_live("10.0.0.2")
        nn.heartbeat("10.0.0.2", 12.0)
        assert nn.is_live("10.0.0.2")

    def test_silent_node_stays_live(self):
        """Deployments that never pump heartbeats must keep working."""
        nn = NameNode(["10.0.0.2"], heartbeat_ttl_s=1.0)
        assert nn.expire_heartbeats(1e9) == []
        assert nn.is_live("10.0.0.2")

    def test_scanner_pump_sweeps_stopped_node(self):
        clock = FakeClock()
        dfs = make_dfs(clock=clock, heartbeat_ttl_s=10.0)
        dfs.write_bytes("/f", b"x" * 200)
        dfs.run_repair_cycle()  # everyone heartbeats at t=0
        victim = dfs.cluster.workers[0].ip
        dfs.datanodes[victim].stop()
        clock.t = 20.0
        report = dfs.run_repair_cycle()
        assert victim in report.expired_datanodes
        assert not dfs.namenode.is_live(victim)

    def test_node_dead_before_first_heartbeat_is_swept(self):
        """A node that dies before ever heartbeating must not stay live
        forever: the first pump seeds its TTL baseline, so it expires one
        TTL after first observation."""
        clock = FakeClock()
        dfs = make_dfs(clock=clock, heartbeat_ttl_s=10.0)
        dfs.write_bytes("/f", b"x" * 200)
        victim = dfs.cluster.workers[0].ip
        dfs.datanodes[victim].stop()  # down before any repair cycle ran
        report = dfs.run_repair_cycle()  # t=0: baseline only, not yet dead
        assert victim not in report.expired_datanodes
        clock.t = 11.0
        report = dfs.run_repair_cycle()
        assert victim in report.expired_datanodes
        assert not dfs.namenode.is_live(victim)
        assert dfs.fsck().summary()["healthy"]


# --------------------------------------------------------- scrub + re-replicate


class TestScannerRepair:
    def test_scrub_repairs_corrupt_replica(self):
        dfs = make_dfs()
        payload = bytes(range(200))
        dfs.write_bytes("/f", payload)
        loc = dfs.block_locations("/f")[0]
        dfs.datanodes[loc.hosts[0]].corrupt_replica(loc.block_id)
        before = dfs.ledger.snapshot()
        report = dfs.repair_until_stable()
        assert report.corrupt_replicas == 1
        assert report.repaired_blocks >= 1
        assert dfs.fsck().healthy
        assert dfs.read_bytes("/f") == payload
        delta = dfs.ledger.delta(before, dfs.ledger.snapshot())
        assert delta.get("dfs.scan.corrupt") == 1
        assert delta.get("dfs.repair.blocks", 0) >= 1

    def test_dead_node_re_replicated(self):
        clock = FakeClock()
        dfs = make_dfs(clock=clock, heartbeat_ttl_s=5.0)
        payload = b"k" * 500
        dfs.write_bytes("/f", payload)
        dfs.run_repair_cycle()
        victim = dfs.cluster.workers[1].ip
        dfs.datanodes[victim].stop()
        clock.t = 10.0
        report = dfs.repair_until_stable()
        assert report.healthy
        fsck = dfs.fsck()
        assert fsck.healthy
        # Every block now has 3 healthy replicas on *live* nodes.
        for loc in dfs.block_locations("/f"):
            live = [h for h in loc.hosts if dfs.namenode.is_live(h)]
            assert len(live) >= 3
        assert dfs.read_bytes("/f") == payload

    def test_unrecoverable_block_reported_not_hidden(self):
        dfs = make_dfs()
        dfs.write_bytes("/f", b"u" * 64)
        loc = dfs.block_locations("/f")[0]
        for host in loc.hosts:
            dfs.datanodes[host].corrupt_replica(loc.block_id)
        report = dfs.repair_until_stable()
        assert loc.block_id in report.unrecoverable_blocks
        assert loc.block_id in dfs.fsck().missing_blocks

    def test_decommission_drains_node(self):
        dfs = make_dfs()
        dfs.write_bytes("/f", b"d" * 500)
        victim = dfs.cluster.workers[0].ip
        dfs.decommission(victim)
        report = dfs.repair_until_stable()
        assert report.healthy
        for loc in dfs.block_locations("/f"):
            live = [h for h in loc.hosts if dfs.namenode.is_live(h)]
            assert victim not in live
            assert len(live) >= 3

    def test_fault_free_scan_charges_only_scan_counters(self):
        dfs = make_dfs()
        dfs.write_bytes("/f", b"h" * 300)
        before = dfs.ledger.snapshot()
        report = dfs.run_repair_cycle()
        assert report.corrupt_replicas == 0 and report.repaired_blocks == 0
        delta = dfs.ledger.delta(before, dfs.ledger.snapshot())
        charged = {k for k, v in delta.items() if v}
        assert charged <= {"dfs.scan.bytes", "dfs.scan.blocks"}


# ------------------------------------------------------- placement edge cases


class TestPlacementEdgeCases:
    def test_replication_exceeding_live_nodes_is_capped(self):
        dfs = make_dfs(num_workers=4)
        for ip in [w.ip for w in dfs.cluster.workers[:2]]:
            dfs.namenode.report_dead_datanode(ip)
        dfs.write_bytes("/f", b"x" * 64)
        loc = dfs.block_locations("/f")[0]
        assert len(loc.hosts) == 2
        assert all(dfs.namenode.is_live(h) for h in loc.hosts)
        # target adapts: min(3 wanted, 2 live) -> not under-replicated
        assert dfs.namenode.under_replicated() == []

    def test_placement_skips_decommissioned_node(self):
        dfs = make_dfs()
        victim = dfs.cluster.workers[0].ip
        dfs.decommission(victim)
        dfs.write_bytes("/f", b"x" * 500)
        for loc in dfs.block_locations("/f"):
            assert victim not in loc.hosts

    def test_no_live_datanodes_raises_typed(self):
        dfs = make_dfs(num_workers=2)
        for w in dfs.cluster.workers:
            dfs.namenode.report_dead_datanode(w.ip)
        with pytest.raises(HdfsError):
            dfs.write_bytes("/f", b"x")

    def test_placement_is_seed_deterministic(self):
        placements = []
        for _ in range(2):
            dfs = make_dfs(seed=13)
            for i in range(5):
                dfs.write_bytes(f"/f{i}", b"p" * 200)
            placements.append(
                [
                    loc.hosts
                    for i in range(5)
                    for loc in dfs.block_locations(f"/f{i}")
                ]
            )
        assert placements[0] == placements[1]

    def test_recommission_restores_placement(self):
        dfs = make_dfs(num_workers=2)
        victim = dfs.cluster.workers[0].ip
        dfs.decommission(victim)
        dfs.recommission(victim)
        dfs.write_bytes("/f", b"x" * 64)
        assert victim in dfs.block_locations("/f")[0].hosts


# ---------------------------------------------------------- capacity + ENOSPC


class TestCapacity:
    def test_full_datanode_raises_typed(self):
        cluster = make_paper_cluster(2)
        dfs = DistributedFileSystem(
            cluster, block_size=64, replication=2, capacity_bytes=100
        )
        with pytest.raises(StorageFullError):
            dfs.write_bytes("/big", b"x" * 200)

    def test_delete_releases_capacity(self):
        cluster = make_paper_cluster(2)
        dfs = DistributedFileSystem(
            cluster, block_size=64, replication=2, capacity_bytes=100
        )
        dfs.write_bytes("/a", b"x" * 80)
        with pytest.raises(StorageFullError):
            dfs.write_bytes("/b", b"x" * 80)
        dfs.delete("/a")
        assert all(d.used_bytes() == 0 for d in dfs.datanodes.values())
        dfs.write_bytes("/b", b"x" * 80)
        assert dfs.read_bytes("/b") == b"x" * 80

    def test_enospc_redirects_replica_to_spare_node(self):
        """One full node costs a redirect, not the write."""
        dfs = make_dfs(num_workers=4, replication=3, capacity_bytes=1000)
        spare_room = {ip: dn for ip, dn in dfs.datanodes.items()}
        victim = dfs.cluster.workers[0].ip
        # Pre-fill the victim so the next replica targeting it bounces.
        spare_room[victim].write_block("filler", b"x" * 990)
        before = dfs.ledger.snapshot()
        dfs.write_bytes("/f", b"y" * 64, client_ip=victim)
        delta = dfs.ledger.delta(before, dfs.ledger.snapshot())
        assert delta.get("dfs.write.redirect", 0) >= 1
        loc = dfs.block_locations("/f")[0]
        assert victim not in loc.hosts
        assert len(loc.hosts) == 3
        assert dfs.read_bytes("/f") == b"y" * 64


# -------------------------------------------- ENOSPC ladders: spill + checkpoint


class TestSpillEnospcLadder:
    def _make_buffer(self, tmp_path, rate: float):
        ledger = CostLedger()
        injector = FaultInjector(FaultConfig(dfs_enospc_rate=rate))
        buf = SpillableBuffer(
            capacity_bytes=8,
            spill_path=str(tmp_path / "spill.bin"),
            ledger=ledger,
            injector=injector,
        )
        return buf, ledger

    def test_spill_enospc_degrades_to_memory_fifo(self, tmp_path):
        buf, ledger = self._make_buffer(tmp_path, rate=1.0)
        items = [f"item-{i}".encode() for i in range(10)]
        for item in items:
            buf.put(item)
        buf.close()
        assert [buf.get(timeout=1.0) for _ in range(10)] == items
        assert buf.get(timeout=1.0) is None
        assert ledger.snapshot().get("stream.spill_enospc", 0) >= 1

    def test_no_enospc_no_counter(self, tmp_path):
        buf, ledger = self._make_buffer(tmp_path, rate=0.0)
        for i in range(10):
            buf.put(f"item-{i}".encode())
        buf.close()
        drained = []
        while (item := buf.get(timeout=1.0)) is not None:
            drained.append(item)
        assert len(drained) == 10
        assert "stream.spill_enospc" not in ledger.snapshot()


class TestCheckpointEnospcLadder:
    def _make_store(self, capacity: int) -> CheckpointStore:
        cluster = make_paper_cluster(2)
        dfs = DistributedFileSystem(
            cluster, block_size=4096, replication=2, capacity_bytes=capacity
        )
        return CheckpointStore(dfs, ledger=dfs.ledger)

    def test_save_prunes_old_versions_and_retries(self):
        state = {"algorithm": "svm", "weights": [0.0] * 8, "iteration": 1}
        blob = len(encode_checkpoint(state))
        store = self._make_store(capacity=int(blob * 2.5))
        assert store.save("job", state) == 1
        assert store.save("job", state) == 2
        version = store.save("job", state)  # full: prunes v1, retries
        assert version == 3
        assert store.versions("job") == [2, 3]
        assert store.enospc_prunes == 1
        loaded, latest = store.load_latest("job")
        assert latest == 3 and loaded["algorithm"] == "svm"

    def test_save_escalates_typed_when_nothing_to_prune(self):
        state = {"algorithm": "svm", "weights": [0.0] * 8, "iteration": 1}
        blob = len(encode_checkpoint(state))
        store = self._make_store(capacity=blob // 2)
        with pytest.raises(CheckpointError):
            store.save("job", state)
        assert store.write_failures == 1
        assert store.versions("job") == []


# ----------------------------------------------------------- injected sites


class TestInjectedStorageFaults:
    def test_replica_corrupt_rate_one_read_is_typed(self):
        cluster = make_paper_cluster()
        injector = FaultInjector(FaultConfig(dfs_replica_corrupt_rate=1.0))
        dfs = DistributedFileSystem(
            cluster, block_size=64, replication=3, fault_injector=injector
        )
        dfs.write_bytes("/f", b"x" * 64)
        with pytest.raises(BlockError):
            dfs.read_bytes("/f")
        assert any(e.kind == "replica_corrupt" for e in injector.events)
        # The scanner repairs nothing (no healthy source) but stays typed.
        report = dfs.repair_until_stable()
        assert report.unrecoverable_blocks

    def test_read_error_rate_one_is_typed(self):
        cluster = make_paper_cluster()
        injector = FaultInjector(FaultConfig(dfs_read_error_rate=1.0))
        dfs = DistributedFileSystem(
            cluster, block_size=64, replication=3, fault_injector=injector
        )
        dfs.write_bytes("/f", b"x" * 64)
        with pytest.raises(BlockError):
            dfs.read_bytes("/f")
        assert any(e.kind == "dfs_read_error" for e in injector.events)

    def test_datanode_kill_one_shot_survivable(self):
        cluster = make_paper_cluster()
        injector = FaultInjector(
            FaultConfig(dfs_kill_datanode=0, dfs_kill_datanode_after=0)
        )
        dfs = DistributedFileSystem(
            cluster, block_size=64, replication=3, fault_injector=injector
        )
        payload = b"k" * 300
        dfs.write_bytes("/f", payload)
        assert dfs.read_bytes("/f") == payload
        assert not dfs.datanodes[dfs.cluster.workers[0].ip].alive
        assert any(e.kind == "datanode_down" for e in injector.events)

    def test_disarmed_ledger_has_no_selfheal_counters(self):
        """Fault-free runs never see the armed-only counters, so the
        Figure 3/4 ledgers stay bit-identical to the seed."""
        dfs = make_dfs()
        dfs.write_bytes("/f", b"x" * 500, client_ip=dfs.cluster.workers[0].ip)
        dfs.read_bytes("/f", client_ip=HEAD_IP)
        armed_only = (
            "dfs.read.failover",
            "dfs.write.redirect",
            "dfs.scan.",
            "dfs.repair.",
            "stream.spill_enospc",
            "checkpoint.enospc_prune",
        )
        for key in dfs.ledger.snapshot():
            assert not any(key.startswith(p) or key == p for p in armed_only), key
