"""Cluster topology and cost-ledger behaviour."""

import threading

import pytest

from repro.cluster.cluster import Cluster, make_paper_cluster
from repro.cluster.cost import (
    CostLedger,
    CostModel,
    StageCost,
    paper_cost_model,
    pipelined,
    sequential,
)
from repro.cluster.node import Disk, Node


class TestTopology:
    def test_paper_cluster_shape(self):
        cluster = make_paper_cluster()
        assert len(cluster) == 5
        assert cluster.head.hostname == "head"
        assert len(cluster.workers) == 4
        assert all(n.cores == 12 for n in cluster.nodes)
        assert all(len(n.disks) == 12 for n in cluster.nodes)

    def test_unique_ips(self):
        cluster = make_paper_cluster(8)
        ips = [n.ip for n in cluster.nodes]
        assert len(set(ips)) == len(ips)

    def test_node_lookup(self):
        cluster = make_paper_cluster()
        node = cluster.workers[2]
        assert cluster.node_by_ip(node.ip) is node
        assert cluster.node_by_id(node.node_id) is node

    def test_unknown_ip_raises(self):
        cluster = make_paper_cluster()
        with pytest.raises(KeyError):
            cluster.node_by_ip("1.2.3.4")

    def test_locality(self):
        cluster = make_paper_cluster()
        a, b = cluster.workers[0], cluster.workers[1]
        assert cluster.is_local(a.ip, a.ip)
        assert not cluster.is_local(a.ip, b.ip)

    def test_empty_cluster_rejected(self):
        with pytest.raises(ValueError):
            Cluster([])

    def test_duplicate_ids_rejected(self):
        nodes = [Node(1, "a", "10.0.0.1"), Node(1, "b", "10.0.0.2")]
        with pytest.raises(ValueError):
            Cluster(nodes)

    def test_duplicate_ips_rejected(self):
        nodes = [Node(1, "a", "10.0.0.1"), Node(2, "b", "10.0.0.1")]
        with pytest.raises(ValueError):
            Cluster(nodes)

    def test_disk_aggregate_bandwidth(self):
        node = Node(0, "n", "10.0.0.9", disks=(Disk(100.0, 50.0), Disk(200.0, 70.0)))
        assert node.disk_read_bps == 300.0
        assert node.disk_write_bps == 120.0


class TestCostLedger:
    def test_add_and_get(self):
        ledger = CostLedger()
        ledger.add("dfs.read", 100)
        ledger.add("dfs.read", 50)
        assert ledger.get("dfs.read") == 150
        assert ledger.get("never.seen") == 0

    def test_negative_rejected(self):
        ledger = CostLedger()
        with pytest.raises(ValueError):
            ledger.add("x", -1)

    def test_snapshot_and_delta(self):
        ledger = CostLedger()
        ledger.add("a", 10)
        before = ledger.snapshot()
        ledger.add("a", 5)
        ledger.add("b", 7)
        delta = CostLedger.delta(before, ledger.snapshot())
        assert delta == {"a": 5, "b": 7}

    def test_reset(self):
        ledger = CostLedger()
        ledger.add("a", 10)
        ledger.reset()
        assert ledger.get("a") == 0

    def test_thread_safety(self):
        ledger = CostLedger()

        def worker():
            for _ in range(10_000):
                ledger.add("hits", 1)

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert ledger.get("hits") == 80_000


class TestCostModel:
    def test_paper_ml_ingest_calibration(self):
        """The one absolute number the paper gives: 5.6 GB from HDFS ~ 46 s."""
        cost = paper_cost_model()
        assert 40.0 <= cost.ml_hdfs_ingest_time(5.6e9) <= 52.0

    def test_scan_time_linear(self):
        cost = paper_cost_model()
        assert cost.sql_scan_time(2e9) == pytest.approx(2 * cost.sql_scan_time(1e9))

    def test_distinct_pass_faster_than_scan(self):
        cost = paper_cost_model()
        assert cost.distinct_pass_time(1e9) < cost.sql_scan_time(1e9)

    def test_mr_pass_includes_startup(self):
        cost = paper_cost_model()
        assert cost.mr_pass_time(0, 0) == cost.mr_job_startup_s

    def test_stream_ingest_beats_hdfs_ingest(self):
        """Pre-parsed streamed rows ingest faster than text from the DFS —
        the mechanism behind the paper's 43 s saving."""
        cost = paper_cost_model()
        nbytes = 5.6e9
        assert cost.ml_stream_ingest_time(nbytes) < cost.ml_hdfs_ingest_time(nbytes)

    def test_custom_model_overrides(self):
        cost = CostModel(sql_scan_bps=1e9)
        assert cost.sql_scan_time(1e9) == 1.0


class TestStageComposition:
    def test_sequential_sums(self):
        combined = sequential(
            "s", [StageCost("a", 10.0), StageCost("b", 5.0), StageCost("c", 2.5)]
        )
        assert combined.seconds == 17.5

    def test_pipelined_takes_bottleneck(self):
        combined = pipelined("p", [StageCost("a", 10.0), StageCost("b", 25.0)])
        assert combined.seconds == 25.0
        assert "b" in combined.detail

    def test_empty_pipelined(self):
        assert pipelined("p", []).seconds == 0.0

    def test_sequential_carries_boundary_bytes(self):
        combined = sequential(
            "s",
            [
                StageCost("a", 1.0, bytes_in=100, bytes_out=50),
                StageCost("b", 1.0, bytes_in=50, bytes_out=10),
            ],
        )
        assert combined.bytes_in == 100
        assert combined.bytes_out == 10
