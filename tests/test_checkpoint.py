"""Unit tests for the §6 checkpoint store: format, atomicity, versioning."""

import numpy as np
import pytest

from repro.checkpoint import CheckpointStore, TrainCheckpointer
from repro.checkpoint.store import decode_checkpoint, encode_checkpoint
from repro.cluster.cluster import make_paper_cluster
from repro.common.errors import CheckpointCorruptError, CheckpointError
from repro.faults import FaultConfig, FaultInjector
from repro.hdfs.filesystem import DistributedFileSystem


@pytest.fixture()
def dfs():
    cluster = make_paper_cluster(2)
    return cluster, DistributedFileSystem(cluster, block_size=64 * 1024, replication=2)


def make_store(dfs_fixture, **kwargs):
    cluster, fs = dfs_fixture
    kwargs.setdefault("ledger", cluster.ledger)
    return CheckpointStore(fs, base_dir="/checkpoints", **kwargs)


STATE = {
    "algorithm": "svm",
    "iteration": 3,
    "weights": np.array([1.5, -2.25, 0.0]),
    "intercept": 0.125,
}


class TestFormat:
    def test_roundtrip(self):
        decoded = decode_checkpoint(encode_checkpoint(STATE))
        assert decoded["algorithm"] == "svm"
        assert decoded["iteration"] == 3
        assert np.array_equal(decoded["weights"], STATE["weights"])

    def test_truncated_blob_detected(self):
        blob = encode_checkpoint(STATE)
        with pytest.raises(CheckpointCorruptError, match="truncated"):
            decode_checkpoint(blob[:10])
        with pytest.raises(CheckpointCorruptError, match="payload length"):
            decode_checkpoint(blob[:-1])

    def test_bad_magic_detected(self):
        blob = b"XXXX" + encode_checkpoint(STATE)[4:]
        with pytest.raises(CheckpointCorruptError, match="magic"):
            decode_checkpoint(blob)

    def test_flipped_payload_byte_detected(self):
        blob = bytearray(encode_checkpoint(STATE))
        blob[-1] ^= 0xFF
        with pytest.raises(CheckpointCorruptError, match="checksum"):
            decode_checkpoint(bytes(blob))

    def test_unsupported_format_version_detected(self):
        blob = bytearray(encode_checkpoint(STATE))
        blob[5] = 99  # the >H format-version field
        with pytest.raises(CheckpointCorruptError, match="format"):
            decode_checkpoint(bytes(blob))


class TestStore:
    def test_save_load_roundtrip(self, dfs):
        store = make_store(dfs)
        version = store.save("job1", STATE)
        assert version == 1
        loaded = store.load("job1", version)
        assert np.array_equal(loaded["weights"], STATE["weights"])
        assert loaded["intercept"] == STATE["intercept"]

    def test_versions_increase_monotonically(self, dfs):
        store = make_store(dfs)
        for expected in (1, 2, 3):
            assert store.save("job1", dict(STATE, iteration=expected)) == expected
        assert store.versions("job1") == [1, 2, 3]
        state, version = store.load_latest("job1")
        assert version == 3
        assert state["iteration"] == 3

    def test_jobs_are_isolated(self, dfs):
        store = make_store(dfs)
        store.save("job_a", dict(STATE, iteration=1))
        store.save("job_b", dict(STATE, iteration=9))
        assert store.load_latest("job_a")[0]["iteration"] == 1
        assert store.load_latest("job_b")[0]["iteration"] == 9
        store.delete_job("job_a")
        assert store.load_latest("job_a") is None
        assert store.versions("job_b") == [1]

    def test_load_latest_falls_back_past_corrupt_newest(self, dfs):
        cluster, fs = dfs
        store = make_store(dfs)
        store.save("job1", dict(STATE, iteration=1))
        store.save("job1", dict(STATE, iteration=2))
        # Damage the newest committed file in place.
        path = "/checkpoints/job1/ckpt-000002.bin"
        blob = bytearray(fs.read_bytes(path))
        blob[-1] ^= 0xFF
        fs.delete(path)
        fs.write_bytes(path, bytes(blob))
        state, version = store.load_latest("job1")
        assert version == 1
        assert state["iteration"] == 1
        assert store.corrupt_detected == 1

    def test_all_corrupt_returns_none(self, dfs):
        injector = FaultInjector(FaultConfig(seed=0, checkpoint_corrupt_rate=1.0))
        store = make_store(dfs, injector=injector)
        store.save("job1", STATE)
        assert store.load_latest("job1") is None
        assert store.corrupt_detected == 1
        assert injector.counts["checkpoint_corrupt"] == 1

    def test_injected_write_failure_never_commits_partials(self, dfs):
        cluster, fs = dfs
        injector = FaultInjector(
            FaultConfig(seed=0, checkpoint_write_fail_rate=1.0, max_events=1)
        )
        store = make_store(dfs, injector=injector)
        with pytest.raises(CheckpointError):
            store.save("job1", dict(STATE, iteration=1))
        # The failed commit is invisible: no committed version exists, and
        # the orphaned tmp never shows up as a loadable checkpoint.
        assert store.versions("job1") == []
        assert store.load_latest("job1") is None
        assert store.write_failures == 1
        assert fs.exists("/checkpoints/job1/ckpt-000001.bin.tmp")
        # The next save (event budget spent) reclaims the stale tmp and
        # commits normally.
        assert store.save("job1", dict(STATE, iteration=1)) == 1
        assert store.load_latest("job1")[0]["iteration"] == 1
        assert not fs.exists("/checkpoints/job1/ckpt-000001.bin.tmp")

    def test_ledger_charges_dedicated_categories(self, dfs):
        cluster, _fs = dfs
        store = make_store(dfs)
        store.save("job1", STATE)
        store.load_latest("job1")
        assert cluster.ledger.get("checkpoint.write") > 0
        assert cluster.ledger.get("checkpoint.read") > 0
        assert store.bytes_written == cluster.ledger.get("checkpoint.write")
        assert store.bytes_read == cluster.ledger.get("checkpoint.read")

    def test_export_returns_committed_blobs(self, dfs):
        store = make_store(dfs)
        store.save("job1", dict(STATE, iteration=1))
        store.save("job1", dict(STATE, iteration=2))
        blobs = store.export("job1")
        assert sorted(blobs) == ["ckpt-000001.bin", "ckpt-000002.bin"]
        assert decode_checkpoint(blobs["ckpt-000002.bin"])["iteration"] == 2


class TestTrainCheckpointer:
    def test_interval_gates_saves(self, dfs):
        store = make_store(dfs)
        ckpt = TrainCheckpointer("job1", store=store, interval=2)
        produced = []

        def state_fn(t):
            def make():
                produced.append(t)
                return dict(STATE, iteration=t)

            return make

        for t in range(1, 6):
            ckpt.iteration_done(t, state_fn(t))
        assert produced == [2, 4]  # state_fn only invoked when a save is due
        assert ckpt.saves == 2
        assert store.load_latest("job1")[0]["iteration"] == 4

    def test_restore_guards_algorithm_tag(self, dfs):
        store = make_store(dfs)
        ckpt = TrainCheckpointer("job1", store=store, interval=1)
        ckpt.iteration_done(1, lambda: dict(STATE, iteration=1))
        assert ckpt.restore("kmeans") is None  # saved state is tagged "svm"
        restored = ckpt.restore("svm")
        assert restored["iteration"] == 1
        assert ckpt.restored_iteration == 1

    def test_storeless_checkpointer_cannot_resume(self):
        ckpt = TrainCheckpointer("job1", store=None, interval=1)
        assert not ckpt.can_resume
        ckpt.iteration_done(1, lambda: STATE)  # must not raise
        assert ckpt.restore("svm") is None

    def test_write_failures_are_swallowed_and_counted(self, dfs):
        injector = FaultInjector(
            FaultConfig(seed=0, checkpoint_write_fail_rate=1.0, max_events=1)
        )
        store = make_store(dfs, injector=injector)
        ckpt = TrainCheckpointer("job1", store=store, interval=1)
        ckpt.iteration_done(1, lambda: dict(STATE, iteration=1))  # injected fail
        ckpt.iteration_done(2, lambda: dict(STATE, iteration=2))  # commits
        assert ckpt.save_failures == 1
        assert ckpt.saves == 1
        assert store.load_latest("job1")[0]["iteration"] == 2
