"""Dummy coding (§2.2) and the effect/orthogonal contrast codings."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.common.errors import ExecutionError
from repro.sql.types import DataType, Schema
from repro.transform import (
    DummyCodeUDF,
    EffectCodeUDF,
    LocalDistinctUDF,
    OrthogonalCodeUDF,
    RecodeMap,
    RecodeUDF,
    TransformService,
)
from repro.transform.dummy import indicator_column_name
from repro.transform.effect import effect_row, orthogonal_contrast_matrix


@pytest.fixture()
def coded_engine(engine):
    transforms = TransformService()
    engine.register_table_udf(LocalDistinctUDF())
    engine.register_table_udf(RecodeUDF(transforms))
    engine.register_table_udf(DummyCodeUDF(transforms))
    engine.register_table_udf(EffectCodeUDF(transforms))
    engine.register_table_udf(OrthogonalCodeUDF(transforms))
    transforms.register(
        "m",
        RecodeMap.from_distinct_rows(
            [("gender", "F"), ("gender", "M"), ("size", "L"), ("size", "M"), ("size", "S")]
        ),
    )
    return engine, transforms


class TestDummyCoding:
    def test_paper_figure1c(self, coded_engine):
        """Figure 1(c): recoded gender expands to (female, male) indicators."""
        engine, _ = coded_engine
        engine.create_table(
            "t",
            Schema.of(("age", DataType.INT), ("gender", DataType.INT), ("amount", DataType.DOUBLE)),
            [(57, 1, 142.65), (40, 2, 299.99), (35, 1, 18.00)],
        )
        rows = engine.query_rows(
            "SELECT * FROM TABLE(dummy_code(t, 'm', 'gender')) AS d ORDER BY age DESC"
        )
        assert rows == [
            (57, 1, 0, 142.65),
            (40, 0, 1, 299.99),
            (35, 1, 0, 18.00),
        ]

    def test_output_column_names(self, coded_engine):
        engine, _ = coded_engine
        engine.create_table("g", Schema.of(("gender", DataType.INT)), [(1,)])
        plan = engine.plan("SELECT * FROM TABLE(dummy_code(g, 'm', 'gender')) AS d")
        assert plan.schema.names == ["gender_F", "gender_M"]

    def test_three_level_expansion(self, coded_engine):
        engine, _ = coded_engine
        engine.create_table("s", Schema.of(("size", DataType.INT)), [(1,), (2,), (3,)])
        rows = engine.query_rows("SELECT * FROM TABLE(dummy_code(s, 'm', 'size')) AS d")
        assert sorted(rows) == [(0, 0, 1), (0, 1, 0), (1, 0, 0)]

    def test_null_becomes_all_zero(self, coded_engine):
        engine, _ = coded_engine
        engine.create_table("n", Schema.of(("gender", DataType.INT)), [(None,)])
        rows = engine.query_rows("SELECT * FROM TABLE(dummy_code(n, 'm', 'gender')) AS d")
        assert rows == [(0, 0)]

    def test_unrecoded_value_rejected(self, coded_engine):
        engine, _ = coded_engine
        engine.create_table("bad", Schema.of(("gender", DataType.INT)), [(7,)])
        with pytest.raises(ExecutionError, match="recode the column first"):
            engine.query_rows("SELECT * FROM TABLE(dummy_code(bad, 'm', 'gender')) AS d")

    def test_indicator_name_mangling(self):
        assert indicator_column_name("ch", "web site") == "ch_web_site"
        assert indicator_column_name("c", "a-b") == "c_a_b"

    @settings(max_examples=25, deadline=None)
    @given(codes=st.lists(st.integers(1, 4), min_size=1, max_size=30))
    def test_exactly_one_hot(self, codes):
        """Property: each output row has exactly one 1 among K indicators."""
        transforms = TransformService()
        transforms.register(
            "k4",
            RecodeMap.from_distinct_rows([("c", v) for v in ["p", "q", "r", "s"]]),
        )
        udf = DummyCodeUDF(transforms)
        schema = Schema.of(("c", DataType.INT))
        from repro.sql.udf import UdfContext
        from repro.cluster.cluster import make_paper_cluster

        cluster = make_paper_cluster()
        ctx = UdfContext(0, 1, cluster.workers[0], cluster.ledger)
        out = list(udf.process_partition([(c,) for c in codes], schema, ("k4", "c"), ctx))
        for code, row in zip(codes, out):
            assert sum(row) == 1
            assert row[code - 1] == 1


class TestEffectCoding:
    def test_reference_level_all_minus_one(self):
        assert effect_row(1, 3) == [1, 0]
        assert effect_row(2, 3) == [0, 1]
        assert effect_row(3, 3) == [-1, -1]

    def test_through_sql(self, coded_engine):
        engine, _ = coded_engine
        engine.create_table("s", Schema.of(("size", DataType.INT)), [(1,), (2,), (3,)])
        rows = engine.query_rows(
            "SELECT * FROM TABLE(effect_code(s, 'm', 'size')) AS e"
        )
        assert sorted(rows) == [(-1, -1), (0, 1), (1, 0)]

    def test_null_propagates(self, coded_engine):
        engine, _ = coded_engine
        engine.create_table("n", Schema.of(("size", DataType.INT)), [(None,)])
        rows = engine.query_rows("SELECT * FROM TABLE(effect_code(n, 'm', 'size')) AS e")
        assert rows == [(None, None)]

    def test_columns_sum_to_zero_over_levels(self):
        """Effect coding's defining property: each contrast sums to zero
        across the K levels."""
        for k in (2, 3, 5, 8):
            matrix = np.array([effect_row(code, k) for code in range(1, k + 1)])
            assert np.all(matrix.sum(axis=0) == 0)


class TestOrthogonalCoding:
    @pytest.mark.parametrize("k", [2, 3, 4, 6, 9])
    def test_contrast_matrix_properties(self, k):
        matrix = orthogonal_contrast_matrix(k)
        assert matrix.shape == (k, k - 1)
        # Columns orthogonal to the constant vector (zero-sum)...
        assert np.allclose(matrix.sum(axis=0), 0.0, atol=1e-10)
        # ...mutually orthonormal...
        gram = matrix.T @ matrix
        assert np.allclose(gram, np.eye(k - 1), atol=1e-10)
        # ...and the linear contrast increases with the level.
        assert matrix[-1, 0] > matrix[0, 0]

    def test_k2_matches_effect_scaled(self):
        matrix = orthogonal_contrast_matrix(2)
        assert np.allclose(matrix[:, 0], [-(2 ** -0.5), 2 ** -0.5])

    def test_needs_two_levels(self):
        with pytest.raises(ExecutionError):
            orthogonal_contrast_matrix(1)

    def test_through_sql(self, coded_engine):
        engine, _ = coded_engine
        engine.create_table("s", Schema.of(("size", DataType.INT)), [(1,), (2,), (3,)])
        rows = engine.query_rows(
            "SELECT * FROM TABLE(orthogonal_code(s, 'm', 'size')) AS o"
        )
        matrix = orthogonal_contrast_matrix(3)
        expected = {tuple(np.round(matrix[c - 1], 10)) for c in (1, 2, 3)}
        got = {tuple(np.round(row, 10)) for row in rows}
        assert got == expected
