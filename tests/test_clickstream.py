"""Clickstream workload: generation, supervised + unsupervised pipelines."""

import numpy as np
import pytest

from repro import make_deployment
from repro.ml import metrics
from repro.workloads.clickstream import generate_clickstream


@pytest.fixture(scope="module")
def clicks():
    deployment = make_deployment(block_size=64 * 1024)
    workload = generate_clickstream(
        deployment.engine, deployment.dfs, num_visitors=300, num_sessions=3_000, seed=2
    )
    deployment.pipeline.byte_scale = workload.byte_scale
    return deployment, workload


class TestGeneration:
    def test_row_counts(self, clicks):
        deployment, wl = clicks
        (visitors,) = deployment.engine.query_rows("SELECT COUNT(*) FROM visitors")
        (sessions,) = deployment.engine.query_rows("SELECT COUNT(*) FROM sessions")
        assert visitors == (300,)
        assert sessions == (3000,)

    def test_referential_integrity(self, clicks):
        deployment, _wl = clicks
        (orphans,) = deployment.engine.query_rows(
            "SELECT COUNT(*) FROM sessions S LEFT JOIN visitors V "
            "ON S.userid = V.userid WHERE V.userid IS NULL"
        )
        assert orphans == (0,)

    def test_device_has_four_levels(self, clicks):
        deployment, _wl = clicks
        (count,) = deployment.engine.query_rows(
            "SELECT COUNT(DISTINCT device) FROM sessions"
        )
        assert count == (4,)

    def test_engagement_scales_with_plan(self, clicks):
        deployment, _wl = clicks
        rows = deployment.engine.query_rows(
            "SELECT V.plan, AVG(S.pages) FROM sessions S, visitors V "
            "WHERE S.userid = V.userid GROUP BY V.plan"
        )
        pages = {plan: avg for plan, avg in rows}
        assert pages["free"] < pages["basic"] < pages["pro"]


class TestSupervisedPipeline:
    def test_bounce_model_learns(self, clicks):
        deployment, wl = clicks
        result = deployment.pipeline.run_insql_stream(
            wl.bounce_sql,
            wl.bounce_spec,
            "decision_tree",
            {"max_depth": 5},
        )
        X, y = result.ml_result.dataset.to_arrays()
        predictions = np.asarray(result.ml_result.model.predict_many(X))
        baseline = max(y.mean(), 1 - y.mean())
        assert metrics.accuracy(y, predictions) > baseline + 0.02

    def test_four_level_dummy_expansion(self, clicks):
        """device (4 levels) expands to 4 indicator columns; plan stays
        recoded (3 codes) since it is recode-only in the spec."""
        deployment, wl = clicks
        result = deployment.pipeline.run_insql_stream(
            wl.bounce_sql, wl.bounce_spec, "noop"
        )
        point = result.ml_result.dataset.first()
        # features: tenure, plan(code), device x4, pages, duration = 8
        assert point.features.shape == (8,)
        indicator_block = point.features[2:6]
        assert sorted(set(indicator_block)) in ([0.0, 1.0], [0.0])
        assert indicator_block.sum() == 1.0


class TestUnsupervisedPipeline:
    def test_segments_recover_plans(self, clicks):
        """k-means over the SQL-prepared features recovers the three plan
        tiers the generator planted."""
        deployment, wl = clicks
        result = deployment.pipeline.run_insql_stream(
            wl.segment_sql, wl.segment_spec, "kmeans",
            {"k": 3, "seed": 4, "n_init": 5},
        )
        model = result.ml_result.model
        # columns: tenure, plan_basic, plan_free, plan_pro, pages, duration
        dominant = {int(np.argmax(center[1:4])) for center in model.centers}
        assert dominant == {0, 1, 2}  # each segment dominated by one plan

    def test_cache_composes_with_unsupervised_spec(self, clicks):
        deployment, wl = clicks
        deployment.pipeline.populate_caches(
            wl.segment_sql, wl.segment_spec, cache_recode_map=True
        )
        cached = deployment.pipeline.run_insql_stream(
            wl.segment_sql, wl.segment_spec, "kmeans", {"k": 2}, use_cache=True
        )
        assert cached.rewrite_kind == "recode_map_cache"
        assert cached.ml_result.model.centers.shape == (2, 6)
