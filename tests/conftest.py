"""Shared fixtures: clusters, file systems, engines, full deployments."""

import pytest

from repro import Deployment, make_deployment
from repro.cluster.cluster import make_paper_cluster
from repro.hdfs.filesystem import DistributedFileSystem
from repro.sql.engine import BigSQL
from repro.sql.types import DataType, Schema


@pytest.fixture()
def cluster():
    """The paper topology: 1 head + 4 workers."""
    return make_paper_cluster()


@pytest.fixture()
def dfs(cluster):
    """A DFS with small blocks so files split even at test scale."""
    return DistributedFileSystem(cluster, block_size=1024, replication=3)


@pytest.fixture()
def engine(cluster, dfs):
    """A BigSQL engine attached to the DFS."""
    return BigSQL(cluster, dfs)


@pytest.fixture()
def users_carts(engine):
    """The paper's two tables, tiny and hand-checkable."""
    users_schema = Schema.of(
        ("userid", DataType.BIGINT),
        ("age", DataType.INT),
        ("gender", DataType.VARCHAR),
        ("country", DataType.VARCHAR),
    )
    carts_schema = Schema.of(
        ("cartid", DataType.BIGINT),
        ("userid", DataType.BIGINT),
        ("amount", DataType.DOUBLE),
        ("year", DataType.INT),
        ("abandoned", DataType.VARCHAR),
    )
    engine.create_table(
        "users",
        users_schema,
        [
            (1, 57, "F", "USA"),
            (2, 40, "M", "USA"),
            (3, 35, "F", "DE"),
            (4, 25, "M", "USA"),
            (5, 61, "F", "USA"),
        ],
    )
    engine.create_table(
        "carts",
        carts_schema,
        [
            (10, 1, 142.65, 2014, "Yes"),
            (11, 2, 299.99, 2013, "Yes"),
            (12, 3, 18.00, 2014, "No"),
            (13, 1, 7.50, 2014, "No"),
            (14, 4, 55.10, 2012, "No"),
            (15, 5, 120.00, 2014, "Yes"),
            (16, 5, 3.99, 2013, "No"),
        ],
    )
    return engine


@pytest.fixture()
def deployment() -> Deployment:
    """A fully wired deployment (engine + ML + coordinator + pipeline)."""
    return make_deployment(block_size=64 * 1024)
