"""Broker transfer end-to-end: equivalence with streaming, replay, recovery."""

import pytest

from repro import make_deployment
from repro.broker.inputformat import BrokerInputFormat
from repro.iofmt.inputformat import JobConf
from repro.workloads import generate_retail


@pytest.fixture(scope="module")
def retail():
    deployment = make_deployment(block_size=64 * 1024)
    workload = generate_retail(
        deployment.engine, deployment.dfs, num_users=300, num_carts=3_000, seed=21
    )
    deployment.pipeline.byte_scale = workload.byte_scale
    return deployment, workload


def signature(result):
    return sorted(
        (lp.label, tuple(lp.features)) for lp in result.ml_result.dataset.collect()
    )


class TestBrokerPipeline:
    def test_identical_data_to_streaming(self, retail):
        deployment, wl = retail
        stream = deployment.pipeline.run_insql_stream(wl.prep_sql, wl.spec, "noop")
        broker = deployment.pipeline.run_insql_broker(wl.prep_sql, wl.spec, "noop")
        assert signature(stream) == signature(broker)
        assert len(signature(stream)) > 0

    def test_stage_names_and_topic_cleanup(self, retail):
        deployment, wl = retail
        result = deployment.pipeline.run_insql_broker(wl.prep_sql, wl.spec, "noop")
        names = [s.name for s in result.stages]
        assert names == [
            "recode pass 1",
            "prep+trsfm+produce",
            "consume+input",
            "ml train",
        ]
        assert not deployment.broker.topic_exists(result.broker_topic)

    def test_keep_topic_retains_data(self, retail):
        deployment, wl = retail
        result = deployment.pipeline.run_insql_broker(
            wl.prep_sql, wl.spec, "noop", keep_topic=True
        )
        info = deployment.broker.topic_info(result.broker_topic)
        assert info.sealed
        assert info.total_records == result.ml_result.dataset.count()
        deployment.broker.delete_topic(result.broker_topic)

    def test_broker_costs_more_than_streaming(self, retail):
        """The decoupled consume phase is the broker's performance price."""
        deployment, wl = retail
        stream = deployment.pipeline.run_insql_stream(wl.prep_sql, wl.spec, "noop")
        broker = deployment.pipeline.run_insql_broker(wl.prep_sql, wl.spec, "noop")
        assert broker.total_sim_seconds > stream.total_sim_seconds

    def test_replay_by_second_ml_job(self, retail):
        """§8: 'Kafka could also be the system to cache the data' — a second
        ML job re-reads the retained topic under a new consumer group."""
        deployment, wl = retail
        first = deployment.pipeline.run_insql_broker(
            wl.prep_sql, wl.spec, "noop", keep_topic=True
        )
        conf = JobConf(
            {
                "broker.topic": first.broker_topic,
                "broker.group": "second-job",
                "record.format": "raw",
            },
            broker=deployment.broker,
        )
        second = deployment.ml.run_job("noop", {}, BrokerInputFormat(), conf)
        assert second.dataset.count() == first.ml_result.dataset.count()
        deployment.broker.delete_topic(first.broker_topic)

    def test_trains_model_over_broker(self, retail):
        deployment, wl = retail
        result = deployment.pipeline.run_insql_broker(
            wl.prep_sql, wl.spec, "svm_with_sgd", {"iterations": 3}
        )
        assert result.ml_result.model.weights.shape == (4,)

    def test_cache_composes_with_broker(self, retail):
        deployment, wl = retail
        deployment.pipeline.populate_caches(
            wl.prep_sql, wl.spec, cache_recode_map=True, cache_transformed=True
        )
        cached = deployment.pipeline.run_insql_broker(
            wl.prep_sql, wl.spec, "noop", use_cache=True
        )
        assert cached.rewrite_kind == "full_cache"
        plain = deployment.pipeline.run_insql_broker(wl.prep_sql, wl.spec, "noop")
        assert signature(cached) == signature(plain)


class TestAtLeastOnceRecovery:
    def test_failed_consumer_resumes_and_loses_nothing(self):
        """Simulate an ML worker crash mid-consumption: the restarted job
        (same consumer group) resumes from committed offsets and the union
        of processed records covers everything at least once."""
        deployment = make_deployment(block_size=64 * 1024)
        engine = deployment.engine
        from repro.sql.types import DataType, Schema

        engine.create_table(
            "events",
            Schema.of(("id", DataType.BIGINT), ("v", DataType.DOUBLE)),
            [(i, float(i)) for i in range(200)],
        )
        broker = deployment.broker
        broker.create_topic("recovery", 4)
        # batch_rows=1 keeps one record per row so partitions hold multiple
        # poll batches — the crash must land *between* commit points.
        engine.query_rows(
            "SELECT * FROM TABLE(broker_transfer((SELECT id, v FROM events), "
            "'recovery', 1)) AS b"
        )

        from repro.broker.consumer import BrokerConsumer

        processed_before_crash: list[tuple] = []
        for partition in range(4):
            consumer = BrokerConsumer(
                broker, "recovery", partition, group="ml", batch_size=10
            )
            rows, _end = consumer.poll()
            processed_before_crash.extend(rows)
            consumer.commit()  # first batch committed
            rows, _end = consumer.poll()  # second batch processed, NOT committed
            processed_before_crash.extend(rows)
            # crash here: consumer dropped without committing

        conf = JobConf(
            {"broker.topic": "recovery", "broker.group": "ml", "record.format": "raw"},
            broker=broker,
        )
        restarted = deployment.ml.run_job("noop", {}, BrokerInputFormat(), conf)
        after = restarted.dataset.collect()

        all_ids = {row[0] for row in processed_before_crash} | {r[0] for r in after}
        assert all_ids == set(range(200))  # nothing lost
        # the uncommitted second batches were re-delivered: duplicates exist
        redelivered = {row[0] for row in processed_before_crash} & {r[0] for r in after}
        assert redelivered  # at-least-once, not exactly-once
