"""Multi-tenant serving: admission, shared worker pool, mux, isolation."""

import threading
import time

import pytest

from repro import make_deployment
from repro.common.errors import AdmissionError
from repro.faults import FaultConfig, FaultInjector
from repro.transfer.admission import (
    SessionAdmission,
    SpillGovernor,
    WorkerPoolScheduler,
)
from repro.transfer.socket_channel import MuxSocketChannel
from repro.workloads.loadgen import (
    BASE_SEED,
    make_points_table,
    run_closed_loop,
    run_one_session,
    solo_weights,
    verify_against_solo,
)


def loaded_deployment(**kwargs):
    deployment = make_deployment(**kwargs)
    make_points_table(deployment.engine)
    return deployment


# --------------------------------------------------------------------------
# SessionAdmission units
# --------------------------------------------------------------------------


class TestSessionAdmission:
    def test_admits_up_to_cap_then_queues(self):
        gate = SessionAdmission(max_concurrent_sessions=2, timeout_s=5.0)
        assert gate.acquire("a") is True
        assert gate.acquire("b") is True
        assert gate.running_count() == 2

        admitted = threading.Event()

        def third():
            gate.acquire("c")
            admitted.set()

        t = threading.Thread(target=third)
        t.start()
        deadline = time.monotonic() + 2.0
        while gate.queued_count() == 0 and time.monotonic() < deadline:
            time.sleep(0.005)
        assert gate.queued_count() == 1
        assert not admitted.is_set()

        gate.release("a")
        assert admitted.is_set() or admitted.wait(2.0)
        t.join()
        assert gate.running_count() == 2
        assert gate.queued_count() == 0

    def test_acquire_is_idempotent_by_session_id(self):
        gate = SessionAdmission(max_concurrent_sessions=1)
        assert gate.acquire("a") is True
        # The HA create_session retry: same session must not double-charge.
        assert gate.acquire("a") is False
        assert gate.running_count() == 1

    def test_over_quota_tenant_queues_without_disturbing_others(self):
        gate = SessionAdmission(
            max_concurrent_sessions=4, tenant_quotas={"noisy": 1}, timeout_s=5.0
        )
        assert gate.acquire("n1", tenant="noisy") is True

        promoted = threading.Event()
        t = threading.Thread(
            target=lambda: (gate.acquire("n2", tenant="noisy"), promoted.set())
        )
        t.start()
        deadline = time.monotonic() + 2.0
        while gate.queued_count() == 0 and time.monotonic() < deadline:
            time.sleep(0.005)
        # The quiet tenant sails past the queued noisy one (fair skip).
        assert gate.acquire("q1", tenant="quiet") is True
        assert not promoted.is_set()
        assert gate.queue_state()["running"] == {"n1": "noisy", "q1": "quiet"}

        gate.release("n1")
        assert promoted.wait(2.0)
        t.join()
        assert gate.queue_state()["running"] == {"q1": "quiet", "n2": "noisy"}

    def test_full_queue_rejects_with_admission_error(self):
        gate = SessionAdmission(
            max_concurrent_sessions=1, max_queue_depth=1, timeout_s=5.0
        )
        gate.acquire("a")
        t = threading.Thread(target=lambda: gate.acquire("b"))
        t.start()
        deadline = time.monotonic() + 2.0
        while gate.queued_count() == 0 and time.monotonic() < deadline:
            time.sleep(0.005)
        with pytest.raises(AdmissionError, match="queue full"):
            gate.acquire("c")
        assert gate.stats.rejected == 1
        gate.release("a")
        t.join()

    def test_wait_timeout_raises(self):
        gate = SessionAdmission(max_concurrent_sessions=1, timeout_s=0.05)
        gate.acquire("a")
        with pytest.raises(AdmissionError, match="waited"):
            gate.acquire("b")
        assert gate.stats.timeouts == 1
        # The timed-out ticket left the queue; release promotes nobody dead.
        gate.release("a")
        assert gate.acquire("c") is True


# --------------------------------------------------------------------------
# WorkerPoolScheduler units
# --------------------------------------------------------------------------


class TestWorkerPoolScheduler:
    def test_least_held_first_grant(self):
        pool = WorkerPoolScheduler(total_slots=2, timeout_s=5.0)
        pool.acquire_slot("wide")
        pool.acquire_slot("wide")

        order: list[str] = []

        def claim(session):
            pool.acquire_slot(session)
            order.append(session)

        wide = threading.Thread(target=claim, args=("wide",))
        wide.start()
        deadline = time.monotonic() + 2.0
        while pool.waits == 0 and time.monotonic() < deadline:
            time.sleep(0.005)
        narrow = threading.Thread(target=claim, args=("narrow",))
        narrow.start()
        time.sleep(0.05)

        # Free one slot: it must go to the narrow session (holds 0 slots),
        # not the wide one that queued first but already holds 2.
        pool.release_slot("wide")
        narrow.join(2.0)
        assert order == ["narrow"]
        pool.release_slot("narrow")
        wide.join(2.0)
        assert order == ["narrow", "wide"]
        assert pool.waits == 2

    def test_timeout_raises_admission_error(self):
        pool = WorkerPoolScheduler(total_slots=1, timeout_s=0.05)
        pool.acquire_slot("a")
        with pytest.raises(AdmissionError, match="worker slot"):
            pool.acquire_slot("b")
        pool.release_slot("a")


# --------------------------------------------------------------------------
# SpillGovernor units: backpressure isolation
# --------------------------------------------------------------------------


class TestSpillGovernor:
    def test_over_budget_tenant_throttles_only_itself(self):
        governor = SpillGovernor(tenant_budgets={"a": 100, "b": 100}, timeout_s=5.0)
        governor.charge("a", 150)

        # Tenant b is under budget: throttle returns immediately.
        start = time.perf_counter()
        governor.throttle("b")
        assert time.perf_counter() - start < 0.05
        assert governor.throttled == 0

        # Tenant a's sender pauses until a's own reader drains the spill.
        def drain():
            time.sleep(0.05)
            governor.credit("a", 100)

        t = threading.Thread(target=drain)
        t.start()
        governor.throttle("a")
        t.join()
        assert governor.throttled == 1
        assert governor.forced_through == 0
        assert governor.outstanding("a") == 50

    def test_throttle_bound_forces_through(self):
        governor = SpillGovernor(tenant_budgets={"a": 10}, timeout_s=0.05)
        governor.charge("a", 50)
        governor.throttle("a")  # nobody credits: bounded wait, then proceed
        assert governor.forced_through == 1

    def test_unbudgeted_tenant_never_touched(self):
        governor = SpillGovernor(tenant_budgets={"a": 10})
        governor.charge("other", 10**9)
        governor.throttle("other")
        assert governor.throttled == 0


# --------------------------------------------------------------------------
# End-to-end: interleaved sessions over one deployment
# --------------------------------------------------------------------------


class TestMultitenantServing:
    def test_interleaved_sessions_train_identically_to_solo(self):
        loaded = loaded_deployment(max_concurrent_sessions=4)
        report = run_closed_loop(loaded, num_sessions=8, num_clients=8)
        assert not report.failures

        solo = loaded_deployment(max_concurrent_sessions=4)
        baselines = solo_weights(solo, [BASE_SEED + i for i in range(8)])
        assert verify_against_solo(report, baselines)
        # Sessions genuinely interleaved: some had to wait behind the cap.
        assert loaded.cluster.ledger.get("admission.queued") > 0

    def test_over_quota_tenant_queues_while_session_runs_clean(self):
        deployment = loaded_deployment(
            max_concurrent_sessions=4, tenant_quotas={"noisy": 1}
        )
        results = {}

        def run(idx, tenant):
            results[idx] = run_one_session(
                deployment, f"s{idx}", seed=BASE_SEED + idx, tenant=tenant
            )

        threads = [
            threading.Thread(target=run, args=(i, "noisy")) for i in range(3)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        assert all(o.error is None for o in results.values())
        assert deployment.cluster.ledger.get("admission.queued") >= 1
        # Quota honored throughout: never more than 1 noisy session at once.
        assert deployment.coordinator.admission.stats.peak_running <= 4

        solo = loaded_deployment(max_concurrent_sessions=4)
        baselines = solo_weights(solo, [BASE_SEED + i for i in range(3)])
        for i, outcome in results.items():
            assert baselines[BASE_SEED + i] == outcome.weights + (outcome.intercept,)

    def test_socket_sessions_multiplex_one_transport(self):
        deployment = loaded_deployment(
            transport="socket", max_concurrent_sessions=4
        )
        report = run_closed_loop(
            deployment, num_sessions=4, num_clients=4, session_prefix="mux"
        )
        assert not report.failures

        solo = loaded_deployment(transport="socket", max_concurrent_sessions=4)
        baselines = solo_weights(solo, [BASE_SEED + i for i in range(4)])
        assert verify_against_solo(report, baselines)
        # Sessions shared per-SQL-worker mux transports, one per worker.
        assert len(deployment.coordinator._mux_transports) == len(
            deployment.cluster.workers
        )

    def test_socket_mux_channels_are_mux_channels(self):
        deployment = loaded_deployment(
            transport="socket", max_concurrent_sessions=2
        )
        deployment.coordinator.create_session(
            "probe",
            command="noop",
            conf_props={"record.format": "raw"},
        )
        deployment.engine.query_rows(
            "SELECT * FROM TABLE(stream_transfer((SELECT f1, f2, label "
            "FROM points), 'probe')) AS s"
        )
        deployment.coordinator.wait_result("probe")
        session = deployment.coordinator.session("probe")
        assert session.channels
        assert all(
            isinstance(c, MuxSocketChannel) for c in session.channels.values()
        )
        deployment.coordinator.close_session("probe")

    def test_worker_kill_recovers_only_the_affected_session(self):
        injector = FaultInjector(FaultConfig(seed=0, kill_at={1: 50}))
        deployment = make_deployment(
            max_concurrent_sessions=2, fault_injector=injector
        )
        make_points_table(deployment.engine)

        results = {}

        def run(idx):
            sid = f"chaos{idx}"
            deployment.coordinator.create_session(
                sid,
                command="svm_with_sgd",
                args={"iterations": 3, "seed": BASE_SEED + idx},
                conf_props={"record.format": "labeled_csv", "label.index": -1},
            )
            deployment.engine.query_rows(
                "SELECT * FROM TABLE(stream_transfer((SELECT f1, f2, label "
                f"FROM points), '{sid}')) AS s"
            )
            result = deployment.coordinator.wait_result(sid)
            session = deployment.coordinator.session(sid)
            results[idx] = (
                tuple(float(w) for w in result.model.weights)
                + (float(result.model.intercept),),
                len(session.recovery_log),
            )
            deployment.coordinator.close_session(sid)

        threads = [threading.Thread(target=run, args=(i,)) for i in range(2)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        # Both sessions completed despite the kill...
        assert len(results) == 2
        assert injector.counts["kill"] == 1
        # ...and exactly one of them carries the recovery scar.
        assert sorted(scars for _w, scars in results.values()) == [0, 1]

        # Recovery was exactly-once: both match their solo baselines.
        solo = loaded_deployment(max_concurrent_sessions=2)
        baselines = solo_weights(solo, [BASE_SEED, BASE_SEED + 1])
        for i, (weights, _scars) in results.items():
            assert baselines[BASE_SEED + i] == weights

    def test_default_deployment_keeps_ledger_bit_identical(self):
        # Seed behavior: no multi-tenant machinery, no new ledger categories.
        plain = loaded_deployment()
        assert plain.coordinator.admission is None
        assert plain.coordinator.worker_pool is None
        run_one_session(plain, "solo0", seed=BASE_SEED)
        snapshot = plain.cluster.ledger.snapshot()
        for key in snapshot:
            assert not key.startswith(("admission.", "scheduler.", "governor."))

        # Same single-session workload under an admission cap: the stream
        # byte ledgers (what Figures 3/4 report) are untouched.
        capped = loaded_deployment(max_concurrent_sessions=4)
        run_one_session(capped, "solo0", seed=BASE_SEED)
        capped_snapshot = capped.cluster.ledger.snapshot()
        for key in ("stream.sent", "stream.net", "ml.ingest"):
            assert capped_snapshot.get(key) == snapshot.get(key), key
