"""Cache manager: storage, lookup via the §5 rules, invalidation."""

import pytest

from repro.caching.cache import CacheManager
from repro.common.errors import CacheError
from repro.sql.types import DataType, Schema
from repro.transform.recode import RecodeMap
from repro.transform.service import TransformService
from repro.transform.spec import TransformSpec

PREP = (
    "SELECT U.age, U.gender, C.amount, C.abandoned "
    "FROM carts C, users U WHERE C.userid = U.userid AND U.country = 'USA'"
)
SPEC = TransformSpec(recode=("gender", "abandoned"), dummy=("gender",), label="abandoned")


@pytest.fixture()
def cache_env(users_carts):
    transforms = TransformService()
    cache = CacheManager(users_carts, transforms)
    recode_map = RecodeMap.from_distinct_rows(
        [("gender", "F"), ("gender", "M"), ("abandoned", "Yes"), ("abandoned", "No")]
    )
    return users_carts, transforms, cache, recode_map


class TestRecodeMapCache:
    def test_store_and_hit(self, cache_env):
        engine, transforms, cache, recode_map = cache_env
        handle = cache.store_recode_map(PREP, SPEC, recode_map)
        assert transforms.get(handle) is recode_map
        assert cache.lookup_recode_map(PREP, SPEC) == handle
        assert cache.stats.recode_map_hits == 1

    def test_miss_on_unrelated_query(self, cache_env):
        engine, _t, cache, recode_map = cache_env
        cache.store_recode_map(PREP, SPEC, recode_map)
        assert cache.lookup_recode_map("SELECT age FROM users", SPEC) is None
        assert cache.stats.recode_map_misses == 1

    def test_hit_with_extra_conjunct(self, cache_env):
        engine, _t, cache, recode_map = cache_env
        cache.store_recode_map(PREP, SPEC, recode_map)
        follow_up = PREP + " AND C.year = 2014"
        assert cache.lookup_recode_map(follow_up, SPEC) is not None

    def test_uncacheable_query_rejected(self, cache_env):
        engine, _t, cache, recode_map = cache_env
        with pytest.raises(CacheError, match="not cacheable"):
            cache.store_recode_map("SELECT DISTINCT gender FROM users", SPEC, recode_map)


class TestTransformedCache:
    def test_store_and_hit(self, cache_env):
        engine, transforms, cache, recode_map = cache_env
        handle = cache.store_recode_map(PREP, SPEC, recode_map)
        engine.create_materialized_view("v1", PREP)  # stand-in recoded view
        cache.store_transformed(PREP, SPEC, "v1", handle)
        hit = cache.lookup_transformed(PREP, SPEC)
        assert hit is not None
        assert hit.view_name == "v1"
        assert hit.match.extra_predicates == ()

    def test_view_must_exist(self, cache_env):
        engine, _t, cache, recode_map = cache_env
        with pytest.raises(CacheError, match="not in the catalog"):
            cache.store_transformed(PREP, SPEC, "ghost_view", "h")

    def test_spec_compatibility(self, cache_env):
        """A cached recoded view serves a narrower spec, not a wider one."""
        engine, _t, cache, recode_map = cache_env
        handle = cache.store_recode_map(PREP, SPEC, recode_map)
        engine.create_materialized_view("v2", PREP)
        cache.store_transformed(PREP, SPEC, "v2", handle)
        narrower = TransformSpec(recode=("abandoned",), label="abandoned")
        assert cache.lookup_transformed(PREP, narrower) is not None
        wider = TransformSpec(
            recode=("gender", "abandoned", "amount"), label="abandoned"
        )
        assert cache.lookup_transformed(PREP, wider) is None

    def test_counts(self, cache_env):
        engine, _t, cache, recode_map = cache_env
        handle = cache.store_recode_map(PREP, SPEC, recode_map)
        engine.create_materialized_view("v3", PREP)
        cache.store_transformed(PREP, SPEC, "v3", handle)
        assert cache.entry_counts() == (1, 1)


class TestInvalidation:
    def test_insert_invalidates_via_version(self, cache_env):
        """§5 'assuming there is no data update' — an update silently
        invalidates entries built over the old contents."""
        engine, _t, cache, recode_map = cache_env
        cache.store_recode_map(PREP, SPEC, recode_map)
        assert cache.lookup_recode_map(PREP, SPEC) is not None
        engine.insert_rows("users", [(99, 30, "X", "USA")])
        assert cache.lookup_recode_map(PREP, SPEC) is None

    def test_insert_into_unrelated_table_keeps_entry(self, cache_env):
        engine, _t, cache, recode_map = cache_env
        engine.create_table("other", Schema.of(("x", DataType.INT)), [(1,)])
        cache.store_recode_map(PREP, SPEC, recode_map)
        engine.insert_rows("other", [(2,)])
        assert cache.lookup_recode_map(PREP, SPEC) is not None

    def test_explicit_invalidation(self, cache_env):
        engine, _t, cache, recode_map = cache_env
        cache.store_recode_map(PREP, SPEC, recode_map)
        dropped = cache.invalidate_table("carts")
        assert dropped == 1
        assert cache.entry_counts() == (0, 0)
        assert cache.lookup_recode_map(PREP, SPEC) is None

    def test_dropped_base_table_invalidates(self, cache_env):
        engine, _t, cache, recode_map = cache_env
        cache.store_recode_map(PREP, SPEC, recode_map)
        engine.drop_table("carts")
        assert cache.lookup_recode_map(PREP, SPEC) is None
