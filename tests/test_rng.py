"""Deterministic RNG helpers."""

from hypothesis import given, strategies as st

from repro.common.rng import derive_seed, make_rng


def test_make_rng_deterministic():
    a = make_rng(42).integers(0, 1000, size=10)
    b = make_rng(42).integers(0, 1000, size=10)
    assert list(a) == list(b)


def test_make_rng_differs_across_seeds():
    a = make_rng(1).integers(0, 10**9)
    b = make_rng(2).integers(0, 10**9)
    assert a != b


def test_derive_seed_deterministic():
    assert derive_seed(7, "carts", 3) == derive_seed(7, "carts", 3)


def test_derive_seed_varies_with_parts():
    seeds = {
        derive_seed(7),
        derive_seed(7, "carts"),
        derive_seed(7, "users"),
        derive_seed(7, "carts", 0),
        derive_seed(7, "carts", 1),
    }
    assert len(seeds) == 5


@given(st.integers(min_value=0, max_value=2**62), st.integers(min_value=0, max_value=100))
def test_derive_seed_in_valid_range(seed, part):
    child = derive_seed(seed, part)
    assert 0 <= child < 2**31
