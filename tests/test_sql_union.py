"""UNION ALL support."""

import pytest

from repro.common.errors import PlanError
from repro.sql.ast import SelectQuery, UnionAll
from repro.sql.parser import parse
from repro.sql.types import DataType, Schema


@pytest.fixture()
def union_engine(engine):
    engine.create_table(
        "a", Schema.of(("x", DataType.INT), ("s", DataType.VARCHAR)),
        [(1, "a1"), (2, "a2")],
    )
    engine.create_table(
        "b", Schema.of(("y", DataType.INT), ("t", DataType.VARCHAR)),
        [(2, "b2"), (3, "b3")],
    )
    return engine


class TestParsing:
    def test_two_branches(self):
        query = parse("SELECT x FROM a UNION ALL SELECT y FROM b")
        assert isinstance(query, UnionAll)
        assert len(query.branches) == 2
        assert all(isinstance(b, SelectQuery) for b in query.branches)

    def test_single_select_stays_plain(self):
        assert isinstance(parse("SELECT x FROM a"), SelectQuery)

    def test_to_sql_roundtrip(self):
        sql = "SELECT x FROM a UNION ALL SELECT y FROM b UNION ALL SELECT x FROM a"
        query = parse(sql)
        assert parse(query.to_sql()) == query


class TestExecution:
    def test_bag_semantics(self, union_engine):
        rows = union_engine.query_rows(
            "SELECT x FROM a UNION ALL SELECT y FROM b"
        )
        assert sorted(rows) == [(1,), (2,), (2,), (3,)]  # duplicates kept

    def test_schema_from_first_branch(self, union_engine):
        table = union_engine.execute("SELECT x, s FROM a UNION ALL SELECT y, t FROM b")
        assert table.schema.names == ["x", "s"]

    def test_branches_with_filters_and_expressions(self, union_engine):
        rows = union_engine.query_rows(
            "SELECT x * 10 AS v FROM a WHERE x = 1 "
            "UNION ALL SELECT y * 100 AS v FROM b WHERE y = 3"
        )
        assert sorted(rows) == [(10,), (300,)]

    def test_union_feeds_distinct_via_view(self, union_engine):
        union_engine.create_materialized_view(
            "both", "SELECT x FROM a UNION ALL SELECT y FROM b"
        )
        rows = union_engine.query_rows("SELECT DISTINCT x FROM both ORDER BY x")
        assert rows == [(1,), (2,), (3,)]

    def test_arity_mismatch_rejected(self, union_engine):
        with pytest.raises(PlanError, match="columns"):
            union_engine.query_rows("SELECT x, s FROM a UNION ALL SELECT y FROM b")

    def test_type_mismatch_rejected(self, union_engine):
        with pytest.raises(PlanError, match="type mismatch"):
            union_engine.query_rows("SELECT x FROM a UNION ALL SELECT t FROM b")

    def test_explain(self, union_engine):
        text = union_engine.explain("SELECT x FROM a UNION ALL SELECT y FROM b")
        assert "UnionAll(2 branches)" in text
