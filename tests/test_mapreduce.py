"""MapReduce framework: the classic jobs plus accounting and edge cases."""

import pytest

from repro.cluster.cluster import make_paper_cluster
from repro.common.errors import ExecutionError
from repro.hdfs.filesystem import DistributedFileSystem
from repro.mapreduce.framework import MapReduceJob


@pytest.fixture()
def env():
    cluster = make_paper_cluster()
    dfs = DistributedFileSystem(cluster, block_size=256)
    return cluster, dfs


def read_output(dfs, out_dir):
    lines = []
    for path in dfs.list_files(out_dir):
        lines.extend(dfs.read_text(path).splitlines())
    return lines


class TestWordCount:
    def test_counts_are_correct(self, env):
        cluster, dfs = env
        dfs.write_text("/in/doc", "the quick fox\nthe lazy dog\nthe fox\n")

        def mapper(line):
            for word in line.split():
                yield word, 1

        def reducer(word, counts):
            yield f"{word}\t{sum(counts)}"

        job = MapReduceJob("wc", mapper, reducer, num_reducers=3)
        counters = job.run(cluster, dfs, "/in", "/out")
        results = dict(
            line.split("\t") for line in read_output(dfs, "/out")
        )
        assert results == {"the": "3", "quick": "1", "fox": "2", "lazy": "1", "dog": "1"}
        assert counters.map_input_records == 3
        assert counters.map_output_records == 8
        assert counters.reduce_input_groups == 5
        assert counters.output_records == 5

    def test_combiner_reduces_shuffle(self, env):
        cluster, dfs = env
        dfs.write_text("/in/doc", ("word " * 50 + "\n") * 20)

        def mapper(line):
            for word in line.split():
                yield word, 1

        def reducer(word, counts):
            yield f"{word}\t{sum(counts)}"

        def combiner(word, counts):
            yield sum(counts)

        plain = MapReduceJob("wc", mapper, reducer, num_reducers=2)
        combined = MapReduceJob("wcc", mapper, reducer, combiner=combiner, num_reducers=2)
        c1 = plain.run(cluster, dfs, "/in", "/out1")
        c2 = combined.run(cluster, dfs, "/in", "/out2")
        assert read_output(dfs, "/out1") == read_output(dfs, "/out2")
        assert c2.shuffle_bytes < c1.shuffle_bytes

    def test_output_sorted_within_reducer(self, env):
        cluster, dfs = env
        dfs.write_text("/in/doc", "b\na\nc\n")
        job = MapReduceJob(
            "sort",
            mapper=lambda line: [(line, 1)],
            reducer=lambda k, v: [k],
            num_reducers=1,
        )
        job.run(cluster, dfs, "/in", "/out")
        assert read_output(dfs, "/out") == ["a", "b", "c"]


class TestMapOnly:
    def test_values_written(self, env):
        cluster, dfs = env
        dfs.write_text("/in/doc", "1\n2\n3\n")
        job = MapReduceJob(
            "ident", mapper=lambda line: [(line, f"v{line}")], num_reducers=2
        )
        counters = job.run(cluster, dfs, "/in", "/out")
        assert sorted(read_output(dfs, "/out")) == ["v1", "v2", "v3"]
        assert counters.output_records == 3


class TestEdgeCases:
    def test_existing_output_dir_rejected(self, env):
        cluster, dfs = env
        dfs.write_text("/in/doc", "x\n")
        dfs.mkdirs("/out")
        job = MapReduceJob("j", mapper=lambda line: [(line, 1)])
        with pytest.raises(ExecutionError):
            job.run(cluster, dfs, "/in", "/out")

    def test_zero_reducers_rejected(self):
        with pytest.raises(ValueError):
            MapReduceJob("j", mapper=lambda l: [], num_reducers=0)

    def test_empty_input(self, env):
        cluster, dfs = env
        dfs.write_text("/in/doc", "")
        job = MapReduceJob("j", mapper=lambda line: [(line, 1)], reducer=lambda k, v: [k])
        counters = job.run(cluster, dfs, "/in", "/out")
        assert counters.map_input_records == 0
        assert counters.output_files == []

    def test_mixed_key_types(self, env):
        cluster, dfs = env
        dfs.write_text("/in/doc", "1\n2\nx\n")

        def mapper(line):
            key = int(line) if line.isdigit() else line
            yield key, line

        job = MapReduceJob("mixed", mapper, reducer=lambda k, v: v, num_reducers=1)
        counters = job.run(cluster, dfs, "/in", "/out")
        assert counters.output_records == 3

    def test_ledger_accounting(self, env):
        cluster, dfs = env
        dfs.write_text("/in/doc", "abc\n" * 100)
        before = cluster.ledger.snapshot()
        job = MapReduceJob(
            "acct", mapper=lambda l: [(l, 1)], reducer=lambda k, v: [k]
        )
        job.run(cluster, dfs, "/in", "/out")
        delta = cluster.ledger.delta(before, cluster.ledger.snapshot())
        assert delta["mr.read"] == 400
        assert delta["mr.shuffle"] > 0
        assert delta["mr.write"] > 0

    def test_many_mappers_over_blocks(self, env):
        cluster, dfs = env
        # File spans many 256-byte blocks; all rows must survive the splits.
        rows = [f"{i},{i * i}" for i in range(500)]
        dfs.write_text("/in/doc", "\n".join(rows) + "\n")
        job = MapReduceJob(
            "span",
            mapper=lambda line: [(int(line.split(",")[0]) % 7, line)],
            reducer=lambda k, v: sorted(v),
            num_reducers=3,
        )
        counters = job.run(cluster, dfs, "/in", "/out")
        assert counters.map_input_records == 500
        assert sorted(read_output(dfs, "/out")) == sorted(rows)
