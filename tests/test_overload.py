"""Overload protection end to end, plus the bounded-retry satellites.

The big one: the Ablation K chaos harness at test scale — sessions at 4x
the worker-slot count with mixed deadlines, priorities, faults, and
mid-flight cancels — must leave zero wedged threads, only typed failure
outcomes, and completed weights bit-identical to solo runs.

The satellites: the load generator records only *typed* serving errors
(harness defects propagate); the HA proxy's handshake-drop retry branch is
bounded by attempts, wall clock, and the deployment retry budget; and a
leaderless ``await_leader`` is woken by a session cancel, not timed out.
"""

import threading
from time import perf_counter

import pytest

from repro import make_deployment
from repro.bench.overload import (
    check_acceptance,
    run_acceptance,
    run_deadline_sweep,
    wedged_threads,
)
from repro.common.errors import (
    AdmissionError,
    RetriesExhaustedError,
    SessionCancelled,
    TransferError,
)
from repro.faults import FaultConfig, FaultInjector
from repro.runtime.budget import Budget
from repro.workloads.loadgen import (
    BASE_SEED,
    make_points_table,
    run_one_session,
)

pytestmark = pytest.mark.timeout(300)


# --------------------------------------------------------------------------
# The chaos harness at test scale
# --------------------------------------------------------------------------


class TestOverloadHarness:
    def test_acceptance_bars_hold_under_oversubscription(self):
        acceptance, report = run_acceptance(num_sessions=16, num_clients=16)
        problems = check_acceptance(acceptance)
        assert not problems, "; ".join(problems)
        # The mixed-deadline load produced both populations: typed
        # shed/expired outcomes AND completed, solo-identical work.
        assert acceptance.completed >= 1
        assert acceptance.deadline_exceeded >= 1
        assert acceptance.other_failures == 0
        assert acceptance.wedged_threads == 0
        assert acceptance.weight_identical
        # Every outcome in the report is accounted for by a typed bucket.
        assert (
            acceptance.completed
            + acceptance.deadline_exceeded
            + acceptance.shed
            + acceptance.cancelled
            == acceptance.num_sessions
        )

    def test_deadline_sweep_extremes(self):
        tight, unbounded = run_deadline_sweep(
            deadlines=(0.001, None), num_sessions=8, num_clients=8
        )
        # Below the session floor: every failure is the typed expiry.
        assert tight.deadline_exceeded > 0
        assert tight.other_failures == 0
        # The control: no deadline, offered load within cap+queue — the
        # seed behavior, every session completes.
        assert unbounded.completed == unbounded.num_sessions
        assert unbounded.deadline_exceeded == 0
        assert wedged_threads(grace_s=5.0) == []


# --------------------------------------------------------------------------
# Satellite: the load generator only swallows *typed* serving errors
# --------------------------------------------------------------------------


class TestLoadgenErrorNarrowing:
    def _deployment(self):
        deployment = make_deployment(max_concurrent_sessions=2)
        make_points_table(deployment.engine)
        return deployment

    def test_harness_defects_propagate_out_of_the_client(self):
        deployment = self._deployment()
        real_create = deployment.coordinator.create_session

        def broken_create(*args, **kwargs):
            raise TypeError("harness bug: bad argument wiring")

        deployment.coordinator.create_session = broken_create
        try:
            with pytest.raises(TypeError, match="harness bug"):
                run_one_session(deployment, "defect", seed=BASE_SEED)
        finally:
            deployment.coordinator.create_session = real_create

    def test_typed_serving_errors_become_outcomes(self):
        deployment = self._deployment()
        real_create = deployment.coordinator.create_session

        def rejecting_create(*args, **kwargs):
            raise AdmissionError("admission queue full (test)")

        deployment.coordinator.create_session = rejecting_create
        try:
            outcome = run_one_session(deployment, "shed", seed=BASE_SEED)
        finally:
            deployment.coordinator.create_session = real_create
        assert outcome.error_type == "AdmissionError"
        assert "queue full" in outcome.error


# --------------------------------------------------------------------------
# Satellite: bounded HA retries (handshake drops, retry budget)
# --------------------------------------------------------------------------


class TestBoundedFailoverRetries:
    def test_every_response_dropped_surfaces_typed_not_infinite(self):
        injector = FaultInjector(
            FaultConfig(seed=3, handshake_drop_rate=1.0, max_events=None)
        )
        deployment = make_deployment(ha_standbys=1, fault_injector=injector)
        start = perf_counter()
        with pytest.raises(RetriesExhaustedError, match="dropped on every"):
            deployment.coordinator.live_sessions()
        # Bounded by attempts, far inside the elapsed cap — the seed
        # behavior here was an unbounded retry loop.
        assert perf_counter() - start < 20.0
        assert isinstance(RetriesExhaustedError("x"), TransferError)

    def test_retry_budget_caps_failover_retries_fleet_wide(self):
        injector = FaultInjector(
            FaultConfig(seed=3, handshake_drop_rate=1.0, max_events=None)
        )
        deployment = make_deployment(
            ha_standbys=1, fault_injector=injector, retry_budget_tokens=2
        )
        with pytest.raises(RetriesExhaustedError, match="retry budget exhausted"):
            deployment.coordinator.live_sessions()
        ledger = deployment.cluster.ledger
        assert ledger.get("retry_budget.granted") == 2
        assert ledger.get("retry_budget.denied") >= 1


# --------------------------------------------------------------------------
# Satellite: leader waits are condition-driven, and cancel wakes them
# --------------------------------------------------------------------------


class TestLeaderWait:
    def _leaderless_group(self):
        deployment = make_deployment(ha_standbys=1)
        group = deployment.ha
        group.kill_leader()  # standby takes over...
        group.kill_leader()  # ...and dies too: leaderless
        assert group.leader() is None
        return group

    def test_await_leader_woken_by_cancel_not_timeout(self):
        group = self._leaderless_group()
        budget = Budget(session_id="s")
        failures: list[BaseException] = []
        waiting = threading.Event()

        def wait_for_leader():
            waiting.set()
            try:
                group.await_leader(timeout=30.0, budget=budget)
            except BaseException as exc:
                failures.append(exc)

        t = threading.Thread(target=wait_for_leader)
        t.start()
        assert waiting.wait(5.0)
        start = perf_counter()
        budget.cancel("client hung up")
        t.join(5.0)
        assert not t.is_alive()
        assert perf_counter() - start < 2.0  # notified, not polled/timed out
        assert len(failures) == 1
        assert isinstance(failures[0], SessionCancelled)

    def test_await_leader_bounded_when_leaderless(self):
        group = self._leaderless_group()
        from repro.common.errors import CoordinatorUnavailableError

        start = perf_counter()
        with pytest.raises(CoordinatorUnavailableError):
            group.await_leader(timeout=0.2)
        elapsed = perf_counter() - start
        assert 0.15 <= elapsed < 2.0
