"""Executor: operator correctness against Python-computed references."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cluster.cluster import make_paper_cluster
from repro.common.errors import ExecutionError
from repro.iofmt.text import FileSplit
from repro.sql.engine import BigSQL
from repro.sql.executor import assign_splits
from repro.sql.planner import BROADCAST_THRESHOLD_BYTES
from repro.sql.types import DataType, Schema


class TestBasicQueries:
    def test_projection(self, users_carts):
        rows = users_carts.query_rows("SELECT age, gender FROM users")
        assert sorted(rows) == [(25, "M"), (35, "F"), (40, "M"), (57, "F"), (61, "F")]

    def test_expressions_in_select(self, users_carts):
        rows = users_carts.query_rows("SELECT userid, age * 2 FROM users WHERE userid = 1")
        assert rows == [(1, 114)]

    def test_filter_true_only(self, users_carts):
        rows = users_carts.query_rows("SELECT userid FROM users WHERE age > 40")
        assert sorted(rows) == [(1,), (5,)]

    def test_paper_query(self, users_carts):
        rows = users_carts.query_rows(
            "SELECT U.age, U.gender, C.amount, C.abandoned "
            "FROM carts C, users U WHERE C.userid = U.userid AND U.country = 'USA'"
        )
        assert sorted(rows) == [
            (25, "M", 55.10, "No"),
            (40, "M", 299.99, "Yes"),
            (57, "F", 7.50, "No"),
            (57, "F", 142.65, "Yes"),
            (61, "F", 3.99, "No"),
            (61, "F", 120.00, "Yes"),
        ]

    def test_distinct(self, users_carts):
        rows = users_carts.query_rows("SELECT DISTINCT country FROM users")
        assert sorted(rows) == [("DE",), ("USA",)]

    def test_order_by_multi_key(self, users_carts):
        rows = users_carts.query_rows(
            "SELECT gender, age FROM users ORDER BY gender, age DESC"
        )
        assert rows == [("F", 61), ("F", 57), ("F", 35), ("M", 40), ("M", 25)]

    def test_order_by_nulls_last(self, engine):
        engine.create_table(
            "t", Schema.of(("x", DataType.INT)), [(3,), (None,), (1,)]
        )
        assert engine.query_rows("SELECT x FROM t ORDER BY x") == [(1,), (3,), (None,)]
        assert engine.query_rows("SELECT x FROM t ORDER BY x DESC") == [
            (None,),
            (3,),
            (1,),
        ]

    def test_limit(self, users_carts):
        rows = users_carts.query_rows("SELECT userid FROM users ORDER BY userid LIMIT 3")
        assert rows == [(1,), (2,), (3,)]

    def test_subquery(self, users_carts):
        rows = users_carts.query_rows(
            "SELECT s.age FROM (SELECT age FROM users WHERE gender = 'F') AS s "
            "WHERE s.age > 40"
        )
        assert sorted(rows) == [(57,), (61,)]


class TestJoins:
    def test_inner_join_explicit(self, users_carts):
        rows = users_carts.query_rows(
            "SELECT C.cartid FROM carts C JOIN users U ON C.userid = U.userid "
            "WHERE U.country = 'DE'"
        )
        assert rows == [(12,)]

    def test_left_join_preserves_unmatched(self, engine):
        engine.create_table(
            "l", Schema.of(("id", DataType.INT), ("v", DataType.VARCHAR)),
            [(1, "a"), (2, "b"), (3, "c")],
        )
        engine.create_table(
            "r", Schema.of(("id", DataType.INT), ("w", DataType.VARCHAR)),
            [(1, "x"), (1, "y")],
        )
        rows = engine.query_rows(
            "SELECT l.v, r.w FROM l LEFT JOIN r ON l.id = r.id"
        )
        assert sorted(rows, key=str) == [("a", "x"), ("a", "y"), ("b", None), ("c", None)]

    def test_null_keys_never_match(self, engine):
        engine.create_table(
            "l", Schema.of(("id", DataType.INT)), [(1,), (None,)]
        )
        engine.create_table(
            "r", Schema.of(("id", DataType.INT)), [(1,), (None,)]
        )
        rows = engine.query_rows("SELECT l.id, r.id FROM l, r WHERE l.id = r.id")
        assert rows == [(1, 1)]

    def test_null_key_left_join_null_extended(self, engine):
        engine.create_table("l2", Schema.of(("id", DataType.INT)), [(None,)])
        engine.create_table("r2", Schema.of(("id", DataType.INT)), [(None,)])
        rows = engine.query_rows("SELECT l2.id, r2.id FROM l2 LEFT JOIN r2 ON l2.id = r2.id")
        assert rows == [(None, None)]

    def test_non_equi_residual(self, users_carts):
        rows = users_carts.query_rows(
            "SELECT C.cartid FROM carts C, users U "
            "WHERE C.userid = U.userid AND C.amount > U.age"
        )
        # amount > age: 142.65>57, 299.99>40, 55.10>25, 120.00>61
        assert sorted(rows) == [(10,), (11,), (14,), (15,)]

    def test_cartesian_product(self, engine):
        engine.create_table("a", Schema.of(("x", DataType.INT)), [(1,), (2,)])
        engine.create_table("b", Schema.of(("y", DataType.INT)), [(10,), (20,)])
        rows = engine.query_rows("SELECT a.x, b.y FROM a, b")
        assert sorted(rows) == [(1, 10), (1, 20), (2, 10), (2, 20)]

    def test_shuffle_join_matches_broadcast_join(self, engine, monkeypatch):
        """Forcing the shuffle path must not change the result."""
        rows_l = [(i % 17, f"l{i}") for i in range(200)]
        rows_r = [(i % 17, f"r{i}") for i in range(100)]
        engine.create_table(
            "bigl", Schema.of(("k", DataType.INT), ("v", DataType.VARCHAR)), rows_l
        )
        engine.create_table(
            "bigr", Schema.of(("k", DataType.INT), ("w", DataType.VARCHAR)), rows_r
        )
        sql = "SELECT bigl.v, bigr.w FROM bigl, bigr WHERE bigl.k = bigr.k"
        broadcast_result = sorted(engine.query_rows(sql))
        import repro.sql.executor as executor_module

        monkeypatch.setattr(executor_module, "BROADCAST_THRESHOLD_BYTES", 0)
        shuffle_result = sorted(engine.query_rows(sql))
        assert shuffle_result == broadcast_result
        # reference: Python-computed join
        reference = sorted(
            (lv, rw) for lk, lv in rows_l for rk, rw in rows_r if lk == rk
        )
        assert broadcast_result == reference

    def test_shuffle_accounting(self, users_carts):
        before = users_carts.cluster.ledger.snapshot()
        users_carts.query_rows(
            "SELECT U.age FROM carts C, users U WHERE C.userid = U.userid"
        )
        delta = users_carts.cluster.ledger.delta(
            before, users_carts.cluster.ledger.snapshot()
        )
        assert delta["sql.shuffle"] > 0  # broadcast replication cost


class TestAggregates:
    def test_global_aggregates(self, users_carts):
        (row,) = users_carts.query_rows(
            "SELECT COUNT(*), SUM(age), MIN(age), MAX(age), AVG(age) FROM users"
        )
        assert row == (5, 218, 25, 61, 43.6)

    def test_group_by(self, users_carts):
        rows = users_carts.query_rows(
            "SELECT gender, COUNT(*), AVG(age) FROM users GROUP BY gender"
        )
        assert sorted(rows) == [("F", 3, 51.0), ("M", 2, 32.5)]

    def test_count_star_vs_count_column_with_nulls(self, engine):
        engine.create_table(
            "n", Schema.of(("x", DataType.INT)), [(1,), (None,), (3,), (None,)]
        )
        (row,) = engine.query_rows("SELECT COUNT(*), COUNT(x), SUM(x) FROM n")
        assert row == (4, 2, 4)

    def test_count_distinct(self, users_carts):
        (row,) = users_carts.query_rows("SELECT COUNT(DISTINCT gender) FROM users")
        assert row == (2,)

    def test_sum_distinct(self, engine):
        engine.create_table(
            "d", Schema.of(("x", DataType.INT)), [(1,), (1,), (2,), (3,), (3,)]
        )
        (row,) = engine.query_rows("SELECT SUM(DISTINCT x), AVG(DISTINCT x) FROM d")
        assert row == (6, 2.0)

    def test_empty_global_aggregate(self, users_carts):
        (row,) = users_carts.query_rows(
            "SELECT COUNT(*), SUM(age), MAX(age) FROM users WHERE age > 1000"
        )
        assert row == (0, None, None)

    def test_empty_grouped_aggregate_yields_no_rows(self, users_carts):
        rows = users_carts.query_rows(
            "SELECT gender, COUNT(*) FROM users WHERE age > 1000 GROUP BY gender"
        )
        assert rows == []

    def test_having(self, users_carts):
        rows = users_carts.query_rows(
            "SELECT gender FROM users GROUP BY gender HAVING COUNT(*) > 2"
        )
        assert rows == [("F",)]

    def test_expression_over_aggregates(self, users_carts):
        (row,) = users_carts.query_rows(
            "SELECT MAX(age) - MIN(age) FROM users"
        )
        assert row == (36,)

    def test_group_by_expression(self, users_carts):
        rows = users_carts.query_rows(
            "SELECT age / 10, COUNT(*) FROM users GROUP BY age / 10"
        )
        assert sorted(rows) == [(2, 1), (3, 1), (4, 1), (5, 1), (6, 1)]

    @settings(max_examples=25, deadline=None)
    @given(
        data=st.lists(
            st.tuples(
                st.integers(0, 3),
                st.one_of(st.none(), st.integers(-50, 50)),
            ),
            min_size=0,
            max_size=60,
        )
    )
    def test_grouped_aggregates_match_reference(self, data):
        """Distributed partial+merge aggregation equals a flat reference."""
        cluster = make_paper_cluster()
        engine = BigSQL(cluster)
        engine.create_table(
            "p", Schema.of(("g", DataType.INT), ("x", DataType.INT)), data
        )
        rows = engine.query_rows(
            "SELECT g, COUNT(*), COUNT(x), SUM(x), MIN(x), MAX(x) FROM p GROUP BY g"
        )
        reference = {}
        for g, x in data:
            entry = reference.setdefault(g, [0, 0, None, None, None])
            entry[0] += 1
            if x is not None:
                entry[1] += 1
                entry[2] = x if entry[2] is None else entry[2] + x
                entry[3] = x if entry[3] is None else min(entry[3], x)
                entry[4] = x if entry[4] is None else max(entry[4], x)
        expected = sorted((g, *vals) for g, vals in reference.items())
        assert sorted(rows) == expected


class TestExternalTables:
    def test_scan_parses_types(self, engine, dfs):
        dfs.write_text("/ext/data.csv", "1,2.5,abc,true\n2,,xyz,false\n")
        engine.register_external_table(
            "ext",
            Schema.of(
                ("i", DataType.BIGINT),
                ("d", DataType.DOUBLE),
                ("s", DataType.VARCHAR),
                ("b", DataType.BOOLEAN),
            ),
            "/ext/data.csv",
        )
        rows = engine.query_rows("SELECT i, d, s, b FROM ext ORDER BY i")
        assert rows == [(1, 2.5, "abc", True), (2, None, "xyz", False)]

    def test_scan_large_file_exactly_once(self, engine, dfs):
        lines = "\n".join(f"{i},{i * 3}" for i in range(3000)) + "\n"
        dfs.write_text("/ext/big.csv", lines)
        engine.register_external_table(
            "big", Schema.of(("i", DataType.BIGINT), ("v", DataType.BIGINT)), "/ext/big.csv"
        )
        (count_row,) = engine.query_rows("SELECT COUNT(*), SUM(i) FROM big")
        assert count_row == (3000, sum(range(3000)))

    def test_bad_record_raises(self, engine, dfs):
        dfs.write_text("/ext/bad.csv", "1,2\n3\n")
        engine.register_external_table(
            "bad", Schema.of(("a", DataType.INT), ("b", DataType.INT)), "/ext/bad.csv"
        )
        with pytest.raises(ExecutionError, match="expected 2 fields"):
            engine.query_rows("SELECT * FROM bad")

    def test_scan_accounting(self, engine, dfs):
        dfs.write_text("/ext/acct.csv", "1\n2\n3\n")
        engine.register_external_table(
            "acct", Schema.of(("a", DataType.INT)), "/ext/acct.csv"
        )
        before = engine.cluster.ledger.snapshot()
        engine.query_rows("SELECT * FROM acct")
        delta = engine.cluster.ledger.delta(before, engine.cluster.ledger.snapshot())
        assert delta["sql.scan"] == 6


class TestSplitAssignment:
    def test_locality_preferred(self):
        cluster = make_paper_cluster()
        nodes = cluster.workers
        splits = [
            FileSplit("/f", i * 10, 10, hosts=(nodes[i % 4].ip,)) for i in range(8)
        ]
        assignments = assign_splits(splits, nodes)
        for worker_id, assigned in enumerate(assignments):
            for split in assigned:
                assert nodes[worker_id].ip in split.hosts

    def test_balanced_when_no_locality(self):
        cluster = make_paper_cluster()
        splits = [FileSplit("/f", i * 10, 10) for i in range(9)]
        assignments = assign_splits(splits, cluster.workers)
        sizes = [len(a) for a in assignments]
        assert max(sizes) - min(sizes) <= 1
        assert sum(sizes) == 9

    def test_hotspot_spills_over(self):
        """All splits local to one node still spread across workers."""
        cluster = make_paper_cluster()
        hot = cluster.workers[0].ip
        splits = [FileSplit("/f", i * 10, 10, hosts=(hot,)) for i in range(8)]
        assignments = assign_splits(splits, cluster.workers)
        assert len(assignments[0]) == 2  # capped at ceil(8/4)
        assert sum(len(a) for a in assignments) == 8
