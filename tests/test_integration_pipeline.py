"""End-to-end pipeline: the three connection strategies and caching variants
must hand the ML system identical data, with correctly shaped stage timings."""

import pytest

from repro import make_deployment
from repro.workloads import generate_retail


@pytest.fixture(scope="module")
def retail():
    """One shared deployment+workload for this module (read-only tests)."""
    deployment = make_deployment(block_size=64 * 1024)
    workload = generate_retail(
        deployment.engine, deployment.dfs, num_users=300, num_carts=3_000, seed=11
    )
    deployment.pipeline.byte_scale = workload.byte_scale
    return deployment, workload


def dataset_signature(result):
    return sorted(
        (lp.label, tuple(lp.features)) for lp in result.ml_result.dataset.collect()
    )


class TestApproachEquivalence:
    def test_all_three_deliver_identical_data(self, retail):
        deployment, wl = retail
        naive = deployment.pipeline.run_naive(wl.prep_sql, wl.spec, "noop")
        insql = deployment.pipeline.run_insql(wl.prep_sql, wl.spec, "noop")
        stream = deployment.pipeline.run_insql_stream(wl.prep_sql, wl.spec, "noop")
        assert dataset_signature(naive) == dataset_signature(insql) == dataset_signature(stream)
        assert len(dataset_signature(naive)) > 0

    def test_dataset_matches_direct_sql_computation(self, retail):
        """The delivered LabeledPoints equal a by-hand transformation of the
        preparation query's result."""
        deployment, wl = retail
        stream = deployment.pipeline.run_insql_stream(wl.prep_sql, wl.spec, "noop")
        direct = deployment.engine.query_rows(wl.prep_sql)
        gender_map = {"F": 1, "M": 2}
        abandoned_map = {"No": 1, "Yes": 2}
        expected = sorted(
            (
                float(abandoned_map[ab] - 1),  # label offset: recoded - 1
                (
                    float(age),
                    float(gender_map[g] == 1),
                    float(gender_map[g] == 2),
                    float(amount),
                ),
            )
            for age, g, amount, ab in direct
        )
        assert dataset_signature(stream) == expected

    def test_labels_are_binary(self, retail):
        deployment, wl = retail
        result = deployment.pipeline.run_insql_stream(wl.prep_sql, wl.spec, "noop")
        labels = {lp.label for lp in result.ml_result.dataset.collect()}
        assert labels <= {0.0, 1.0}


class TestStageShapes:
    def test_naive_stage_names(self, retail):
        deployment, wl = retail
        result = deployment.pipeline.run_naive(wl.prep_sql, wl.spec, "noop")
        names = [s.name for s in result.stages]
        assert names == ["prep", "trsfm", "input for ml", "ml train"]
        assert not result.stage("ml train").counted

    def test_insql_stage_names(self, retail):
        deployment, wl = retail
        result = deployment.pipeline.run_insql(wl.prep_sql, wl.spec, "noop")
        names = [s.name for s in result.stages]
        assert names == ["recode pass 1", "prep+trsfm", "input for ml", "ml train"]

    def test_stream_stage_names(self, retail):
        deployment, wl = retail
        result = deployment.pipeline.run_insql_stream(wl.prep_sql, wl.spec, "noop")
        names = [s.name for s in result.stages]
        assert names == ["recode pass 1", "prep+trsfm+input", "ml train"]

    def test_sim_ordering(self, retail):
        deployment, wl = retail
        naive = deployment.pipeline.run_naive(wl.prep_sql, wl.spec, "noop")
        insql = deployment.pipeline.run_insql(wl.prep_sql, wl.spec, "noop")
        stream = deployment.pipeline.run_insql_stream(wl.prep_sql, wl.spec, "noop")
        assert (
            stream.total_sim_seconds
            < insql.total_sim_seconds
            < naive.total_sim_seconds
        )

    def test_breakdown_renders(self, retail):
        deployment, wl = retail
        result = deployment.pipeline.run_insql(wl.prep_sql, wl.spec, "noop")
        text = result.breakdown()
        assert "insql" in text and "prep+trsfm" in text

    def test_byte_scale_scales_sim_times_linearly(self, retail):
        deployment, wl = retail
        original = deployment.pipeline.byte_scale
        try:
            deployment.pipeline.byte_scale = original
            base = deployment.pipeline.run_insql_stream(wl.prep_sql, wl.spec, "noop")
            deployment.pipeline.byte_scale = original * 2
            doubled = deployment.pipeline.run_insql_stream(wl.prep_sql, wl.spec, "noop")
        finally:
            deployment.pipeline.byte_scale = original
        stage_b = base.stage("recode pass 1").sim_seconds
        stage_d = doubled.stage("recode pass 1").sim_seconds
        assert stage_d == pytest.approx(2 * stage_b, rel=0.01)


class TestCachingVariants:
    @pytest.fixture()
    def fresh(self):
        deployment = make_deployment(block_size=64 * 1024)
        workload = generate_retail(
            deployment.engine, deployment.dfs, num_users=300, num_carts=3_000, seed=11
        )
        deployment.pipeline.byte_scale = workload.byte_scale
        return deployment, workload

    def test_recode_cache_identical_data_and_faster(self, fresh):
        deployment, wl = fresh
        no_cache = deployment.pipeline.run_insql_stream(wl.prep_sql, wl.spec, "noop")
        deployment.pipeline.populate_caches(wl.prep_sql, wl.spec, cache_recode_map=True)
        cached = deployment.pipeline.run_insql_stream(
            wl.prep_sql, wl.spec, "noop", use_cache=True
        )
        assert cached.rewrite_kind == "recode_map_cache"
        assert dataset_signature(cached) == dataset_signature(no_cache)
        assert cached.total_sim_seconds < no_cache.total_sim_seconds

    def test_full_cache_identical_data_and_fastest(self, fresh):
        deployment, wl = fresh
        no_cache = deployment.pipeline.run_insql_stream(wl.prep_sql, wl.spec, "noop")
        deployment.pipeline.populate_caches(
            wl.prep_sql, wl.spec, cache_recode_map=True, cache_transformed=True
        )
        cached = deployment.pipeline.run_insql_stream(
            wl.prep_sql, wl.spec, "noop", use_cache=True
        )
        assert cached.rewrite_kind == "full_cache"
        assert dataset_signature(cached) == dataset_signature(no_cache)
        assert cached.total_sim_seconds < 0.7 * no_cache.total_sim_seconds

    def test_without_use_cache_flag_cache_ignored(self, fresh):
        deployment, wl = fresh
        deployment.pipeline.populate_caches(
            wl.prep_sql, wl.spec, cache_recode_map=True, cache_transformed=True
        )
        result = deployment.pipeline.run_insql_stream(wl.prep_sql, wl.spec, "noop")
        assert result.rewrite_kind == "no_cache"

    def test_insert_invalidates_pipeline_cache(self, fresh):
        """After a base-table update the pipeline falls back to no_cache —
        and therefore picks up the new data."""
        deployment, wl = fresh
        deployment.pipeline.populate_caches(
            wl.prep_sql, wl.spec, cache_recode_map=True, cache_transformed=True
        )
        hit = deployment.pipeline.run_insql_stream(
            wl.prep_sql, wl.spec, "noop", use_cache=True
        )
        assert hit.rewrite_kind == "full_cache"
        # External tables cannot be inserted into; simulate by explicit
        # invalidation, the hook a warehouse refresh would call.
        deployment.pipeline.cache.invalidate_table("carts")
        miss = deployment.pipeline.run_insql_stream(
            wl.prep_sql, wl.spec, "noop", use_cache=True
        )
        assert miss.rewrite_kind == "no_cache"


class TestModelsTrainEndToEnd:
    def test_svm_over_all_approaches(self, retail):
        deployment, wl = retail
        for runner in (
            deployment.pipeline.run_naive,
            deployment.pipeline.run_insql,
            deployment.pipeline.run_insql_stream,
        ):
            result = runner(wl.prep_sql, wl.spec, "svm_with_sgd", {"iterations": 3})
            assert result.ml_result.model.weights.shape == (4,)

    def test_label_position_with_label_not_last(self, retail):
        """The label column need not be the last projected column."""
        deployment, wl = retail
        sql = (
            "SELECT C.abandoned, U.age, U.gender, C.amount "
            "FROM carts C, users U "
            "WHERE C.userid = U.userid AND U.country = 'USA'"
        )
        result = deployment.pipeline.run_insql_stream(
            sql, wl.spec, "svm_with_sgd", {"iterations": 2}
        )
        labels = {lp.label for lp in result.ml_result.dataset.collect()}
        assert labels <= {0.0, 1.0}
        assert result.ml_result.model.weights.shape == (4,)
