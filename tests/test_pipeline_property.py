"""Property test over the whole integration pipeline.

For randomly generated tiny tables and transformation specs, the streamed
insql pipeline must deliver exactly the LabeledPoints a by-hand (pure
Python) transformation of the preparation query's result predicts.
"""

import itertools

from hypothesis import HealthCheck, given, settings, strategies as st

from repro import make_deployment
from repro.sql.types import DataType, Schema
from repro.transform.spec import TransformSpec

_counter = itertools.count(1)

CATEGORIES_A = ["red", "green", "blue"]
CATEGORIES_B = ["Yes", "No", "Maybe"]


@st.composite
def tables(draw):
    rows = draw(
        st.lists(
            st.tuples(
                st.integers(0, 50),  # x (numeric feature)
                st.sampled_from(CATEGORIES_A),  # c1 (categorical)
                st.sampled_from(CATEGORIES_B),  # c2 (categorical label)
                st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
            ),
            min_size=1,
            max_size=40,
        )
    )
    dummy_c1 = draw(st.booleans())
    threshold = draw(st.integers(0, 50))
    return rows, dummy_c1, threshold


@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(case=tables())
def test_streamed_pipeline_matches_reference_transformation(case):
    rows, dummy_c1, threshold = case
    table_name = f"prop_{next(_counter)}"

    deployment = make_deployment(block_size=64 * 1024)
    schema = Schema.of(
        ("x", DataType.INT),
        ("c1", DataType.VARCHAR),
        ("c2", DataType.VARCHAR),
        ("amount", DataType.DOUBLE),
    )
    deployment.engine.create_table(table_name, schema, rows)

    spec = TransformSpec(
        recode=("c1", "c2"), dummy=(("c1",) if dummy_c1 else ()), label="c2"
    )
    sql = f"SELECT x, c1, c2, amount FROM {table_name} WHERE x <= {threshold}"
    result = deployment.pipeline.run_insql_stream(sql, spec, "noop")
    got = sorted(
        (lp.label, tuple(lp.features))
        for lp in result.ml_result.dataset.collect()
    )

    # ------- reference: pure-Python recode + dummy over the filtered rows
    qualifying = [r for r in rows if r[0] <= threshold]
    c1_values = sorted({r[1] for r in qualifying})
    c2_values = sorted({r[2] for r in qualifying})
    c1_code = {v: i + 1 for i, v in enumerate(c1_values)}
    c2_code = {v: i + 1 for i, v in enumerate(c2_values)}
    expected = []
    for x, c1, c2, amount in qualifying:
        label = float(c2_code[c2] - 1)  # recoded, offset to 0-based
        if dummy_c1:
            indicators = [0.0] * len(c1_values)
            indicators[c1_code[c1] - 1] = 1.0
            features = (float(x), *indicators, float(amount))
        else:
            features = (float(x), float(c1_code[c1]), float(amount))
        expected.append((label, features))
    assert got == sorted(expected)
