"""Units for the per-session Budget and the shared RetryTokenBucket."""

import time

import pytest

from repro.common.errors import (
    ChannelTimeoutError,
    DeadlineExceeded,
    MLError,
    SessionCancelled,
    TransferError,
)
from repro.runtime.budget import (
    Budget,
    RetryTokenBucket,
    budget_check,
    budget_remaining,
)

pytestmark = pytest.mark.timeout(60)


class FakeClock:
    def __init__(self, now: float = 100.0):
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, dt: float) -> None:
        self.now += dt


class DictLedger:
    def __init__(self):
        self.counts: dict[str, float] = {}

    def add(self, key: str, n) -> None:
        self.counts[key] = self.counts.get(key, 0) + n

    def get(self, key: str):
        return self.counts.get(key, 0)


class TestBudgetDeadline:
    def test_unbounded_budget_is_inert(self):
        b = Budget(session_id="s")
        assert b.deadline_s is None
        assert b.remaining() is None
        assert not b.expired
        assert b.clamp(30.0) == 30.0  # the seed flat timeout, untouched
        assert b.clamp(None) is None
        b.check("anything")  # never raises

    def test_remaining_and_clamp_derive_from_one_clock(self):
        clock = FakeClock()
        b = Budget(deadline_s=10.0, clock=clock)
        assert b.remaining() == 10.0
        assert b.clamp(30.0) == 10.0  # budget caps a generous flat timeout
        assert b.clamp(2.0) == 2.0  # a tighter flat timeout survives
        assert b.clamp(None) == 10.0  # unbounded flat timeout gets the cap
        clock.advance(9.5)
        assert b.remaining() == 0.5
        clock.advance(1.0)
        assert b.remaining() == 0.0
        assert b.expired

    def test_check_raises_typed_nonretryable_deadline(self):
        clock = FakeClock()
        b = Budget(deadline_s=1.0, session_id="sess-1", clock=clock)
        clock.advance(2.0)
        with pytest.raises(DeadlineExceeded, match="sess-1") as err:
            b.check("result wait")
        # Typed so every retry/recovery ladder can refuse to swallow it:
        # a TransferError, but never a retryable channel timeout or MLError.
        assert isinstance(err.value, TransferError)
        assert not isinstance(err.value, ChannelTimeoutError)
        assert not isinstance(err.value, MLError)
        assert err.value.session_id == "sess-1"
        assert "result wait" in str(err.value)

    def test_deadline_expired_ledger_counts_once(self):
        clock = FakeClock()
        ledger = DictLedger()
        b = Budget(deadline_s=1.0, clock=clock, ledger=ledger)
        clock.advance(5.0)
        for _ in range(3):
            with pytest.raises(DeadlineExceeded):
                b.check()
        assert ledger.counts == {"deadline.expired": 1}

    def test_plain_budget_touches_no_ledger(self):
        ledger = DictLedger()
        b = Budget(ledger=ledger)
        b.check()
        b.clamp(1.0)
        assert ledger.counts == {}


class TestBudgetCancel:
    def test_cancel_is_idempotent_and_runs_callbacks(self):
        b = Budget(session_id="s")
        woken: list[int] = []
        b.on_cancel(lambda: woken.append(1))
        assert b.cancel("client gave up") is True
        assert b.cancel("again") is False  # only the first cancel counts
        assert b.cancelled
        assert b.cancel_reason == "client gave up"
        assert woken == [1]

    def test_on_cancel_after_cancel_fires_immediately(self):
        b = Budget()
        b.cancel()
        late: list[int] = []
        b.on_cancel(lambda: late.append(1))
        assert late == [1]

    def test_on_cancel_disposer_unregisters(self):
        b = Budget()
        woken: list[int] = []
        dispose = b.on_cancel(lambda: woken.append(1))
        dispose()
        b.cancel()
        assert woken == []

    def test_broken_callback_never_masks_the_cancel(self):
        b = Budget()
        b.on_cancel(lambda: (_ for _ in ()).throw(RuntimeError("boom")))
        assert b.cancel() is True
        assert b.cancelled

    def test_cancel_outranks_deadline_in_check(self):
        clock = FakeClock()
        b = Budget(deadline_s=1.0, session_id="s", clock=clock)
        clock.advance(5.0)
        b.cancel("stop")
        with pytest.raises(SessionCancelled, match="stop"):
            b.check()

    def test_cancel_ledger_counts_once(self):
        ledger = DictLedger()
        b = Budget(ledger=ledger)
        b.cancel()
        b.cancel()
        assert ledger.counts == {"cancel.requested": 1}


class TestBudgetJournal:
    def test_round_trip_preserves_remaining_not_full_budget(self):
        b = Budget(deadline_s=60.0, session_id="s")
        settings = b.to_settings()
        assert settings["deadline_s"] == 60.0
        restored = Budget.from_settings(settings, session_id="s")
        assert restored is not None
        assert restored.deadline_s == 60.0  # reports the original ask
        # ...but enforces only what was left at journal time.
        assert 55.0 < restored.remaining() <= 60.0

    def test_disarmed_journal_restores_to_none(self):
        assert Budget.from_settings({}) is None
        assert Budget.from_settings({"deadline_s": None}) is None
        assert Budget().to_settings() == {
            "deadline_s": None,
            "deadline_unix": None,
        }

    def test_expired_journal_raises_at_next_wait_not_construction(self):
        settings = {"deadline_s": 1.0, "deadline_unix": time.time() - 5.0}
        restored = Budget.from_settings(settings, session_id="s")
        assert restored is not None  # adoption itself must succeed
        time.sleep(0.01)
        with pytest.raises(DeadlineExceeded):
            restored.check("post-takeover wait")


class TestRetryTokenBucket:
    def test_spends_to_dry_and_counts(self):
        ledger = DictLedger()
        bucket = RetryTokenBucket(capacity=2, ledger=ledger)
        assert bucket.try_acquire() is True
        assert bucket.try_acquire() is True
        assert bucket.try_acquire() is False
        assert bucket.granted == 2
        assert bucket.denied == 1
        assert ledger.counts == {"retry_budget.granted": 2, "retry_budget.denied": 1}

    def test_refills_continuously(self):
        clock = FakeClock()
        bucket = RetryTokenBucket(capacity=2, refill_per_s=1.0, clock=clock)
        assert bucket.try_acquire(2) is True
        assert bucket.try_acquire() is False
        clock.advance(1.5)
        assert bucket.available() == 1
        assert bucket.try_acquire() is True
        clock.advance(100.0)  # refill clamps at capacity
        assert bucket.available() == 2

    def test_zero_capacity_always_denies(self):
        bucket = RetryTokenBucket(capacity=0)
        assert bucket.try_acquire() is False


class TestModuleConveniences:
    def test_budget_remaining_passthrough_without_budget(self):
        assert budget_remaining(None, 7.0) == 7.0
        clock = FakeClock()
        assert budget_remaining(Budget(deadline_s=2.0, clock=clock), 7.0) == 2.0

    def test_budget_check_passthrough_without_budget(self):
        budget_check(None, "anything")
        b = Budget()
        b.cancel()
        with pytest.raises(SessionCancelled):
            budget_check(b, "wait")
