"""Planner: plan shapes, pushdown, join ordering, error reporting."""

import pytest

from repro.common.errors import CatalogError, PlanError
from repro.sql.plan import (
    LogicalAggregate,
    LogicalDistinct,
    LogicalFilter,
    LogicalJoin,
    LogicalLimit,
    LogicalProject,
    LogicalScan,
    LogicalSort,
)


def find_nodes(plan, node_type):
    found = []

    def visit(node):
        if isinstance(node, node_type):
            found.append(node)
        for child in node.children():
            visit(child)

    visit(plan)
    return found


class TestPlanShapes:
    def test_scan_project(self, users_carts):
        plan = users_carts.plan("SELECT age FROM users")
        assert isinstance(plan, LogicalProject)
        assert isinstance(plan.child, LogicalScan)

    def test_filter_pushed_into_scan(self, users_carts):
        plan = users_carts.plan("SELECT age FROM users WHERE age > 30")
        scans = find_nodes(plan, LogicalScan)
        assert scans[0].pushed_filter is not None
        assert find_nodes(plan, LogicalFilter) == []

    def test_join_from_comma_syntax(self, users_carts):
        plan = users_carts.plan(
            "SELECT U.age FROM carts C, users U WHERE C.userid = U.userid"
        )
        joins = find_nodes(plan, LogicalJoin)
        assert len(joins) == 1
        assert joins[0].kind == "inner"
        assert len(joins[0].left_keys) == 1

    def test_join_pushdown_of_single_table_predicate(self, users_carts):
        plan = users_carts.plan(
            "SELECT U.age FROM carts C, users U "
            "WHERE C.userid = U.userid AND U.country = 'USA'"
        )
        scans = find_nodes(plan, LogicalScan)
        users_scan = next(s for s in scans if s.table.name == "users")
        assert users_scan.pushed_filter is not None
        assert "country" in users_scan.pushed_filter.to_sql()

    def test_smaller_table_drives_join_order(self, users_carts):
        plan = users_carts.plan(
            "SELECT 1 FROM carts C, users U WHERE C.userid = U.userid"
        )
        (join,) = find_nodes(plan, LogicalJoin)
        # users (5 rows) is smaller than carts (7 rows): it becomes the
        # left/build input under the greedy smallest-first ordering.
        assert isinstance(join.left, LogicalScan)
        assert join.left.table.name == "users"

    def test_three_way_join(self, engine, users_carts):
        from repro.sql.types import DataType, Schema

        engine.create_table(
            "countries", Schema.of(("code", DataType.VARCHAR), ("region", DataType.VARCHAR)),
            [("USA", "NA"), ("DE", "EU")],
        )
        plan = engine.plan(
            "SELECT U.age, X.region FROM carts C, users U, countries X "
            "WHERE C.userid = U.userid AND U.country = X.code"
        )
        assert len(find_nodes(plan, LogicalJoin)) == 2

    def test_explicit_left_join(self, users_carts):
        plan = users_carts.plan(
            "SELECT U.age FROM users U LEFT JOIN carts C ON U.userid = C.userid"
        )
        (join,) = find_nodes(plan, LogicalJoin)
        assert join.kind == "left"

    def test_distinct_and_sort_and_limit(self, users_carts):
        plan = users_carts.plan(
            "SELECT DISTINCT country FROM users ORDER BY country LIMIT 2"
        )
        assert isinstance(plan, LogicalLimit)
        assert isinstance(plan.child, LogicalSort)
        assert isinstance(plan.child.child, LogicalDistinct)

    def test_aggregate_plan(self, users_carts):
        plan = users_carts.plan("SELECT gender, COUNT(*) FROM users GROUP BY gender")
        aggs = find_nodes(plan, LogicalAggregate)
        assert len(aggs) == 1
        assert len(aggs[0].agg_calls) == 1

    def test_having_becomes_filter_over_aggregate(self, users_carts):
        plan = users_carts.plan(
            "SELECT gender FROM users GROUP BY gender HAVING COUNT(*) > 1"
        )
        filters = find_nodes(plan, LogicalFilter)
        assert len(filters) == 1
        assert isinstance(filters[0].child, LogicalAggregate)

    def test_star_expansion(self, users_carts):
        plan = users_carts.plan("SELECT * FROM users")
        assert plan.schema.names == ["userid", "age", "gender", "country"]

    def test_output_names(self, users_carts):
        plan = users_carts.plan("SELECT age AS years, age + 1, gender FROM users")
        assert plan.schema.names == ["years", "_c1", "gender"]

    def test_explain_renders_tree(self, users_carts):
        text = users_carts.explain(
            "SELECT U.age FROM carts C, users U WHERE C.userid = U.userid"
        )
        assert "Join" in text
        assert "Scan(users AS U" in text


class TestPlannerErrors:
    def test_unknown_table(self, users_carts):
        with pytest.raises(CatalogError, match="nosuch"):
            users_carts.plan("SELECT 1 FROM nosuch")

    def test_unknown_column_lists_candidates(self, users_carts):
        with pytest.raises(PlanError, match="unknown column"):
            users_carts.plan("SELECT nocolumn FROM users")

    def test_ambiguous_column(self, users_carts):
        with pytest.raises(PlanError, match="ambiguous"):
            users_carts.plan(
                "SELECT userid FROM users U, carts C WHERE U.userid = C.userid"
            )

    def test_duplicate_alias(self, users_carts):
        with pytest.raises(PlanError, match="duplicate"):
            users_carts.plan("SELECT 1 FROM users U, carts U")

    def test_ungrouped_column_rejected(self, users_carts):
        with pytest.raises(PlanError, match="neither grouped nor aggregated"):
            users_carts.plan("SELECT age, COUNT(*) FROM users GROUP BY gender")

    def test_aggregate_in_where_rejected(self, users_carts):
        with pytest.raises(PlanError, match="WHERE"):
            users_carts.plan("SELECT age FROM users WHERE COUNT(*) > 1")

    def test_having_without_group_rejected(self, users_carts):
        with pytest.raises(PlanError, match="HAVING"):
            users_carts.plan("SELECT age FROM users HAVING age > 1")

    def test_table_udf_args_must_be_constant(self, users_carts):
        from repro.transform import LocalDistinctUDF

        users_carts.register_table_udf(LocalDistinctUDF())
        with pytest.raises(PlanError, match="constant"):
            users_carts.plan(
                "SELECT * FROM TABLE(local_distinct(users, gender)) AS d"
            )
