"""The ML algorithms: each must genuinely learn on constructed data."""

import numpy as np
import pytest

from repro.common.errors import MLError
from repro.ml.algorithms import (
    DecisionTree,
    KMeans,
    LinearRegression,
    LogisticRegressionWithSGD,
    NaiveBayes,
    SVMWithSGD,
)
from repro.ml.dataset import Dataset, LabeledPoint


def make_separable(n=400, seed=3, margin=1.0, num_partitions=4) -> Dataset:
    """Linearly separable 2-D blobs with labels 0/1."""
    rng = np.random.default_rng(seed)
    points = []
    for _ in range(n // 2):
        points.append(LabeledPoint(1.0, rng.normal((2.0, 2.0), 0.5) + margin))
        points.append(LabeledPoint(0.0, rng.normal((-2.0, -2.0), 0.5) - margin))
    return Dataset.from_records(points, num_partitions)


def accuracy(model, dataset) -> float:
    X, y = dataset.to_arrays()
    return float((np.asarray(model.predict_many(X)) == y).mean())


class TestSVM:
    def test_learns_separable_data(self):
        ds = make_separable()
        model = SVMWithSGD.train(ds, iterations=50, step=1.0, reg_param=0.01)
        assert accuracy(model, ds) > 0.97

    def test_deterministic_under_seed(self):
        ds = make_separable()
        m1 = SVMWithSGD.train(ds, iterations=10, minibatch_fraction=0.5, seed=9)
        m2 = SVMWithSGD.train(ds, iterations=10, minibatch_fraction=0.5, seed=9)
        assert np.array_equal(m1.weights, m2.weights)

    def test_minibatch_trains(self):
        ds = make_separable()
        model = SVMWithSGD.train(ds, iterations=60, minibatch_fraction=0.3)
        assert accuracy(model, ds) > 0.9

    def test_single_prediction_api(self):
        ds = make_separable()
        model = SVMWithSGD.train(ds, iterations=30)
        assert model.predict(np.array([3.0, 3.0])) == 1
        assert model.predict(np.array([-3.0, -3.0])) == 0
        assert model.decision(np.array([3.0, 3.0])) > 0

    def test_empty_dataset_rejected(self):
        with pytest.raises(MLError):
            SVMWithSGD.train(Dataset([[]]))

    def test_inconsistent_dims_rejected(self):
        parts = [
            [LabeledPoint(1.0, np.array([1.0, 2.0]))],
            [LabeledPoint(0.0, np.array([1.0]))],
        ]
        with pytest.raises(MLError, match="dimensions"):
            SVMWithSGD.train(Dataset(parts))


class TestLogisticRegression:
    def test_learns_separable_data(self):
        ds = make_separable()
        model = LogisticRegressionWithSGD.train(ds, iterations=80, step=1.0)
        assert accuracy(model, ds) > 0.97

    def test_probabilities_ordered(self):
        ds = make_separable()
        model = LogisticRegressionWithSGD.train(ds, iterations=80)
        p_pos = model.predict_probability(np.array([3.0, 3.0]))
        p_neg = model.predict_probability(np.array([-3.0, -3.0]))
        assert p_pos > 0.9 > 0.1 > p_neg

    def test_regularization_shrinks_weights(self):
        ds = make_separable()
        free = LogisticRegressionWithSGD.train(ds, iterations=60, reg_param=0.0)
        ridge = LogisticRegressionWithSGD.train(ds, iterations=60, reg_param=5.0)
        assert np.linalg.norm(ridge.weights) < np.linalg.norm(free.weights)


class TestNaiveBayes:
    def test_learns_indicator_features(self):
        rng = np.random.default_rng(1)
        points = []
        for _ in range(400):
            label = rng.random() < 0.5
            # Feature 0 fires mostly for class 1, feature 1 for class 0.
            f0 = 1.0 if (label and rng.random() < 0.9) or (not label and rng.random() < 0.1) else 0.0
            f1 = 1.0 - f0
            points.append(LabeledPoint(float(label), np.array([f0, f1, 1.0])))
        ds = Dataset.from_records(points, 4)
        model = NaiveBayes.train(ds)
        assert accuracy(model, ds) > 0.85

    def test_multiclass(self):
        points = []
        for label in (0.0, 1.0, 2.0):
            for _ in range(30):
                features = np.zeros(3)
                features[int(label)] = 5.0
                points.append(LabeledPoint(label, features + 0.1))
        ds = Dataset.from_records(points, 3)
        model = NaiveBayes.train(ds)
        assert model.predict(np.array([5.0, 0.1, 0.1])) == 0.0
        assert model.predict(np.array([0.1, 5.0, 0.1])) == 1.0
        assert model.predict(np.array([0.1, 0.1, 5.0])) == 2.0

    def test_negative_features_rejected(self):
        points = [LabeledPoint(0.0, np.array([-1.0]))]
        with pytest.raises(MLError, match="non-negative"):
            NaiveBayes.train(Dataset([points]))


class TestDecisionTree:
    def test_learns_xor(self):
        """XOR is the canonical not-linearly-separable case a tree nails."""
        rng = np.random.default_rng(2)
        points = []
        for _ in range(400):
            x, y = rng.random() * 2 - 1, rng.random() * 2 - 1
            label = float((x > 0) != (y > 0))
            points.append(LabeledPoint(label, np.array([x, y])))
        ds = Dataset.from_records(points, 4)
        model = DecisionTree.train(ds, max_depth=4)
        assert accuracy(model, ds) > 0.95
        assert model.depth >= 2

    def test_pure_leaf_stops_growth(self):
        points = [LabeledPoint(1.0, np.array([float(i)])) for i in range(20)]
        model = DecisionTree.train(Dataset([points]))
        assert model.depth == 0  # all one class: a single leaf

    def test_max_depth_respected(self):
        rng = np.random.default_rng(4)
        points = [
            LabeledPoint(float(rng.random() < 0.5), rng.random(3)) for _ in range(300)
        ]
        model = DecisionTree.train(Dataset.from_records(points, 2), max_depth=2)
        assert model.depth <= 2

    def test_nonbinary_labels_rejected(self):
        points = [LabeledPoint(2.0, np.array([1.0]))]
        with pytest.raises(MLError, match="binary"):
            DecisionTree.train(Dataset([points]))


class TestKMeans:
    def test_finds_three_blobs(self):
        rng = np.random.default_rng(5)
        centers = np.array([[0.0, 0.0], [10.0, 10.0], [-10.0, 10.0]])
        records = [
            rng.normal(centers[i % 3], 0.5) for i in range(300)
        ]
        ds = Dataset.from_records(records, 4)
        model = KMeans.train(ds, k=3, seed=11)
        found = model.centers[np.argsort(model.centers[:, 0])]
        expected = centers[np.argsort(centers[:, 0])]
        assert np.allclose(found, expected, atol=0.5)

    def test_cost_decreases_with_more_clusters(self):
        rng = np.random.default_rng(6)
        records = [rng.random(2) * 10 for _ in range(200)]
        ds = Dataset.from_records(records, 2)
        cost2 = KMeans.train(ds, k=2, seed=1).cost
        cost8 = KMeans.train(ds, k=8, seed=1).cost
        assert cost8 < cost2

    def test_accepts_labeled_points(self):
        points = [LabeledPoint(0.0, np.array([float(i), 0.0])) for i in range(10)]
        model = KMeans.train(Dataset([points]), k=2)
        assert model.centers.shape == (2, 2)

    def test_k_larger_than_data_rejected(self):
        with pytest.raises(MLError):
            KMeans.train(Dataset([[np.array([1.0])]]), k=5)

    def test_predict(self):
        records = [np.array([0.0]), np.array([100.0])]
        model = KMeans.train(Dataset([records]), k=2)
        assert model.predict(np.array([1.0])) != model.predict(np.array([99.0]))


class TestLinearRegression:
    def test_exact_on_linear_data(self):
        rng = np.random.default_rng(7)
        X = rng.random((200, 3)) * 10
        y = X @ np.array([2.0, -1.0, 0.5]) + 4.0
        points = [LabeledPoint(label, row) for row, label in zip(X, y)]
        model = LinearRegression.train(Dataset.from_records(points, 4))
        assert np.allclose(model.weights, [2.0, -1.0, 0.5], atol=1e-8)
        assert model.intercept == pytest.approx(4.0, abs=1e-8)

    def test_ridge_shrinks(self):
        rng = np.random.default_rng(8)
        X = rng.random((100, 2))
        y = X @ np.array([5.0, 5.0]) + rng.normal(0, 0.1, 100)
        points = [LabeledPoint(label, row) for row, label in zip(X, y)]
        ds = Dataset.from_records(points, 2)
        free = LinearRegression.train(ds, reg_param=0.0)
        ridge = LinearRegression.train(ds, reg_param=100.0)
        assert np.linalg.norm(ridge.weights) < np.linalg.norm(free.weights)

    def test_sgd_approximates_closed_form(self):
        rng = np.random.default_rng(9)
        X = rng.random((300, 2))
        y = X @ np.array([1.5, -0.5]) + 1.0
        points = [LabeledPoint(label, row) for row, label in zip(X, y)]
        ds = Dataset.from_records(points, 4)
        exact = LinearRegression.train(ds)
        sgd = LinearRegression.train_sgd(ds, iterations=3000, step=0.5)
        assert np.allclose(sgd.weights, exact.weights, atol=0.05)

    def test_empty_rejected(self):
        with pytest.raises(MLError):
            LinearRegression.train(Dataset([[]]))
