"""Columnar format: roundtrip, SQL scans, and §2.1's dictionary argument."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.columnar.format import (
    ColumnarInputFormat,
    decode_partition,
    encode_partition,
    read_partition_dictionary,
    write_table,
)
from repro.common.errors import CatalogError, ExecutionError
from repro.iofmt.inputformat import JobConf
from repro.sql.types import DataType, Schema
from repro.transform.recode import RecodeMap

SCHEMA = Schema.of(
    ("age", DataType.INT),
    ("gender", DataType.VARCHAR),
    ("amount", DataType.DOUBLE),
    ("abandoned", DataType.VARCHAR),
)

ROWS = [
    (57, "F", 142.65, "Yes"),
    (40, "M", 299.99, "Yes"),
    (35, "F", 18.0, "No"),
    (None, None, None, None),
]


class TestEncodeDecode:
    def test_roundtrip(self):
        names, rows = decode_partition(encode_partition(SCHEMA, ROWS))
        assert names == ["age", "gender", "amount", "abandoned"]
        assert rows == ROWS

    def test_empty_partition(self):
        names, rows = decode_partition(encode_partition(SCHEMA, []))
        assert rows == []

    def test_bad_magic_rejected(self):
        with pytest.raises(ExecutionError, match="magic"):
            decode_partition(b'{"magic": "NOPE", "rows": 0, "columns": []}')

    @settings(max_examples=30, deadline=None)
    @given(
        rows=st.lists(
            st.tuples(
                st.one_of(st.none(), st.integers(-100, 100)),
                st.one_of(st.none(), st.sampled_from(["a", "bb", "ccc"])),
                st.one_of(st.none(), st.floats(-10, 10)),
                st.one_of(st.none(), st.sampled_from(["Yes", "No"])),
            ),
            max_size=40,
        )
    )
    def test_roundtrip_property(self, rows):
        _names, decoded = decode_partition(encode_partition(SCHEMA, rows))
        assert decoded == rows

    def test_dictionary_compression_shrinks_repetitive_strings(self):
        repetitive = [(i, "verylongcategoryvalue", 1.0, "No") for i in range(500)]
        schema = SCHEMA
        columnar_bytes = len(encode_partition(schema, repetitive))
        text_bytes = sum(
            len(f"{i},verylongcategoryvalue,1.0,No\n") for i in range(500)
        )
        assert columnar_bytes < 0.6 * text_bytes


class TestPaper21DictionaryArgument:
    """§2.1's three reasons dictionary codes cannot serve as recode values,
    demonstrated on real files."""

    def make_partitioned_files(self, dfs):
        # Partition 0 sees M first; partition 1 sees F first.
        partitions = [
            [(40, "M", 1.0, "Yes"), (57, "F", 2.0, "Yes")],
            [(35, "F", 3.0, "No"), (22, "M", 4.0, "No")],
        ]
        write_table(dfs, "/col/demo", SCHEMA, partitions)
        return [f"/col/demo/part-{i:05d}.rcol" for i in range(2)]

    def test_local_dictionaries_disagree_across_partitions(self, dfs):
        """Reason 2: 'we cannot directly use the local encoded integers for
        the global recoding' — the same value has different codes in
        different partitions."""
        files = self.make_partitioned_files(dfs)
        dict0 = read_partition_dictionary(dfs, files[0], "gender")
        dict1 = read_partition_dictionary(dfs, files[1], "gender")
        assert dict0 == ["M", "F"]  # M coded 0 here...
        assert dict1 == ["F", "M"]  # ...but 1 here

    def test_codes_not_consecutive_from_one(self, dfs):
        """Reason 3: SystemML-style consumers need consecutive integers
        starting from 1; file-local codes are 0-based."""
        files = self.make_partitioned_files(dfs)
        dict0 = read_partition_dictionary(dfs, files[0], "gender")
        local_codes = {value: code for code, value in enumerate(dict0)}
        assert 0 in local_codes.values()  # 0-based: violates the contract
        global_map = RecodeMap.from_distinct_rows(
            [("gender", "M"), ("gender", "F")]
        )
        assert sorted(global_map.mapping("gender").values()) == [1, 2]

    def test_filtered_recode_differs_from_full_dictionary(self, dfs):
        """Reason 4: 'the recoding needs to be done on filtered data' — a
        filter shrinks the value set below what any whole-table dictionary
        says."""
        partitions = [
            [(40, "M", 1.0, "Yes"), (57, "F", 2.0, "Yes"), (30, "X", 0.5, "No")]
        ]
        write_table(dfs, "/col/filtered", SCHEMA, partitions)
        full_dict = read_partition_dictionary(
            dfs, "/col/filtered/part-00000.rcol", "gender"
        )
        assert set(full_dict) == {"M", "F", "X"}
        # the query filters to amount >= 1.0: only M and F survive
        filtered_map = RecodeMap.from_distinct_rows(
            [("gender", "M"), ("gender", "F")]
        )
        assert filtered_map.cardinality("gender") == 2 != len(full_dict)

    def test_non_dict_column_rejected(self, dfs):
        self.make_partitioned_files(dfs)
        with pytest.raises(ExecutionError, match="not dictionary-encoded"):
            read_partition_dictionary(dfs, "/col/demo/part-00000.rcol", "age")


class TestSqlOverColumnar:
    def test_scan_matches_csv_scan(self, engine, dfs):
        rows = [(i, "FM"[i % 2], float(i) * 1.5, ["Yes", "No"][i % 2]) for i in range(200)]
        # CSV copy
        text = "\n".join(
            f"{a},{g},{m},{ab}" for a, g, m, ab in rows
        ) + "\n"
        dfs.write_text("/t/csv/part-0", text)
        engine.register_external_table("t_csv", SCHEMA, "/t/csv")
        # columnar copy, split over 3 part files
        thirds = [rows[0::3], rows[1::3], rows[2::3]]
        write_table(dfs, "/t/col", SCHEMA, thirds)
        engine.register_external_table("t_col", SCHEMA, "/t/col", format="columnar")

        sql = "SELECT age, gender, amount, abandoned FROM {} WHERE amount > 30"
        assert sorted(engine.query_rows(sql.format("t_col"))) == sorted(
            engine.query_rows(sql.format("t_csv"))
        )

    def test_columnar_scan_costs_fewer_bytes(self, engine, dfs):
        rows = [(i, "category_" + "FM"[i % 2], float(i), "Yes") for i in range(400)]
        text = "\n".join(f"{a},{g},{m},{ab}" for a, g, m, ab in rows) + "\n"
        dfs.write_text("/sz/csv/part-0", text)
        write_table(dfs, "/sz/col", SCHEMA, [rows])
        engine.register_external_table("sz_csv", SCHEMA, "/sz/csv")
        engine.register_external_table("sz_col", SCHEMA, "/sz/col", format="columnar")
        ledger = engine.cluster.ledger
        before = ledger.get("sql.scan")
        engine.query_rows("SELECT COUNT(*) FROM sz_csv")
        csv_scan = ledger.get("sql.scan") - before
        before = ledger.get("sql.scan")
        engine.query_rows("SELECT COUNT(*) FROM sz_col")
        col_scan = ledger.get("sql.scan") - before
        assert col_scan < csv_scan

    def test_transform_pipeline_over_columnar(self, deployment):
        """The whole In-SQL transformation works identically over a
        columnar warehouse table."""
        rows = [
            (30 + i % 40, "FM"[i % 2], float(i), ["Yes", "No"][(i // 2) % 2])
            for i in range(120)
        ]
        write_table(deployment.dfs, "/wh/carts_col", SCHEMA, [rows[0::2], rows[1::2]])
        deployment.engine.register_external_table(
            "carts_col", SCHEMA, "/wh/carts_col", format="columnar"
        )
        from repro.transform.spec import TransformSpec

        spec = TransformSpec(recode=("gender", "abandoned"), dummy=("gender",), label="abandoned")
        result = deployment.pipeline.run_insql_stream(
            "SELECT age, gender, amount, abandoned FROM carts_col", spec, "noop"
        )
        assert result.ml_result.dataset.count() == 120
        labels = {lp.label for lp in result.ml_result.dataset.collect()}
        assert labels == {0.0, 1.0}

    def test_unknown_format_rejected(self, engine):
        with pytest.raises(CatalogError, match="unknown external format"):
            engine.register_external_table("x", SCHEMA, "/p", format="orc")

    def test_input_format_splits_per_file(self, dfs):
        write_table(dfs, "/split/demo", SCHEMA, [ROWS[:2], ROWS[2:], []])
        conf = JobConf({"input.path": "/split/demo"}, dfs=dfs)
        splits = ColumnarInputFormat().get_splits(conf, 99)
        assert len(splits) == 3
        fmt = ColumnarInputFormat()
        rows = []
        for split in splits:
            with fmt.create_record_reader(split, conf) as reader:
                rows.extend(reader)
        assert sorted(map(repr, rows)) == sorted(map(repr, ROWS))
