"""Expression evaluation: typing, NULL semantics, functions, rendering."""

import pytest
from hypothesis import given, strategies as st

from repro.common.errors import PlanError
from repro.sql.expressions import (
    AggregateCall,
    And,
    Arithmetic,
    Binder,
    ColumnRef,
    Comparison,
    FunctionRegistry,
    Literal,
    Not,
    Or,
    Star,
    combine_conjuncts,
    conjuncts,
    transform,
    walk,
)
from repro.sql.parser import parse_expression
from repro.sql.types import Column, DataType, Schema

SCHEMA = Schema.of(
    ("a", DataType.INT),
    ("b", DataType.DOUBLE),
    ("s", DataType.VARCHAR),
    ("flag", DataType.BOOLEAN),
)


def evaluate(sql: str, row: tuple):
    expr = parse_expression(sql)
    return expr.bind(Binder(SCHEMA))(row)


ROW = (10, 2.5, "hello", True)


class TestArithmetic:
    def test_basics(self):
        assert evaluate("a + 5", ROW) == 15
        assert evaluate("a - b", ROW) == 7.5
        assert evaluate("a * 2", ROW) == 20
        assert evaluate("a % 3", ROW) == 1

    def test_integer_division_truncates_toward_zero(self):
        assert evaluate("7 / 2", ROW) == 3
        assert evaluate("-7 / 2", ROW) == -3
        assert evaluate("7 / -2", ROW) == -3

    def test_float_division(self):
        assert evaluate("7 / 2.0", ROW) == 3.5

    def test_null_propagation(self):
        assert evaluate("a + 1", (None, 0, "", False)) is None

    def test_type_inference(self):
        binder = Binder(SCHEMA)
        assert parse_expression("a + 1").data_type(binder) is DataType.BIGINT
        assert parse_expression("a + b").data_type(binder) is DataType.DOUBLE

    def test_arith_on_string_rejected(self):
        with pytest.raises(PlanError):
            parse_expression("s * 2").data_type(Binder(SCHEMA))


class TestComparisons:
    def test_all_ops(self):
        assert evaluate("a = 10", ROW) is True
        assert evaluate("a <> 10", ROW) is False
        assert evaluate("a < 11", ROW) is True
        assert evaluate("a <= 10", ROW) is True
        assert evaluate("a > 10", ROW) is False
        assert evaluate("a >= 10", ROW) is True

    def test_string_comparison(self):
        assert evaluate("s = 'hello'", ROW) is True

    def test_null_yields_null(self):
        assert evaluate("a = 10", (None, 0, "", False)) is None

    def test_flipped(self):
        original = parse_expression("a < 5")
        flipped = original.flipped()
        assert flipped == Comparison(">", Literal(5), ColumnRef(None, "a"))


class TestKleeneLogic:
    T, F, N = True, False, None

    @pytest.mark.parametrize(
        "left,right,expected",
        [(T, T, T), (T, F, F), (T, N, N), (F, F, F), (F, N, F), (N, N, N)],
    )
    def test_and(self, left, right, expected):
        expr = And((Literal(left), Literal(right)))
        assert expr.bind(Binder(SCHEMA))(()) is expected

    @pytest.mark.parametrize(
        "left,right,expected",
        [(T, T, T), (T, F, T), (T, N, T), (F, F, F), (F, N, N), (N, N, N)],
    )
    def test_or(self, left, right, expected):
        expr = Or((Literal(left), Literal(right)))
        assert expr.bind(Binder(SCHEMA))(()) is expected

    def test_not_null(self):
        assert Not(Literal(None)).bind(Binder(SCHEMA))(()) is None

    @given(st.lists(st.sampled_from([True, False, None]), min_size=1, max_size=6))
    def test_and_matches_kleene_reference(self, values):
        expr = And(tuple(Literal(v) for v in values))
        result = expr.bind(Binder(SCHEMA))(())
        if False in values:
            assert result is False
        elif None in values:
            assert result is None
        else:
            assert result is True

    @given(st.lists(st.sampled_from([True, False, None]), min_size=1, max_size=6))
    def test_or_matches_kleene_reference(self, values):
        expr = Or(tuple(Literal(v) for v in values))
        result = expr.bind(Binder(SCHEMA))(())
        if True in values:
            assert result is True
        elif None in values:
            assert result is None
        else:
            assert result is False


class TestPredicates:
    def test_is_null(self):
        assert evaluate("a IS NULL", (None, 0, "", False)) is True
        assert evaluate("a IS NOT NULL", ROW) is True

    def test_in_list(self):
        assert evaluate("a IN (1, 10, 100)", ROW) is True
        assert evaluate("a NOT IN (1, 2)", ROW) is True

    def test_in_with_null_member(self):
        # 10 IN (1, NULL) is NULL (unknown), 10 IN (10, NULL) is TRUE.
        assert evaluate("a IN (1, NULL)", ROW) is None
        assert evaluate("a IN (10, NULL)", ROW) is True

    def test_between(self):
        assert evaluate("a BETWEEN 5 AND 15", ROW) is True
        assert evaluate("a BETWEEN 11 AND 15", ROW) is False
        assert evaluate("a NOT BETWEEN 11 AND 15", ROW) is True
        assert evaluate("a BETWEEN 10 AND 10", ROW) is True  # inclusive

    def test_like(self):
        assert evaluate("s LIKE 'he%'", ROW) is True
        assert evaluate("s LIKE 'h_llo'", ROW) is True
        assert evaluate("s LIKE 'x%'", ROW) is False
        assert evaluate("s NOT LIKE 'x%'", ROW) is True

    def test_like_escapes_regex_chars(self):
        row = (0, 0.0, "a.c", False)
        assert evaluate("s LIKE 'a.c'", row) is True
        assert evaluate("s LIKE 'a_c'", row) is True
        row2 = (0, 0.0, "abc", False)
        assert evaluate("s LIKE 'a.c'", row2) is False


class TestCase:
    def test_case_when(self):
        sql = "CASE WHEN a > 100 THEN 'big' WHEN a > 5 THEN 'mid' ELSE 'small' END"
        assert evaluate(sql, ROW) == "mid"
        assert evaluate(sql, (200, 0.0, "", False)) == "big"
        assert evaluate(sql, (1, 0.0, "", False)) == "small"

    def test_case_without_else_yields_null(self):
        assert evaluate("CASE WHEN a > 100 THEN 1 END", ROW) is None


class TestFunctions:
    def test_builtins(self):
        assert evaluate("upper(s)", ROW) == "HELLO"
        assert evaluate("lower('ABC')", ROW) == "abc"
        assert evaluate("length(s)", ROW) == 5
        assert evaluate("abs(-3)", ROW) == 3
        assert evaluate("concat(s, '!')", ROW) == "hello!"
        assert evaluate("substr(s, 2, 3)", ROW) == "ell"
        assert evaluate("mod(a, 3)", ROW) == 1
        assert evaluate("floor(b)", ROW) == 2
        assert evaluate("ceil(b)", ROW) == 3
        assert evaluate("round(b)", ROW) == 2.0

    def test_null_in_null_out(self):
        assert evaluate("upper(s)", (0, 0.0, None, False)) is None

    def test_coalesce_accepts_nulls(self):
        assert evaluate("coalesce(s, 'dflt')", (0, 0.0, None, False)) == "dflt"
        assert evaluate("coalesce(s, 'dflt')", ROW) == "hello"

    def test_unknown_function(self):
        with pytest.raises(PlanError, match="unknown function"):
            evaluate("nosuch(a)", ROW)

    def test_user_registered_udf(self):
        registry = FunctionRegistry()
        registry.register("double_it", lambda x: x * 2, DataType.BIGINT)
        expr = parse_expression("double_it(a)")
        binder = Binder(SCHEMA, registry)
        assert expr.bind(binder)(ROW) == 20
        assert expr.data_type(binder) is DataType.BIGINT


class TestAggregates:
    def test_cannot_bind(self):
        with pytest.raises(PlanError):
            AggregateCall("sum", ColumnRef(None, "a")).bind(Binder(SCHEMA))

    def test_types(self):
        binder = Binder(SCHEMA)
        assert AggregateCall("count", Star()).data_type(binder) is DataType.BIGINT
        assert AggregateCall("avg", ColumnRef(None, "a")).data_type(binder) is DataType.DOUBLE
        assert AggregateCall("max", ColumnRef(None, "b")).data_type(binder) is DataType.DOUBLE

    def test_contains_aggregate(self):
        expr = parse_expression("COUNT(*) + 1")
        assert expr.contains_aggregate()
        assert not parse_expression("a + 1").contains_aggregate()


class TestStructural:
    def test_references(self):
        expr = parse_expression("U.age > 3 AND lower(name) = 'x'")
        assert expr.references() == {("U", "age"), (None, "name")}

    def test_equality_and_hash(self):
        a = parse_expression("a + 1 = 2")
        b = parse_expression("a + 1 = 2")
        assert a == b
        assert hash(a) == hash(b)

    def test_conjuncts_flatten(self):
        expr = parse_expression("a = 1 AND b = 2 AND c = 3")
        parts = conjuncts(expr)
        assert len(parts) == 3
        assert combine_conjuncts(parts) == And(tuple(parts))

    def test_conjuncts_of_none(self):
        assert conjuncts(None) == []
        assert combine_conjuncts([]) is None

    def test_combine_single(self):
        expr = parse_expression("a = 1")
        assert combine_conjuncts([expr]) is expr

    def test_walk_visits_all(self):
        expr = parse_expression("a + b * 2")
        nodes = list(walk(expr))
        assert len(nodes) == 5

    def test_transform_replaces_subtree(self):
        expr = parse_expression("a + b")

        def bump(node):
            if node == ColumnRef(None, "a"):
                return Literal(99)
            return None

        rewritten = transform(expr, bump)
        assert rewritten == Arithmetic("+", Literal(99), ColumnRef(None, "b"))
        # original untouched (frozen dataclasses)
        assert expr.left == ColumnRef(None, "a")

    def test_transform_rebuilds_case(self):
        expr = parse_expression("CASE WHEN a = 1 THEN b ELSE a END")

        def rename(node):
            if node == ColumnRef(None, "a"):
                return ColumnRef(None, "z")
            return None

        rewritten = transform(expr, rename)
        assert ("z" in {r[1] for r in rewritten.references()})
        assert ("a" not in {r[1] for r in rewritten.references()})


class TestSqlRendering:
    @pytest.mark.parametrize(
        "sql",
        [
            "a IS NOT NULL",
            "a IN (1, 2)",
            "s LIKE 'x%'",
            "a BETWEEN 1 AND 2",
            "NOT (a = 1)",
            "upper(s)",
            "CASE WHEN a = 1 THEN 2 ELSE 3 END",
        ],
    )
    def test_roundtrip(self, sql):
        expr = parse_expression(sql)
        assert parse_expression(expr.to_sql()) == expr

    def test_string_escaping(self):
        expr = Literal("it's")
        assert expr.to_sql() == "'it''s'"
        assert parse_expression(expr.to_sql()) == expr
