"""§6 fault injection + coordinated partial-restart recovery (chaos tests).

Every chaos scenario is parametrized over three RNG seeds: the faults land
at different points each seed, but recovery must always deliver the same
final answer as a fault-free run.
"""

import numpy as np
import pytest

from repro import make_deployment
from repro.broker.broker import MessageBroker
from repro.broker.consumer import BrokerConsumer
from repro.broker.producer import BrokerProducer
from repro.cluster.cost import CostLedger
from repro.common.errors import (
    ChannelTimeoutError,
    RetriesExhaustedError,
    WorkerFailedError,
)
from repro.faults import (
    FaultConfig,
    FaultInjector,
    RecoveryManager,
    RetryPolicy,
)
from repro.sql.types import DataType, Schema
from repro.transfer.channel import ChannelId, StreamChannel
from repro.transfer.stream_udf import plan_blocks

SEEDS = (0, 1, 2)


def make_points(deployment, n=500):
    rows = [(i, float(i % 7), float(i % 3), float(i % 2)) for i in range(n)]
    deployment.engine.create_table(
        "points",
        Schema.of(
            ("id", DataType.BIGINT),
            ("f1", DataType.DOUBLE),
            ("f2", DataType.DOUBLE),
            ("label", DataType.DOUBLE),
        ),
        rows,
    )
    return rows


def run_svm(deployment, session_id):
    deployment.coordinator.create_session(
        session_id,
        command="svm_with_sgd",
        args={"iterations": 5},
        conf_props={"record.format": "labeled_csv", "label.index": -1},
    )
    deployment.engine.query_rows(
        "SELECT * FROM TABLE(stream_transfer((SELECT f1, f2, label FROM points), "
        f"'{session_id}')) AS s"
    )
    return deployment.coordinator.wait_result(session_id)


# --------------------------------------------------------------------------
# FaultInjector: determinism and budgets
# --------------------------------------------------------------------------


class TestFaultInjector:
    def _drive(self, injector):
        """Exercise every site in a fixed order; return the event log."""
        for i in range(50):
            try:
                injector.check_send(f"ch-{i % 3}")
            except ChannelTimeoutError:
                pass
            try:
                injector.check_kill(i % 2, rows_streamed=i)
            except WorkerFailedError:
                pass
            injector.check_duplicate_fetch(f"t/{i % 2}")
        return list(injector.events)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_same_seed_same_faults(self, seed):
        config = FaultConfig(
            seed=seed,
            send_drop_rate=0.2,
            kill_sql_worker_rate=0.05,
            broker_duplicate_rate=0.1,
            max_kills=None,
            max_events=None,
        )
        a = self._drive(FaultInjector(config))
        b = self._drive(FaultInjector(config))
        assert a == b
        assert a  # the rates are high enough that something fired

    def test_interleaving_independence(self):
        """Per-site RNG streams: the decisions at one site do not depend on
        how calls to *other* sites interleave (thread-schedule immunity)."""
        config = FaultConfig(seed=7, send_drop_rate=0.3, max_events=None)

        def site_outcomes(injector, site, other_first):
            outcomes = []
            for i in range(30):
                if other_first:  # interleave foreign-site draws
                    try:
                        injector.check_send(f"other-{i}")
                    except ChannelTimeoutError:
                        pass
                try:
                    injector.check_send(site)
                    outcomes.append(False)
                except ChannelTimeoutError:
                    outcomes.append(True)
            return outcomes

        plain = site_outcomes(FaultInjector(config), "ch-A", other_first=False)
        interleaved = site_outcomes(FaultInjector(config), "ch-A", other_first=True)
        assert plain == interleaved

    def test_disabled_injector_never_fires(self):
        injector = FaultInjector.disabled()
        assert not injector.enabled
        for i in range(100):
            injector.check_send("ch")
            injector.check_kill(0, i)
            assert injector.check_duplicate_fetch("t/0") is False
            assert injector.corrupt_fetch(b"payload", "t/0") == b"payload"
        assert injector.events == []

    def test_kill_at_is_one_shot(self):
        injector = FaultInjector(FaultConfig(seed=0, kill_at={1: 10}))
        injector.check_kill(1, rows_streamed=5)  # below the point: survives
        with pytest.raises(WorkerFailedError) as exc:
            injector.check_kill(1, rows_streamed=10)
        assert exc.value.worker_id == 1
        # The replacement worker replays the same rows and must survive.
        injector.check_kill(1, rows_streamed=10)
        injector.check_kill(1, rows_streamed=500)
        assert injector.counts["kill"] == 1

    def test_event_budget_bounds_chaos(self):
        injector = FaultInjector(
            FaultConfig(seed=3, send_drop_rate=1.0, max_events=4)
        )
        fired = 0
        for _ in range(20):
            try:
                injector.check_send("ch")
            except ChannelTimeoutError:
                fired += 1
        assert fired == 4


# --------------------------------------------------------------------------
# RetryPolicy + RecoveryManager units
# --------------------------------------------------------------------------


class TestRetryPolicy:
    def test_deterministic_and_capped(self):
        policy = RetryPolicy(
            base_delay_s=0.001, multiplier=2.0, max_delay_s=0.004, jitter=0.5, seed=9
        )
        delays = [policy.delay_s(a, key="ch") for a in range(6)]
        assert delays == [policy.delay_s(a, key="ch") for a in range(6)]
        # exponential up to the cap, jitter multiplies by [1, 1.5)
        for attempt, delay in enumerate(delays):
            base = min(0.001 * 2.0**attempt, 0.004)
            assert base <= delay < base * 1.5
        assert max(delays) < 0.004 * 1.5

    def test_jitter_decorrelates_keys(self):
        policy = RetryPolicy(jitter=1.0, seed=0)
        assert policy.delay_s(0, key="a") != policy.delay_s(0, key="b")


class TestRecoveryManager:
    def test_heartbeat_staleness_detection(self):
        clock = {"now": 100.0}
        recovery = RecoveryManager(
            heartbeat_timeout_s=5.0, clock=lambda: clock["now"], sleep=lambda _s: None
        )
        recovery.heartbeat("s", 0)
        clock["now"] = 103.0
        recovery.heartbeat("s", 1)
        assert recovery.stale_workers("s") == []
        clock["now"] = 106.0  # worker 0 beat 6s ago, worker 1 only 3s ago
        assert recovery.stale_workers("s") == [0]
        assert recovery.last_heartbeat("s", 0) == 100.0
        assert recovery.stale_workers("unknown") == []

    def test_send_with_retry_recovers_transient(self):
        recovery = RecoveryManager(
            retry_policy=RetryPolicy(max_attempts=5), sleep=lambda _s: None
        )
        state = {"calls": 0}

        def flaky_send():
            state["calls"] += 1
            if state["calls"] <= 2:
                raise ChannelTimeoutError("blip")

        recovery.send_with_retry(flaky_send, "ch-0")
        assert state["calls"] == 3
        assert recovery.send_retries == 2

    def test_send_with_retry_exhausts(self):
        recovery = RecoveryManager(
            retry_policy=RetryPolicy(max_attempts=3), sleep=lambda _s: None
        )

        def dead_send():
            raise ChannelTimeoutError("gone")

        with pytest.raises(RetriesExhaustedError, match="3 times"):
            recovery.send_with_retry(dead_send, "ch-0")

    def test_partial_restart_budget(self):
        recovery = RecoveryManager(max_partial_restarts=2, sleep=lambda _s: None)

        class FakeCoordinator:
            def plan_partial_restart(self, session_id, worker_id, reason):
                return {"restart_sql_worker": worker_id, "restart_ml_workers": [7, 8]}

        coordinator = FakeCoordinator()
        for attempt in (1, 2):
            plan = recovery.begin_partial_restart(coordinator, "s", 1, "kill")
            assert plan["restart_ml_workers"] == [7, 8]
            assert recovery.restarts_of("s", 1) == attempt
        with pytest.raises(RetriesExhaustedError, match="budget"):
            recovery.begin_partial_restart(coordinator, "s", 1, "kill")
        assert [e.attempt for e in recovery.restart_events] == [1, 2]


# --------------------------------------------------------------------------
# Sequenced blocks + dedup at the channel level
# --------------------------------------------------------------------------


class TestSequencedChannel:
    def test_replay_deduplicated_and_charged_to_retry(self):
        ledger = CostLedger()
        channel = StreamChannel(ChannelId(0, 0), buffer_bytes=1 << 20, ledger=ledger)
        blocks = [[(i, float(i))] for i in range(4)]
        for seq, block in enumerate(blocks):
            channel.send_block(block, seq)
        sent = ledger.get("stream.sent")
        # A restarted worker replays everything, then sends one new block.
        for seq, block in enumerate(blocks):
            channel.send_block(block, seq, retry=True)
        channel.send_block([(4, 4.0)], 4, retry=True)
        channel.close()

        received = []
        while True:
            block = channel.receive_block(timeout=1.0)
            if block is None:
                break
            received.extend(block)
        assert received == [(i, float(i)) for i in range(5)]
        assert channel.duplicate_blocks == 4
        # Replay traffic lands only in the retry counters.
        assert ledger.get("stream.sent") == sent
        assert ledger.get("stream.retry") == channel.retry_bytes > 0

    def test_plan_blocks_deterministic_round_robin(self):
        partition = [(i,) for i in range(20)]
        blocks = plan_blocks(partition, k=3, batch_rows=4)
        assert blocks == plan_blocks(partition, k=3, batch_rows=4)
        # every row exactly once, channel i holds rows i, i+3, ...
        for target, _seq, rows in blocks:
            assert all(r[0] % 3 == target for r in rows)
        assert sorted(r[0] for _t, _s, rows in blocks for r in rows) == list(range(20))
        # per-channel sequence numbers are dense from 0
        for ch in range(3):
            seqs = [s for t, s, _r in blocks if t == ch]
            assert seqs == list(range(len(seqs)))


# --------------------------------------------------------------------------
# Chaos end-to-end: kill a SQL worker mid-stream, recover by partial restart
# --------------------------------------------------------------------------


class TestChaosPartialRestart:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_kill_mid_stream_recovers_with_identical_model(self, seed):
        """The acceptance scenario: a seeded kill of SQL worker 1 mid-stream
        completes via partial restart; the trained model is identical to the
        fault-free run and only the failed worker's pairs restarted."""
        clean = make_deployment(block_size=64 * 1024, batch_rows=16)
        make_points(clean)
        clean_result = run_svm(clean, "clean")

        injector = FaultInjector(FaultConfig(seed=seed, kill_at={1: 50}))
        chaos = make_deployment(
            block_size=64 * 1024, batch_rows=16, fault_injector=injector
        )
        make_points(chaos)
        before = chaos.cluster.ledger.snapshot()
        chaos_result = run_svm(chaos, "chaos")
        delta = chaos.cluster.ledger.delta(before, chaos.cluster.ledger.snapshot())

        # The kill actually happened and one partial restart recovered it.
        assert injector.counts["kill"] == 1
        recovery = chaos.coordinator.recovery
        assert [e.sql_worker_id for e in recovery.restart_events] == [1]

        # Exactly the failed worker's pairing restarted — the §6 plan.
        session = chaos.coordinator.session("chaos")
        plan = session.restart_plan(1)
        event = recovery.restart_events[0]
        assert list(event.ml_worker_indexes) == plan["restart_ml_workers"]
        assert session.recovery_log[0]["sql_worker_id"] == 1
        assert not session.failed

        # Replay traffic stayed inside worker 1's channel group.
        for worker_id, group in session.groups.items():
            for cid in group:
                channel = session.channels[cid]
                if worker_id == 1:
                    continue
                assert channel.retry_bytes == 0
                assert channel.duplicate_blocks == 0
        killed = [session.channels[cid] for cid in session.groups[1]]
        assert sum(c.retry_bytes for c in killed) == delta["stream.retry"] > 0
        assert sum(c.duplicate_blocks for c in killed) > 0

        # Exactly-once at the ML boundary: same dataset, same model, and the
        # ingested bytes match the fault-free run byte for byte.
        def sig(r):
            return sorted((lp.label, tuple(lp.features)) for lp in r.dataset.collect())

        assert sig(chaos_result) == sig(clean_result)
        assert np.array_equal(
            chaos_result.model.weights, clean_result.model.weights
        )
        clean_ingest = clean.cluster.ledger.get("ml.ingest")
        assert delta["ml.ingest"] == clean_ingest

    @pytest.mark.parametrize("seed", SEEDS)
    def test_transient_send_drops_are_retried(self, seed):
        injector = FaultInjector(
            FaultConfig(seed=seed, send_drop_rate=0.25, max_events=10)
        )
        recovery = RecoveryManager(
            injector=injector,
            retry_policy=RetryPolicy(max_attempts=10),
            sleep=lambda _s: None,
        )
        deployment = make_deployment(
            block_size=64 * 1024, batch_rows=16, recovery=recovery
        )
        rows = make_points(deployment)
        deployment.coordinator.create_session(
            "drops", command="noop", conf_props={"record.format": "raw"}
        )
        deployment.engine.query_rows(
            "SELECT * FROM TABLE(stream_transfer((SELECT f1, f2, label FROM points), "
            "'drops')) AS s"
        )
        result = deployment.coordinator.wait_result("drops")
        assert injector.counts["drop"] > 0
        assert deployment.coordinator.recovery.send_retries == injector.counts["drop"]
        received = sorted(result.dataset.collect())
        assert received == sorted((f1, f2, label) for _id, f1, f2, label in rows)

    def test_restart_budget_exhaustion_fails_session(self):
        """A worker that dies more often than the budget allows escalates:
        the session fails and the error reaches both sides."""
        injector = FaultInjector(
            FaultConfig(seed=0, kill_sql_worker_rate=1.0, max_kills=None)
        )
        recovery = RecoveryManager(
            injector=injector, max_partial_restarts=2, sleep=lambda _s: None
        )
        deployment = make_deployment(
            block_size=64 * 1024, batch_rows=16, recovery=recovery
        )
        make_points(deployment)
        deployment.coordinator.create_session(
            "doomed", command="noop", conf_props={"record.format": "raw"}
        )
        with pytest.raises(RetriesExhaustedError, match="budget"):
            deployment.engine.query_rows(
                "SELECT * FROM TABLE(stream_transfer((SELECT id FROM points), "
                "'doomed')) AS s"
            )
        session = deployment.coordinator.session("doomed")
        assert session.failed


class TestMlReaderKill:
    def test_ml_reader_death_recovers_at_pipeline_tier(self):
        """A dead ML reader is §6's fatal tier — its split cannot move
        mid-stream — so the pipeline's ``max_attempts`` full restart is the
        recovery path, and the retried attempt delivers complete data."""
        from repro.workloads import generate_retail

        injector = FaultInjector(FaultConfig(seed=0, kill_ml_at={2: 1}))
        deployment = make_deployment(
            block_size=64 * 1024, batch_rows=16, fault_injector=injector
        )
        wl = generate_retail(
            deployment.engine, deployment.dfs, num_users=100, num_carts=800, seed=5
        )
        deployment.pipeline.byte_scale = wl.byte_scale
        result = deployment.pipeline.run_insql_stream(
            wl.prep_sql, wl.spec, "noop", max_attempts=2
        )
        assert result.attempts == 2
        assert injector.counts["kill_ml"] == 1
        clean = deployment.pipeline.run_insql_stream(wl.prep_sql, wl.spec, "noop")

        def sig(r):
            return sorted(
                (lp.label, tuple(lp.features))
                for lp in r.ml_result.dataset.collect()
            )

        assert sig(result) == sig(clean)

    def test_ml_reader_kill_without_retry_budget_raises(self):
        from repro.workloads import generate_retail

        injector = FaultInjector(FaultConfig(seed=0, kill_ml_at={0: 1}))
        deployment = make_deployment(
            block_size=64 * 1024, batch_rows=16, fault_injector=injector
        )
        wl = generate_retail(
            deployment.engine, deployment.dfs, num_users=100, num_carts=800, seed=5
        )
        deployment.pipeline.byte_scale = wl.byte_scale
        from repro.common.errors import TransferError

        with pytest.raises(TransferError, match="ML reader 0"):
            deployment.pipeline.run_insql_stream(wl.prep_sql, wl.spec, "noop")


# --------------------------------------------------------------------------
# Fault-free invariance: framework installed but disabled
# --------------------------------------------------------------------------


class TestFaultFreeInvariance:
    def test_disabled_injector_is_byte_invariant(self):
        """Figure 3/4 protection: with the recovery stack installed and the
        injector disabled, every fault-free ledger total matches a plain
        deployment exactly; retry counters stay at zero."""
        plain = make_deployment(block_size=64 * 1024, batch_rows=16)
        make_points(plain)
        before_p = plain.cluster.ledger.snapshot()
        plain_result = run_svm(plain, "plain")
        delta_p = plain.cluster.ledger.delta(before_p, plain.cluster.ledger.snapshot())

        guarded = make_deployment(
            block_size=64 * 1024,
            batch_rows=16,
            fault_injector=FaultInjector.disabled(),
        )
        make_points(guarded)
        # The resilient protocol (sequenced frames, heartbeats, retry hooks)
        # really is active — this invariance is not vacuous.
        assert guarded.coordinator.recovery is not None
        before_g = guarded.cluster.ledger.snapshot()
        guarded_result = run_svm(guarded, "guarded")
        delta_g = guarded.cluster.ledger.delta(
            before_g, guarded.cluster.ledger.snapshot()
        )

        assert delta_g["stream.sent"] == delta_p["stream.sent"]
        assert delta_g["ml.ingest"] == delta_p["ml.ingest"]
        assert delta_g["ml.ingest"] == delta_g["stream.sent"]
        assert delta_g.get("stream.retry", 0) == 0
        assert guarded.coordinator.recovery.summary() == {
            "send_retries": 0,
            "partial_restarts": 0,
            "ml_recoveries": 0,
            "injected": {},
        }
        assert np.array_equal(
            guarded_result.model.weights, plain_result.model.weights
        )

    def test_heartbeats_flow_during_stream(self):
        deployment = make_deployment(
            block_size=64 * 1024,
            batch_rows=16,
            fault_injector=FaultInjector.disabled(),
        )
        make_points(deployment)
        deployment.coordinator.create_session(
            "beats", command="noop", conf_props={"record.format": "raw"}
        )
        deployment.engine.query_rows(
            "SELECT * FROM TABLE(stream_transfer((SELECT id FROM points), 'beats')) AS s"
        )
        deployment.coordinator.wait_result("beats")
        recovery = deployment.coordinator.recovery
        for worker_id in range(4):
            assert recovery.last_heartbeat("beats", worker_id) is not None
        assert recovery.stale_workers("beats") == []


# --------------------------------------------------------------------------
# Broker chaos: duplicate delivery and corrupted fetches
# --------------------------------------------------------------------------


def _fill_topic(broker, n=60, batch_rows=1):
    broker.create_topic("t", 2)
    producer = BrokerProducer(broker, "t", batch_rows=batch_rows)
    rows = [(i, float(i)) for i in range(n)]
    producer.send_many(rows)
    producer.close()
    return rows


class TestBrokerChaos:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_duplicate_fetches_deduplicated(self, seed):
        ledger = CostLedger()
        broker = MessageBroker(ledger=ledger)
        rows = _fill_topic(broker)
        injector = FaultInjector(
            FaultConfig(seed=seed, broker_duplicate_rate=0.5, max_events=None)
        )
        out = []
        dup_records = 0
        for partition in (0, 1):
            consumer = BrokerConsumer(
                broker, "t", partition, group="g", batch_size=3, injector=injector
            )
            out.extend(consumer)
            dup_records += consumer.duplicate_records
        assert sorted(out) == sorted(rows)  # exactly once despite redelivery
        assert injector.counts["duplicate"] > 0
        assert dup_records > 0
        assert ledger.get("broker.retry") > 0
        # Fault-free accounting untouched: broker.out counts each record once.
        assert ledger.get("broker.out") == ledger.get("broker.in")

    @pytest.mark.parametrize("seed", SEEDS)
    def test_corrupted_fetches_refetched(self, seed):
        ledger = CostLedger()
        broker = MessageBroker(ledger=ledger)
        rows = _fill_topic(broker)
        injector = FaultInjector(
            FaultConfig(seed=seed, broker_corrupt_rate=0.4, max_events=None)
        )
        out = []
        refetched = 0
        for partition in (0, 1):
            consumer = BrokerConsumer(
                broker, "t", partition, group="g", batch_size=3, injector=injector
            )
            out.extend(consumer)
            refetched += consumer.refetched_records
        assert sorted(out) == sorted(rows)
        assert injector.counts["corrupt"] > 0
        assert refetched == injector.counts["corrupt"]
        assert ledger.get("broker.retry") > 0
        assert ledger.get("broker.out") == ledger.get("broker.in")

    @pytest.mark.parametrize("seed", SEEDS)
    def test_producer_append_retries(self, seed):
        broker = MessageBroker()
        broker.create_topic("t", 2)
        injector = FaultInjector(
            FaultConfig(seed=seed, producer_drop_rate=0.3, max_events=None)
        )
        producer = BrokerProducer(
            broker,
            "t",
            batch_rows=2,
            injector=injector,
            retry_policy=RetryPolicy(max_attempts=50),
            sleep=lambda _s: None,
        )
        rows = [(i,) for i in range(80)]
        producer.send_many(rows)
        producer.close()
        assert injector.counts["producer_drop"] > 0
        assert producer.append_retries == injector.counts["producer_drop"]
        out = []
        for partition in (0, 1):
            out.extend(BrokerConsumer(broker, "t", partition, group="g"))
        assert sorted(out) == sorted(rows)  # retried appends never duplicate

    def test_producer_without_policy_propagates(self):
        broker = MessageBroker()
        broker.create_topic("t", 1)
        injector = FaultInjector(
            FaultConfig(seed=0, producer_drop_rate=1.0, max_events=1)
        )
        producer = BrokerProducer(broker, "t", injector=injector)
        with pytest.raises(ChannelTimeoutError, match="append"):
            producer.send_row((1,))


# --------------------------------------------------------------------------
# Degradation tier: streaming falls back to the DFS path
# --------------------------------------------------------------------------


class TestDegradeToDfs:
    def test_stream_failure_degrades_to_materialized_path(self):
        from repro.common.errors import MLError
        from repro.workloads import generate_retail

        deployment = make_deployment(block_size=64 * 1024)
        workload = generate_retail(
            deployment.engine, deployment.dfs, num_users=200, num_carts=2_000, seed=5
        )
        deployment.pipeline.byte_scale = workload.byte_scale

        state = {"calls": 0}

        def train(dataset, args):
            state["calls"] += 1
            if state["calls"] == 1:  # the streaming attempt dies
                raise MLError("injected trainer crash")
            return {"rows": dataset.count()}

        deployment.ml.register_algorithm("fragile", train)
        result = deployment.pipeline.run_insql_stream(
            workload.prep_sql,
            workload.spec,
            "fragile",
            max_attempts=1,
            degrade_to_dfs=True,
        )
        assert result.degraded_from == "insql+stream"
        assert result.approach == "insql"
        assert result.attempts == 1
        assert result.ml_result.model["rows"] > 0
        # The fallback took the materialized route: a real DFS write happened.
        assert deployment.cluster.ledger.get("dfs.write.local") > 0
