"""Validation utilities: splits, folds, cross-validation."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.common.errors import MLError
from repro.ml.algorithms import LogisticRegressionWithSGD
from repro.ml.dataset import Dataset, LabeledPoint
from repro.ml.validation import (
    cross_validate,
    evaluate_classifier,
    k_folds,
    mean_accuracy,
    train_test_split,
)


def make_dataset(n=200, seed=0):
    rng = np.random.default_rng(seed)
    points = [
        LabeledPoint(
            float(rng.random() < 0.5),
            rng.normal(0, 1, 2),
        )
        for _ in range(n)
    ]
    return Dataset.from_records(points, 4)


def separable_dataset(n=300, seed=1):
    rng = np.random.default_rng(seed)
    points = []
    for _ in range(n):
        label = rng.random() < 0.5
        center = (2.0, 2.0) if label else (-2.0, -2.0)
        points.append(LabeledPoint(float(label), rng.normal(center, 0.6)))
    return Dataset.from_records(points, 4)


class TestTrainTestSplit:
    def test_partition_preserved_and_disjoint(self):
        ds = make_dataset()
        train, test = train_test_split(ds, 0.25, seed=3)
        assert train.num_partitions == test.num_partitions == 4
        assert train.count() + test.count() == ds.count()
        train_set = {hash(p) for p in train.collect()}
        test_set = {hash(p) for p in test.collect()}
        assert not train_set & test_set

    def test_fraction_respected(self):
        ds = make_dataset(n=4000)
        _train, test = train_test_split(ds, 0.3, seed=5)
        assert 0.25 < test.count() / 4000 < 0.35

    def test_deterministic(self):
        ds = make_dataset()
        a1, b1 = train_test_split(ds, 0.2, seed=9)
        a2, b2 = train_test_split(ds, 0.2, seed=9)
        assert a1.count() == a2.count() and b1.count() == b2.count()

    def test_bad_fraction(self):
        with pytest.raises(MLError):
            train_test_split(make_dataset(), 0.0)
        with pytest.raises(MLError):
            train_test_split(make_dataset(), 1.0)


class TestKFolds:
    @settings(max_examples=15, deadline=None)
    @given(k=st.integers(2, 6), n=st.integers(20, 120))
    def test_every_record_in_exactly_one_validation_fold(self, k, n):
        ds = make_dataset(n=n, seed=n)
        folds = k_folds(ds, k, seed=1)
        assert len(folds) == k
        total_validation = sum(v.count() for _t, v in folds)
        assert total_validation == ds.count()
        for train, validation in folds:
            assert train.count() + validation.count() == ds.count()

    def test_k1_rejected(self):
        with pytest.raises(MLError):
            k_folds(make_dataset(), 1)


class TestEvaluation:
    def test_evaluate_separable(self):
        ds = separable_dataset()
        train, test = train_test_split(ds, 0.3, seed=2)
        model = LogisticRegressionWithSGD.train(train, iterations=60)
        result = evaluate_classifier(model, test)
        assert result.accuracy > 0.95
        assert result.test_records == test.count()
        assert 0.0 <= result.f1 <= 1.0

    def test_empty_test_rejected(self):
        model = LogisticRegressionWithSGD.train(separable_dataset(), iterations=5)
        with pytest.raises(MLError):
            evaluate_classifier(model, Dataset([[]]))

    def test_cross_validate(self):
        ds = separable_dataset()
        results = cross_validate(
            ds,
            trainer=lambda train: LogisticRegressionWithSGD.train(train, iterations=40),
            k=4,
            seed=3,
        )
        assert len(results) == 4
        assert mean_accuracy(results) > 0.9

    def test_mean_accuracy_empty(self):
        with pytest.raises(MLError):
            mean_accuracy([])
