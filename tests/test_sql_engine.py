"""Engine facade: DDL, UDF registration, materialized views, versions."""

import pytest

from repro.common.errors import CatalogError
from repro.sql.types import DataType, Schema
from repro.sql.udf import TableUDF


class TestDdl:
    def test_create_table_partitions_across_workers(self, engine):
        table = engine.create_table(
            "t", Schema.of(("x", DataType.INT)), [(i,) for i in range(10)]
        )
        assert len(table.partitions) == engine.num_workers
        assert table.num_rows() == 10

    def test_duplicate_table_rejected(self, engine):
        engine.create_table("t", Schema.of(("x", DataType.INT)), [])
        with pytest.raises(CatalogError, match="already exists"):
            engine.create_table("T", Schema.of(("x", DataType.INT)), [])

    def test_drop_table(self, engine):
        engine.create_table("t", Schema.of(("x", DataType.INT)), [])
        engine.drop_table("t")
        with pytest.raises(CatalogError):
            engine.query_rows("SELECT * FROM t")

    def test_drop_missing_raises(self, engine):
        with pytest.raises(CatalogError):
            engine.drop_table("ghost")

    def test_insert_rows_and_version_bump(self, engine):
        engine.create_table("t", Schema.of(("x", DataType.INT)), [(1,)])
        assert engine.catalog.get_entry("t").version == 0
        engine.insert_rows("t", [(2,), (3,)])
        assert engine.catalog.get_entry("t").version == 1
        assert sorted(engine.query_rows("SELECT x FROM t")) == [(1,), (2,), (3,)]

    def test_insert_into_external_rejected(self, engine, dfs):
        dfs.write_text("/e.csv", "1\n")
        engine.register_external_table("e", Schema.of(("x", DataType.INT)), "/e.csv")
        with pytest.raises(CatalogError):
            engine.insert_rows("e", [(2,)])

    def test_external_table_without_dfs_rejected(self, cluster):
        from repro.sql.engine import BigSQL

        engine = BigSQL(cluster, dfs=None)
        with pytest.raises(CatalogError, match="DFS"):
            engine.register_external_table("e", Schema.of(("x", DataType.INT)), "/e")


class TestScalarUdfs:
    def test_register_and_call(self, engine):
        engine.create_table("t", Schema.of(("x", DataType.INT)), [(3,), (4,)])
        engine.register_scalar_udf("square", lambda v: v * v, DataType.BIGINT)
        rows = engine.query_rows("SELECT square(x) FROM t ORDER BY x")
        assert rows == [(9,), (16,)]


class TestTableUdfs:
    class RepeatUDF(TableUDF):
        """Emits each row `times` times, tagged with the worker id."""

        name = "repeat_rows"

        def output_schema(self, input_schema, args):
            from repro.sql.types import Column

            return Schema(list(input_schema.columns) + [Column("worker", DataType.INT)])

        def process_partition(self, rows, input_schema, args, ctx):
            times = int(args[0])
            for row in rows:
                for _ in range(times):
                    yield row + (ctx.worker_id,)

    def test_invocation_and_context(self, engine):
        engine.create_table("t", Schema.of(("x", DataType.INT)), [(i,) for i in range(8)])
        engine.register_table_udf(self.RepeatUDF())
        rows = engine.query_rows("SELECT * FROM TABLE(repeat_rows(t, 2)) AS r")
        assert len(rows) == 16
        workers = {w for _x, w in rows}
        assert workers == set(range(engine.num_workers))  # parallel slots used

    def test_udf_over_subquery(self, engine):
        engine.create_table("t", Schema.of(("x", DataType.INT)), [(1,), (2,), (3,)])
        engine.register_table_udf(self.RepeatUDF())
        rows = engine.query_rows(
            "SELECT r.x FROM TABLE(repeat_rows((SELECT x FROM t WHERE x > 1), 1)) AS r"
        )
        assert sorted(rows) == [(2,), (3,)]

    def test_unknown_udf(self, engine):
        engine.create_table("t", Schema.of(("x", DataType.INT)), [])
        with pytest.raises(CatalogError, match="unknown table UDF"):
            engine.query_rows("SELECT * FROM TABLE(nosuch(t)) AS r")

    def test_duplicate_udf_rejected(self, engine):
        engine.register_table_udf(self.RepeatUDF())
        with pytest.raises(CatalogError, match="already registered"):
            engine.register_table_udf(self.RepeatUDF())

    def test_unnamed_udf_rejected(self, engine):
        class Anon(TableUDF):
            name = ""

            def output_schema(self, input_schema, args):
                return input_schema

            def process_partition(self, rows, input_schema, args, ctx):
                return rows

        with pytest.raises(CatalogError, match="name"):
            engine.register_table_udf(Anon())


class TestMaterializedViews:
    def test_create_and_query(self, users_carts):
        users_carts.create_materialized_view(
            "usa_users", "SELECT userid, age FROM users WHERE country = 'USA'"
        )
        rows = users_carts.query_rows("SELECT age FROM usa_users ORDER BY age")
        assert rows == [(25,), (40,), (57,), (61,)]

    def test_definition_recorded(self, users_carts):
        users_carts.create_materialized_view(
            "v", "SELECT age FROM users WHERE country = 'USA'"
        )
        entry = users_carts.catalog.get_entry("v")
        assert entry.definition is not None
        assert "USA" in entry.definition.to_sql()
        assert users_carts.catalog.materialized_views() == [entry]

    def test_view_joins_with_base_tables(self, users_carts):
        users_carts.create_materialized_view(
            "v", "SELECT userid FROM users WHERE gender = 'F'"
        )
        rows = users_carts.query_rows(
            "SELECT C.cartid FROM carts C, v WHERE C.userid = v.userid"
        )
        assert sorted(rows) == [(10,), (12,), (13,), (15,), (16,)]


class TestServices:
    def test_add_service_reaches_udf_context(self, engine):
        seen = []

        class ServiceProbe(TableUDF):
            name = "probe"

            def output_schema(self, input_schema, args):
                return input_schema

            def process_partition(self, rows, input_schema, args, ctx):
                seen.append(ctx.service("custom"))
                return rows

        sentinel = object()
        engine.add_service("custom", sentinel)
        engine.register_table_udf(ServiceProbe())
        engine.create_table("t", Schema.of(("x", DataType.INT)), [(1,)])
        engine.query_rows("SELECT * FROM TABLE(probe(t)) AS p")
        assert sentinel in seen

    def test_missing_service_error(self, engine):
        class Needy(TableUDF):
            name = "needy"

            def output_schema(self, input_schema, args):
                return input_schema

            def process_partition(self, rows, input_schema, args, ctx):
                ctx.service("absent")
                return rows

        engine.register_table_udf(Needy())
        engine.create_table("t", Schema.of(("x", DataType.INT)), [(1,)])
        with pytest.raises(Exception, match="absent"):
            engine.query_rows("SELECT * FROM TABLE(needy(t)) AS n")
