"""InputFormat layer: split planning and Hadoop line-boundary semantics."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cluster.cluster import make_paper_cluster
from repro.hdfs.filesystem import DistributedFileSystem
from repro.iofmt.inputformat import JobConf
from repro.iofmt.text import (
    CsvInputFormat,
    FileSplit,
    LineRecordReader,
    TextInputFormat,
)


def make_dfs(block_size=64):
    cluster = make_paper_cluster()
    return DistributedFileSystem(cluster, block_size=block_size)


def read_all_lines(dfs, path, num_splits):
    """Manually split a file into equal byte ranges and read every split."""
    length = dfs.status(path).length
    locations = dfs.block_locations(path)
    chunk = max(length // num_splits, 1)
    lines = []
    offset = 0
    while offset < length:
        size = min(chunk, length - offset)
        if length - offset - size < 1:
            size = length - offset
        split = FileSplit(path, offset, size)
        reader = LineRecordReader(dfs, split)
        lines.extend(reader)
        reader.close()
        offset += size
    return lines


class TestJobConf:
    def test_props(self):
        conf = JobConf({"a": 1})
        assert conf.get("a") == 1
        assert conf.get("b", "dflt") == "dflt"
        conf.set("b", 2)
        assert conf.get("b") == 2

    def test_objects(self):
        sentinel = object()
        conf = JobConf(dfs=sentinel)
        assert conf.require_object("dfs") is sentinel

    def test_missing_object_error_names_available(self):
        conf = JobConf(dfs=1, coordinator=2)
        with pytest.raises(KeyError, match="coordinator"):
            conf.require_object("nope")


class TestLineBoundaries:
    """The Hadoop exactly-once contract for line records across splits."""

    def test_two_splits_mid_line(self):
        dfs = make_dfs()
        dfs.write_text("/f", "aaa\nbbb\nccc\n")
        r1 = list(LineRecordReader(dfs, FileSplit("/f", 0, 6)))
        r2 = list(LineRecordReader(dfs, FileSplit("/f", 6, 6)))
        assert r1 == ["aaa", "bbb"]
        assert r2 == ["ccc"]

    def test_split_on_line_boundary(self):
        dfs = make_dfs()
        dfs.write_text("/f", "aaa\nbbb\nccc\n")
        r1 = list(LineRecordReader(dfs, FileSplit("/f", 0, 4)))
        r2 = list(LineRecordReader(dfs, FileSplit("/f", 4, 8)))
        assert r1 + r2 == ["aaa", "bbb", "ccc"]
        assert r1 == ["aaa", "bbb"]  # boundary line belongs to the left split

    def test_no_trailing_newline(self):
        dfs = make_dfs()
        dfs.write_text("/f", "aaa\nbbb")
        r1 = list(LineRecordReader(dfs, FileSplit("/f", 0, 3)))
        r2 = list(LineRecordReader(dfs, FileSplit("/f", 3, 4)))
        assert r1 + r2 == ["aaa", "bbb"]

    def test_single_split_whole_file(self):
        dfs = make_dfs()
        dfs.write_text("/f", "x\ny\n")
        assert list(LineRecordReader(dfs, FileSplit("/f", 0, 4))) == ["x", "y"]

    def test_empty_file(self):
        dfs = make_dfs()
        dfs.write_text("/f", "")
        assert list(LineRecordReader(dfs, FileSplit("/f", 0, 0))) == []

    @settings(max_examples=40, deadline=None)
    @given(
        lines=st.lists(
            st.text(
                alphabet=st.characters(blacklist_characters="\n", min_codepoint=32, max_codepoint=126),
                min_size=0,
                max_size=20,
            ),
            min_size=1,
            max_size=40,
        ),
        num_splits=st.integers(min_value=1, max_value=7),
        block_size=st.integers(min_value=8, max_value=128),
    )
    def test_every_line_exactly_once(self, lines, num_splits, block_size):
        """The load-bearing invariant: any split layout over any content
        yields each line exactly once, in order."""
        dfs = make_dfs(block_size=block_size)
        content = "\n".join(lines) + "\n"
        dfs.write_text("/prop", content)
        got = read_all_lines(dfs, "/prop", num_splits)
        assert got == lines


class TestTextInputFormat:
    def test_get_splits_covers_file(self):
        dfs = make_dfs()
        dfs.write_text("/data/f", "line\n" * 200)
        conf = JobConf({"input.path": "/data/f"}, dfs=dfs)
        splits = TextInputFormat().get_splits(conf, 4)
        assert splits
        covered = sorted((s.start, s.start + s.split_length) for s in splits)
        assert covered[0][0] == 0
        for (s1, e1), (s2, _e2) in zip(covered, covered[1:]):
            assert e1 == s2
        assert covered[-1][1] == dfs.status("/data/f").length

    def test_directory_input(self):
        dfs = make_dfs()
        dfs.write_text("/dir/a", "1\n2\n")
        dfs.write_text("/dir/b", "3\n")
        conf = JobConf({"input.path": "/dir"}, dfs=dfs)
        fmt = TextInputFormat()
        splits = fmt.get_splits(conf, 2)
        lines = []
        for split in splits:
            with fmt.create_record_reader(split, conf) as reader:
                lines.extend(reader)
        assert sorted(lines) == ["1", "2", "3"]

    def test_splits_carry_block_hosts(self):
        dfs = make_dfs(block_size=64)
        dfs.write_text("/h", "x" * 50 + "\n")
        conf = JobConf({"input.path": "/h"}, dfs=dfs)
        (split,) = TextInputFormat().get_splits(conf, 1)
        assert split.locations() == dfs.block_locations("/h")[0].hosts

    def test_missing_input_path(self):
        conf = JobConf({}, dfs=make_dfs())
        with pytest.raises(ValueError):
            TextInputFormat().get_splits(conf, 1)

    def test_empty_input(self):
        dfs = make_dfs()
        dfs.write_text("/e", "")
        conf = JobConf({"input.path": "/e"}, dfs=dfs)
        assert TextInputFormat().get_splits(conf, 4) == []

    def test_wrong_split_type_rejected(self):
        dfs = make_dfs()
        conf = JobConf({"input.path": "/x"}, dfs=dfs)

        class FakeSplit:
            pass

        with pytest.raises(TypeError):
            TextInputFormat().create_record_reader(FakeSplit(), conf)


class TestCsvInputFormat:
    def test_fields_split(self):
        dfs = make_dfs()
        dfs.write_text("/c", "1,a,x\n2,b,y\n")
        conf = JobConf({"input.path": "/c"}, dfs=dfs)
        fmt = CsvInputFormat()
        (split,) = fmt.get_splits(conf, 1)
        with fmt.create_record_reader(split, conf) as reader:
            rows = list(reader)
        assert rows == [["1", "a", "x"], ["2", "b", "y"]]

    def test_custom_delimiter(self):
        dfs = make_dfs()
        dfs.write_text("/c", "1|a\n2|b\n")
        conf = JobConf({"input.path": "/c", "csv.delimiter": "|"}, dfs=dfs)
        fmt = CsvInputFormat()
        (split,) = fmt.get_splits(conf, 1)
        with fmt.create_record_reader(split, conf) as reader:
            assert list(reader) == [["1", "a"], ["2", "b"]]

    def test_blank_lines_skipped(self):
        dfs = make_dfs()
        dfs.write_text("/c", "1,a\n\n2,b\n")
        conf = JobConf({"input.path": "/c"}, dfs=dfs)
        fmt = CsvInputFormat()
        rows = []
        for split in fmt.get_splits(conf, 1):
            with fmt.create_record_reader(split, conf) as reader:
                rows.extend(reader)
        assert rows == [["1", "a"], ["2", "b"]]
