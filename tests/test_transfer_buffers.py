"""Spillable buffers and stream channels: FIFO, backpressure, accounting."""

import threading

import pytest
from hypothesis import given, settings, strategies as st

from repro.cluster.cost import CostLedger
from repro.common.errors import ChannelAbortedError, TransferError
from repro.transfer.buffers import SpillableBuffer, decode_row, encode_row
from repro.transfer.channel import ChannelId, StreamChannel


class TestSpillableBuffer:
    def test_fifo_within_memory(self):
        buffer = SpillableBuffer(capacity_bytes=1000)
        for i in range(5):
            buffer.put(f"item{i}".encode())
        buffer.close()
        assert [b.decode() for b in buffer] == [f"item{i}" for i in range(5)]

    def test_overflow_spills_instead_of_blocking(self):
        buffer = SpillableBuffer(capacity_bytes=10)
        for i in range(100):  # far beyond capacity; must never block
            buffer.put(b"x" * 8)
        assert buffer.spilled_bytes > 0
        buffer.close()
        assert sum(1 for _ in buffer) == 100

    def test_fifo_preserved_across_spill_boundary(self):
        buffer = SpillableBuffer(capacity_bytes=12)
        items = [f"{i:04d}".encode() for i in range(50)]
        for item in items:
            buffer.put(item)
        buffer.close()
        assert list(buffer) == items

    def test_interleaved_put_get_keeps_order(self):
        buffer = SpillableBuffer(capacity_bytes=10)
        out = []
        for i in range(20):
            buffer.put(f"{i:03d}".encode())
            if i % 3 == 2:
                out.append(buffer.get())
        buffer.close()
        out.extend(iter(buffer))
        assert [b.decode() for b in out] == [f"{i:03d}" for i in range(20)]

    def test_get_after_close_drains_then_none(self):
        buffer = SpillableBuffer(capacity_bytes=100)
        buffer.put(b"a")
        buffer.close()
        assert buffer.get() == b"a"
        assert buffer.get() is None

    def test_put_after_close_raises(self):
        buffer = SpillableBuffer(capacity_bytes=100)
        buffer.close()
        with pytest.raises(TransferError):
            buffer.put(b"x")

    def test_get_timeout(self):
        buffer = SpillableBuffer(capacity_bytes=100)
        with pytest.raises(TransferError, match="timed out"):
            buffer.get(timeout=0.05)

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            SpillableBuffer(capacity_bytes=0)

    def test_file_backed_spill(self, tmp_path):
        path = str(tmp_path / "spill.bin")
        buffer = SpillableBuffer(capacity_bytes=8, spill_path=path)
        items = [f"payload-{i}".encode() for i in range(30)]
        for item in items:
            buffer.put(item)
        buffer.close()
        assert list(buffer) == items
        # The spill file is cleaned up once fully drained.
        import os

        assert not os.path.exists(path)

    def test_spill_accounting_in_ledger(self):
        ledger = CostLedger()
        buffer = SpillableBuffer(capacity_bytes=4, ledger=ledger)
        buffer.put(b"xxxx")
        buffer.put(b"yyyy")  # spills
        assert ledger.get("stream.spilled") == 4

    def test_producer_consumer_threads(self):
        buffer = SpillableBuffer(capacity_bytes=64)
        items = [f"{i:05d}".encode() for i in range(2000)]
        received = []

        def producer():
            for item in items:
                buffer.put(item)
            buffer.close()

        def consumer():
            received.extend(iter(buffer))

        threads = [threading.Thread(target=producer), threading.Thread(target=consumer)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert received == items

    def test_abort_poisons_pending_items(self):
        # A dead producer's enqueued prefix must never be delivered as a
        # complete stream: abort wins over pending data and over close.
        buffer = SpillableBuffer(capacity_bytes=1000)
        buffer.put(b"half-delivered")
        buffer.abort("producer failed")
        buffer.close()  # sticky: a later clean close does not undo it
        with pytest.raises(ChannelAbortedError, match="producer failed"):
            buffer.get(timeout=0.1)

    def test_abort_wakes_blocked_reader(self):
        buffer = SpillableBuffer(capacity_bytes=1000)
        caught: list[BaseException] = []

        def reader():
            try:
                buffer.get(timeout=5.0)
            except ChannelAbortedError as exc:
                caught.append(exc)

        thread = threading.Thread(target=reader)
        thread.start()
        buffer.abort("mid-stream death")
        thread.join(timeout=2.0)
        assert not thread.is_alive()
        assert len(caught) == 1

    def test_put_after_abort_raises(self):
        buffer = SpillableBuffer(capacity_bytes=1000)
        buffer.abort()
        with pytest.raises(TransferError):
            buffer.put(b"late")

    @settings(max_examples=30, deadline=None)
    @given(
        items=st.lists(st.binary(min_size=1, max_size=20), max_size=60),
        capacity=st.integers(min_value=1, max_value=64),
    )
    def test_fifo_property_any_capacity(self, items, capacity):
        buffer = SpillableBuffer(capacity_bytes=capacity)
        for item in items:
            buffer.put(item)
        buffer.close()
        assert list(buffer) == items


class TestRowCodec:
    @given(
        row=st.tuples(
            st.one_of(st.none(), st.integers(), st.floats(allow_nan=False), st.text(max_size=20)),
            st.integers(),
            st.one_of(st.none(), st.text(max_size=5)),
        )
    )
    def test_roundtrip(self, row):
        assert decode_row(encode_row(row)) == row


class TestStreamChannel:
    def test_send_receive(self):
        channel = StreamChannel(ChannelId(0, 0), buffer_bytes=4096)
        channel.send_row((1, "a", 2.5))
        channel.send_row((2, "b", None))
        channel.close()
        assert list(channel) == [(1, "a", 2.5), (2, "b", None)]
        assert channel.rows_sent == 2
        assert channel.rows_received == 2
        assert channel.bytes_sent == channel.bytes_received > 0

    def test_abort_raises_typed_error_for_receivers(self):
        channel = StreamChannel(ChannelId(0, 0), buffer_bytes=4096)
        channel.send_row((1, "a", 2.5))
        channel.abort("worker 0 died")
        with pytest.raises(ChannelAbortedError, match="worker 0 died"):
            channel.receive_block(timeout=0.1)

    def test_ledger_accounting_remote(self):
        ledger = CostLedger()
        channel = StreamChannel(ChannelId(1, 3), buffer_bytes=4096, ledger=ledger, local=False)
        channel.send_row((1, 2))
        assert ledger.get("stream.sent") > 0
        assert ledger.get("stream.net") == ledger.get("stream.sent")

    def test_ledger_accounting_local_skips_network(self):
        ledger = CostLedger()
        channel = StreamChannel(ChannelId(1, 3), buffer_bytes=4096, ledger=ledger, local=True)
        channel.send_row((1, 2))
        assert ledger.get("stream.sent") > 0
        assert ledger.get("stream.net") == 0

    def test_tiny_buffer_spills_and_delivers(self):
        channel = StreamChannel(ChannelId(0, 0), buffer_bytes=16)
        rows = [(i, f"value{i}") for i in range(200)]
        for row in rows:
            channel.send_row(row)
        channel.close()
        assert channel.spilled_bytes > 0
        assert list(channel) == rows
