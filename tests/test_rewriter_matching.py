"""Query-shape extraction and the §5.1 / §5.2 matching conditions.

The central cases are the paper's own example queries, verbatim.
"""

import pytest

from repro.rewriter.matching import (
    extract_shape,
    match_full_cache,
    match_recode_map,
)
from repro.transform.spec import TransformSpec

#: §1's preparation query (the cached one).
CACHED_SQL = (
    "SELECT U.age, U.gender, C.amount, C.abandoned "
    "FROM carts C, users U "
    "WHERE C.userid = U.userid AND U.country = 'USA'"
)

#: §5.1's follow-up: subset projection + extra predicate on projected field.
SUBSET_SQL = (
    "SELECT U.age, C.amount, C.abandoned "
    "FROM carts C, users U "
    "WHERE C.userid = U.userid AND U.country = 'USA' AND U.gender = 'F'"
)

#: §5.2's follow-up: new projected field + extra predicate on a new field.
RECODE_SQL = (
    "SELECT U.age, U.gender, C.amount, C.nItems, C.abandoned "
    "FROM carts C, users U "
    "WHERE C.userid = U.userid AND U.country = 'USA' AND C.year = 2014"
)

SPEC = TransformSpec(recode=("gender", "abandoned"), dummy=("gender",), label="abandoned")


@pytest.fixture()
def shaped(engine):
    """Engine with the full-width carts/users schemas (incl. nItems, year)."""
    from repro.sql.types import DataType, Schema

    engine.create_table(
        "users",
        Schema.of(
            ("userid", DataType.BIGINT),
            ("age", DataType.INT),
            ("gender", DataType.VARCHAR),
            ("country", DataType.VARCHAR),
        ),
        [],
    )
    engine.create_table(
        "carts",
        Schema.of(
            ("cartid", DataType.BIGINT),
            ("userid", DataType.BIGINT),
            ("amount", DataType.DOUBLE),
            ("nItems", DataType.INT),
            ("year", DataType.INT),
            ("abandoned", DataType.VARCHAR),
        ),
        [],
    )
    return engine


def shape_of(engine, sql):
    shape = extract_shape(engine.parse(sql), engine)
    assert shape is not None
    return shape


class TestShapeExtraction:
    def test_tables_and_join_conditions(self, shaped):
        shape = shape_of(shaped, CACHED_SQL)
        assert shape.tables == frozenset({"carts", "users"})
        assert len(shape.join_conditions) == 1
        (jc,) = shape.join_conditions
        assert "carts.userid" in jc and "users.userid" in jc

    def test_aliases_normalized_away(self, shaped):
        """The same query under different aliases has the same shape."""
        other = (
            "SELECT X.age, X.gender, Y.amount, Y.abandoned "
            "FROM carts Y, users X "
            "WHERE Y.userid = X.userid AND X.country = 'USA'"
        )
        assert shape_of(shaped, CACHED_SQL) == shape_of(shaped, other)

    def test_explicit_join_same_shape_as_comma(self, shaped):
        explicit = (
            "SELECT U.age, U.gender, C.amount, C.abandoned "
            "FROM carts C JOIN users U ON C.userid = U.userid "
            "WHERE U.country = 'USA'"
        )
        assert shape_of(shaped, CACHED_SQL) == shape_of(shaped, explicit)

    def test_unqualified_columns_resolved(self, shaped):
        shape = shape_of(
            shaped, "SELECT age, country FROM users WHERE age > 3"
        )
        names = dict(shape.projections)
        assert names["age"].qualifier == "users"

    def test_star_expanded(self, shaped):
        shape = shape_of(shaped, "SELECT * FROM users")
        assert [name for name, _ in shape.projections] == [
            "userid",
            "age",
            "gender",
            "country",
        ]

    def test_uncacheable_constructs_return_none(self, shaped):
        for sql in (
            "SELECT gender, COUNT(*) FROM users GROUP BY gender",
            "SELECT DISTINCT gender FROM users",
            "SELECT age FROM users ORDER BY age",
            "SELECT age FROM users LIMIT 3",
            "SELECT s.age FROM (SELECT age FROM users) AS s",
            "SELECT U.age FROM users U LEFT JOIN carts C ON U.userid = C.userid",
        ):
            assert extract_shape(shaped.parse(sql), shaped) is None

    def test_unknown_table_returns_none(self, shaped):
        assert extract_shape(shaped.parse("SELECT x FROM ghost"), shaped) is None


class TestFullCacheMatch:
    def test_identical_query_matches(self, shaped):
        cached = shape_of(shaped, CACHED_SQL)
        match = match_full_cache(cached, cached)
        assert match is not None
        assert match.projected == ("age", "gender", "amount", "abandoned")
        assert match.extra_predicates == ()

    def test_paper_51_example_matches(self, shaped):
        """'we can fully utilize the cached data' — §5.1's follow-up."""
        cached = shape_of(shaped, CACHED_SQL)
        new = shape_of(shaped, SUBSET_SQL)
        match = match_full_cache(new, cached)
        assert match is not None
        assert match.projected == ("age", "amount", "abandoned")
        (extra,) = match.extra_predicates
        # Rewritten against cached output columns, as in the paper's
        # "SELECT age, amount, abandoned FROM T WHERE gender = 'F'".
        assert extra.to_sql() == "gender = 'F'"

    def test_paper_52_example_does_not_match_full(self, shaped):
        """'the cached data cannot be used at all' — §5.2's query projects
        nItems, which the cache does not contain."""
        cached = shape_of(shaped, CACHED_SQL)
        new = shape_of(shaped, RECODE_SQL)
        assert match_full_cache(new, cached) is None

    def test_dropped_cached_predicate_misses(self, shaped):
        no_country = (
            "SELECT U.age, C.amount FROM carts C, users U WHERE C.userid = U.userid"
        )
        cached = shape_of(shaped, CACHED_SQL)
        assert match_full_cache(shape_of(shaped, no_country), cached) is None

    def test_extra_predicate_on_unprojected_field_misses(self, shaped):
        new_sql = (
            "SELECT U.age, C.amount, C.abandoned FROM carts C, users U "
            "WHERE C.userid = U.userid AND U.country = 'USA' AND C.year = 2014"
        )
        cached = shape_of(shaped, CACHED_SQL)
        assert match_full_cache(shape_of(shaped, new_sql), cached) is None

    def test_different_tables_miss(self, shaped):
        new = shape_of(shaped, "SELECT age FROM users WHERE country = 'USA'")
        cached = shape_of(shaped, CACHED_SQL)
        assert match_full_cache(new, cached) is None

    def test_different_join_condition_misses(self, shaped):
        new_sql = (
            "SELECT U.age, U.gender, C.amount, C.abandoned "
            "FROM carts C, users U "
            "WHERE C.cartid = U.userid AND U.country = 'USA'"
        )
        cached = shape_of(shaped, CACHED_SQL)
        assert match_full_cache(shape_of(shaped, new_sql), cached) is None


class TestRecodeMapMatch:
    def test_paper_52_example_matches(self, shaped):
        """'this query satisfies a different set of conditions' — the recode
        maps remain reusable for §5.2's follow-up."""
        cached = shape_of(shaped, CACHED_SQL)
        new = shape_of(shaped, RECODE_SQL)
        match = match_recode_map(new, SPEC, cached, SPEC)
        assert match is not None
        assert match.matched_predicates == 1  # country = 'USA'
        assert match.extra_predicates == 1  # year = 2014

    def test_logically_stronger_predicate_matches(self, shaped):
        cached_sql = (
            "SELECT U.age, U.gender, C.abandoned FROM carts C, users U "
            "WHERE C.userid = U.userid AND U.age <= 20"
        )
        new_sql = (
            "SELECT U.age, U.gender, C.abandoned FROM carts C, users U "
            "WHERE C.userid = U.userid AND U.age < 18"
        )
        match = match_recode_map(
            shape_of(shaped, new_sql), SPEC, shape_of(shaped, cached_sql), SPEC
        )
        assert match is not None

    def test_weaker_predicate_misses(self, shaped):
        cached_sql = (
            "SELECT U.gender, C.abandoned FROM carts C, users U "
            "WHERE C.userid = U.userid AND U.age < 18"
        )
        new_sql = (
            "SELECT U.gender, C.abandoned FROM carts C, users U "
            "WHERE C.userid = U.userid AND U.age <= 20"
        )
        assert (
            match_recode_map(
                shape_of(shaped, new_sql), SPEC, shape_of(shaped, cached_sql), SPEC
            )
            is None
        )

    def test_new_categorical_column_misses(self, shaped):
        """A projected categorical absent from the cached projection means
        its recode map was never built."""
        cached = shape_of(
            shaped,
            "SELECT U.age, C.abandoned FROM carts C, users U "
            "WHERE C.userid = U.userid AND U.country = 'USA'",
        )
        cached_spec = TransformSpec(recode=("abandoned",), label="abandoned")
        new = shape_of(shaped, CACHED_SQL)  # projects gender too
        assert match_recode_map(new, SPEC, cached, cached_spec) is None

    def test_missing_cached_predicate_misses(self, shaped):
        new_sql = (
            "SELECT U.age, U.gender, C.amount, C.abandoned "
            "FROM carts C, users U WHERE C.userid = U.userid"
        )
        cached = shape_of(shaped, CACHED_SQL)
        assert match_recode_map(shape_of(shaped, new_sql), SPEC, cached, SPEC) is None

    def test_different_join_misses(self, shaped):
        new_sql = (
            "SELECT U.age, U.gender, C.amount, C.abandoned "
            "FROM carts C, users U "
            "WHERE C.cartid = U.userid AND U.country = 'USA'"
        )
        cached = shape_of(shaped, CACHED_SQL)
        assert match_recode_map(shape_of(shaped, new_sql), SPEC, cached, SPEC) is None
