"""Coordinator high availability: leader election, journaled takeover, and
client-side failover (chaos tests).

The headline guarantee: a streaming run that loses its coordinator —
crash, lease expiry, or a lost handshake response — at any failover point
must produce a model **weight-for-weight identical** to a fault-free run,
with the takeover visible only in the ``coordinator.failover`` /
``zk.journal`` ledger counters.  Control-plane failover is data-plane
free: channels live on the worker hosts and are re-attached, never
replayed, so ``stream.retry`` stays at zero.

When ``CHAOS_ARTIFACTS_DIR`` is set (the CI chaos step), each scenario
dumps its ZK journal and fault-event log there before asserting, so
failures upload a full forensic trail.
"""

import json
import os
import pathlib
import threading

import numpy as np
import pytest

from repro import make_deployment
from repro.cluster.cluster import make_paper_cluster
from repro.common.errors import CoordinatorUnavailableError, TransferError
from repro.faults import FaultConfig, FaultInjector, LivenessMonitor, RecoveryManager
from repro.transfer.coordinator import Coordinator
from repro.transfer.ha import EPOCH_PATH, LEADER_PATH, CoordinatorHAGroup
from repro.transfer.zk import ZkError
from repro.workloads import generate_retail

SEEDS = (0, 1, 2)
FAILOVER_POINTS = ("pre_registration", "post_split_plan", "mid_stream")
SVM_ARGS = {"iterations": 5}


def make_dep(**kwargs):
    dep = make_deployment(block_size=64 * 1024, batch_rows=16, **kwargs)
    workload = generate_retail(dep.engine, dep.dfs, num_users=60, num_carts=400)
    dep.pipeline.byte_scale = workload.byte_scale
    return dep, workload


def run_stream(dep, workload):
    return dep.pipeline.run_insql_stream(
        workload.prep_sql, workload.spec, command="svm_with_sgd", args=SVM_ARGS
    )


def assert_same_model(a, b):
    """Weight-for-weight identity, across the iterative model families."""
    assert type(a) is type(b)
    for attr in ("weights", "centers"):
        if hasattr(a, attr):
            assert np.array_equal(getattr(a, attr), getattr(b, attr))
    for attr in ("intercept", "cost"):
        if hasattr(a, attr):
            assert getattr(a, attr) == getattr(b, attr)


def dump_artifacts(name, dep):
    """CI forensics: ZK journal dump + fault-event log (opt-in)."""
    art_dir = os.environ.get("CHAOS_ARTIFACTS_DIR")
    if not art_dir or dep.ha is None:
        return
    root = pathlib.Path(art_dir) / name
    root.mkdir(parents=True, exist_ok=True)
    (root / "zk_journal.json").write_text(json.dumps(dep.ha.journal_dump(), indent=2))
    injector = dep.ha.injector
    if injector is not None:
        events = [{"kind": e.kind, "site": e.site} for e in injector.events]
        (root / "fault_events.json").write_text(json.dumps(events, indent=2))


@pytest.fixture(scope="module")
def baseline():
    """One fault-free, HA-free run every chaos scenario compares against."""
    dep, workload = make_dep()
    return run_stream(dep, workload)


def make_group(standbys=1, **kwargs):
    cluster = make_paper_cluster()
    kwargs.setdefault("timeout_s", 2.0)
    kwargs.setdefault("launcher", lambda session: "launched")
    return CoordinatorHAGroup(cluster, standbys=standbys, **kwargs)


# --------------------------------------------------------------------------
# Leader election over the ZooKeeperLite lease
# --------------------------------------------------------------------------


class TestLeaderElection:
    def test_first_replica_takes_the_lease(self):
        group = make_group(standbys=2)
        assert group.zk.exists(LEADER_PATH)
        assert group.leader_id() == "coordinator-0"
        assert group.current_epoch() == 1
        assert group.leader() is group.coordinators[0]
        assert group.failovers == 0

    def test_killed_leader_is_replaced_synchronously(self):
        group = make_group(standbys=2)
        group.kill_leader()
        # ZooKeeperLite delivers watches on the mutating call, so by the
        # time kill_leader() returns the next standby already leads.
        assert group.leader_id() == "coordinator-1"
        assert group.current_epoch() == 2
        assert group.failovers == 1
        assert group.cluster.ledger.get("coordinator.failover") == 1

    def test_cascading_kills_walk_the_standby_chain(self):
        group = make_group(standbys=2)
        group.kill_leader()
        group.kill_leader()
        assert group.leader_id() == "coordinator-2"
        assert group.failovers == 2

    def test_leaderless_group_raises_instead_of_hanging(self):
        group = make_group(standbys=1, timeout_s=0.2)
        group.kill_leader()
        group.kill_leader()
        assert group.leader_id() is None
        with pytest.raises(CoordinatorUnavailableError, match="leader lease"):
            group.proxy.live_sessions()

    def test_dead_replica_stops_serving(self):
        group = make_group(standbys=1)
        old = group.leader()
        group.kill_leader()
        with pytest.raises(CoordinatorUnavailableError):
            old.create_session("s")

    def test_lease_expiry_deposes_but_does_not_kill(self):
        group = make_group(standbys=1)
        old = group.leader()
        group.expire_leader_lease()
        assert old.alive  # the process survived ...
        assert group.leader_id() == "coordinator-1"  # ... but lost the lease
        with pytest.raises(CoordinatorUnavailableError):
            old.live_sessions()  # the entry guard sees the new lease holder

    def test_stale_leader_journal_write_is_fenced(self):
        group = make_group(standbys=1)
        old = group.leader()
        stale_store = old.state_store
        group.expire_leader_lease()
        with pytest.raises(ZkError, match="fenced"):
            stale_store.record_status("s", "launched")
        assert group.zk.get(EPOCH_PATH)[0] == b"2"


# --------------------------------------------------------------------------
# Journaled takeover: control state from ZK, data plane re-attached
# --------------------------------------------------------------------------


class TestJournalTakeover:
    def test_takeover_restores_partial_registration(self):
        group = make_group(standbys=1)
        proxy = group.proxy
        proxy.create_session("s", command="noop", conf_props={"record.format": "csv"})
        proxy.register_sql_worker("s", 0, "10.0.0.2", 2)
        group.kill_leader()
        session = proxy.session("s")
        assert session.expected_sql_workers == 2
        assert set(session.sql_workers) == {0}
        assert session.conf_props == {"record.format": "csv"}
        assert not session.all_registered.is_set()
        # Registration continues against the new leader as if nothing happened.
        proxy.register_sql_worker("s", 1, "10.0.0.3", 2)
        assert proxy.session("s").all_registered.is_set()

    def test_takeover_reattaches_live_channels(self):
        group = make_group(standbys=2)
        proxy = group.proxy
        proxy.create_session("s", command="noop")
        proxy.register_sql_worker("s", 0, "10.0.0.2", 1)
        cids = proxy.plan_input_splits("s", 2)
        senders = proxy.sql_worker_channels("s", 0)
        senders[0].send_row((1, 2.0))
        group.kill_leader()
        # The split plan survived via the journal; the channel *objects* —
        # holding the un-drained row — survived via the registry.
        assert proxy.plan_input_splits("s", 2) == cids
        receiver = proxy.register_ml_worker("s", cids[0])
        assert receiver is senders[0]
        senders[0].close()
        assert receiver.receive(timeout=1.0) == (1, 2.0)

    def test_takeover_restores_ml_claims(self):
        group = make_group(standbys=2)
        proxy = group.proxy
        proxy.create_session("s", command="noop")
        proxy.register_sql_worker("s", 0, "10.0.0.2", 1)
        cids = proxy.plan_input_splits("s", 2)
        proxy.register_ml_worker("s", cids[0])
        group.kill_leader()
        # The claim was journaled: a *duplicate* claim still rejects ...
        with pytest.raises(TransferError, match="claimed twice"):
            proxy.session("s") and group.leader().register_ml_worker("s", cids[0])
        # ... while the idempotent HA retry form converges on the same channel.
        chan = group.leader().register_ml_worker("s", cids[0], reclaim_ok=True)
        assert chan is group.registry.channels_of("s")[cids[0]]

    def test_closed_sessions_are_not_adopted(self):
        group = make_group(standbys=1)
        proxy = group.proxy
        proxy.create_session("s")
        proxy.close_session("s")
        group.kill_leader()
        assert proxy.live_sessions() == []

    def test_result_delivered_during_takeover_is_replayed(self):
        group = make_group(standbys=1)
        proxy = group.proxy
        proxy.create_session("s", command="noop")
        # The job finished but no leader was serving at delivery time:
        # deliver to the group, then fail over — adoption must replay it.
        group.deliver_result("s", "model-bytes", None)
        group.kill_leader()
        assert proxy.wait_result("s", timeout=1.0) == "model-bytes"


# --------------------------------------------------------------------------
# Chaos: lose the coordinator mid-run, keep the model bit-identical
# --------------------------------------------------------------------------


class TestCoordinatorKillChaos:
    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("point", FAILOVER_POINTS)
    def test_leader_crash_yields_identical_model(self, seed, point, baseline):
        injector = FaultInjector(FaultConfig(seed=seed, kill_coordinator_at=point))
        dep, workload = make_dep(ha_standbys=1, fault_injector=injector)
        result = run_stream(dep, workload)
        dump_artifacts(f"coordinator_kill_{point}_seed{seed}", dep)

        assert result.failovers == 1
        assert dep.ha.failovers == 1
        assert dep.cluster.ledger.get("coordinator.failover") == 1
        assert [e.kind for e in injector.events] == ["coordinator_kill"]
        assert injector.counts["coordinator_kill"] == 1
        # Control-plane failover is data-plane free: nothing re-streamed.
        assert dep.cluster.ledger.get("stream.retry") == 0
        assert_same_model(result.ml_result.model, baseline.ml_result.model)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_mid_stream_crash_after_skip_count(self, seed, baseline):
        # Let a few heartbeats through first, so the kill lands genuinely
        # *mid*-stream rather than on the first beat.
        injector = FaultInjector(
            FaultConfig(seed=seed, kill_coordinator_at="mid_stream", coordinator_kill_skip=3)
        )
        dep, workload = make_dep(ha_standbys=1, fault_injector=injector)
        result = run_stream(dep, workload)
        dump_artifacts(f"coordinator_kill_mid_stream_skip3_seed{seed}", dep)

        assert result.failovers == 1
        assert_same_model(result.ml_result.model, baseline.ml_result.model)

    @pytest.mark.parametrize("point", FAILOVER_POINTS)
    def test_lease_expiry_fences_the_deposed_leader(self, point, baseline):
        injector = FaultInjector(FaultConfig(seed=0, lease_expire_at=point))
        dep, workload = make_dep(ha_standbys=1, fault_injector=injector)
        result = run_stream(dep, workload)
        dump_artifacts(f"lease_expire_{point}", dep)

        assert result.failovers == 1
        assert [e.kind for e in injector.events] == ["lease_expire"]
        # The dangerous case fencing exists for: the deposed leader is
        # still running, but deposed ...
        deposed = dep.ha.coordinators[0]
        assert deposed.alive
        with pytest.raises(CoordinatorUnavailableError):
            deposed.live_sessions()
        # ... and its journal epoch is stale.
        with pytest.raises(ZkError, match="fenced"):
            deposed.state_store.record_status("x", "launched")
        assert_same_model(result.ml_result.model, baseline.ml_result.model)

    @pytest.mark.parametrize("point", FAILOVER_POINTS)
    def test_dropped_handshake_response_converges(self, point, baseline):
        # The server applied the mutation, the client never heard: the
        # proxy re-issues the handshake idempotently — no failover, no
        # double registration, same model.
        injector = FaultInjector(FaultConfig(seed=0, handshake_drop_at=point))
        dep, workload = make_dep(ha_standbys=1, fault_injector=injector)
        result = run_stream(dep, workload)
        dump_artifacts(f"handshake_drop_{point}", dep)

        assert result.failovers == 0
        assert [e.kind for e in injector.events] == ["handshake_drop"]
        assert_same_model(result.ml_result.model, baseline.ml_result.model)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_random_handshake_drops_converge(self, seed, baseline):
        injector = FaultInjector(
            FaultConfig(seed=seed, handshake_drop_rate=0.2, max_events=4)
        )
        dep, workload = make_dep(ha_standbys=1, fault_injector=injector)
        result = run_stream(dep, workload)
        dump_artifacts(f"handshake_drop_rate_seed{seed}", dep)
        assert_same_model(result.ml_result.model, baseline.ml_result.model)


# --------------------------------------------------------------------------
# Invariance: HA off = bit-identical ledgers; HA on (fault-free) = +journal
# --------------------------------------------------------------------------


class TestLedgerInvariance:
    def test_ha_fault_free_changes_nothing_but_the_journal(self, baseline):
        plain_dep, plain_wl = make_dep()
        plain = run_stream(plain_dep, plain_wl)
        ha_dep, ha_wl = make_dep(ha_standbys=1)
        ha = run_stream(ha_dep, ha_wl)

        plain_ledger = plain_dep.cluster.ledger.snapshot()
        ha_ledger = ha_dep.cluster.ledger.snapshot()
        # The journal is the *only* cost of standing by.
        assert plain_ledger.get("zk.journal", 0) == 0
        assert ha_ledger.get("zk.journal", 0) > 0
        assert ha_ledger.get("coordinator.failover", 0) == 0
        for key in set(plain_ledger) | set(ha_ledger):
            if key == "zk.journal":
                continue
            assert plain_ledger.get(key, 0) == ha_ledger.get(key, 0), key
        assert ha.failovers == 0
        assert_same_model(ha.ml_result.model, plain.ml_result.model)
        assert_same_model(ha.ml_result.model, baseline.ml_result.model)


# --------------------------------------------------------------------------
# Active liveness: the monitor turns stale heartbeats into restart plans
# --------------------------------------------------------------------------


class TestLivenessMonitor:
    def _session_with_splits(self, recovery):
        cluster = make_paper_cluster()
        coordinator = Coordinator(
            cluster, launcher=lambda session: "launched", recovery=recovery, timeout_s=2.0
        )
        coordinator.create_session("s", command="noop")
        coordinator.register_sql_worker("s", 0, "10.0.0.2", 1)
        coordinator.plan_input_splits("s", 2)
        return coordinator

    def test_sweep_restarts_stale_worker_once(self):
        clock_now = [0.0]
        recovery = RecoveryManager(heartbeat_timeout_s=5.0, clock=lambda: clock_now[0])
        coordinator = self._session_with_splits(recovery)
        coordinator.record_heartbeat("s", 0)
        monitor = LivenessMonitor(coordinator, recovery, clock=lambda: clock_now[0])

        assert monitor.sweep(now=1.0) == []  # fresh beat: nothing to do
        actions = monitor.sweep(now=10.0)  # stale: proactive restart plan
        assert [a["worker_id"] for a in actions] == [0]
        assert recovery.monitor_actions()[0]["sql_worker_id"] == 0
        session = coordinator.session("s")
        assert "liveness monitor" in session.recovery_log[-1]["reason"]
        # A still-stale worker is not restarted repeatedly ...
        assert monitor.sweep(now=11.0) == []
        # ... but one that resumes beating and goes stale again is.
        clock_now[0] = 20.0
        coordinator.record_heartbeat("s", 0)
        assert [a["worker_id"] for a in monitor.sweep(now=30.0)] == [0]

    def test_monitor_thread_lifecycle_on_coordinator(self):
        recovery = RecoveryManager(heartbeat_timeout_s=5.0)
        coordinator = self._session_with_splits(recovery)
        coordinator.start_liveness_monitor(interval_s=0.01)
        assert coordinator._monitor is not None
        coordinator.start_liveness_monitor(interval_s=0.01)  # idempotent
        coordinator.stop_liveness_monitor()
        assert coordinator._monitor is None

    def test_monitor_requires_recovery_manager(self):
        cluster = make_paper_cluster()
        coordinator = Coordinator(cluster, timeout_s=2.0)
        with pytest.raises(TransferError, match="RecoveryManager"):
            coordinator.start_liveness_monitor()

    def test_proxy_routes_monitor_to_leader(self):
        recovery = RecoveryManager(heartbeat_timeout_s=5.0)
        group = make_group(standbys=1, recovery=recovery)
        group.proxy.start_liveness_monitor(interval_s=0.01)
        assert group.leader()._monitor is not None
        group.proxy.stop_liveness_monitor()
        assert all(c._monitor is None for c in group.coordinators)


# --------------------------------------------------------------------------
# The failover proxy under concurrency
# --------------------------------------------------------------------------


class TestFailoverProxy:
    def test_blocked_waiters_survive_a_takeover(self):
        group = make_group(standbys=1)
        proxy = group.proxy
        proxy.create_session("s", command="noop")
        results = []

        def wait():
            results.append(proxy.wait_result("s", timeout=3.0))

        waiter = threading.Thread(target=wait)
        waiter.start()
        group.kill_leader()  # wakes the waiter; the proxy re-waits on the new leader
        group.deliver_result("s", "late-model", None)
        waiter.join(timeout=5.0)
        assert not waiter.is_alive()
        assert results == ["late-model"]

    def test_journal_dump_names_every_session_znode(self):
        group = make_group(standbys=1)
        proxy = group.proxy
        proxy.create_session("s", command="noop")
        proxy.register_sql_worker("s", 0, "10.0.0.2", 1)
        dump = group.journal_dump()
        assert "/coordinator/sessions/s/meta" in dump
        assert "/coordinator/sessions/s/workers/0" in dump
        meta = json.loads(dump["/coordinator/sessions/s/meta"]["data"])
        assert meta["command"] == "noop"
