"""Mahout-style MapReduce ML: equivalence with in-memory trainers and the
§1 'write to HDFS, run MR algorithm' integration path."""

import json

import numpy as np
import pytest

from repro import make_deployment
from repro.cluster.cluster import make_paper_cluster
from repro.common.errors import MLError
from repro.hdfs.filesystem import DistributedFileSystem
from repro.ml.algorithms import KMeans, NaiveBayes
from repro.ml.dataset import Dataset, LabeledPoint
from repro.ml.mapreduce_ml import MapReduceKMeans, MapReduceNaiveBayes
from repro.workloads import generate_retail


@pytest.fixture()
def env():
    cluster = make_paper_cluster()
    dfs = DistributedFileSystem(cluster, block_size=512)
    return cluster, dfs


def write_csv(dfs, path, rows):
    text = "\n".join(",".join(str(v) for v in row) for row in rows) + "\n"
    dfs.write_text(path, text)


class TestMapReduceNaiveBayes:
    def make_data(self, n=300, seed=0):
        rng = np.random.default_rng(seed)
        rows = []
        for _ in range(n):
            label = int(rng.random() < 0.5)
            f0 = 1 if (label and rng.random() < 0.85) or (not label and rng.random() < 0.15) else 0
            f1 = 1 - f0
            rows.append((f0, f1, 1, label))
        return rows

    def test_matches_in_memory_trainer(self, env):
        cluster, dfs = env
        rows = self.make_data()
        write_csv(dfs, "/mrml/nb/data.csv", rows)
        mr_model = MapReduceNaiveBayes.train(cluster, dfs, "/mrml/nb")
        points = [
            LabeledPoint(float(r[3]), np.array(r[:3], float)) for r in rows
        ]
        mem_model = NaiveBayes.train(Dataset.from_records(points, 4))
        assert np.allclose(mr_model.log_prior, mem_model.log_prior)
        assert np.allclose(mr_model.log_likelihood, mem_model.log_likelihood)
        assert list(mr_model.labels) == list(mem_model.labels)

    def test_model_persisted_to_dfs(self, env):
        cluster, dfs = env
        write_csv(dfs, "/mrml/nb2/data.csv", self.make_data(n=50))
        MapReduceNaiveBayes.train(
            cluster, dfs, "/mrml/nb2", model_path="/models/nb.json"
        )
        model = json.loads(dfs.read_text("/models/nb.json"))
        assert model["kind"] == "naive_bayes"
        assert len(model["labels"]) == 2

    def test_empty_input_rejected(self, env):
        cluster, dfs = env
        dfs.write_text("/mrml/empty/data.csv", "")
        with pytest.raises(MLError, match="empty"):
            MapReduceNaiveBayes.train(cluster, dfs, "/mrml/empty")

    def test_label_index(self, env):
        cluster, dfs = env
        rows = [(r[3], r[0], r[1], r[2]) for r in self.make_data(n=80)]  # label first
        write_csv(dfs, "/mrml/nb3/data.csv", rows)
        model = MapReduceNaiveBayes.train(cluster, dfs, "/mrml/nb3", label_index=0)
        assert model.log_likelihood.shape == (2, 3)


class TestMapReduceKMeans:
    def test_finds_blobs(self, env):
        cluster, dfs = env
        rng = np.random.default_rng(3)
        blob_centers = np.array([[0.0, 0.0], [20.0, 20.0]])
        rows = [
            tuple(np.round(rng.normal(blob_centers[i % 2], 0.5), 4))
            for i in range(200)
        ]
        write_csv(dfs, "/mrml/km/data.csv", rows)
        model = MapReduceKMeans.train(cluster, dfs, "/mrml/km", k=2, seed=5)
        found = model.centers[np.argsort(model.centers[:, 0])]
        assert np.allclose(found, blob_centers, atol=0.5)

    def test_cost_comparable_to_in_memory(self, env):
        cluster, dfs = env
        rng = np.random.default_rng(9)
        rows = [tuple(np.round(rng.random(2) * 10, 4)) for _ in range(150)]
        write_csv(dfs, "/mrml/km2/data.csv", rows)
        mr_model = MapReduceKMeans.train(cluster, dfs, "/mrml/km2", k=3, seed=2,
                                         max_iterations=15)
        records = [np.array(r) for r in rows]
        mem_model = KMeans.train(
            Dataset.from_records(records, 4), k=3, seed=2, n_init=3
        )
        assert mr_model.cost <= 1.5 * mem_model.cost

    def test_too_few_points_rejected(self, env):
        cluster, dfs = env
        write_csv(dfs, "/mrml/km3/data.csv", [(1.0, 1.0)])
        with pytest.raises(MLError, match="distinct"):
            MapReduceKMeans.train(cluster, dfs, "/mrml/km3", k=5)

    def test_model_persisted(self, env):
        cluster, dfs = env
        rng = np.random.default_rng(4)
        write_csv(
            dfs, "/mrml/km4/data.csv",
            [tuple(np.round(rng.random(2), 3)) for _ in range(60)],
        )
        MapReduceKMeans.train(
            cluster, dfs, "/mrml/km4", k=2, model_path="/models/km.json"
        )
        model = json.loads(dfs.read_text("/models/km.json"))
        assert model["kind"] == "kmeans"
        assert len(model["centers"]) == 2


class TestSection1MahoutPath:
    def test_insql_transform_feeds_mapreduce_ml(self):
        """The full §1 scenario for an MR-based ML system: In-SQL transform
        writes the prepared data to the DFS, the MapReduce algorithm reads
        it from there, and the fitted model lands back on the DFS."""
        deployment = make_deployment(block_size=64 * 1024)
        wl = generate_retail(
            deployment.engine, deployment.dfs, num_users=200, num_carts=2_000
        )
        deployment.pipeline.byte_scale = wl.byte_scale
        # insql writes the transformed text to the DFS (the one hop an
        # MR-based ML system requires)...
        result = deployment.pipeline.run_insql(wl.prep_sql, wl.spec, "noop")
        transformed_dirs = [
            p
            for p in deployment.dfs.listdir("/pipeline")
            if deployment.dfs.is_dir(p)
        ]
        data_dir = sorted(transformed_dirs)[-1] + "/transformed"
        # ...which the Mahout-style trainer consumes directly.
        model = MapReduceNaiveBayes.train(
            deployment.cluster,
            deployment.dfs,
            data_dir,
            label_index=-1,
            model_path="/models/abandonment_nb.json",
        )
        assert deployment.dfs.exists("/models/abandonment_nb.json")
        # Same data in memory gives the same sufficient statistics.
        X, y = result.ml_result.dataset.to_arrays()
        # MR path saw raw recoded labels (1/2); in-memory path offset them.
        assert sorted(model.labels) == [1.0, 2.0]
        assert model.log_likelihood.shape[1] == X.shape[1]
