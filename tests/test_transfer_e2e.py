"""End-to-end streaming transfer: SQL engine -> coordinator -> ML system."""

import pytest

from repro.common.errors import TransferError
from repro.sql.types import DataType, Schema


@pytest.fixture()
def wired(deployment):
    """Deployment plus a simple numeric table ready to stream."""
    engine = deployment.engine
    rows = [(i, float(i % 7), float(i % 3), float(i % 2)) for i in range(500)]
    engine.create_table(
        "points",
        Schema.of(
            ("id", DataType.BIGINT),
            ("f1", DataType.DOUBLE),
            ("f2", DataType.DOUBLE),
            ("label", DataType.DOUBLE),
        ),
        rows,
    )
    return deployment, rows


class TestStreamEndToEnd:
    def test_every_row_exactly_once(self, wired):
        deployment, rows = wired
        deployment.coordinator.create_session(
            "e2e", command="noop", conf_props={"record.format": "raw"}
        )
        deployment.engine.query_rows(
            "SELECT * FROM TABLE(stream_transfer((SELECT f1, f2, label FROM points), 'e2e')) AS s"
        )
        result = deployment.coordinator.wait_result("e2e")
        received = sorted(result.dataset.collect())
        expected = sorted((f1, f2, label) for _id, f1, f2, label in rows)
        assert received == expected

    def test_transfer_summary_rows(self, wired):
        deployment, rows = wired
        deployment.coordinator.create_session(
            "sum", command="noop", conf_props={"record.format": "raw"}
        )
        summary = deployment.engine.query_rows(
            "SELECT * FROM TABLE(stream_transfer((SELECT id FROM points), 'sum')) AS s"
        )
        deployment.coordinator.wait_result("sum")
        assert len(summary) == deployment.engine.num_workers
        assert sum(r[1] for r in summary) == len(rows)  # rows_sent
        assert all(r[2] > 0 for r in summary)  # bytes_sent

    def test_inline_command_in_udf_args(self, wired):
        """The self-contained form: command+args inside the UDF invocation."""
        deployment, _rows = wired
        deployment.coordinator.create_session(
            "inline", conf_props={"record.format": "labeled_csv", "label.index": -1}
        )
        deployment.engine.query_rows(
            "SELECT * FROM TABLE(stream_transfer((SELECT f1, f2, label FROM points), "
            "'inline', 'logistic_regression', 'iterations=5,step=0.5')) AS s"
        )
        result = deployment.coordinator.wait_result("inline")
        assert result.command == "logistic_regression"
        assert result.model is not None

    def test_trains_svm_over_stream(self, wired):
        deployment, _rows = wired
        deployment.coordinator.create_session(
            "svm",
            command="svm_with_sgd",
            args={"iterations": 5},
            conf_props={"record.format": "labeled_csv", "label.index": -1},
        )
        deployment.engine.query_rows(
            "SELECT * FROM TABLE(stream_transfer((SELECT f1, f2, label FROM points), 'svm')) AS s"
        )
        result = deployment.coordinator.wait_result("svm")
        assert result.model.weights.shape == (2,)
        assert result.dataset.count() == 500

    def test_partition_count_matches_m(self, wired):
        deployment, _rows = wired
        deployment.coordinator.default_k = 2
        deployment.coordinator.create_session(
            "k2", command="noop", conf_props={"record.format": "raw"}
        )
        deployment.engine.query_rows(
            "SELECT * FROM TABLE(stream_transfer((SELECT id FROM points), 'k2')) AS s"
        )
        result = deployment.coordinator.wait_result("k2")
        assert result.ingest_stats.num_splits == deployment.engine.num_workers * 2
        assert result.dataset.num_partitions == 8

    def test_empty_result_stream(self, wired):
        deployment, _rows = wired
        deployment.coordinator.create_session(
            "empty", command="noop", conf_props={"record.format": "raw"}
        )
        deployment.engine.query_rows(
            "SELECT * FROM TABLE(stream_transfer((SELECT id FROM points WHERE id < 0), 'empty')) AS s"
        )
        result = deployment.coordinator.wait_result("empty")
        assert result.dataset.count() == 0

    def test_unknown_command_fails_cleanly(self, wired):
        """A bad ML command must surface promptly on the SQL side too (the
        coordinator unblocks waiting SQL workers instead of timing out)."""
        deployment, _rows = wired
        deployment.coordinator.create_session(
            "bad", command="not_an_algorithm", conf_props={"record.format": "raw"}
        )
        with pytest.raises(TransferError, match="not_an_algorithm"):
            deployment.engine.query_rows(
                "SELECT * FROM TABLE(stream_transfer((SELECT id FROM points), 'bad')) AS s"
            )
        with pytest.raises(TransferError, match="not_an_algorithm"):
            deployment.coordinator.wait_result("bad")

    def test_locality_all_local_when_colocated(self, wired):
        deployment, _rows = wired
        deployment.coordinator.create_session(
            "loc", command="noop", conf_props={"record.format": "raw"}
        )
        deployment.engine.query_rows(
            "SELECT * FROM TABLE(stream_transfer((SELECT id FROM points), 'loc')) AS s"
        )
        result = deployment.coordinator.wait_result("loc")
        assert result.ingest_stats.local_splits == result.ingest_stats.num_splits

    def test_stream_bytes_accounted(self, wired):
        deployment, _rows = wired
        ledger = deployment.cluster.ledger
        before = ledger.snapshot()
        deployment.coordinator.create_session(
            "acct", command="noop", conf_props={"record.format": "raw"}
        )
        deployment.engine.query_rows(
            "SELECT * FROM TABLE(stream_transfer((SELECT id FROM points), 'acct')) AS s"
        )
        result = deployment.coordinator.wait_result("acct")
        delta = ledger.delta(before, ledger.snapshot())
        assert delta["stream.sent"] > 0
        assert delta["ml.ingest"] == delta["stream.sent"]
        assert result.ingest_stats.bytes == delta["stream.sent"]
