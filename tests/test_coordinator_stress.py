"""Concurrency stress: many transfer sessions in flight at once."""

import threading

from repro import make_deployment
from repro.sql.types import DataType, Schema


def test_many_concurrent_sessions_deliver_disjoint_data():
    """Eight sessions stream different query results concurrently through
    one coordinator; every session's ML job must receive exactly its own
    rows (no cross-talk, no loss)."""
    deployment = make_deployment(block_size=64 * 1024)
    engine = deployment.engine
    engine.create_table(
        "events",
        Schema.of(("id", DataType.BIGINT), ("bucket", DataType.INT)),
        [(i, i % 8) for i in range(800)],
    )

    errors: list[BaseException] = []
    results: dict[int, list] = {}

    def run_session(bucket: int) -> None:
        try:
            session_id = f"stress_{bucket}"
            deployment.coordinator.create_session(
                session_id, command="noop", conf_props={"record.format": "raw"}
            )
            engine.query_rows(
                "SELECT * FROM TABLE(stream_transfer((SELECT id, bucket FROM "
                f"events WHERE bucket = {bucket}), '{session_id}')) AS s"
            )
            result = deployment.coordinator.wait_result(session_id)
            results[bucket] = result.dataset.collect()
            deployment.coordinator.close_session(session_id)
        except BaseException as exc:  # noqa: BLE001 - surfaced below
            errors.append(exc)

    threads = [threading.Thread(target=run_session, args=(b,)) for b in range(8)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=60)
    assert not errors, errors
    assert len(results) == 8
    for bucket, rows in results.items():
        assert len(rows) == 100
        assert all(row[1] == bucket for row in rows)
        assert sorted(row[0] for row in rows) == list(range(bucket, 800, 8))


def test_sequential_session_churn_leaks_nothing():
    """Opening and closing many sessions leaves the coordinator clean."""
    deployment = make_deployment(block_size=64 * 1024)
    engine = deployment.engine
    engine.create_table("t", Schema.of(("x", DataType.INT)), [(i,) for i in range(20)])
    for i in range(20):
        session_id = f"churn_{i}"
        deployment.coordinator.create_session(
            session_id, command="noop", conf_props={"record.format": "raw"}
        )
        engine.query_rows(
            f"SELECT * FROM TABLE(stream_transfer((SELECT x FROM t), '{session_id}')) AS s"
        )
        result = deployment.coordinator.wait_result(session_id)
        assert result.dataset.count() == 20
        deployment.coordinator.close_session(session_id)
    assert deployment.coordinator._sessions == {}
