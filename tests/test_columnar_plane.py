"""The columnar data plane, end to end.

Four layers of evidence that ``columnar=True`` changes *how* bytes move but
never *what* arrives:

1. Property-based round-trips: ColumnBatch and the ``C`` wire frame over
   every DataType, with NULLs, unicode dictionaries, and empty batches.
2. Differential: the vectorized executor must row-equal the tuple executor
   on the shared differential query corpus.
3. Ledger invariance: columnar sessions charge the exact logical bytes of
   the seed's per-row accounting, so the Figure 3/4 totals don't move.
4. End-to-end: a columnar ``run_insql_stream`` trains the identical model
   from an ArrayDataset built without a single LabeledPoint allocation.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro import make_deployment
from repro.cluster.cluster import make_paper_cluster
from repro.columnar.batch import ColumnBatch, batch_to_xy
from repro.ml.dataset import ArrayDataset, LabeledPoint
from repro.sql.engine import BigSQL
from repro.sql.types import DataType, Schema
from repro.transfer.buffers import (
    block_logical_bytes,
    decode_block,
    decode_col_block,
    encode_col_block,
    is_columnar_frame,
)
from repro.transfer.channel import ChannelId, StreamChannel
from repro.workloads import generate_retail

from tests.test_sql_differential import (
    QUERIES,
    T1_SCHEMA,
    T2_SCHEMA,
    datasets,
    normalize,
)

# ------------------------------------------------- property-based round-trips

_VALUES = {
    DataType.INT: st.one_of(st.none(), st.integers(-(2**31), 2**31 - 1)),
    DataType.BIGINT: st.one_of(st.none(), st.integers(-(2**63), 2**63 - 1)),
    DataType.DOUBLE: st.one_of(
        st.none(), st.floats(allow_nan=False, allow_infinity=False)
    ),
    DataType.BOOLEAN: st.one_of(st.none(), st.booleans()),
    # unicode on purpose: dictionaries must survive non-ASCII words
    DataType.VARCHAR: st.one_of(st.none(), st.text(max_size=8)),
}


@st.composite
def schema_and_rows(draw):
    dtypes = draw(st.lists(st.sampled_from(list(DataType)), min_size=1, max_size=5))
    schema = Schema.of(*((f"c{i}", dt) for i, dt in enumerate(dtypes)))
    num_rows = draw(st.integers(0, 30))
    rows = [
        tuple(draw(_VALUES[dt]) for dt in dtypes) for _ in range(num_rows)
    ]
    return schema, rows


@settings(max_examples=200, deadline=None)
@given(data=schema_and_rows())
def test_batch_round_trip(data):
    schema, rows = data
    batch = ColumnBatch.from_rows(schema, rows)
    assert batch.num_rows == len(rows)
    assert batch.to_rows() == rows
    assert batch.logical_bytes() >= 2 * len(rows)


@settings(max_examples=200, deadline=None)
@given(data=schema_and_rows())
def test_wire_frame_round_trip(data):
    schema, rows = data
    batch = ColumnBatch.from_rows(schema, rows)
    payload = encode_col_block(batch)
    assert is_columnar_frame(payload)
    decoded = decode_col_block(payload)
    assert decoded.to_rows() == rows
    assert [c.dtype for c in decoded.columns] == [c.dtype for c in batch.columns]
    # legacy receivers see the same rows: decode_block normalizes C frames
    assert decode_block(payload) == rows
    # and the 8-byte logical header carries the seed's per-row byte formula
    assert block_logical_bytes(payload) == batch.logical_bytes()


@settings(max_examples=100, deadline=None)
@given(data=schema_and_rows(), step=st.integers(1, 5))
def test_slice_step_matches_round_robin(data, step):
    schema, rows = data
    batch = ColumnBatch.from_rows(schema, rows)
    for j in range(step):
        expected = [row for i, row in enumerate(rows) if i % step == j]
        assert batch.slice_step(j, step).to_rows() == expected


def test_empty_batch_round_trip():
    schema = Schema.of(("a", DataType.INT), ("b", DataType.VARCHAR))
    batch = ColumnBatch.from_rows(schema, [])
    payload = encode_col_block(batch)
    assert decode_col_block(payload).to_rows() == []
    assert block_logical_bytes(payload) == 0


# ----------------------------------------------------- differential executor


def _run(t1, t2, sql, columnar):
    engine = BigSQL(make_paper_cluster(), columnar=columnar)
    engine.create_table("t1", T1_SCHEMA, t1)
    engine.create_table("t2", T2_SCHEMA, t2)
    return [tuple(r) for r in engine.query_rows(sql)]


@pytest.mark.parametrize("sql", QUERIES, ids=range(len(QUERIES)))
@settings(
    max_examples=5,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(data=datasets())
def test_columnar_executor_matches_row_executor(sql, data):
    t1, t2 = data
    columnar = _run(t1, t2, sql, columnar=True)
    row = _run(t1, t2, sql, columnar=False)
    if "ORDER BY" in sql:
        assert columnar == row, f"order disagreement on: {sql}"
    else:
        assert normalize(columnar) == normalize(row), f"disagreement on: {sql}"


# ------------------------------------------------------- channel frame path


def test_channel_carries_batches_and_rows_interchangeably():
    schema = Schema.of(("a", DataType.INT), ("s", DataType.VARCHAR))
    rows = [(i, f"w{i % 3}") for i in range(10)]
    batch = ColumnBatch.from_rows(schema, rows)

    channel = StreamChannel(ChannelId(0, 0), buffer_bytes=64, local=True)
    channel.send_col_batch(batch)
    channel.send_many(rows[:2])
    channel.close()
    frames = []
    while True:
        frame = channel.receive_frame(timeout=5.0)
        if frame is None:
            break
        frames.append(frame)
    assert isinstance(frames[0], ColumnBatch)
    assert frames[0].to_rows() == rows
    assert frames[1] == rows[:2]  # row frames stay row lists
    assert channel.rows_received == 12

    # a columnar frame drained through the legacy row API still yields rows
    channel = StreamChannel(ChannelId(0, 1), buffer_bytes=64, local=True)
    channel.send_col_batch(batch)
    channel.close()
    assert channel.receive_block(timeout=5.0) == rows


# --------------------------------------------------------------- ArrayDataset


def test_array_dataset_row_and_array_views():
    X0 = np.array([[1.0, 2.0], [3.0, 4.0]])
    y0 = np.array([0.0, 1.0])
    ds = ArrayDataset([(X0, y0), (np.empty((0, 2)), np.empty((0,)))])
    assert ds.num_partitions == 2
    assert ds.count() == 2
    assert ds.first() == LabeledPoint(0.0, np.array([1.0, 2.0]))
    X, y = ds.to_arrays()
    np.testing.assert_array_equal(X, X0)
    np.testing.assert_array_equal(y, y0)
    assert len(ds.partition_arrays()) == 1  # empty partitions skipped
    # row access synthesizes LabeledPoints lazily and consistently
    assert ds.collect() == [
        LabeledPoint(0.0, np.array([1.0, 2.0])),
        LabeledPoint(1.0, np.array([3.0, 4.0])),
    ]
    assert ds.map(lambda p: p.label).collect() == [0.0, 1.0]


def test_batch_to_xy_label_selection_and_offset():
    schema = Schema.of(
        ("f1", DataType.INT), ("label", DataType.INT), ("f2", DataType.DOUBLE)
    )
    batch = ColumnBatch.from_rows(schema, [(1, 2, 0.5), (3, 1, 1.5)])
    X, y = batch_to_xy(batch, label_index=1, label_offset=1.0)
    np.testing.assert_array_equal(X, [[1.0, 0.5], [3.0, 1.5]])
    np.testing.assert_array_equal(y, [1.0, 0.0])


# ------------------------------------------------------- end-to-end pipeline


def _run_pipeline(columnar):
    dep = make_deployment(columnar=columnar)
    wl = generate_retail(dep.engine, dep.dfs, num_users=80, num_carts=600)
    result = dep.pipeline.run_insql_stream(
        wl.prep_sql, wl.spec, command="svm_with_sgd", args={"iterations": 3}
    )
    return dep, result


def test_columnar_pipeline_end_to_end():
    dep_row, row_result = _run_pipeline(columnar=False)
    dep_col, col_result = _run_pipeline(columnar=True)

    row_ds = row_result.ml_result.dataset
    col_ds = col_result.ml_result.dataset
    assert not isinstance(row_ds, ArrayDataset)
    assert isinstance(col_ds, ArrayDataset)
    assert col_ds.count() == row_ds.count() > 0

    # identical training input => identical model
    np.testing.assert_allclose(
        col_result.ml_result.model.weights,
        row_result.ml_result.model.weights,
        rtol=1e-12,
    )

    # Ledger coherence.  The row plane accounts stream traffic at per-row
    # pickle lengths (the seed wire format); the columnar plane accounts at
    # the typed estimate_row_bytes formula — the same basis the SQL side's
    # shuffle/output counters already use.  Within each plane sender and
    # receiver must agree exactly, and the two bases stay on the same scale.
    for dep in (dep_row, dep_col):
        assert dep.cluster.ledger.get("stream.sent") == dep.cluster.ledger.get(
            "ml.ingest"
        )
    row_sent = dep_row.cluster.ledger.get("stream.sent")
    col_sent = dep_col.cluster.ledger.get("stream.sent")
    assert 0.5 * row_sent <= col_sent <= 2.0 * row_sent
