"""The top-level deployment facade and fault-tolerance integration (§6)."""

import pytest

from repro import make_deployment, paper_cost_model
from repro.common.errors import TransferError
from repro.sql.types import DataType, Schema


class TestMakeDeployment:
    def test_paper_topology(self):
        deployment = make_deployment()
        assert len(deployment.cluster) == 5
        assert deployment.engine.num_workers == 4
        assert deployment.ml.default_parallelism == 24  # 6 per server x 4
        assert deployment.dfs.replication == 3
        assert deployment.coordinator.buffer_bytes == 4096  # paper setting

    def test_custom_topology(self):
        deployment = make_deployment(num_workers=2, workers_per_node=3, replication=2)
        assert deployment.engine.num_workers == 2
        assert deployment.ml.default_parallelism == 6
        assert deployment.dfs.replication == 2

    def test_pipeline_udfs_preregistered(self):
        deployment = make_deployment()
        for name in (
            "local_distinct",
            "recode",
            "dummy_code",
            "effect_code",
            "orthogonal_code",
            "stream_transfer",
        ):
            assert deployment.engine.catalog.get_table_udf(name) is not None

    def test_coordinator_service_wired(self):
        deployment = make_deployment()
        assert deployment.engine.services["coordinator"] is deployment.coordinator
        assert deployment.coordinator.launcher is not None

    def test_cost_model_injectable(self):
        model = paper_cost_model()
        deployment = make_deployment(cost_model=model)
        assert deployment.pipeline.cost is model


class TestFaultToleranceIntegration:
    """§6: coordinated restart of a SQL worker and its ML workers."""

    def test_failure_mid_transfer_produces_restart_plan(self):
        deployment = make_deployment()
        engine = deployment.engine
        engine.create_table(
            "points",
            Schema.of(("x", DataType.DOUBLE), ("y", DataType.DOUBLE)),
            [(float(i), float(i % 2)) for i in range(100)],
        )
        coordinator = deployment.coordinator
        coordinator.default_k = 2
        coordinator.create_session(
            "ft", command="noop", conf_props={"record.format": "raw"}
        )
        engine.query_rows(
            "SELECT * FROM TABLE(stream_transfer((SELECT x, y FROM points), 'ft')) AS s"
        )
        coordinator.wait_result("ft")
        # A channel of SQL worker 1 "fails"; the restart plan pairs it with
        # exactly its k=2 ML consumers.
        plan = coordinator.notify_channel_failure("ft", 1, "connection reset")
        assert plan["restart_sql_worker"] == 1
        assert len(plan["restart_ml_workers"]) == 2
        session = coordinator.session("ft")
        assert session.failed

    def test_failed_session_reported_in_wait(self):
        deployment = make_deployment()
        coordinator = deployment.coordinator

        def exploding_launcher(session):
            raise RuntimeError("ml system crashed")

        coordinator.launcher = exploding_launcher
        coordinator.create_session("boom", command="noop")
        ips = [n.ip for n in deployment.cluster.workers]
        for worker_id in range(4):
            coordinator.register_sql_worker("boom", worker_id, ips[worker_id], 4)
        with pytest.raises(TransferError, match="ml system crashed"):
            coordinator.wait_result("boom", timeout=2)
