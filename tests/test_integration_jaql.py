"""The Jaql baseline: MapReduce-based recode + dummy-code over DFS text."""

import pytest

from repro.cluster.cluster import make_paper_cluster
from repro.hdfs.filesystem import DistributedFileSystem
from repro.integration.jaql import JaqlEngine
from repro.sql.types import DataType, Schema
from repro.transform.spec import TransformSpec

SCHEMA = Schema.of(
    ("age", DataType.INT),
    ("gender", DataType.VARCHAR),
    ("amount", DataType.DOUBLE),
    ("abandoned", DataType.VARCHAR),
)
SPEC = TransformSpec(recode=("gender", "abandoned"), dummy=("gender",), label="abandoned")


@pytest.fixture()
def jaql_env():
    cluster = make_paper_cluster()
    dfs = DistributedFileSystem(cluster, block_size=256)
    dfs.mkdirs("/in")
    dfs.write_text(
        "/in/part-0",
        "57,F,142.65,Yes\n40,M,299.99,Yes\n35,F,18.0,No\n",
    )
    return cluster, dfs


class TestJaqlTransform:
    def test_paper_figure1_transformation(self, jaql_env):
        cluster, dfs = jaql_env
        jaql = JaqlEngine(cluster, dfs)
        result = jaql.transform("/in", "/out", SCHEMA, SPEC)
        assert result.records == 3
        assert result.recode_map.mapping("gender") == {"F": 1, "M": 2}
        lines = []
        for path in dfs.list_files("/out"):
            lines.extend(dfs.read_text(path).splitlines())
        # age, gender_F, gender_M, amount, abandoned(recoded)
        assert sorted(lines) == sorted(
            ["57,1,0,142.65,2", "40,0,1,299.99,2", "35,1,0,18.0,1"]
        )

    def test_two_mapreduce_jobs_run(self, jaql_env):
        cluster, dfs = jaql_env
        before = cluster.ledger.snapshot()
        JaqlEngine(cluster, dfs).transform("/in", "/out", SCHEMA, SPEC)
        delta = cluster.ledger.delta(before, cluster.ledger.snapshot())
        input_bytes = dfs.total_size("/in")
        # Both jobs scan the input from the DFS: distinct pass + transform pass.
        assert delta["mr.read"] == 2 * input_bytes
        assert delta["mr.write"] > 0

    def test_recode_only_spec(self, jaql_env):
        cluster, dfs = jaql_env
        spec = TransformSpec(recode=("gender", "abandoned"), label="abandoned")
        JaqlEngine(cluster, dfs).transform("/in", "/out2", SCHEMA, spec)
        lines = []
        for path in dfs.list_files("/out2"):
            lines.extend(dfs.read_text(path).splitlines())
        assert sorted(lines) == sorted(
            ["57,1,142.65,2", "40,2,299.99,2", "35,1,18.0,1"]
        )

    def test_null_categorical_recoded_to_empty(self, jaql_env):
        cluster, dfs = jaql_env
        dfs.write_text("/in2/part-0", "20,,5.0,No\n")
        spec = TransformSpec(recode=("gender", "abandoned"), label="abandoned")
        JaqlEngine(cluster, dfs).transform("/in2", "/out3", SCHEMA, spec)
        lines = []
        for path in dfs.list_files("/out3"):
            lines.extend(dfs.read_text(path).splitlines())
        assert lines == ["20,,5.0,1"]

    def test_matches_insql_transformation(self, jaql_env, users_carts):
        """Jaql's output must agree with the In-SQL UDF path — the paper's
        Figure 3 compares them as equivalent computations."""
        cluster, dfs = jaql_env
        from repro.transform import (
            DummyCodeUDF,
            LocalDistinctUDF,
            RecodeMap,
            RecodeUDF,
            TransformService,
        )

        engine = users_carts
        transforms = TransformService()
        engine.register_table_udf(LocalDistinctUDF())
        engine.register_table_udf(RecodeUDF(transforms))
        engine.register_table_udf(DummyCodeUDF(transforms))
        prep = (
            "SELECT U.age, U.gender, C.amount, C.abandoned "
            "FROM carts C, users U WHERE C.userid = U.userid AND U.country = 'USA'"
        )
        # In-SQL path
        distinct = engine.query_rows(
            "SELECT DISTINCT colName, colVal FROM "
            f"TABLE(local_distinct(({prep}), 'gender', 'abandoned')) AS d"
        )
        transforms.register("m", RecodeMap.from_distinct_rows(distinct))
        insql_rows = engine.query_rows(
            "SELECT * FROM TABLE(dummy_code((SELECT * FROM TABLE(recode("
            f"({prep}), 'm', 'gender', 'abandoned')) AS r), 'm', 'gender')) AS d"
        )
        # Jaql path over the materialized prep result
        result_table = engine.execute(prep)
        lines = [
            ",".join(
                dt.render(v)
                for dt, v in zip([c.dtype for c in result_table.schema], row)
            )
            for row in result_table.all_rows()
        ]
        dfs.write_text("/prep/part-0", "\n".join(lines) + "\n")
        JaqlEngine(cluster, dfs).transform("/prep", "/jaqlout", result_table.schema, SPEC)
        jaql_rows = []
        out_schema_types = [
            DataType.INT, DataType.INT, DataType.INT, DataType.DOUBLE, DataType.INT
        ]
        for path in dfs.list_files("/jaqlout"):
            for line in dfs.read_text(path).splitlines():
                fields = line.split(",")
                jaql_rows.append(
                    tuple(t.parse(f) for t, f in zip(out_schema_types, fields))
                )
        assert sorted(jaql_rows) == sorted(insql_rows)
