"""Blanket ``except`` sweep: typed failures degrade, defects propagate.

Each of these sites used to swallow *every* exception.  The regression
pattern is the same everywhere: plant a TypeError (the canonical "this is
a bug, not an expected failure") where the old code would have eaten it,
and assert it now surfaces; then confirm the *typed* failure the handler
exists for still takes the graceful path.
"""

import pickle

import pytest

from repro import make_deployment
from repro.broker.broker import MessageBroker
from repro.broker.consumer import BrokerConsumer
from repro.broker.producer import BrokerProducer
from repro.caching import cache as cache_module
from repro.caching.cache import CacheManager
from repro.common.errors import ParseError, PlanError
from repro.sql.types import DataType, Schema
from repro.sql.vectorized import _expr_type
from repro.transform.service import TransformService
from repro.transform.spec import TransformSpec

PREP = (
    "SELECT U.age, U.gender, C.amount, C.abandoned "
    "FROM carts C, users U WHERE C.userid = U.userid AND U.country = 'USA'"
)
SPEC = TransformSpec(recode=("gender", "abandoned"), dummy=("gender",), label="abandoned")


# --------------------------------------------------------------------------
# caching/cache.py — _shape_or_none and _fresh
# --------------------------------------------------------------------------


class TestCacheNarrowing:
    def test_planted_type_error_propagates_from_lookup(
        self, users_carts, monkeypatch
    ):
        cache = CacheManager(users_carts, TransformService())

        def buggy_extract(query, engine):
            raise TypeError("planted shape-extraction defect")

        monkeypatch.setattr(cache_module, "extract_shape", buggy_extract)
        with pytest.raises(TypeError, match="planted"):
            cache.lookup_recode_map(PREP, SPEC)
        with pytest.raises(TypeError, match="planted"):
            cache.lookup_transformed(PREP, SPEC)

    def test_typed_parse_failure_still_reads_as_miss(
        self, users_carts, monkeypatch
    ):
        cache = CacheManager(users_carts, TransformService())

        def unparsable(query, engine):
            raise ParseError("not a §5 shape")

        monkeypatch.setattr(cache_module, "extract_shape", unparsable)
        assert cache.lookup_recode_map(PREP, SPEC) is None
        assert cache.stats.recode_map_misses == 1

    def test_dropped_base_table_reads_as_stale_not_crash(self, users_carts):
        from repro.transform.recode import RecodeMap

        cache = CacheManager(users_carts, TransformService())
        recode_map = RecodeMap.from_distinct_rows(
            [("gender", "F"), ("gender", "M"), ("abandoned", "Yes"), ("abandoned", "No")]
        )
        handle = cache.store_recode_map(PREP, SPEC, recode_map)
        assert cache.lookup_recode_map(PREP, SPEC) == handle
        users_carts.drop_table("carts")
        # CatalogError path: entry is stale, never a hit, never a crash.
        assert cache.lookup_recode_map(PREP, SPEC) is None

    def test_planted_type_error_propagates_from_freshness(
        self, users_carts, monkeypatch
    ):
        from repro.transform.recode import RecodeMap

        cache = CacheManager(users_carts, TransformService())
        recode_map = RecodeMap.from_distinct_rows([("gender", "F"), ("gender", "M")])
        cache.store_recode_map(PREP, SPEC, recode_map)

        def buggy_get_entry(name):
            raise TypeError("planted catalog defect")

        monkeypatch.setattr(users_carts.catalog, "get_entry", buggy_get_entry)
        with pytest.raises(TypeError, match="planted"):
            cache.lookup_recode_map(PREP, SPEC)


# --------------------------------------------------------------------------
# broker/consumer.py — _decode
# --------------------------------------------------------------------------


class TestConsumerNarrowing:
    def _filled_broker(self):
        broker = MessageBroker()
        broker.create_topic("t", 1)
        producer = BrokerProducer(broker, "t")
        for i in range(10):
            producer.send_row((i, f"v{i}"))
        producer.close()
        return broker

    def test_planted_decoder_defect_propagates(self, monkeypatch):
        from repro.broker import consumer as consumer_module

        broker = self._filled_broker()
        consumer = BrokerConsumer(broker, "t", 0, group="g")

        def buggy_decode(payload):
            raise TypeError("planted decoder defect")

        monkeypatch.setattr(consumer_module, "decode_block", buggy_decode)
        with pytest.raises(TypeError, match="planted"):
            consumer.poll()

    def test_corruption_signature_still_refetches(self, monkeypatch):
        from repro.broker import consumer as consumer_module
        from repro.transfer.buffers import decode_block as real_decode

        broker = self._filled_broker()
        consumer = BrokerConsumer(broker, "t", 0, group="g")
        failures = iter([True])

        def flaky_decode(payload):
            if next(failures, False):
                raise pickle.UnpicklingError("bit flip")
            return real_decode(payload)

        monkeypatch.setattr(consumer_module, "decode_block", flaky_decode)
        rows = list(consumer)
        assert consumer.refetched_records == 1
        assert sorted(rows) == [(i, f"v{i}") for i in range(10)]


# --------------------------------------------------------------------------
# sql/vectorized.py — _expr_type
# --------------------------------------------------------------------------


class TestExprTypeNarrowing:
    class _RaisingExpr:
        def __init__(self, exc):
            self._exc = exc

        def data_type(self, binder):
            raise self._exc

    def test_plan_error_reads_as_untypeable(self):
        schema = Schema.of(("a", DataType.BIGINT))
        expr = self._RaisingExpr(PlanError("does not type"))
        assert _expr_type(expr, schema) is None

    def test_planted_binder_defect_propagates(self):
        schema = Schema.of(("a", DataType.BIGINT))
        expr = self._RaisingExpr(TypeError("planted binder defect"))
        with pytest.raises(TypeError, match="planted"):
            _expr_type(expr, schema)


# --------------------------------------------------------------------------
# sql/engine.py — _estimate_table_bytes
# --------------------------------------------------------------------------


class TestEstimateNarrowing:
    SCHEMA = Schema.of(("a", DataType.BIGINT), ("b", DataType.VARCHAR))

    def test_missing_path_degrades_and_counts(self):
        deployment = make_deployment()
        engine = deployment.engine
        table = engine.register_external_table(
            "ghost", self.SCHEMA, "/no/such/path"
        )
        assert engine._estimate_table_bytes(table) == float(2**40)
        assert deployment.cluster.ledger.get("planner.estimate_fallback") == 1

    def test_planted_dfs_defect_propagates(self, monkeypatch):
        deployment = make_deployment()
        engine = deployment.engine
        table = engine.register_external_table(
            "ghost", self.SCHEMA, "/no/such/path"
        )

        def buggy_total_size(path):
            raise TypeError("planted dfs defect")

        monkeypatch.setattr(engine.dfs, "total_size", buggy_total_size)
        with pytest.raises(TypeError, match="planted"):
            engine._estimate_table_bytes(table)
        assert deployment.cluster.ledger.get("planner.estimate_fallback") == 0
