"""Coordinator protocol: registration, launch, split planning, matchmaking,
fault hooks — Figure 2's steps, unit-tested without a SQL engine."""

import threading
import time

import pytest

from repro.cluster.cluster import make_paper_cluster
from repro.common.errors import ChannelAbortedError, TransferError
from repro.iofmt.inputformat import JobConf
from repro.transfer.channel import ChannelId
from repro.transfer.coordinator import Coordinator
from repro.transfer.sqlstream import SQLStreamInputFormat, StreamSplit


@pytest.fixture()
def coordinator():
    cluster = make_paper_cluster()
    coord = Coordinator(cluster, launcher=lambda session: "launched", timeout_s=2.0)
    return coord


def register_all(coord, session_id, n=4, command="noop"):
    cluster_ips = [node.ip for node in coord.cluster.workers]
    for worker_id in range(n):
        coord.register_sql_worker(
            session_id, worker_id, cluster_ips[worker_id % len(cluster_ips)], n, command
        )


class TestSessions:
    def test_create_and_lookup(self, coordinator):
        session = coordinator.create_session("s", command="noop")
        assert coordinator.session("s") is session

    def test_duplicate_session_rejected(self, coordinator):
        coordinator.create_session("s")
        with pytest.raises(TransferError, match="already exists"):
            coordinator.create_session("s")

    def test_unknown_session_lists_known(self, coordinator):
        coordinator.create_session("known")
        with pytest.raises(TransferError, match="known"):
            coordinator.session("ghost")

    def test_close_session(self, coordinator):
        coordinator.create_session("s")
        coordinator.close_session("s")
        with pytest.raises(TransferError):
            coordinator.session("s")


class TestRegistration:
    def test_launch_fires_once_all_registered(self, coordinator):
        launches = []
        coordinator.launcher = lambda session: launches.append(session.session_id)
        session = coordinator.create_session("s", command="noop")
        register_all(coordinator, "s", n=4)
        assert session.all_registered.is_set()
        session.result_ready.wait(timeout=2)
        assert launches == ["s"]

    def test_not_launched_before_all_register(self, coordinator):
        launched = threading.Event()
        coordinator.launcher = lambda session: launched.set()
        coordinator.create_session("s", command="noop")
        coordinator.register_sql_worker("s", 0, "10.0.0.2", 4)
        coordinator.register_sql_worker("s", 1, "10.0.0.3", 4)
        assert not launched.wait(timeout=0.1)

    def test_double_registration_rejected(self, coordinator):
        coordinator.create_session("s", command="noop")
        coordinator.register_sql_worker("s", 0, "10.0.0.2", 4)
        with pytest.raises(TransferError, match="twice"):
            coordinator.register_sql_worker("s", 0, "10.0.0.2", 4)

    def test_inconsistent_worker_count_rejected(self, coordinator):
        coordinator.create_session("s", command="noop")
        coordinator.register_sql_worker("s", 0, "10.0.0.2", 4)
        with pytest.raises(TransferError, match="inconsistent"):
            coordinator.register_sql_worker("s", 1, "10.0.0.3", 3)

    def test_udf_supplied_command_and_args(self, coordinator):
        session = coordinator.create_session("s")
        register_all(coordinator, "s", n=4, command="svm_with_sgd")
        assert session.command == "svm_with_sgd"

    def test_launch_without_launcher_raises(self):
        cluster = make_paper_cluster()
        coord = Coordinator(cluster, launcher=None, timeout_s=1.0)
        coord.create_session("s", command="noop")
        with pytest.raises(TransferError, match="launcher"):
            register_all(coord, "s", n=1)


class TestSplitPlanning:
    def test_m_equals_n_times_k(self, coordinator):
        coordinator.default_k = 3
        coordinator.create_session("s", command="noop")
        register_all(coordinator, "s", n=4)
        channel_ids = coordinator.plan_input_splits("s", None)
        assert len(channel_ids) == 12
        session = coordinator.session("s")
        assert all(len(group) == 3 for group in session.groups.values())

    def test_prespecified_m_honoured(self, coordinator):
        coordinator.create_session("s", command="noop")
        register_all(coordinator, "s", n=4)
        channel_ids = coordinator.plan_input_splits("s", 10)
        assert len(channel_ids) == 10
        sizes = sorted(len(g) for g in coordinator.session("s").groups.values())
        assert sizes == [2, 2, 3, 3]  # divided evenly into n groups

    def test_m_floored_at_n(self, coordinator):
        coordinator.create_session("s", command="noop")
        register_all(coordinator, "s", n=4)
        channel_ids = coordinator.plan_input_splits("s", 2)
        assert len(channel_ids) == 4  # every SQL worker needs a consumer

    def test_planning_is_idempotent(self, coordinator):
        coordinator.create_session("s", command="noop")
        register_all(coordinator, "s", n=4)
        first = coordinator.plan_input_splits("s", None)
        second = coordinator.plan_input_splits("s", None)
        assert first == second

    def test_split_locations_are_sql_worker_ips(self, coordinator):
        coordinator.create_session("s", command="noop")
        register_all(coordinator, "s", n=4)
        session = coordinator.session("s")
        for channel_id in coordinator.plan_input_splits("s", None):
            expected_ip = session.sql_workers[channel_id.sql_worker_id].ip
            assert coordinator.split_location("s", channel_id) == expected_ip

    def test_timeout_when_workers_never_register(self, coordinator):
        coordinator.timeout_s = 0.1
        coordinator.create_session("s", command="noop")
        with pytest.raises(TransferError, match="timed out"):
            coordinator.plan_input_splits("s", None)


class TestMatchmaking:
    def test_ml_worker_receives_channel(self, coordinator):
        coordinator.create_session("s", command="noop")
        register_all(coordinator, "s", n=4)
        (cid, *_rest) = coordinator.plan_input_splits("s", None)
        channel = coordinator.register_ml_worker("s", cid)
        assert channel.channel_id == cid

    def test_split_claimed_twice_rejected(self, coordinator):
        coordinator.create_session("s", command="noop")
        register_all(coordinator, "s", n=4)
        (cid, *_rest) = coordinator.plan_input_splits("s", None)
        coordinator.register_ml_worker("s", cid)
        with pytest.raises(TransferError, match="twice"):
            coordinator.register_ml_worker("s", cid)

    def test_unknown_channel_rejected(self, coordinator):
        coordinator.create_session("s", command="noop")
        register_all(coordinator, "s", n=4)
        coordinator.plan_input_splits("s", None)
        with pytest.raises(TransferError, match="no channel"):
            coordinator.register_ml_worker("s", ChannelId(99, 99))

    def test_sql_worker_gets_its_group(self, coordinator):
        coordinator.default_k = 2
        coordinator.create_session("s", command="noop")
        register_all(coordinator, "s", n=4)
        coordinator.plan_input_splits("s", None)
        channels = coordinator.sql_worker_channels("s", 1)
        assert len(channels) == 2
        assert all(c.channel_id.sql_worker_id == 1 for c in channels)

    def test_colocated_channels_marked_local(self, coordinator):
        coordinator.create_session("s", command="noop")
        register_all(coordinator, "s", n=4)
        coordinator.plan_input_splits("s", None)
        session = coordinator.session("s")
        assert all(c.local for c in session.channels.values())


class TestResults:
    def test_wait_result_returns_launcher_value(self, coordinator):
        coordinator.create_session("s", command="noop")
        register_all(coordinator, "s", n=4)
        assert coordinator.wait_result("s", timeout=2) == "launched"

    def test_launcher_error_surfaces(self, coordinator):
        def failing(session):
            raise RuntimeError("boom")

        coordinator.launcher = failing
        coordinator.create_session("s", command="noop")
        register_all(coordinator, "s", n=4)
        with pytest.raises(TransferError, match="boom"):
            coordinator.wait_result("s", timeout=2)


class TestFaultHooks:
    def test_restart_plan_pairs_sql_and_ml_workers(self, coordinator):
        """§6: restarting a SQL worker implies restarting all of its
        corresponding ML workers."""
        coordinator.default_k = 3
        coordinator.create_session("s", command="noop")
        register_all(coordinator, "s", n=4)
        coordinator.plan_input_splits("s", None)
        plan = coordinator.notify_channel_failure("s", 2, "socket reset")
        assert plan["restart_sql_worker"] == 2
        assert len(plan["restart_ml_workers"]) == 3
        session = coordinator.session("s")
        assert session.failed
        assert "socket reset" in session.failure_reason

    def test_failure_aborts_group_channels(self, coordinator):
        coordinator.create_session("s", command="noop")
        register_all(coordinator, "s", n=4)
        coordinator.plan_input_splits("s", None)
        coordinator.notify_channel_failure("s", 0, "socket reset")
        session = coordinator.session("s")
        for cid in session.groups[0]:
            # Aborted channels raise the typed error immediately instead of
            # hanging — and never yield EOF, which would pass the delivered
            # prefix off as a complete stream.
            with pytest.raises(ChannelAbortedError, match="socket reset"):
                session.channels[cid].receive(timeout=0.1)


class TestSQLStreamInputFormat:
    def test_get_splits_via_coordinator(self, coordinator):
        coordinator.default_k = 2
        coordinator.create_session("s", command="noop")
        register_all(coordinator, "s", n=4)
        conf = JobConf({"stream.session": "s"}, coordinator=coordinator)
        splits = SQLStreamInputFormat().get_splits(conf, 999)
        assert len(splits) == 8  # n*k, the 999 hint ignored
        assert all(isinstance(s, StreamSplit) for s in splits)
        assert all(s.length() == 0 for s in splits)

    def test_prespecified_split_count(self, coordinator):
        coordinator.create_session("s2", command="noop")
        register_all(coordinator, "s2", n=4)
        conf = JobConf(
            {"stream.session": "s2", "stream.num_splits": 6}, coordinator=coordinator
        )
        splits = SQLStreamInputFormat().get_splits(conf, 999)
        assert len(splits) == 6

    def test_missing_session_property(self, coordinator):
        conf = JobConf({}, coordinator=coordinator)
        with pytest.raises(ValueError, match="stream.session"):
            SQLStreamInputFormat().get_splits(conf, 1)

    def test_reader_drains_channel(self, coordinator):
        coordinator.create_session("s", command="noop")
        register_all(coordinator, "s", n=4)
        conf = JobConf({"stream.session": "s"}, coordinator=coordinator)
        fmt = SQLStreamInputFormat()
        splits = fmt.get_splits(conf, None)
        target = splits[0]
        channel = coordinator.session("s").channels[target.channel_id]
        channel.send_row((1, "x"))
        channel.send_row((2, "y"))
        channel.close()
        reader = fmt.create_record_reader(target, conf)
        assert list(reader) == [(1, "x"), (2, "y")]
        assert reader.bytes_read > 0


class TestWaitResultTimeout:
    def test_timeout_zero_polls_instead_of_blocking(self, coordinator):
        """Regression: ``timeout=0`` is falsy but must mean "poll, don't
        wait" — the old ``timeout or default`` turned it into a multi-second
        block on the default timeout."""
        coordinator.create_session("s", command="noop")
        start = time.monotonic()
        with pytest.raises(TransferError, match="never finished"):
            coordinator.wait_result("s", timeout=0)
        assert time.monotonic() - start < 1.0

    def test_timeout_none_still_selects_the_default(self, coordinator):
        coordinator.timeout_s = 0.05
        coordinator.create_session("s", command="noop")
        with pytest.raises(TransferError, match="never finished"):
            coordinator.wait_result("s")  # waits timeout_s * 4, then raises


class TestSessionTeardown:
    def _spilled_session(self, tmp_path, fail=False):
        cluster = make_paper_cluster()
        coord = Coordinator(
            cluster,
            launcher=lambda session: "launched",
            timeout_s=2.0,
            buffer_bytes=64,
            spill_dir=str(tmp_path),
        )
        coord.create_session("s", command="noop")
        register_all(coord, "s", n=2)
        coord.plan_input_splits("s", 2)
        # Overflow every channel's 64-byte buffer so spill files exist.
        for worker_id in range(2):
            for channel in coord.sql_worker_channels("s", worker_id):
                for i in range(50):
                    channel.send_row((i, "x" * 32))
        if fail:
            coord.notify_channel_failure("s", 0, "injected")
        return coord

    def test_close_releases_spill_files_of_completed_session(self, tmp_path):
        coord = self._spilled_session(tmp_path)
        assert any(tmp_path.iterdir()), "test needs real spill files"
        coord.close_session("s")
        assert list(tmp_path.iterdir()) == []

    def test_close_releases_spill_files_of_failed_session(self, tmp_path):
        coord = self._spilled_session(tmp_path, fail=True)
        assert any(tmp_path.iterdir()), "test needs real spill files"
        coord.close_session("s")
        assert list(tmp_path.iterdir()) == []

    def test_close_gives_late_readers_immediate_eof(self, coordinator):
        coordinator.create_session("s", command="noop")
        register_all(coordinator, "s", n=2)
        (cid, *_rest) = coordinator.plan_input_splits("s", 2)
        channel = coordinator.session("s").channels[cid]
        channel.send_row((1, "x"))
        coordinator.close_session("s")
        # release() drops pending rows: a reader that shows up after
        # teardown sees EOF at once instead of hanging on its timeout.
        assert channel.receive(timeout=0.1) is None


class TestFailureNotificationLocking:
    def test_channel_abort_runs_outside_the_session_lock(self, coordinator):
        """Regression: ``notify_channel_failure`` used to close channels
        while holding ``coordinator._lock``.  An abort/close that blocks on
        a backpressured sender then deadlocks every other coordinator call.
        Here each abort proves the lock is free by making a coordinator
        call from another thread and waiting for it."""
        coordinator.create_session("s", command="noop")
        register_all(coordinator, "s", n=2)
        coordinator.plan_input_splits("s", 2)
        session = coordinator.session("s")
        unblocked = threading.Event()

        def probing_abort(original_abort):
            def abort(reason="producer failed"):
                probe = threading.Thread(
                    target=lambda: (coordinator.session("s"), unblocked.set())
                )
                probe.start()
                assert unblocked.wait(timeout=2.0), (
                    "coordinator lock held during channel abort"
                )
                original_abort(reason)

            return abort

        for cid in session.groups[0]:
            channel = session.channels[cid]
            channel.abort = probing_abort(channel.abort)
        coordinator.notify_channel_failure("s", 0, "probe")


class TestIdempotentHandshakes:
    """The HA retry forms: duplicates still raise by default, while the
    failover proxy's opt-in flags converge on the existing state."""

    def test_create_session_exists_ok(self, coordinator):
        first = coordinator.create_session("s", command="noop")
        with pytest.raises(TransferError, match="already exists"):
            coordinator.create_session("s", command="noop")
        assert coordinator.create_session("s", command="noop", exists_ok=True) is first

    def test_reregister_ok_converges(self, coordinator):
        coordinator.create_session("s", command="noop")
        coordinator.register_sql_worker("s", 0, "10.0.0.2", 2)
        session = coordinator.register_sql_worker(
            "s", 0, "10.0.0.2", 2, reregister_ok=True
        )
        assert set(session.sql_workers) == {0}
        assert not session.all_registered.is_set()  # still waiting for worker 1

    def test_reclaim_ok_returns_the_same_channel(self, coordinator):
        coordinator.create_session("s", command="noop")
        register_all(coordinator, "s", n=2)
        (cid, *_rest) = coordinator.plan_input_splits("s", 2)
        first = coordinator.register_ml_worker("s", cid)
        assert coordinator.register_ml_worker("s", cid, reclaim_ok=True) is first
