"""Recoding of categorical variables (§2.1): both implementations."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cluster.cluster import make_paper_cluster
from repro.common.errors import ExecutionError, TransformError
from repro.sql.engine import BigSQL
from repro.sql.types import DataType, Schema
from repro.transform.spec import TransformSpec
from repro.transform import (
    LocalDistinctUDF,
    RecodeMap,
    RecodeUDF,
    TransformService,
    recode_join_sql,
)


@pytest.fixture()
def transform_engine(users_carts):
    transforms = TransformService()
    users_carts.register_table_udf(LocalDistinctUDF())
    users_carts.register_table_udf(RecodeUDF(transforms))
    return users_carts, transforms


PREP = (
    "SELECT U.age, U.gender, C.amount, C.abandoned "
    "FROM carts C, users U WHERE C.userid = U.userid AND U.country = 'USA'"
)


class TestRecodeMap:
    def test_paper_figure1_example(self):
        """Figure 1(b): F->1 M->2, No->1 Yes->2 (sorted, consecutive from 1)."""
        rows = [("gender", "F"), ("gender", "M"), ("abandoned", "Yes"), ("abandoned", "No")]
        recode_map = RecodeMap.from_distinct_rows(rows)
        assert recode_map.mapping("gender") == {"F": 1, "M": 2}
        assert recode_map.mapping("abandoned") == {"No": 1, "Yes": 2}
        assert recode_map.cardinality("gender") == 2

    def test_nulls_skipped(self):
        recode_map = RecodeMap.from_distinct_rows([("c", "x"), ("c", None)])
        assert recode_map.mapping("c") == {"x": 1}

    def test_code_lookup(self):
        recode_map = RecodeMap.from_distinct_rows([("c", "b"), ("c", "a")])
        assert recode_map.code("c", "a") == 1
        assert recode_map.code("c", "b") == 2
        assert recode_map.code("c", None) is None
        assert recode_map.code("c", "unseen") is None

    def test_values_in_code_order(self):
        recode_map = RecodeMap.from_distinct_rows([("c", "z"), ("c", "a"), ("c", "m")])
        assert recode_map.values_in_code_order("c") == ["a", "m", "z"]

    def test_as_table_rows_roundtrip(self):
        recode_map = RecodeMap.from_distinct_rows([("g", "F"), ("g", "M"), ("l", "x")])
        rows = recode_map.as_table_rows()
        assert ("g", "F", 1) in rows and ("g", "M", 2) in rows and ("l", "x", 1) in rows
        assert len(RecodeMap.table_schema()) == 3

    @settings(max_examples=40, deadline=None)
    @given(
        values=st.lists(
            st.text(alphabet="abcdefg", min_size=1, max_size=3), min_size=1, max_size=30
        )
    )
    def test_codes_consecutive_from_one(self, values):
        """Invariant the paper requires (SystemML-style consumers): codes
        are exactly 1..K for K distinct values."""
        recode_map = RecodeMap.from_distinct_rows([("c", v) for v in values])
        mapping = recode_map.mapping("c")
        assert sorted(mapping.values()) == list(range(1, len(set(values)) + 1))


class TestLocalDistinctUDF:
    def test_one_scan_covers_all_columns(self, transform_engine):
        engine, _ = transform_engine
        rows = engine.query_rows(
            "SELECT DISTINCT colName, colVal FROM "
            f"TABLE(local_distinct(({PREP}), 'gender', 'abandoned')) AS d"
        )
        assert sorted(rows) == [
            ("abandoned", "No"),
            ("abandoned", "Yes"),
            ("gender", "F"),
            ("gender", "M"),
        ]

    def test_unknown_column_fails_at_planning(self, transform_engine):
        engine, _ = transform_engine
        with pytest.raises(Exception, match="unknown column"):
            engine.query_rows(
                "SELECT * FROM TABLE(local_distinct(users, 'ghost')) AS d"
            )

    def test_needs_columns(self, transform_engine):
        engine, _ = transform_engine
        with pytest.raises(ExecutionError):
            engine.query_rows("SELECT * FROM TABLE(local_distinct(users)) AS d")

    def test_nulls_not_emitted(self, engine):
        engine.register_table_udf(LocalDistinctUDF())
        engine.create_table(
            "withnull", Schema.of(("c", DataType.VARCHAR)), [("x",), (None,), ("y",)]
        )
        rows = engine.query_rows(
            "SELECT DISTINCT colName, colVal FROM "
            "TABLE(local_distinct(withnull, 'c')) AS d"
        )
        assert sorted(rows) == [("c", "x"), ("c", "y")]


class TestRecodeUDF:
    def test_recode_matches_figure1(self, transform_engine):
        engine, transforms = transform_engine
        distinct = engine.query_rows(
            "SELECT DISTINCT colName, colVal FROM "
            f"TABLE(local_distinct(({PREP}), 'gender', 'abandoned')) AS d"
        )
        transforms.register("m", RecodeMap.from_distinct_rows(distinct))
        rows = engine.query_rows(
            f"SELECT * FROM TABLE(recode(({PREP}), 'm', 'gender', 'abandoned')) AS r"
        )
        # F->1 M->2; No->1 Yes->2
        assert (57, 1, 142.65, 2) in rows
        assert (40, 2, 299.99, 2) in rows
        assert (25, 2, 55.10, 1) in rows
        assert all(isinstance(r[1], int) and isinstance(r[3], int) for r in rows)

    def test_output_schema_types(self, transform_engine):
        engine, transforms = transform_engine
        transforms.register(
            "m", RecodeMap.from_distinct_rows([("gender", "F"), ("gender", "M")])
        )
        plan = engine.plan("SELECT * FROM TABLE(recode(users, 'm', 'gender')) AS r")
        types = {c.name: c.dtype for c in plan.schema}
        assert types["gender"] is DataType.INT
        assert types["age"] is DataType.INT
        assert types["country"] is DataType.VARCHAR

    def test_unseen_value_becomes_null(self, engine):
        transforms = TransformService()
        engine.register_table_udf(RecodeUDF(transforms))
        transforms.register("m", RecodeMap.from_distinct_rows([("c", "x")]))
        engine.create_table("t", Schema.of(("c", DataType.VARCHAR)), [("x",), ("zzz",), (None,)])
        rows = engine.query_rows("SELECT * FROM TABLE(recode(t, 'm', 'c')) AS r")
        assert sorted(rows, key=str) == [(1,), (None,), (None,)]

    def test_unknown_handle(self, transform_engine):
        engine, _ = transform_engine
        with pytest.raises(ExecutionError, match="unknown recode map"):
            engine.query_rows("SELECT * FROM TABLE(recode(users, 'ghost', 'gender')) AS r")


class TestJoinFormulation:
    def test_join_sql_matches_paper_text(self):
        sql = recode_join_sql(
            "T", "M", ["gender", "abandoned"], ["age", "gender", "amount", "abandoned"]
        )
        assert "M0.recodeVal AS gender" in sql
        assert "M1.recodeVal AS abandoned" in sql
        assert "M0.colName = 'gender'" in sql
        assert "T.gender = M0.colVal" in sql

    def test_join_path_equals_udf_path(self, transform_engine):
        """§2.1's join-based recode and the broadcast-map UDF agree."""
        engine, transforms = transform_engine
        distinct = engine.query_rows(
            "SELECT DISTINCT colName, colVal FROM "
            f"TABLE(local_distinct(({PREP}), 'gender', 'abandoned')) AS d"
        )
        recode_map = RecodeMap.from_distinct_rows(distinct)
        transforms.register("m", recode_map)

        udf_rows = engine.query_rows(
            f"SELECT * FROM TABLE(recode(({PREP}), 'm', 'gender', 'abandoned')) AS r"
        )

        engine.create_materialized_view("T", PREP)
        engine.create_table("M", RecodeMap.table_schema(), recode_map.as_table_rows())
        join_rows = engine.query_rows(
            recode_join_sql("T", "M", ["gender", "abandoned"],
                            ["age", "gender", "amount", "abandoned"])
        )
        assert sorted(udf_rows) == sorted(join_rows)


class TestDistributedVsCentralized:
    @settings(max_examples=20, deadline=None)
    @given(
        data=st.lists(
            st.tuples(
                st.sampled_from(["a", "b", "c", "d", "e"]),
                st.sampled_from(["X", "Y", "Z"]),
            ),
            min_size=1,
            max_size=80,
        )
    )
    def test_two_phase_equals_single_pass(self, data):
        """The distributed two-phase recoding produces the same map as the
        centralized one-pass algorithm the paper describes for comparison
        (up to the deterministic code assignment)."""
        cluster = make_paper_cluster()
        engine = BigSQL(cluster)
        transforms = TransformService()
        engine.register_table_udf(LocalDistinctUDF())
        engine.create_table(
            "t", Schema.of(("u", DataType.VARCHAR), ("v", DataType.VARCHAR)), data
        )
        distinct = engine.query_rows(
            "SELECT DISTINCT colName, colVal FROM TABLE(local_distinct(t, 'u', 'v')) AS d"
        )
        two_phase = RecodeMap.from_distinct_rows(distinct)
        centralized = RecodeMap.from_distinct_rows(
            [("u", u) for u, _v in data] + [("v", v) for _u, v in data]
        )
        assert two_phase == centralized


class TestOnUnseenPolicy:
    """Dirty-data hardening: the ``on_unseen`` policy of the recode UDF."""

    @pytest.fixture()
    def dirty_engine(self, engine):
        transforms = TransformService()
        engine.register_table_udf(RecodeUDF(transforms))
        transforms.register("m", RecodeMap.from_distinct_rows([("c", "x")]))
        engine.create_table(
            "t",
            Schema.of(("c", DataType.VARCHAR), ("v", DataType.INT)),
            [("x", 1), ("zzz", 2), (None, 3), ("www", 4)],
        )
        return engine

    def test_null_policy_is_default_and_counted(self, dirty_engine):
        rows = dirty_engine.query_rows("SELECT * FROM TABLE(recode(t, 'm', 'c')) AS r")
        assert sorted(rows, key=str) == [(1, 1), (None, 2), (None, 3), (None, 4)]
        # Two unseen values nulled; the pre-existing NULL is not "unseen".
        assert dirty_engine.cluster.ledger.get("transform.unseen_nulled") == 2
        assert dirty_engine.cluster.ledger.get("transform.rows_skipped") == 0

    def test_skip_row_policy_drops_and_counts(self, dirty_engine):
        rows = dirty_engine.query_rows(
            "SELECT * FROM TABLE(recode(t, 'm', 'on_unseen=skip_row', 'c')) AS r"
        )
        assert sorted(rows, key=str) == [(1, 1), (None, 3)]
        assert dirty_engine.cluster.ledger.get("transform.rows_skipped") == 2
        assert dirty_engine.cluster.ledger.get("transform.unseen_nulled") == 0

    def test_error_policy_raises_typed_error(self, dirty_engine):
        with pytest.raises(TransformError, match="unseen value 'zzz'") as excinfo:
            dirty_engine.query_rows(
                "SELECT * FROM TABLE(recode(t, 'm', 'on_unseen=error', 'c')) AS r"
            )
        assert excinfo.value.column == "c"
        assert excinfo.value.value == "zzz"

    def test_invalid_policy_rejected(self, dirty_engine):
        with pytest.raises(ExecutionError, match="on_unseen"):
            dirty_engine.query_rows(
                "SELECT * FROM TABLE(recode(t, 'm', 'on_unseen=bogus', 'c')) AS r"
            )

    def test_spec_validates_and_fingerprints_policy(self):
        with pytest.raises(ValueError, match="on_unseen"):
            TransformSpec(recode=("c",), on_unseen="bogus")
        base = TransformSpec(recode=("c",))
        skipping = TransformSpec(recode=("c",), on_unseen="skip_row")
        assert base.on_unseen == "null"
        assert base.fingerprint() != skipping.fingerprint()
