"""Virtual-time clock: unit semantics plus the deadline/cancel timing port.

Part one pins the :class:`VirtualClock` contract from DESIGN §13: sleeps
fire in deadline order exactly at quiescence, condition/event waits elapse
in virtual time, the managed/unmanaged bracket keeps advancement live
around non-clock blocking, and the virtual horizon surfaces as the typed
:class:`VirtualTimeExhausted`.

Part two re-runs the wall-clock timing cases from
``test_deadline_cancel.py`` against virtual-clock components with the
*same assertions* — a queued session sheds at its budget deadline, a
cancel wakes blocked waiters long before their flat timeouts, an
end-to-end session still trains bit-identical weights — plus the one
assertion wall time can never make: tens of virtual seconds of waiting
must cost under a tenth of that in wall time.
"""

import threading
import time
from time import perf_counter

import pytest

from repro import make_deployment
from repro.common.errors import DeadlineExceeded, SessionCancelled
from repro.runtime.budget import Budget
from repro.sim import WALL, VirtualClock, VirtualTimeExhausted
from repro.transfer.admission import (
    SessionAdmission,
    SpillGovernor,
    WorkerPoolScheduler,
)
from repro.workloads.loadgen import BASE_SEED, make_points_table, run_one_session

pytestmark = pytest.mark.timeout(120)

#: The ported suite's speedup bar: virtual waiting must be at least this
#: many times faster than the wall clock it replaces.
SPEEDUP = 10.0


class DictLedger:
    def __init__(self):
        self.counts: dict[str, float] = {}

    def add(self, key: str, n) -> None:
        self.counts[key] = self.counts.get(key, 0) + n

    def get(self, key: str):
        return self.counts.get(key, 0)


# --------------------------------------------------------------------------
# VirtualClock primitives
# --------------------------------------------------------------------------


class TestVirtualClockPrimitives:
    def test_sleep_jumps_to_deadline_without_wall_time(self):
        clock = VirtualClock()
        start = perf_counter()
        t = clock.spawn(lambda: clock.sleep(60.0), name="sleeper")
        t.join(10.0)
        wall = perf_counter() - start
        assert not t.is_alive()
        assert clock.now() == pytest.approx(60.0)
        assert wall * SPEEDUP < 60.0
        assert clock.stats.advances >= 1

    def test_sleepers_fire_in_deadline_order_at_quiescence(self):
        clock = VirtualClock()
        wakes: list[tuple[float, float]] = []
        lock = threading.Lock()

        def sleeper(duration: float) -> None:
            clock.sleep(duration)
            with lock:
                wakes.append((clock.now(), duration))

        def parent() -> None:
            # While the parent runs (managed, not sleeping) time cannot
            # advance, so all three sleepers register at virtual zero no
            # matter how the OS schedules their startup.
            threads = [
                clock.spawn(lambda d=d: sleeper(d), name=f"sleep-{d}")
                for d in (3.0, 1.0, 2.0)
            ]
            with clock.unmanaged():
                for t in threads:
                    t.join(10.0)

        pt = clock.spawn(parent, name="parent")
        pt.join(10.0)
        assert not pt.is_alive()
        assert wakes == [(1.0, 1.0), (2.0, 2.0), (3.0, 3.0)]

    def test_wait_until_observes_event_set_by_virtual_peer(self):
        clock = VirtualClock()
        event = threading.Event()
        results: list[tuple[bool, float]] = []

        def waiter() -> None:
            ok = clock.wait_until(event, timeout=60.0)
            results.append((ok, clock.now()))

        def setter() -> None:
            clock.sleep(5.0)
            event.set()

        def parent() -> None:
            threads = [
                clock.spawn(waiter, name="waiter"),
                clock.spawn(setter, name="setter"),
            ]
            with clock.unmanaged():
                for t in threads:
                    t.join(10.0)

        pt = clock.spawn(parent, name="parent")
        pt.join(10.0)
        assert not pt.is_alive()
        (ok, woke_at) = results[0]
        assert ok is True
        # Woken by the set, not the 60s timeout — within a tick of the
        # setter's 5-virtual-second sleep.
        assert 5.0 <= woke_at <= 6.0

    def test_wait_on_times_out_in_virtual_seconds(self):
        clock = VirtualClock()
        finished: list[float] = []

        def waiter() -> None:
            cond = threading.Condition()
            deadline = clock.now() + 30.0
            with cond:
                while True:
                    remaining = deadline - clock.now()
                    if remaining <= 0:
                        break
                    clock.wait_on(cond, remaining)
            finished.append(clock.now())

        start = perf_counter()
        t = clock.spawn(waiter, name="cond-waiter")
        t.join(30.0)
        wall = perf_counter() - start
        assert not t.is_alive()
        # Never notified: the full 30 virtual seconds elapse (within one
        # resolution tick), at a >=10x wall discount.
        assert 30.0 <= finished[0] <= 30.0 + clock.resolution_s * 2
        assert wall * SPEEDUP < 30.0

    def test_unmanaged_bracket_keeps_advancement_live(self):
        clock = VirtualClock()
        event = threading.Event()
        results: list[bool] = []

        def blocker() -> None:
            # A real (non-clock) wait: without the bracket this thread
            # would gate quiescence forever and wedge the run.
            with clock.unmanaged():
                results.append(event.wait(10.0))

        def setter() -> None:
            clock.sleep(1.0)
            event.set()

        def parent() -> None:
            threads = [
                clock.spawn(blocker, name="blocker"),
                clock.spawn(setter, name="setter"),
            ]
            with clock.unmanaged():
                for t in threads:
                    t.join(10.0)

        pt = clock.spawn(parent, name="parent")
        pt.join(10.0)
        assert not pt.is_alive()
        assert results == [True]
        assert clock.now() >= 1.0

    def test_virtual_horizon_raises_typed_exhaustion(self):
        clock = VirtualClock(max_virtual_s=1.0)
        errors: list[BaseException] = []

        def storm() -> None:
            try:
                while True:
                    clock.sleep(0.5)
            except VirtualTimeExhausted as exc:
                errors.append(exc)

        t = clock.spawn(storm, name="storm")
        t.join(10.0)
        assert not t.is_alive()
        assert len(errors) == 1
        assert "ceiling" in str(errors[0])

    def test_wall_tracks_virtual_monotonic_with_fixed_epoch(self):
        clock = VirtualClock(epoch=1_700_000_000.0)
        offset = clock.wall() - clock.now()
        t = clock.spawn(lambda: clock.sleep(7.0), name="sleeper")
        t.join(10.0)
        assert clock.wall() - clock.now() == pytest.approx(offset)
        assert clock.wall() == pytest.approx(1_700_000_000.0 + 7.0)

    def test_wall_clock_delegates_to_real_primitives(self):
        before = time.monotonic()
        assert WALL.now() >= before
        assert abs(WALL.wall() - time.time()) < 1.0
        event = threading.Event()
        event.set()
        assert WALL.wait_until(event, timeout=1.0) is True
        cond = threading.Condition()
        with cond:
            assert WALL.wait_on(cond, 0.01) is False  # real timed-out wait


# --------------------------------------------------------------------------
# The deadline/cancel timing suite, ported to virtual time (satellite 4)
# --------------------------------------------------------------------------


class TestVirtualDeadlineCancelPort:
    """Same assertions as the wall-clock suite; waits are virtual."""

    def test_queue_wait_clamped_to_deadline_and_typed(self):
        clock = VirtualClock()
        ledger = DictLedger()
        gate = SessionAdmission(
            max_concurrent_sessions=1, timeout_s=300.0, ledger=ledger, clock=clock
        )
        gate.acquire("a")
        budget = Budget(deadline_s=30.0, session_id="b", clock=clock)
        failures: list[BaseException] = []

        def blocked() -> None:
            try:
                gate.acquire("b", budget=budget)
            except BaseException as exc:
                failures.append(exc)

        start = perf_counter()
        t = clock.spawn(blocked, name="queued-b")
        t.join(30.0)
        wall = perf_counter() - start
        assert not t.is_alive()
        assert len(failures) == 1
        assert isinstance(failures[0], DeadlineExceeded)
        # Clamped to the 30-virtual-second budget, not the gate's 300s flat
        # timeout — and those 30 virtual seconds cost a fraction in wall.
        assert 30.0 <= clock.now() < 300.0
        assert wall * SPEEDUP < clock.now()
        assert gate.stats.shed == 1
        assert ledger.get("shed.expired") == 1
        # The dead ticket left the queue; the slot is immediately reusable.
        gate.release("a")
        assert gate.acquire("c") is True

    def test_scheduler_waiter_woken_by_cancel_not_timeout(self):
        clock = VirtualClock()
        pool = WorkerPoolScheduler(total_slots=1, timeout_s=600.0, clock=clock)
        pool.acquire_slot("holder")
        budget = Budget(session_id="w", clock=clock)
        failures: list[BaseException] = []

        def wait_for_slot() -> None:
            try:
                pool.acquire_slot("w", budget=budget)
            except BaseException as exc:
                failures.append(exc)

        def canceller() -> None:
            clock.sleep(5.0)
            budget.cancel("client hung up")

        def parent() -> None:
            threads = [
                clock.spawn(wait_for_slot, name="slot-waiter"),
                clock.spawn(canceller, name="canceller"),
            ]
            with clock.unmanaged():
                for t in threads:
                    t.join(30.0)

        pt = clock.spawn(parent, name="parent")
        pt.join(30.0)
        assert not pt.is_alive()
        assert len(failures) == 1
        assert isinstance(failures[0], SessionCancelled)
        # Woken by the cancel at ~5 virtual seconds, nowhere near the 600s
        # flat timeout.
        assert 5.0 <= clock.now() <= 6.0
        # The cancelled waiter left no residue: the slot still grants.
        pool.release_slot("holder")
        pool.acquire_slot("next")

    def test_governor_throttle_released_by_cancel(self):
        clock = VirtualClock()
        governor = SpillGovernor(tenant_budgets={"a": 10}, timeout_s=600.0, clock=clock)
        governor.charge("a", 100)
        budget = Budget(session_id="s", clock=clock)
        released: list[float] = []

        def throttled_sender() -> None:
            governor.throttle("a", budget=budget)
            released.append(clock.now())

        def canceller() -> None:
            clock.sleep(2.0)
            budget.cancel()

        def parent() -> None:
            threads = [
                clock.spawn(throttled_sender, name="throttled"),
                clock.spawn(canceller, name="canceller"),
            ]
            with clock.unmanaged():
                for t in threads:
                    t.join(30.0)

        pt = clock.spawn(parent, name="parent")
        pt.join(30.0)
        assert not pt.is_alive()
        # Released by the wake at ~2 virtual seconds, not the 600s bound
        # (and never by force).
        assert len(released) == 1
        assert 2.0 <= released[0] <= 3.0
        assert governor.forced_through == 0

    def test_wait_result_bounded_by_budget_not_stacked_timeouts(self):
        clock = VirtualClock()
        deployment = make_deployment(max_concurrent_sessions=2, clock=clock)
        make_points_table(deployment.engine)
        coordinator = deployment.coordinator
        failures: list[BaseException] = []

        def client() -> None:
            coordinator.create_session(
                "d0",
                command="svm_with_sgd",
                args={"iterations": 3, "seed": BASE_SEED},
                conf_props={"record.format": "labeled_csv", "label.index": -1},
                deadline_s=30.0,
            )
            try:
                coordinator.wait_result("d0")
            except BaseException as exc:
                failures.append(exc)
            finally:
                coordinator.close_session("d0")

        start = perf_counter()
        t = clock.spawn(client, name="client-d0")
        t.join(60.0)
        wall = perf_counter() - start
        assert not t.is_alive()
        assert len(failures) == 1
        assert isinstance(failures[0], DeadlineExceeded)
        # Nothing ever streams: the seed behavior is a 4x-flat-timeout wait
        # (minutes); the budget surfaces the typed expiry at ~30 virtual
        # seconds, which cost a tenth of that (or less) in wall time.
        assert clock.now() >= 30.0
        assert wall * SPEEDUP < clock.now()
        assert deployment.cluster.ledger.get("deadline.expired") >= 1

    def test_session_with_deadline_still_completes_and_matches(self):
        clock = VirtualClock()
        armed = make_deployment(max_concurrent_sessions=2, clock=clock)
        make_points_table(armed.engine)
        outcomes: list = []

        t = clock.spawn(
            lambda: outcomes.append(
                run_one_session(armed, "ok", seed=BASE_SEED, deadline_s=120.0)
            ),
            name="client-ok",
        )
        t.join(60.0)
        assert not t.is_alive()
        outcome = outcomes[0]
        assert outcome.error is None

        plain = make_deployment(max_concurrent_sessions=2)
        make_points_table(plain.engine)
        baseline = run_one_session(plain, "ok", seed=BASE_SEED)
        assert outcome.weights == baseline.weights
        assert outcome.intercept == baseline.intercept
