"""Types, schemas, and byte estimation."""

import pytest
from hypothesis import given, strategies as st

from repro.common.errors import PlanError
from repro.sql.types import (
    Column,
    DataType,
    Schema,
    estimate_row_bytes,
    estimate_value_bytes,
)


class TestDataType:
    @pytest.mark.parametrize(
        "dtype,text,expected",
        [
            (DataType.INT, "42", 42),
            (DataType.BIGINT, "-7", -7),
            (DataType.DOUBLE, "2.5", 2.5),
            (DataType.VARCHAR, "hello", "hello"),
            (DataType.BOOLEAN, "true", True),
            (DataType.BOOLEAN, "FALSE", False),
            (DataType.BOOLEAN, "1", True),
        ],
    )
    def test_parse(self, dtype, text, expected):
        assert dtype.parse(text) == expected

    def test_empty_is_null(self):
        for dtype in DataType:
            assert dtype.parse("") is None
            assert dtype.parse(r"\N") is None

    def test_render_null_is_empty(self):
        for dtype in DataType:
            assert dtype.render(None) == ""

    @given(value=st.integers(-10**12, 10**12))
    def test_int_roundtrip(self, value):
        assert DataType.BIGINT.parse(DataType.BIGINT.render(value)) == value

    @given(value=st.floats(allow_nan=False, allow_infinity=False))
    def test_double_roundtrip(self, value):
        assert DataType.DOUBLE.parse(DataType.DOUBLE.render(value)) == value

    @given(value=st.booleans())
    def test_boolean_roundtrip(self, value):
        assert DataType.BOOLEAN.parse(DataType.BOOLEAN.render(value)) is value

    def test_is_numeric(self):
        assert DataType.INT.is_numeric
        assert DataType.DOUBLE.is_numeric
        assert not DataType.VARCHAR.is_numeric
        assert not DataType.BOOLEAN.is_numeric


class TestSchema:
    SCHEMA = Schema(
        [
            Column("id", DataType.BIGINT, "u"),
            Column("name", DataType.VARCHAR, "u"),
            Column("id", DataType.BIGINT, "c"),
        ]
    )

    def test_qualified_resolution(self):
        assert self.SCHEMA.resolve("u", "id") == 0
        assert self.SCHEMA.resolve("c", "id") == 2
        assert self.SCHEMA.resolve("U", "ID") == 0  # case-insensitive

    def test_unqualified_unique(self):
        assert self.SCHEMA.resolve(None, "name") == 1

    def test_unqualified_ambiguous(self):
        with pytest.raises(PlanError, match="ambiguous"):
            self.SCHEMA.resolve(None, "id")

    def test_missing_lists_candidates(self):
        with pytest.raises(PlanError, match="available"):
            self.SCHEMA.resolve(None, "ghost")

    def test_maybe_resolve(self):
        assert self.SCHEMA.maybe_resolve(None, "ghost") is None
        assert self.SCHEMA.maybe_resolve("u", "name") == 1
        with pytest.raises(PlanError):
            self.SCHEMA.maybe_resolve(None, "id")  # ambiguity still raises

    def test_with_qualifier_and_concat(self):
        left = Schema.of(("a", DataType.INT)).with_qualifier("l")
        right = Schema.of(("b", DataType.INT)).with_qualifier("r")
        joined = left.concat(right)
        assert joined.names == ["a", "b"]
        assert joined.resolve("r", "b") == 1

    def test_equality_and_hash(self):
        a = Schema.of(("x", DataType.INT))
        b = Schema.of(("x", DataType.INT))
        assert a == b and hash(a) == hash(b)
        assert a != Schema.of(("x", DataType.DOUBLE))


class TestByteEstimation:
    def test_value_sizes(self):
        assert estimate_value_bytes(None) == 1
        assert estimate_value_bytes(True) == 1
        assert estimate_value_bytes(7) == 8
        assert estimate_value_bytes(7.5) == 8
        assert estimate_value_bytes("abc") == 7

    def test_row_size_additive(self):
        row = (1, "ab", None)
        assert estimate_row_bytes(row) == 2 + 8 + 6 + 1

    @given(
        row=st.tuples(
            st.integers(), st.text(max_size=30), st.one_of(st.none(), st.floats(allow_nan=False))
        )
    )
    def test_row_size_positive_and_monotone(self, row):
        base = estimate_row_bytes(row)
        assert base > 0
        assert estimate_row_bytes(row + ("extra",)) > base
