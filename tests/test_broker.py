"""Message broker core: topics, offsets, consumer groups, at-least-once."""

import threading

import pytest
from hypothesis import given, settings, strategies as st

from repro.broker.broker import MessageBroker
from repro.broker.consumer import BrokerConsumer
from repro.broker.producer import BrokerProducer
from repro.broker.transfer_udf import partition_group
from repro.common.errors import TransferError


@pytest.fixture()
def broker():
    return MessageBroker()


class TestTopics:
    def test_create_and_info(self, broker):
        broker.create_topic("t", 4)
        info = broker.topic_info("t")
        assert info.num_partitions == 4
        assert info.total_records == 0
        assert not info.sealed

    def test_duplicate_rejected(self, broker):
        broker.create_topic("t", 1)
        with pytest.raises(TransferError, match="already exists"):
            broker.create_topic("t", 1)

    def test_zero_partitions_rejected(self, broker):
        with pytest.raises(TransferError):
            broker.create_topic("t", 0)

    def test_unknown_topic(self, broker):
        with pytest.raises(TransferError, match="unknown topic"):
            broker.topic_info("ghost")

    def test_delete(self, broker):
        broker.create_topic("t", 1)
        broker.delete_topic("t")
        assert not broker.topic_exists("t")
        with pytest.raises(TransferError):
            broker.delete_topic("t")

    def test_delete_clears_group_offsets(self, broker):
        broker.create_topic("t", 1)
        broker.append("t", 0, b"x")
        broker.commit_offset("g", "t", 0, 1)
        broker.delete_topic("t")
        broker.create_topic("t", 1)
        assert broker.committed_offset("g", "t", 0) == 0


class TestAppendFetch:
    def test_offsets_dense_from_zero(self, broker):
        broker.create_topic("t", 1)
        assert broker.append("t", 0, b"a") == 0
        assert broker.append("t", 0, b"b") == 1

    def test_fetch_in_order(self, broker):
        broker.create_topic("t", 1)
        for payload in (b"a", b"b", b"c"):
            broker.append("t", 0, payload)
        broker.seal_partition("t", 0)
        chunk, next_offset, at_end = broker.fetch("t", 0, 0, max_records=2)
        assert chunk == [b"a", b"b"] and next_offset == 2 and not at_end
        chunk, next_offset, at_end = broker.fetch("t", 0, 2)
        assert chunk == [b"c"] and next_offset == 3 and at_end

    def test_fetch_at_end_of_sealed_partition(self, broker):
        broker.create_topic("t", 1)
        broker.seal_partition("t", 0)
        chunk, offset, at_end = broker.fetch("t", 0, 0)
        assert chunk == [] and at_end

    def test_fetch_blocks_until_data(self, broker):
        broker.create_topic("t", 1)

        def producer():
            broker.append("t", 0, b"late")
            broker.seal_partition("t", 0)

        thread = threading.Timer(0.05, producer)
        thread.start()
        chunk, _offset, _end = broker.fetch("t", 0, 0, timeout=2.0)
        assert chunk == [b"late"]
        thread.join()

    def test_fetch_timeout(self, broker):
        broker.create_topic("t", 1)
        with pytest.raises(TransferError, match="timed out"):
            broker.fetch("t", 0, 0, timeout=0.05)

    def test_append_after_seal_rejected(self, broker):
        broker.create_topic("t", 1)
        broker.seal_partition("t", 0)
        with pytest.raises(TransferError, match="sealed"):
            broker.append("t", 0, b"x")

    def test_bad_partition(self, broker):
        broker.create_topic("t", 2)
        with pytest.raises(TransferError, match="partitions"):
            broker.append("t", 5, b"x")

    def test_retention_multiple_reads(self, broker):
        """Data is retained after consumption — the broker-as-cache use."""
        broker.create_topic("t", 1)
        broker.append("t", 0, b"kept")
        broker.seal_partition("t", 0)
        for _ in range(3):
            chunk, _o, _e = broker.fetch("t", 0, 0)
            assert chunk == [b"kept"]


class TestOffsets:
    def test_commit_and_read(self, broker):
        broker.create_topic("t", 2)
        broker.commit_offset("g", "t", 0, 5)
        assert broker.committed_offset("g", "t", 0) == 5
        assert broker.committed_offset("g", "t", 1) == 0
        assert broker.committed_offset("other", "t", 0) == 0

    def test_commit_backwards_rejected(self, broker):
        broker.create_topic("t", 1)
        broker.commit_offset("g", "t", 0, 5)
        with pytest.raises(TransferError, match="backwards"):
            broker.commit_offset("g", "t", 0, 3)

    def test_ledger_accounting(self):
        from repro.cluster.cost import CostLedger

        ledger = CostLedger()
        broker = MessageBroker(ledger=ledger)
        broker.create_topic("t", 1)
        broker.append("t", 0, b"12345")
        broker.seal_partition("t", 0)
        broker.fetch("t", 0, 0)
        assert ledger.get("broker.in") == 5
        assert ledger.get("broker.out") == 5


class TestProducerConsumer:
    def test_round_robin_and_drain(self, broker):
        broker.create_topic("t", 3)
        producer = BrokerProducer(broker, "t")
        rows = [(i, f"v{i}") for i in range(30)]
        for row in rows:
            producer.send_row(row)
        producer.close()
        received = []
        for partition in range(3):
            consumer = BrokerConsumer(broker, "t", partition, group="g")
            received.extend(consumer)
        assert sorted(received) == rows
        info = broker.topic_info("t")
        assert info.total_records == 30 and info.sealed

    def test_keyed_routing_preserves_per_key_order(self, broker):
        broker.create_topic("t", 4)
        producer = BrokerProducer(broker, "t")
        for i in range(40):
            producer.send_row(("k%d" % (i % 5), i), key=i % 5)
        producer.close()
        per_key: dict = {}
        for partition in range(4):
            for key, value in BrokerConsumer(broker, "t", partition, group="g"):
                per_key.setdefault(key, []).append(value)
        for values in per_key.values():
            assert values == sorted(values)

    def test_producer_partition_subset(self, broker):
        broker.create_topic("t", 4)
        producer = BrokerProducer(broker, "t", partitions=[1, 2])
        for i in range(10):
            producer.send_row((i,))
        producer.close()
        assert broker.topic_info("t").total_records == 10
        # only the producer's partitions hold data (and were sealed)
        counts = []
        for partition in range(4):
            if partition in (1, 2):
                records, _off, _end = broker.fetch("t", partition, 0, max_records=100)
            else:
                records = []
            counts.append(len(records))
        assert counts == [0, 5, 5, 0]

    def test_at_least_once_resume(self, broker):
        """The §8 guarantee: a consumer crashing after processing but before
        committing re-reads those records on restart."""
        broker.create_topic("t", 1)
        producer = BrokerProducer(broker, "t")
        for i in range(10):
            producer.send_row((i,))
        producer.close()

        # First consumer processes 6 records but only commits after 4.
        consumer = BrokerConsumer(broker, "t", 0, group="g", batch_size=4)
        first_batch, _ = consumer.poll()  # offsets 0..3
        consumer.commit()
        second_batch, _ = consumer.poll()  # offsets 4..7, NOT committed
        assert [r[0] for r in first_batch] == [0, 1, 2, 3]
        assert [r[0] for r in second_batch] == [4, 5, 6, 7]
        del consumer  # crash

        # The restarted consumer resumes at the committed offset 4.
        resumed = BrokerConsumer(broker, "t", 0, group="g", batch_size=100)
        rows = list(resumed)
        assert [r[0] for r in rows] == [4, 5, 6, 7, 8, 9]  # 4..7 re-delivered

    def test_independent_groups(self, broker):
        broker.create_topic("t", 1)
        producer = BrokerProducer(broker, "t")
        producer.send_row(("only",))
        producer.close()
        assert list(BrokerConsumer(broker, "t", 0, group="a")) == [("only",)]
        assert list(BrokerConsumer(broker, "t", 0, group="b")) == [("only",)]

    @settings(max_examples=25, deadline=None)
    @given(
        rows=st.lists(st.tuples(st.integers(), st.text(max_size=5)), max_size=50),
        partitions=st.integers(1, 5),
    )
    def test_exactly_once_effect_without_failures(self, rows, partitions):
        broker = MessageBroker()
        broker.create_topic("t", partitions)
        producer = BrokerProducer(broker, "t")
        for row in rows:
            producer.send_row(row)
        producer.close()
        received = []
        for partition in range(partitions):
            received.extend(BrokerConsumer(broker, "t", partition, group="g"))
        assert sorted(map(repr, received)) == sorted(map(repr, rows))


class TestPartitionGrouping:
    def test_even_grouping(self):
        groups = [partition_group(12, 4, w) for w in range(4)]
        assert groups == [[0, 1, 2], [3, 4, 5], [6, 7, 8], [9, 10, 11]]

    def test_uneven_grouping_covers_all(self):
        groups = [partition_group(10, 4, w) for w in range(4)]
        flat = [p for g in groups for p in g]
        assert flat == list(range(10))
        assert [len(g) for g in groups] == [3, 3, 2, 2]
