"""Stage records, pipeline results, and benchmark reporting plumbing."""

import io

import pytest

from repro.bench.common import format_table, make_bench_setup, seconds
from repro.integration.stages import PipelineResult, StageTiming


class TestStageTiming:
    def test_counted_flag_controls_totals(self):
        result = PipelineResult(approach="x")
        result.stages.append(StageTiming("a", sim_seconds=10.0, wall_seconds=1.0))
        result.stages.append(StageTiming("b", sim_seconds=5.0, wall_seconds=0.5))
        result.stages.append(
            StageTiming("train", sim_seconds=100.0, wall_seconds=9.0, counted=False)
        )
        assert result.total_sim_seconds == 15.0
        assert result.total_wall_seconds == 1.5

    def test_stage_lookup(self):
        result = PipelineResult(approach="x")
        result.stages.append(StageTiming("a", 1.0, 0.1))
        assert result.stage("a").sim_seconds == 1.0
        with pytest.raises(KeyError, match="have"):
            result.stage("missing")

    def test_breakdown_marks_excluded(self):
        result = PipelineResult(approach="demo")
        result.stages.append(StageTiming("a", 1.0, 0.1))
        result.stages.append(StageTiming("train", 2.0, 0.2, counted=False))
        text = result.breakdown()
        assert "demo" in text
        assert "[excluded from total]" in text

    def test_defaults(self):
        result = PipelineResult(approach="x")
        assert result.attempts == 1
        assert result.broker_topic is None
        assert result.rewrite_kind is None


class TestFormatTable:
    def test_alignment(self):
        text = format_table(["a", "bbb"], [["1", "2"], ["333", "4"]])
        lines = text.splitlines()
        assert len(lines) == 4  # header, rule, two rows
        assert lines[0].startswith("a")
        assert set(lines[1]) <= {"-", " "}
        # columns align: 'bbb' and '2' start at the same offset
        assert lines[0].index("bbb") == lines[2].index("2")

    def test_non_string_cells(self):
        text = format_table(["n"], [[42], [3.5]])
        assert "42" in text and "3.5" in text

    def test_seconds_helper(self):
        assert seconds(43.0) == "43.0 s"


class TestBenchSetup:
    def test_setup_is_wired_and_scaled(self):
        setup = make_bench_setup(num_users=100, num_carts=1_000)
        assert setup.pipeline is setup.deployment.pipeline
        assert setup.pipeline.byte_scale == setup.workload.byte_scale
        assert setup.workload.byte_scale > 1_000  # scaled to 56 GB
        (count,) = setup.deployment.engine.query_rows("SELECT COUNT(*) FROM carts")
        assert count == (1_000,)


class TestAggregateReport:
    def test_run_all_produces_every_section(self):
        from repro.bench.report import run_all

        out = io.StringIO()
        run_all(fast=True, out=out)
        text = out.getvalue()
        for section in (
            "Figure 3",
            "Figure 4",
            "In-text §7",
            "Ablation A",
            "Ablation B",
            "Ablation C",
            "Ablation D",
        ):
            assert section in text, f"missing section {section}"
        assert "insql speedup over naive" in text
