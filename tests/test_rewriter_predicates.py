"""Predicate implication (§5.2's "same or logically stronger")."""

import pytest
from hypothesis import given, strategies as st

from repro.rewriter.predicates import implies
from repro.sql.expressions import Binder
from repro.sql.parser import parse_expression
from repro.sql.types import DataType, Schema

SCHEMA = Schema.of(("a", DataType.INT), ("b", DataType.INT), ("s", DataType.VARCHAR))


def check(stronger: str, weaker: str) -> bool:
    return implies(parse_expression(stronger), parse_expression(weaker))


class TestRangeImplication:
    def test_paper_example(self):
        """The paper's own example: a < 18 is logically stronger than a <= 20."""
        assert check("a < 18", "a <= 20")

    def test_identity(self):
        assert check("a < 5", "a < 5")
        assert check("s = 'USA'", "s = 'USA'")

    @pytest.mark.parametrize(
        "stronger,weaker,expected",
        [
            ("a < 5", "a < 10", True),
            ("a < 5", "a <= 5", True),
            ("a <= 5", "a < 5", False),
            ("a < 5", "a < 5", True),
            ("a <= 4", "a < 5", True),
            ("a < 10", "a < 5", False),
            ("a > 10", "a > 5", True),
            ("a > 5", "a > 10", False),
            ("a >= 10", "a > 9", True),
            ("a > 9", "a >= 9", True),
            ("a >= 9", "a > 9", False),
            ("a = 3", "a < 5", True),
            ("a = 7", "a < 5", False),
            ("a = 3", "a >= 3", True),
            ("a = 3", "a = 3", True),
            ("a = 3", "a = 4", False),
            ("a < 5", "a = 3", False),  # a range never implies an equality
            ("a < 5", "b < 10", False),  # different columns
            ("a < 5", "a > 1", False),  # opposite directions
        ],
    )
    def test_comparison_table(self, stronger, weaker, expected):
        assert check(stronger, weaker) is expected

    def test_flipped_operand_order(self):
        assert check("5 > a", "a <= 20")  # 5 > a  ==  a < 5
        assert check("a < 18", "20 >= a")

    def test_incomparable_types_safe(self):
        assert not check("a < 5", "a < 'x'")


class TestBetweenAndIn:
    def test_between_implies_bounds(self):
        assert check("a BETWEEN 3 AND 7", "a <= 10")
        assert check("a BETWEEN 3 AND 7", "a >= 1")
        assert not check("a BETWEEN 3 AND 7", "a <= 5")

    def test_range_implies_between(self):
        assert not check("a < 5", "a BETWEEN 0 AND 10")  # lower bound unproven
        assert check("a = 5", "a BETWEEN 0 AND 10")

    def test_between_implies_between(self):
        assert check("a BETWEEN 3 AND 7", "a BETWEEN 0 AND 10")
        assert not check("a BETWEEN 3 AND 12", "a BETWEEN 0 AND 10")

    def test_in_subset(self):
        assert check("s IN ('a', 'b')", "s IN ('a', 'b', 'c')")
        assert not check("s IN ('a', 'z')", "s IN ('a', 'b', 'c')")

    def test_equality_implies_in(self):
        assert check("s = 'a'", "s IN ('a', 'b')")
        assert not check("s = 'z'", "s IN ('a', 'b')")

    def test_in_never_implies_equality(self):
        assert not check("s IN ('a', 'b')", "s = 'a'")


class TestConservativeness:
    def test_unknown_shapes_return_false(self):
        assert not check("a + b < 5", "a < 5")
        assert not check("upper(s) = 'X'", "s = 'x'")
        assert not check("a IS NULL", "a < 5")

    @given(
        s_op=st.sampled_from(["<", "<=", ">", ">=", "="]),
        s_val=st.integers(-20, 20),
        w_op=st.sampled_from(["<", "<=", ">", ">=", "="]),
        w_val=st.integers(-20, 20),
    )
    def test_soundness_by_exhaustive_check(self, s_op, s_val, w_op, w_val):
        """If implies() says yes, no integer counterexample may exist."""
        stronger = parse_expression(f"a {s_op} {s_val}")
        weaker = parse_expression(f"a {w_op} {w_val}")
        if not implies(stronger, weaker):
            return
        binder = Binder(Schema.of(("a", DataType.INT)))
        s_fn, w_fn = stronger.bind(binder), weaker.bind(binder)
        for value in range(-40, 41):
            if s_fn((value,)) is True:
                assert w_fn((value,)) is True, (
                    f"{stronger.to_sql()} 'implies' {weaker.to_sql()} "
                    f"but a={value} is a counterexample"
                )
