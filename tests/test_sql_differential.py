"""Differential testing: our MPP engine vs SQLite on the shared SQL subset.

For randomly generated tables and queries (filters, projections, equi-joins,
grouped aggregates, DISTINCT, ORDER BY/LIMIT), both engines must return the
same multiset of rows.  SQLite is the reference implementation; any
disagreement is a bug in our parser, planner, or executor.
"""

import math
import sqlite3

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.cluster.cluster import make_paper_cluster
from repro.sql.engine import BigSQL
from repro.sql.types import DataType, Schema

T1_SCHEMA = Schema.of(
    ("id", DataType.BIGINT),
    ("grp", DataType.INT),
    ("val", DataType.INT),
    ("name", DataType.VARCHAR),
)
T2_SCHEMA = Schema.of(
    ("gid", DataType.INT),
    ("weight", DataType.DOUBLE),
    ("tag", DataType.VARCHAR),
)

NAMES = ["ann", "bob", "cat", "dan", None]
TAGS = ["x", "y", "z"]


@st.composite
def datasets(draw):
    t1 = draw(
        st.lists(
            st.tuples(
                st.integers(0, 30),
                st.integers(0, 4),
                st.one_of(st.none(), st.integers(-20, 20)),
                st.sampled_from(NAMES),
            ),
            min_size=0,
            max_size=40,
        )
    )
    t2 = draw(
        st.lists(
            st.tuples(
                st.integers(0, 4),
                st.floats(min_value=-5, max_value=5, allow_nan=False).map(
                    lambda f: round(f, 3)
                ),
                st.sampled_from(TAGS),
            ),
            min_size=0,
            max_size=15,
        )
    )
    return t1, t2


QUERIES = [
    # projections and filters
    "SELECT id, val FROM t1 WHERE val > 0",
    "SELECT id FROM t1 WHERE val IS NULL",
    "SELECT id FROM t1 WHERE val IS NOT NULL AND grp <> 2",
    "SELECT id, val * 2 + 1 FROM t1 WHERE grp IN (1, 3)",
    "SELECT id FROM t1 WHERE val BETWEEN -5 AND 5",
    "SELECT id FROM t1 WHERE name LIKE 'a%'",
    "SELECT id FROM t1 WHERE name = 'cat' OR val < -10",
    "SELECT id, CASE WHEN val > 0 THEN 'pos' WHEN val < 0 THEN 'neg' ELSE 'zero' END FROM t1 WHERE val IS NOT NULL",
    # distinct / order / limit
    "SELECT DISTINCT grp FROM t1",
    "SELECT DISTINCT grp, name FROM t1",
    "SELECT id, val FROM t1 WHERE val IS NOT NULL ORDER BY val DESC, id ASC LIMIT 5",
    # aggregates
    "SELECT COUNT(*) FROM t1",
    "SELECT COUNT(val), SUM(val), MIN(val), MAX(val) FROM t1",
    "SELECT grp, COUNT(*) FROM t1 GROUP BY grp",
    "SELECT grp, COUNT(val), SUM(val) FROM t1 GROUP BY grp HAVING COUNT(*) > 1",
    "SELECT grp, AVG(val) FROM t1 WHERE val IS NOT NULL GROUP BY grp",
    "SELECT COUNT(DISTINCT grp) FROM t1",
    "SELECT MAX(val) - MIN(val) FROM t1 WHERE val IS NOT NULL",
    # joins
    "SELECT t1.id, t2.tag FROM t1, t2 WHERE t1.grp = t2.gid",
    "SELECT t1.id, t2.weight FROM t1 JOIN t2 ON t1.grp = t2.gid WHERE t2.weight > 0",
    "SELECT t1.id FROM t1 LEFT JOIN t2 ON t1.grp = t2.gid WHERE t2.gid IS NULL",
    "SELECT t1.grp, COUNT(*) FROM t1, t2 WHERE t1.grp = t2.gid GROUP BY t1.grp",
    # union all
    "SELECT id FROM t1 WHERE grp = 0 UNION ALL SELECT id FROM t1 WHERE grp = 1",
]


def normalize(rows):
    out = []
    for row in rows:
        normalized = []
        for value in row:
            if isinstance(value, float):
                if math.isclose(value, round(value), abs_tol=1e-9):
                    value = round(value, 9)
                else:
                    value = round(value, 9)
            if isinstance(value, bool):
                value = int(value)
            normalized.append(value)
        out.append(tuple(normalized))
    return sorted(out, key=repr)


def run_sqlite(t1, t2, sql):
    conn = sqlite3.connect(":memory:")
    conn.execute("CREATE TABLE t1 (id INTEGER, grp INTEGER, val INTEGER, name TEXT)")
    conn.execute("CREATE TABLE t2 (gid INTEGER, weight REAL, tag TEXT)")
    conn.executemany("INSERT INTO t1 VALUES (?,?,?,?)", t1)
    conn.executemany("INSERT INTO t2 VALUES (?,?,?)", t2)
    try:
        return [tuple(r) for r in conn.execute(sql).fetchall()]
    finally:
        conn.close()


def run_ours(t1, t2, sql):
    engine = BigSQL(make_paper_cluster())
    engine.create_table("t1", T1_SCHEMA, t1)
    engine.create_table("t2", T2_SCHEMA, t2)
    return engine.query_rows(sql)


@pytest.mark.parametrize("sql", QUERIES, ids=range(len(QUERIES)))
@settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(data=datasets())
def test_engine_matches_sqlite(sql, data):
    t1, t2 = data
    ours = normalize(run_ours(t1, t2, sql))
    reference = normalize(run_sqlite(t1, t2, sql))
    if "ORDER BY" in sql:
        # order-sensitive: compare as lists (normalize() sorted them, so
        # re-run without sorting)
        ours_ordered = [tuple(r) for r in run_ours(t1, t2, sql)]
        ref_ordered = run_sqlite(t1, t2, sql)
        assert normalize(ours_ordered) == normalize(ref_ordered)
        # and the ordering keys themselves must match in sequence
        assert [r[1] for r in ours_ordered] == [r[1] for r in ref_ordered]
    else:
        assert ours == reference, f"disagreement on: {sql}"
