"""QueryRewriter: emitted SQL, plan kinds, and end-to-end correctness of
rewritten queries (rewritten results must equal direct computation)."""

import pytest

from repro.caching.cache import CacheManager
from repro.common.errors import PlanError
from repro.rewriter.rewriter import QueryRewriter
from repro.transform import (
    DummyCodeUDF,
    LocalDistinctUDF,
    RecodeMap,
    RecodeUDF,
    TransformService,
)
from repro.transform.spec import TransformSpec

PREP = (
    "SELECT U.age, U.gender, C.amount, C.abandoned "
    "FROM carts C, users U WHERE C.userid = U.userid AND U.country = 'USA'"
)
SPEC = TransformSpec(recode=("gender", "abandoned"), dummy=("gender",), label="abandoned")


@pytest.fixture()
def env(users_carts):
    engine = users_carts
    transforms = TransformService()
    cache = CacheManager(engine, transforms)
    engine.register_table_udf(LocalDistinctUDF())
    engine.register_table_udf(RecodeUDF(transforms))
    engine.register_table_udf(DummyCodeUDF(transforms))
    rewriter = QueryRewriter(engine, transforms, cache=cache)
    return engine, transforms, cache, rewriter


def run_pass1(engine, transforms, plan):
    rows = engine.query_rows(plan.pass1_sql)
    recode_map = RecodeMap.from_distinct_rows(rows)
    transforms.register(plan.map_handle, recode_map)
    return recode_map


class TestNoCachePlans:
    def test_plan_shape(self, env):
        engine, _t, _c, rewriter = env
        plan = rewriter.plan(PREP, SPEC)
        assert plan.kind == "no_cache"
        assert plan.needs_pass1
        assert "local_distinct" in plan.pass1_sql
        assert "recode" in plan.inner_sql
        assert "dummy_code" in plan.inner_sql

    def test_no_recoding_needed(self, env):
        engine, _t, _c, rewriter = env
        numeric_spec = TransformSpec(label="amount")
        plan = rewriter.plan("SELECT amount FROM carts", numeric_spec)
        assert not plan.needs_pass1
        assert plan.inner_sql == "SELECT amount FROM carts"

    def test_final_sql_wraps_stream(self, env):
        engine, _t, _c, rewriter = env
        plan = rewriter.plan(PREP, SPEC)
        final = plan.final_sql("sess-1")
        assert final.startswith("SELECT * FROM TABLE(stream_transfer((")
        assert "'sess-1'" in final
        inline = plan.final_sql("s", command="svm_with_sgd", args="iterations=10")
        assert "'svm_with_sgd'" in inline and "'iterations=10'" in inline

    def test_emitted_sql_executes_correctly(self, env):
        """Pass 1 + pass 2 emitted SQL produce the expected transformed rows."""
        engine, transforms, _c, rewriter = env
        plan = rewriter.plan(PREP, SPEC)
        recode_map = run_pass1(engine, transforms, plan)
        assert recode_map.mapping("gender") == {"F": 1, "M": 2}
        rows = engine.query_rows(plan.inner_sql)
        # schema: age, gender_F, gender_M, amount, abandoned(recoded)
        assert (57, 1, 0, 142.65, 2) in rows
        assert (40, 0, 1, 299.99, 2) in rows
        assert (25, 0, 1, 55.10, 1) in rows

    def test_describe(self, env):
        engine, _t, _c, rewriter = env
        plan = rewriter.plan(PREP, SPEC)
        text = plan.describe()
        assert "no_cache" in text and "pass 1" in text and "pass 2" in text


class TestRecodeMapCachePlans:
    def test_pass1_skipped(self, env):
        engine, transforms, cache, rewriter = env
        no_cache_plan = rewriter.plan(PREP, SPEC)
        recode_map = run_pass1(engine, transforms, no_cache_plan)
        cache.store_recode_map(PREP, SPEC, recode_map)

        follow_up = PREP + " AND C.year = 2014"
        plan = rewriter.plan(follow_up, SPEC)
        assert plan.kind == "recode_map_cache"
        assert not plan.needs_pass1

    def test_reused_map_produces_correct_rows(self, env):
        engine, transforms, cache, rewriter = env
        base_plan = rewriter.plan(PREP, SPEC)
        recode_map = run_pass1(engine, transforms, base_plan)
        cache.store_recode_map(PREP, SPEC, recode_map)

        follow_up = PREP + " AND C.year = 2014"
        plan = rewriter.plan(follow_up, SPEC)
        rows = engine.query_rows(plan.inner_sql)
        # 2014 carts in USA: (1,142.65,Yes), (1,7.50,No), (5,120.00,Yes)
        assert sorted(rows) == [
            (57, 1, 0, 7.50, 1),
            (57, 1, 0, 142.65, 2),
            (61, 1, 0, 120.00, 2),
        ]


class TestFullCachePlans:
    def setup_cache(self, env):
        engine, transforms, cache, rewriter = env
        base_plan = rewriter.plan(PREP, SPEC)
        recode_map = run_pass1(engine, transforms, base_plan)
        handle = cache.store_recode_map(PREP, SPEC, recode_map)
        # materialize the recoded (pre-dummy) stage, as the pipeline does
        recode_sql = (
            f"SELECT * FROM TABLE(recode(({PREP}), '{handle}', "
            "'gender', 'abandoned')) AS __recoded"
        )
        engine.create_materialized_view("cached_view", recode_sql)
        cache.store_transformed(PREP, SPEC, "cached_view", handle)
        return engine, rewriter, handle

    def test_identical_query_served_from_view(self, env):
        engine, rewriter, _h = self.setup_cache(env)
        plan = rewriter.plan(PREP, SPEC)
        assert plan.kind == "full_cache"
        assert plan.cached_view == "cached_view"
        assert "carts" not in plan.inner_sql  # base tables never touched
        rows = engine.query_rows(plan.inner_sql)
        assert (57, 1, 0, 142.65, 2) in rows
        assert len(rows) == 6

    def test_paper_51_followup_predicate_recoded(self, env):
        """The §5.1 example: gender = 'F' must become gender = 1 against the
        recoded cached view."""
        engine, rewriter, _h = self.setup_cache(env)
        subset_sql = (
            "SELECT U.age, C.amount, C.abandoned FROM carts C, users U "
            "WHERE C.userid = U.userid AND U.country = 'USA' AND U.gender = 'F'"
        )
        spec = TransformSpec(recode=("abandoned",), label="abandoned")
        plan = rewriter.plan(subset_sql, spec)
        assert plan.kind == "full_cache"
        assert "gender = 1" in plan.inner_sql
        rows = engine.query_rows(plan.inner_sql)
        direct = engine.query_rows(
            "SELECT U.age, C.amount, C.abandoned FROM carts C, users U "
            "WHERE C.userid = U.userid AND U.country = 'USA' AND U.gender = 'F'"
        )
        # recoded abandoned: No->1, Yes->2
        expected = sorted((a, m, {"No": 1, "Yes": 2}[ab]) for a, m, ab in direct)
        assert sorted(rows) == expected

    def test_unknown_predicate_value_fails_loudly(self, env):
        engine, rewriter, _h = self.setup_cache(env)
        bad_sql = (
            "SELECT U.age, C.amount, C.abandoned FROM carts C, users U "
            "WHERE C.userid = U.userid AND U.country = 'USA' AND U.gender = 'Q'"
        )
        spec = TransformSpec(recode=("abandoned",), label="abandoned")
        with pytest.raises(PlanError, match="not in the cached recode map"):
            rewriter.plan(bad_sql, spec)

    def test_full_cache_beats_recode_cache_in_priority(self, env):
        engine, rewriter, _h = self.setup_cache(env)
        plan = rewriter.plan(PREP, SPEC)
        assert plan.kind == "full_cache"  # not recode_map_cache
