"""MLSystem facade: command registry, job execution, record parsing."""

import numpy as np
import pytest

from repro.cluster.cluster import make_paper_cluster
from repro.common.errors import MLError
from repro.hdfs.filesystem import DistributedFileSystem
from repro.iofmt.inputformat import JobConf
from repro.iofmt.text import CsvInputFormat
from repro.ml.dataset import LabeledPoint
from repro.ml.system import MLSystem


@pytest.fixture()
def env():
    cluster = make_paper_cluster()
    dfs = DistributedFileSystem(cluster, block_size=512)
    ml = MLSystem(cluster)
    return cluster, dfs, ml


def write_labeled_csv(dfs, path, n=120):
    lines = "\n".join(f"{i % 7},{i % 3},{i % 2}" for i in range(n)) + "\n"
    dfs.write_text(path, lines)


class TestRegistry:
    def test_default_commands_present(self, env):
        _c, _d, ml = env
        for command in (
            "svm_with_sgd",
            "logistic_regression",
            "naive_bayes",
            "decision_tree",
            "kmeans",
            "linear_regression",
            "noop",
        ):
            assert command in ml.known_commands()

    def test_trainer_accessor(self, env):
        _c, _d, ml = env
        assert callable(ml.trainer("svm_with_sgd"))
        with pytest.raises(MLError, match="known"):
            ml.trainer("nope")

    def test_register_replaces(self, env):
        _c, _d, ml = env
        ml.register_algorithm("noop", lambda ds, args: "replaced")
        assert ml.trainer("noop")(None, {}) == "replaced"

    def test_default_parallelism(self, env):
        cluster, _d, _ml = env
        assert MLSystem(cluster, workers_per_node=6).default_parallelism == 24
        assert MLSystem(cluster, workers_per_node=2).default_parallelism == 8


class TestRunJob:
    def test_labeled_csv_job(self, env):
        cluster, dfs, ml = env
        write_labeled_csv(dfs, "/j/data.csv")
        conf = JobConf({"input.path": "/j/data.csv"}, dfs=dfs)
        result = ml.run_job("logistic_regression", {"iterations": 5}, CsvInputFormat(), conf)
        assert result.command == "logistic_regression"
        assert result.dataset.count() == 120
        assert isinstance(result.dataset.first(), LabeledPoint)
        assert result.ingest_stats.bytes == dfs.status("/j/data.csv").length

    def test_label_index_and_offset(self, env):
        cluster, dfs, ml = env
        dfs.write_text("/j/o.csv", "2,10,20\n1,30,40\n")
        conf = JobConf(
            {"input.path": "/j/o.csv", "label.index": 0, "label.offset": 1.0},
            dfs=dfs,
        )
        result = ml.run_job("noop", {}, CsvInputFormat(), conf)
        labels = sorted(lp.label for lp in result.dataset.collect())
        assert labels == [0.0, 1.0]

    def test_vector_format(self, env):
        cluster, dfs, ml = env
        dfs.write_text("/j/v.csv", "1,2\n3,4\n")
        conf = JobConf({"input.path": "/j/v.csv", "record.format": "vector_csv"}, dfs=dfs)
        result = ml.run_job("noop", {}, CsvInputFormat(), conf)
        records = result.dataset.collect()
        assert all(isinstance(r, np.ndarray) for r in records)

    def test_raw_format(self, env):
        cluster, dfs, ml = env
        dfs.write_text("/j/r.csv", "a,b\n")
        conf = JobConf({"input.path": "/j/r.csv", "record.format": "raw"}, dfs=dfs)
        result = ml.run_job("noop", {}, CsvInputFormat(), conf)
        assert result.dataset.collect() == [["a", "b"]]

    def test_unknown_format_rejected(self, env):
        cluster, dfs, ml = env
        dfs.write_text("/j/x.csv", "1\n")
        conf = JobConf({"input.path": "/j/x.csv", "record.format": "avro"}, dfs=dfs)
        with pytest.raises(MLError, match="record.format"):
            ml.run_job("noop", {}, CsvInputFormat(), conf)

    def test_unknown_command_rejected(self, env):
        cluster, dfs, ml = env
        conf = JobConf({"input.path": "/nowhere"}, dfs=dfs)
        with pytest.raises(MLError, match="unknown ML command"):
            ml.run_job("alchemy", {}, CsvInputFormat(), conf)

    def test_custom_record_parser_wins(self, env):
        cluster, dfs, ml = env
        dfs.write_text("/j/c.csv", "5,6\n")
        conf = JobConf({"input.path": "/j/c.csv"}, dfs=dfs)
        result = ml.run_job(
            "noop", {}, CsvInputFormat(), conf,
            record_parser=lambda fields: sum(int(v) for v in fields),
        )
        assert result.dataset.collect() == [11]
