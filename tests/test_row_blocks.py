"""RowBlock framing: FIFO across spill boundaries, mixed block sizes, EOF
flush of partial batches, deadline-guarded reads, and byte-identity of the
ML boundary against the per-row seed path."""

import threading
import time

import pytest

from repro import make_deployment
from repro.broker.broker import MessageBroker
from repro.broker.consumer import BrokerConsumer
from repro.broker.producer import BrokerProducer
from repro.common.errors import TransferError
from repro.sql.types import DataType, Schema
from repro.transfer.buffers import (
    SpillableBuffer,
    decode_block,
    decode_row,
    encode_block,
    encode_row,
)
from repro.transfer.channel import ChannelId, StreamChannel
from repro.transfer.socket_channel import SocketStreamChannel
from repro.workloads import generate_retail


def _rows(n: int, tag: str = "r") -> list[tuple]:
    return [(i, float(i) / 3.0, f"{tag}-{i}") for i in range(n)]


class TestBlockCodec:
    def test_block_round_trip(self):
        rows = _rows(5)
        assert decode_block(encode_block(rows)) == rows

    def test_per_row_frame_decodes_as_one_row_block(self):
        """The two framings interoperate: a seed per-row frame reads back
        as a one-row block, so batch_rows=1 is the seed wire format."""
        row = (1, 2.5, "x")
        assert decode_block(encode_row(row)) == [row]
        assert decode_row(encode_row(row)) == row

    def test_empty_block(self):
        assert decode_block(encode_block([])) == []


class TestSpillBoundaryMidBlock:
    """Blocks that straddle the memory/spill boundary drain in FIFO order."""

    def _pump(self, channel, blocks):
        for block in blocks:
            channel.send_many(block)
        channel.close()
        return list(channel)

    def test_overflow_region_keeps_fifo(self):
        # Capacity fits roughly one block; later blocks overflow in memory.
        blocks = [_rows(10, f"b{i}") for i in range(20)]
        one_block_bytes = len(encode_block(blocks[0]))
        channel = StreamChannel(
            ChannelId(0, 0), buffer_bytes=one_block_bytes + 8, local=True
        )
        received = self._pump(channel, blocks)
        assert received == [row for block in blocks for row in block]
        assert channel.spilled_bytes > 0

    def test_spill_file_keeps_fifo(self, tmp_path):
        blocks = [_rows(10, f"f{i}") for i in range(20)]
        one_block_bytes = len(encode_block(blocks[0]))
        channel = StreamChannel(
            ChannelId(0, 1),
            buffer_bytes=one_block_bytes + 8,
            spill_path=str(tmp_path / "spill.bin"),
            local=True,
        )
        received = self._pump(channel, blocks)
        assert received == [row for block in blocks for row in block]
        assert channel.spilled_bytes > 0

    def test_spilled_blocks_survive_intact(self):
        """A block is one spill item: it comes back whole, not row-split."""
        buf = SpillableBuffer(capacity_bytes=16)
        payloads = [encode_block(_rows(7, f"s{i}")) for i in range(5)]
        for p in payloads:
            buf.put(p)
        buf.close()
        assert list(buf) == payloads
        assert buf.spilled_bytes > 0


class TestMixedBlockSizes:
    """Per-row and block frames of varied sizes interleave on one channel."""

    MIX = [
        ("row", (0, "single-a")),
        ("block", _rows(3, "m0")),
        ("row", (1, "single-b")),
        ("block", _rows(1, "m1")),
        ("block", _rows(17, "m2")),
        ("row", (2, "single-c")),
    ]

    def _expected(self):
        out = []
        for kind, item in self.MIX:
            if kind == "row":
                out.append(item)
            else:
                out.extend(item)
        return out

    def _send_mix(self, channel):
        for kind, item in self.MIX:
            if kind == "row":
                channel.send_row(item)
            else:
                channel.send_many(item)
        channel.close()

    def test_memory_channel_iterates_in_order(self):
        channel = StreamChannel(ChannelId(1, 0), buffer_bytes=64, local=True)
        self._send_mix(channel)
        assert list(channel) == self._expected()

    def test_memory_channel_receive_one_at_a_time(self):
        channel = StreamChannel(ChannelId(1, 1), buffer_bytes=64, local=True)
        self._send_mix(channel)
        out = []
        while (row := channel.receive()) is not None:
            out.append(row)
        assert out == self._expected()
        assert channel.rows_received == len(self._expected())

    def test_socket_channel_iterates_in_order(self):
        channel = SocketStreamChannel(ChannelId(2, 0), buffer_bytes=2048, local=True)
        received: list[tuple] = []
        reader = threading.Thread(target=lambda: received.extend(channel))
        reader.start()
        self._send_mix(channel)
        reader.join(timeout=10)
        assert received == self._expected()

    def test_socket_channel_blocks_spill_past_kernel_buffer(self):
        """Big blocks against a tiny kernel buffer engage the overflow path
        without tearing frames."""
        channel = SocketStreamChannel(ChannelId(2, 1), buffer_bytes=512, local=True)
        blocks = [_rows(50, f"k{i}") for i in range(10)]
        received: list[tuple] = []
        reader = threading.Thread(target=lambda: received.extend(channel))

        def produce():
            for block in blocks:
                channel.send_many(block)
            channel.close()

        producer = threading.Thread(target=produce)
        producer.start()
        # Let the sender hit the full kernel buffer before draining starts.
        producer.join(timeout=10)
        reader.start()
        reader.join(timeout=10)
        assert received == [row for block in blocks for row in block]


class TestEofFlushOfPartialBatch:
    """The stream UDF flushes per-channel partial batches at end of input."""

    @pytest.fixture()
    def points(self, deployment):
        engine = deployment.engine
        rows = [(i, float(i)) for i in range(500)]
        engine.create_table(
            "points", Schema.of(("id", DataType.BIGINT), ("v", DataType.DOUBLE)), rows
        )
        return deployment, rows

    @pytest.mark.parametrize("batch_rows", [7, 256, 4096])
    def test_all_rows_arrive(self, points, batch_rows):
        # 500 rows over 4 workers: with batch_rows=4096 every channel's
        # entire output is one EOF-flushed partial block; with 7 and 256
        # the final block of each channel is partial.
        deployment, rows = points
        deployment.coordinator.create_session(
            "flush",
            command="noop",
            conf_props={"record.format": "raw"},
            batch_rows=batch_rows,
        )
        deployment.engine.query_rows(
            "SELECT * FROM TABLE(stream_transfer((SELECT id, v FROM points), 'flush')) AS s"
        )
        result = deployment.coordinator.wait_result("flush")
        assert sorted(result.dataset.collect()) == sorted(rows)

    def test_session_batch_rows_prop(self, points):
        """`stream.batch_rows` in conf_props configures the session too."""
        deployment, rows = points
        session = deployment.coordinator.create_session(
            "prop",
            command="noop",
            conf_props={"record.format": "raw", "stream.batch_rows": "3"},
        )
        assert session.batch_rows == 3
        deployment.engine.query_rows(
            "SELECT * FROM TABLE(stream_transfer((SELECT id, v FROM points), 'prop')) AS s"
        )
        result = deployment.coordinator.wait_result("prop")
        assert result.dataset.count() == len(rows)


class TestGetDeadlineGuard:
    def test_repeated_notifies_do_not_extend_deadline(self):
        """Notifies that deliver no item (a racing reader won, or a spurious
        wakeup) must not push the timeout further into the future."""
        buf = SpillableBuffer(capacity_bytes=1024)
        stop = threading.Event()

        def nudge():
            while not stop.is_set():
                with buf._lock:
                    buf._readable.notify_all()
                time.sleep(0.02)

        nudger = threading.Thread(target=nudge, daemon=True)
        nudger.start()
        start = time.monotonic()
        try:
            with pytest.raises(TransferError, match="timed out"):
                buf.get(timeout=0.25)
        finally:
            stop.set()
            nudger.join()
        elapsed = time.monotonic() - start
        assert elapsed < 5.0  # far below even one extra full timeout period

    def test_timeout_none_still_blocks_until_close(self):
        buf = SpillableBuffer(capacity_bytes=64)
        closer = threading.Timer(0.05, buf.close)
        closer.start()
        assert buf.get(timeout=None) is None
        closer.join()


class TestBrokerBlocks:
    def _drain(self, broker, topic, partitions, group="g"):
        rows = []
        for p in range(partitions):
            rows.extend(BrokerConsumer(broker, topic, p, group=group))
        return rows

    def test_records_are_blocks_but_rows_are_counted(self):
        broker = MessageBroker()
        broker.create_topic("t", 2)
        producer = BrokerProducer(broker, "t", batch_rows=8)
        data = _rows(20)
        for row in data:
            producer.send_row(row)
        producer.close()
        info = broker.topic_info("t")
        assert info.total_records == 20  # logical rows, not block records
        # 10 rows round-robin into each partition: 8 + an EOF-flushed 2.
        assert sorted(self._drain(broker, "t", 2)) == sorted(data)

    def test_batch_rows_one_is_seed_wire(self):
        broker = MessageBroker()
        broker.create_topic("seed", 1)
        producer = BrokerProducer(broker, "seed", batch_rows=1)
        offsets = [producer.send_row(row) for row in _rows(5)]
        producer.close()
        assert offsets == [0, 1, 2, 3, 4]  # one record per row, none buffered
        payloads, _next, _end = broker.fetch("seed", 0, 0, max_records=10)
        assert all(isinstance(decode_row(p), tuple) for p in payloads)

    def test_uncommitted_blocks_redelivered_whole(self):
        """At-least-once granularity is the block: an uncommitted poll is
        redelivered with every row of every block intact."""
        broker = MessageBroker()
        broker.create_topic("redeliver", 1)
        producer = BrokerProducer(broker, "redeliver", batch_rows=5)
        data = _rows(30)
        for row in data:
            producer.send_row(row)
        producer.close()  # 6 block records
        first = BrokerConsumer(broker, "redeliver", 0, group="ml", batch_size=2)
        rows, _end = first.poll()  # 2 blocks = 10 rows
        assert rows == data[:10]
        first.commit()
        rows, _end = first.poll()  # 10 more rows, NOT committed
        assert rows == data[10:20]
        # crash: a new consumer in the same group resumes at the commit
        second = BrokerConsumer(broker, "redeliver", 0, group="ml", batch_size=100)
        redelivered, at_end = second.poll()
        assert at_end
        assert redelivered == data[10:]


class TestMlBoundaryByteIdentity:
    """Batching must not change a single value or its ordering at the ML
    boundary, for every connection strategy and broker variant."""

    def _signature(self, result):
        # Order-sensitive on purpose: identical per-partition sequences,
        # not just identical multisets.
        return [
            (lp.label, tuple(lp.features))
            for lp in result.ml_result.dataset.collect()
        ]

    def _run(self, batch_rows, runner_name, transport="memory"):
        deployment = make_deployment(
            block_size=64 * 1024, batch_rows=batch_rows, transport=transport
        )
        workload = generate_retail(
            deployment.engine, deployment.dfs, num_users=200, num_carts=2_000, seed=31
        )
        deployment.pipeline.byte_scale = workload.byte_scale
        runner = getattr(deployment.pipeline, runner_name)
        return self._signature(runner(workload.prep_sql, workload.spec, "noop"))

    def test_stream_batched_equals_per_row_seed(self):
        assert self._run(256, "run_insql_stream") == self._run(1, "run_insql_stream")

    def test_socket_transport_batched_equals_per_row_seed(self):
        assert self._run(256, "run_insql_stream", transport="socket") == self._run(
            1, "run_insql_stream", transport="socket"
        )

    def test_broker_batched_equals_per_row_seed(self):
        assert self._run(256, "run_insql_broker") == self._run(1, "run_insql_broker")

    def test_all_strategies_agree_with_batching_on(self):
        batched = {
            name: self._run(256, name)
            for name in ("run_naive", "run_insql", "run_insql_stream")
        }
        base = sorted(batched["run_naive"])
        assert base  # non-empty
        for name, sig in batched.items():
            assert sorted(sig) == base, f"{name} diverged"
