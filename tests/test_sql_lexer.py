"""SQL tokenizer."""

import pytest

from repro.common.errors import ParseError
from repro.sql.lexer import tokenize


def kinds(sql):
    return [(t.kind, t.value) for t in tokenize(sql)]


class TestTokenize:
    def test_keywords_case_insensitive(self):
        tokens = tokenize("SeLeCt FROM where")
        assert [t.value for t in tokens[:-1]] == ["select", "from", "where"]
        assert all(t.kind == "keyword" for t in tokens[:-1])

    def test_identifiers_preserve_case(self):
        tokens = tokenize("myTable Col_1")
        assert [(t.kind, t.value) for t in tokens[:-1]] == [
            ("ident", "myTable"),
            ("ident", "Col_1"),
        ]

    def test_numbers(self):
        values = [t.value for t in tokenize("1 2.5 .75 1e3 2.5E-2")[:-1]]
        assert values == ["1", "2.5", ".75", "1e3", "2.5E-2"]

    def test_strings_with_escaped_quote(self):
        (token, _eof) = tokenize("'it''s'")
        assert token.kind == "string"
        assert token.value == "it's"

    def test_empty_string_literal(self):
        (token, _eof) = tokenize("''")
        assert token.value == ""

    def test_quoted_identifier(self):
        (token, _eof) = tokenize('"weird name"')
        assert token.kind == "ident"
        assert token.value == "weird name"

    def test_operators(self):
        ops = [t.value for t in tokenize("= <> != <= >= < > + - * / % ( ) , . ;")[:-1]]
        assert ops == ["=", "<>", "<>", "<=", ">=", "<", ">", "+", "-", "*", "/", "%", "(", ")", ",", ".", ";"]

    def test_comments_skipped(self):
        tokens = tokenize("SELECT -- the select\n1")
        assert [(t.kind, t.value) for t in tokens[:-1]] == [
            ("keyword", "select"),
            ("number", "1"),
        ]

    def test_eof_token(self):
        assert tokenize("")[-1].kind == "eof"

    def test_positions(self):
        tokens = tokenize("a = 1")
        assert [t.position for t in tokens[:-1]] == [0, 2, 4]

    def test_illegal_character(self):
        with pytest.raises(ParseError, match="illegal"):
            tokenize("SELECT @foo")

    def test_whole_query(self):
        sql = "SELECT U.age FROM users U WHERE U.country = 'USA'"
        tokens = tokenize(sql)
        assert tokens[0].is_keyword("select")
        assert tokens[-1].kind == "eof"
        assert any(t.kind == "string" and t.value == "USA" for t in tokens)
