"""End-to-end deadlines and cooperative cancellation across the serving plane.

Covers the waits-and-wakes contract: every gate (admission, scheduler,
governor, mux transport, result wait) derives its timeout from the session
budget and is *woken* — not timed out — by a cancel; shedding and expiry
surface as the typed non-retryable errors; the trainer aborts only after
committing its last due checkpoint; and with the feature disarmed, the
ledger stays bit-identical to the seed.
"""

import threading
import time
from time import perf_counter

import pytest

from repro import make_deployment
from repro.checkpoint import CheckpointStore
from repro.checkpoint.store import TrainCheckpointer
from repro.common.errors import (
    AdmissionError,
    DeadlineExceeded,
    SessionCancelled,
    TransferError,
)
from repro.runtime.budget import Budget
from repro.transfer.admission import (
    SessionAdmission,
    SpillGovernor,
    WorkerPoolScheduler,
)
from repro.transfer.socket_channel import MuxSocketTransport
from repro.workloads.loadgen import BASE_SEED, make_points_table, run_one_session

pytestmark = pytest.mark.timeout(120)

#: A cancel must wake a blocked waiter well inside this bound — every gate
#: under test is configured with a much larger flat timeout, so finishing
#: this fast proves the waiter was notified, not timed out.
WAKE_BOUND_S = 2.0


class FakeClock:
    def __init__(self, now: float = 100.0):
        self.now = now

    def __call__(self) -> float:
        return self.now


class DictLedger:
    def __init__(self):
        self.counts: dict[str, float] = {}

    def add(self, key: str, n) -> None:
        self.counts[key] = self.counts.get(key, 0) + n

    def get(self, key: str):
        return self.counts.get(key, 0)


def _spin_until(predicate, timeout_s: float = 5.0) -> None:
    deadline = time.monotonic() + timeout_s
    while not predicate():
        assert time.monotonic() < deadline, "condition never became true"
        time.sleep(0.002)


# --------------------------------------------------------------------------
# Admission: deadline-clamped waits, expired-ticket shedding, preemption
# --------------------------------------------------------------------------


class TestAdmissionBudgets:
    def test_queue_wait_clamped_to_deadline_and_typed(self):
        ledger = DictLedger()
        gate = SessionAdmission(
            max_concurrent_sessions=1, timeout_s=30.0, ledger=ledger
        )
        gate.acquire("a")
        budget = Budget(deadline_s=0.05, session_id="b")
        start = perf_counter()
        with pytest.raises(DeadlineExceeded):
            gate.acquire("b", budget=budget)
        # Clamped to the budget, not the gate's 30s flat timeout.
        assert perf_counter() - start < WAKE_BOUND_S
        assert gate.stats.shed == 1
        assert ledger.get("shed.expired") == 1
        # The dead ticket left the queue; the slot is immediately reusable.
        gate.release("a")
        assert gate.acquire("c") is True

    def test_release_sheds_expired_tickets_before_promotion(self):
        clock = FakeClock()
        ledger = DictLedger()
        gate = SessionAdmission(
            max_concurrent_sessions=1, timeout_s=30.0, ledger=ledger
        )
        gate.acquire("a")
        # b queues with a fake-clock budget (30s on the fake clock — its
        # real wait is far longer than this test), then the clock jumps past
        # its deadline while it sleeps.
        expired_budget = Budget(deadline_s=30.0, session_id="b", clock=clock)
        failures: list[BaseException] = []
        admitted = threading.Event()

        def queue_b():
            try:
                gate.acquire("b", budget=expired_budget)
            except BaseException as exc:
                failures.append(exc)

        def queue_c():
            gate.acquire("c")
            admitted.set()

        tb = threading.Thread(target=queue_b)
        tb.start()
        _spin_until(lambda: gate.queued_count() == 1)
        tc = threading.Thread(target=queue_c)
        tc.start()
        _spin_until(lambda: gate.queued_count() == 2)

        clock.now += 31.0  # b's deadline passes while it waits
        start = perf_counter()
        gate.release("a")  # shed b first, then promote c past it
        tb.join(5.0)
        assert admitted.wait(5.0)
        tc.join(5.0)
        assert perf_counter() - start < WAKE_BOUND_S  # woken, not timed out
        assert len(failures) == 1
        assert isinstance(failures[0], DeadlineExceeded)
        assert ledger.get("shed.expired") == 1
        assert gate.queue_state()["running"] == {"c": "default"}

    def test_full_queue_preempts_lowest_priority_waiter(self):
        ledger = DictLedger()
        gate = SessionAdmission(
            max_concurrent_sessions=1,
            max_queue_depth=1,
            timeout_s=10.0,
            tenant_priorities={"interactive": 1, "batch": 0},
            ledger=ledger,
        )
        gate.acquire("a", tenant="batch")
        failures: list[BaseException] = []
        admitted = threading.Event()

        def queue_batch():
            try:
                gate.acquire("b", tenant="batch")
            except BaseException as exc:
                failures.append(exc)

        def queue_interactive():
            gate.acquire("c", tenant="interactive")
            admitted.set()

        tb = threading.Thread(target=queue_batch)
        tb.start()
        _spin_until(lambda: gate.queued_count() == 1)
        tc = threading.Thread(target=queue_interactive)
        tc.start()
        # The full queue sheds the batch waiter to seat the interactive one.
        tb.join(5.0)
        assert not tb.is_alive()
        assert len(failures) == 1
        assert isinstance(failures[0], AdmissionError)
        assert "shed from the admission queue" in str(failures[0])
        assert ledger.get("shed.preempted") == 1

        gate.release("a")
        assert admitted.wait(5.0)
        tc.join(5.0)
        assert gate.queue_state()["running"] == {"c": "interactive"}

    def test_full_queue_without_lower_priority_victim_rejects_arrival(self):
        gate = SessionAdmission(
            max_concurrent_sessions=1,
            max_queue_depth=1,
            timeout_s=10.0,
            tenant_priorities={"interactive": 1, "batch": 0},
        )
        gate.acquire("a", tenant="interactive")
        t = threading.Thread(
            target=lambda: gate.acquire("b", tenant="interactive")
        )
        t.start()
        _spin_until(lambda: gate.queued_count() == 1)
        # A batch arrival cannot displace the equal-or-higher waiter.
        with pytest.raises(AdmissionError, match="queue full"):
            gate.acquire("c", tenant="batch")
        gate.release("a")
        t.join(5.0)


# --------------------------------------------------------------------------
# Scheduler + governor: cancel WAKES blocked waiters (satellite: wakeups)
# --------------------------------------------------------------------------


class TestCancelWakesWaiters:
    def test_scheduler_waiter_woken_by_cancel_not_timeout(self):
        pool = WorkerPoolScheduler(total_slots=1, timeout_s=30.0)
        pool.acquire_slot("holder")
        budget = Budget(session_id="w")
        failures: list[BaseException] = []

        def wait_for_slot():
            try:
                pool.acquire_slot("w", budget=budget)
            except BaseException as exc:
                failures.append(exc)

        t = threading.Thread(target=wait_for_slot)
        t.start()
        _spin_until(lambda: pool.waits == 1)
        start = perf_counter()
        budget.cancel("client hung up")
        t.join(5.0)
        assert perf_counter() - start < WAKE_BOUND_S
        assert len(failures) == 1
        assert isinstance(failures[0], SessionCancelled)
        # The cancelled waiter left no residue: the slot still grants.
        pool.release_slot("holder")
        pool.acquire_slot("next")

    def test_governor_throttle_released_by_cancel(self):
        governor = SpillGovernor(tenant_budgets={"a": 10}, timeout_s=30.0)
        governor.charge("a", 100)
        budget = Budget(session_id="s")
        done = threading.Event()

        def throttled_sender():
            governor.throttle("a", budget=budget)
            done.set()

        t = threading.Thread(target=throttled_sender)
        t.start()
        _spin_until(lambda: governor.throttled == 1)
        start = perf_counter()
        budget.cancel()
        assert done.wait(5.0)
        t.join(5.0)
        # Released by the wake, not the 30s bound (and never by force).
        assert perf_counter() - start < WAKE_BOUND_S
        assert governor.forced_through == 0

    def test_already_cancelled_budget_skips_throttle_entirely(self):
        governor = SpillGovernor(tenant_budgets={"a": 10}, timeout_s=30.0)
        governor.charge("a", 100)
        budget = Budget(session_id="s")
        budget.cancel()
        start = perf_counter()
        governor.throttle("a", budget=budget)
        assert perf_counter() - start < 0.1


# --------------------------------------------------------------------------
# Mux transport: CANCEL frames, close_tag vs cancel race (satellite: race)
# --------------------------------------------------------------------------


class TestMuxCancel:
    def test_cancel_tag_wakes_blocked_recv_with_typed_error(self):
        transport = MuxSocketTransport()
        tag = transport.new_tag()
        failures: list[BaseException] = []

        def blocked_reader():
            try:
                transport.recv(tag, timeout=30.0)
            except BaseException as exc:
                failures.append(exc)

        t = threading.Thread(target=blocked_reader)
        t.start()
        time.sleep(0.05)  # let the reader block on the empty tag
        start = perf_counter()
        transport.cancel_tag(tag)
        t.join(5.0)
        assert perf_counter() - start < WAKE_BOUND_S
        assert len(failures) == 1
        assert isinstance(failures[0], SessionCancelled)
        transport.close()

    def test_close_tag_concurrent_with_cancel_never_wedges(self):
        # A reader that never drains: the tag's flush can only finish when
        # the concurrent cancel marks the budget — close_tag must observe it
        # between pump passes and return instead of waiting out its 30s
        # flush timeout (or raising).
        transport = MuxSocketTransport(buffer_bytes=2048, send_timeout_s=30.0)
        tag = transport.new_tag()
        budget = Budget(session_id="s")
        payload = b"x" * 65536
        for _ in range(8):  # far beyond the kernel buffer: a real backlog
            transport.send(tag, payload)

        closed = threading.Event()
        failures: list[BaseException] = []

        def teardown():
            try:
                transport.close_tag(tag, budget=budget)
            except BaseException as exc:
                failures.append(exc)
            finally:
                closed.set()

        t = threading.Thread(target=teardown)
        t.start()
        time.sleep(0.05)  # ensure close_tag is mid-flush when cancel lands
        start = perf_counter()
        budget.cancel("teardown race")
        assert closed.wait(5.0)
        t.join(5.0)
        assert perf_counter() - start < WAKE_BOUND_S
        assert failures == []  # returned cleanly, no flush timeout
        transport.release_tag(tag)
        transport.close()

    def test_close_tag_with_pre_cancelled_budget_returns_immediately(self):
        transport = MuxSocketTransport(buffer_bytes=2048, send_timeout_s=30.0)
        tag = transport.new_tag()
        budget = Budget(session_id="s")
        budget.cancel()
        for _ in range(8):
            transport.send(tag, b"x" * 65536)
        start = perf_counter()
        transport.close_tag(tag, budget=budget)
        assert perf_counter() - start < WAKE_BOUND_S
        transport.release_tag(tag)
        transport.close()


# --------------------------------------------------------------------------
# Trainer: checkpoint-then-abort ordering
# --------------------------------------------------------------------------


class TestTrainerCancel:
    def _store(self, deployment):
        return CheckpointStore(deployment.dfs, base_dir="/ckpt")

    def test_cancel_aborts_after_committing_due_checkpoint(self):
        deployment = make_deployment()
        store = self._store(deployment)
        budget = Budget(session_id="j")
        checkpointer = TrainCheckpointer("j", store=store, interval=1, budget=budget)
        checkpointer.iteration_done(0, lambda: {"algorithm": "svm", "iteration": 0})
        budget.cancel("client gave up")
        with pytest.raises(SessionCancelled):
            checkpointer.iteration_done(
                1, lambda: {"algorithm": "svm", "iteration": 1}
            )
        # The save committed BEFORE the abort: a retry of this job id
        # resumes from iteration 1, it does not restart.
        assert checkpointer.saves == 2
        state, _version = store.load_latest("j")
        assert state["iteration"] == 1

    def test_deadline_aborts_between_iterations_without_store(self):
        clock = FakeClock()
        budget = Budget(deadline_s=5.0, session_id="j", clock=clock)
        checkpointer = TrainCheckpointer("j", budget=budget)
        checkpointer.iteration_done(0, lambda: {})
        clock.now += 10.0
        with pytest.raises(DeadlineExceeded):
            checkpointer.iteration_done(1, lambda: {})


# --------------------------------------------------------------------------
# Coordinator end-to-end: cancel_session, deadline waits, races, ledger
# --------------------------------------------------------------------------


def loaded_deployment(**kwargs):
    deployment = make_deployment(**kwargs)
    make_points_table(deployment.engine)
    return deployment


class TestCoordinatorBudgets:
    def test_cancel_session_tears_down_and_releases_admission(self):
        deployment = loaded_deployment(max_concurrent_sessions=2)
        coordinator = deployment.coordinator
        coordinator.create_session(
            "c0",
            command="svm_with_sgd",
            args={"iterations": 3, "seed": BASE_SEED},
            conf_props={"record.format": "labeled_csv", "label.index": -1},
        )
        assert coordinator.admission.running_count() == 1
        assert coordinator.cancel_session("c0", reason="user abort") is True
        assert coordinator.cancel_session("c0") is False  # idempotent
        assert coordinator.admission.running_count() == 0  # slot released
        # Torn down, but a late lookup still gets the *typed* cancel (a
        # tombstone), never a bare "unknown session".
        with pytest.raises(SessionCancelled, match="user abort"):
            coordinator.session("c0")
        assert coordinator.cancel_session("never-created") is False
        assert deployment.cluster.ledger.get("cancel.requested") == 1

    def test_wait_result_bounded_by_budget_not_stacked_timeouts(self):
        deployment = loaded_deployment(max_concurrent_sessions=2)
        coordinator = deployment.coordinator
        coordinator.create_session(
            "d0",
            command="svm_with_sgd",
            args={"iterations": 3, "seed": BASE_SEED},
            conf_props={"record.format": "labeled_csv", "label.index": -1},
            deadline_s=0.2,
        )
        start = perf_counter()
        # Nothing ever streams: the seed behavior is a 4x-flat-timeout wait
        # (minutes); the budget surfaces the typed expiry in ~deadline.
        with pytest.raises(DeadlineExceeded):
            coordinator.wait_result("d0")
        assert perf_counter() - start < 5.0
        assert deployment.cluster.ledger.get("deadline.expired") >= 1
        coordinator.close_session("d0")

    def test_conf_prop_arms_the_deadline(self):
        deployment = loaded_deployment(max_concurrent_sessions=2)
        coordinator = deployment.coordinator
        coordinator.create_session(
            "p0",
            command="svm_with_sgd",
            args={"iterations": 3, "seed": BASE_SEED},
            conf_props={
                "record.format": "labeled_csv",
                "label.index": -1,
                "stream.deadline_s": "0.2",
            },
        )
        with pytest.raises(DeadlineExceeded):
            coordinator.wait_result("p0")
        coordinator.close_session("p0")

    def test_completed_result_wins_a_late_cancel(self):
        deployment = loaded_deployment(max_concurrent_sessions=2)
        outcome = run_one_session(deployment, "late", seed=BASE_SEED)
        assert outcome.error is None
        # The session completed and closed; a straggling cancel is a no-op
        # on the result — it must not rewrite history into a failure.
        assert deployment.coordinator.cancel_session("late") is False

    def test_cancel_mid_flight_yields_typed_outcome_and_cleanup(self):
        deployment = loaded_deployment(max_concurrent_sessions=2)
        coordinator = deployment.coordinator
        coordinator.create_session(
            "mid",
            command="svm_with_sgd",
            args={"iterations": 3, "seed": BASE_SEED},
            conf_props={"record.format": "labeled_csv", "label.index": -1},
        )
        waiter_error: list[BaseException] = []

        def waiter():
            try:
                coordinator.wait_result("mid", timeout=30.0)
            except BaseException as exc:
                waiter_error.append(exc)

        t = threading.Thread(target=waiter)
        t.start()
        time.sleep(0.05)
        start = perf_counter()
        coordinator.cancel_session("mid")
        t.join(5.0)
        assert perf_counter() - start < WAKE_BOUND_S  # woken, not timed out
        assert len(waiter_error) == 1
        assert isinstance(waiter_error[0], SessionCancelled)
        with pytest.raises(SessionCancelled):
            coordinator.session("mid")  # torn down; late lookups stay typed

    def test_session_with_deadline_still_completes_and_matches(self):
        armed = loaded_deployment(max_concurrent_sessions=2)
        outcome = run_one_session(armed, "ok", seed=BASE_SEED, deadline_s=30.0)
        assert outcome.error is None

        plain = loaded_deployment(max_concurrent_sessions=2)
        baseline = run_one_session(plain, "ok", seed=BASE_SEED)
        assert outcome.weights == baseline.weights
        assert outcome.intercept == baseline.intercept


class TestLedgerIsolation:
    def test_disarmed_deployment_emits_no_budget_categories(self):
        plain = loaded_deployment()
        run_one_session(plain, "solo0", seed=BASE_SEED)
        snapshot = plain.cluster.ledger.snapshot()
        for key in snapshot:
            assert not key.startswith(
                ("deadline.", "cancel.", "shed.", "retry_budget.")
            ), key

    def test_armed_but_unfired_budget_keeps_stream_ledgers_identical(self):
        plain = loaded_deployment()
        run_one_session(plain, "solo0", seed=BASE_SEED)
        baseline = plain.cluster.ledger.snapshot()

        # Generous deadline + retry budget installed but never consulted:
        # the Figure 3/4 byte categories must not move by a single byte,
        # and no feature category may appear.
        armed = loaded_deployment(
            default_deadline_s=300.0, retry_budget_tokens=8
        )
        run_one_session(armed, "solo0", seed=BASE_SEED)
        armed_snapshot = armed.cluster.ledger.snapshot()
        for key in ("stream.sent", "stream.net", "ml.ingest"):
            assert armed_snapshot.get(key) == baseline.get(key), key
        for key in armed_snapshot:
            assert not key.startswith(
                ("deadline.", "cancel.", "shed.", "retry_budget.")
            ), key
