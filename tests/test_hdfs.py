"""Distributed file system: namespace, blocks, replication, readers."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cluster.cluster import make_paper_cluster
from repro.common.errors import (
    FileAlreadyExists,
    FileNotFoundInDfs,
    HdfsError,
)
from repro.hdfs.filesystem import DistributedFileSystem


@pytest.fixture()
def small_dfs():
    cluster = make_paper_cluster()
    return DistributedFileSystem(cluster, block_size=64, replication=3)


class TestRoundtrip:
    def test_write_read_bytes(self, small_dfs):
        payload = bytes(range(256)) * 3
        small_dfs.write_bytes("/data/x.bin", payload)
        assert small_dfs.read_bytes("/data/x.bin") == payload

    def test_write_read_text(self, small_dfs):
        small_dfs.write_text("/t.txt", "hello\nwörld\n")
        assert small_dfs.read_text("/t.txt") == "hello\nwörld\n"

    def test_empty_file(self, small_dfs):
        small_dfs.write_bytes("/empty", b"")
        assert small_dfs.read_bytes("/empty") == b""
        assert small_dfs.status("/empty").length == 0

    def test_multi_block_file(self, small_dfs):
        payload = b"a" * 1000  # ~16 blocks of 64 bytes
        small_dfs.write_bytes("/big", payload)
        status = small_dfs.status("/big")
        assert status.num_blocks == 16
        assert status.length == 1000
        assert small_dfs.read_bytes("/big") == payload

    @settings(max_examples=30, deadline=None)
    @given(st.binary(min_size=0, max_size=2000), st.integers(min_value=1, max_value=257))
    def test_roundtrip_any_content_any_block_size(self, payload, block_size):
        cluster = make_paper_cluster()
        dfs = DistributedFileSystem(cluster, block_size=block_size)
        dfs.write_bytes("/f", payload)
        assert dfs.read_bytes("/f") == payload

    def test_streaming_writer(self, small_dfs):
        with small_dfs.create("/stream") as writer:
            for i in range(50):
                writer.write(f"line-{i}\n")
        text = small_dfs.read_text("/stream")
        assert text.splitlines()[0] == "line-0"
        assert text.splitlines()[-1] == "line-49"

    def test_partial_reads(self, small_dfs):
        small_dfs.write_bytes("/p", b"0123456789" * 20)
        with small_dfs.open("/p") as reader:
            assert reader.read(5) == b"01234"
            assert reader.read(7) == b"5678901"
            rest = reader.read()
            assert len(rest) == 200 - 12

    def test_seek(self, small_dfs):
        small_dfs.write_bytes("/s", bytes(range(200)))
        with small_dfs.open("/s") as reader:
            reader.seek(100)
            assert reader.read(3) == bytes([100, 101, 102])
            reader.seek(0)
            assert reader.read(2) == bytes([0, 1])
            reader.seek(199)
            assert reader.read() == bytes([199])

    def test_seek_to_eof(self, small_dfs):
        small_dfs.write_bytes("/s", b"abc")
        with small_dfs.open("/s") as reader:
            reader.seek(3)
            assert reader.read() == b""

    def test_seek_past_eof_raises(self, small_dfs):
        small_dfs.write_bytes("/s", b"abc")
        with small_dfs.open("/s") as reader:
            with pytest.raises(HdfsError):
                reader.seek(4)


class TestReplication:
    def test_replica_count(self, small_dfs):
        small_dfs.write_bytes("/r", b"x" * 200)
        for location in small_dfs.block_locations("/r"):
            assert len(location.hosts) == 3
            assert len(set(location.hosts)) == 3

    def test_replication_capped_by_datanodes(self):
        cluster = make_paper_cluster(2)  # only 2 worker datanodes
        dfs = DistributedFileSystem(cluster, block_size=64, replication=3)
        dfs.write_bytes("/r", b"x" * 100)
        for location in dfs.block_locations("/r"):
            assert len(location.hosts) == 2

    def test_first_replica_local_to_client(self, small_dfs):
        client = small_dfs.cluster.workers[1].ip
        small_dfs.write_bytes("/local", b"y" * 500, client_ip=client)
        for location in small_dfs.block_locations("/local"):
            assert client in location.hosts

    def test_write_accounting(self, small_dfs):
        ledger = small_dfs.ledger
        before = ledger.snapshot()
        client = small_dfs.cluster.workers[0].ip
        small_dfs.write_bytes("/acct", b"z" * 128, client_ip=client)
        delta = ledger.delta(before, ledger.snapshot())
        assert delta["dfs.write.local"] == 128 * 3  # three replicas
        assert delta["dfs.write.replica_net"] == 128 * 2  # two remote

    def test_read_accounting(self, small_dfs):
        small_dfs.write_bytes("/racct", b"z" * 128)
        before = small_dfs.ledger.snapshot()
        small_dfs.read_bytes("/racct")
        delta = small_dfs.ledger.delta(before, small_dfs.ledger.snapshot())
        assert delta["dfs.read"] == 128

    def test_reader_prefers_local_replica(self, small_dfs):
        client = small_dfs.cluster.workers[2].ip
        small_dfs.write_bytes("/pref", b"q" * 64, client_ip=client)
        before = small_dfs.ledger.snapshot()
        small_dfs.read_bytes("/pref", client_ip=client)
        delta = small_dfs.ledger.delta(before, small_dfs.ledger.snapshot())
        assert delta.get("dfs.read.remote_net", 0) == 0


class TestNamespace:
    def test_exists(self, small_dfs):
        assert not small_dfs.exists("/nope")
        small_dfs.write_bytes("/yes", b"1")
        assert small_dfs.exists("/yes")

    def test_incomplete_file_invisible(self, small_dfs):
        writer = small_dfs.create("/wip")
        writer.write(b"x")
        assert not small_dfs.exists("/wip")
        writer.close()
        assert small_dfs.exists("/wip")

    def test_create_existing_raises(self, small_dfs):
        small_dfs.write_bytes("/dup", b"1")
        with pytest.raises(FileAlreadyExists):
            small_dfs.create("/dup")

    def test_read_missing_raises(self, small_dfs):
        with pytest.raises(FileNotFoundInDfs):
            small_dfs.read_bytes("/missing")

    def test_mkdirs_and_listdir(self, small_dfs):
        small_dfs.mkdirs("/a/b/c")
        small_dfs.write_bytes("/a/b/f1", b"1")
        small_dfs.write_bytes("/a/b/f2", b"2")
        assert small_dfs.listdir("/a/b") == ["/a/b/c", "/a/b/f1", "/a/b/f2"]
        assert small_dfs.is_dir("/a/b/c")

    def test_parents_created_implicitly(self, small_dfs):
        small_dfs.write_bytes("/x/y/z.txt", b"1")
        assert small_dfs.is_dir("/x/y")
        assert small_dfs.listdir("/x") == ["/x/y"]

    def test_list_files_recursive(self, small_dfs):
        small_dfs.write_bytes("/d/one", b"1")
        small_dfs.write_bytes("/d/sub/two", b"2")
        assert small_dfs.list_files("/d") == ["/d/one", "/d/sub/two"]

    def test_delete_file_reclaims_blocks(self, small_dfs):
        small_dfs.write_bytes("/del", b"x" * 500)
        used_before = sum(d.used_bytes() for d in small_dfs.datanodes.values())
        small_dfs.delete("/del")
        used_after = sum(d.used_bytes() for d in small_dfs.datanodes.values())
        assert used_after < used_before
        assert not small_dfs.exists("/del")

    def test_delete_nonempty_dir_needs_recursive(self, small_dfs):
        small_dfs.write_bytes("/dir/f", b"1")
        with pytest.raises(HdfsError):
            small_dfs.delete("/dir")
        small_dfs.delete("/dir", recursive=True)
        assert not small_dfs.exists("/dir")

    def test_rename(self, small_dfs):
        small_dfs.write_bytes("/old", b"data")
        small_dfs.rename("/old", "/new/name")
        assert not small_dfs.exists("/old")
        assert small_dfs.read_bytes("/new/name") == b"data"

    def test_rename_to_existing_raises(self, small_dfs):
        small_dfs.write_bytes("/a1", b"1")
        small_dfs.write_bytes("/a2", b"2")
        with pytest.raises(FileAlreadyExists):
            small_dfs.rename("/a1", "/a2")

    def test_relative_path_rejected(self, small_dfs):
        with pytest.raises(HdfsError):
            small_dfs.write_bytes("relative", b"1")
        with pytest.raises(HdfsError):
            small_dfs.write_bytes("/a/../b", b"1")

    def test_total_size(self, small_dfs):
        small_dfs.write_bytes("/sz/a", b"x" * 10)
        small_dfs.write_bytes("/sz/b", b"x" * 32)
        assert small_dfs.total_size("/sz") == 42

    def test_block_locations_offsets(self, small_dfs):
        small_dfs.write_bytes("/off", b"x" * 150)  # blocks: 64, 64, 22
        locations = small_dfs.block_locations("/off")
        assert [(l.offset, l.length) for l in locations] == [
            (0, 64),
            (64, 64),
            (128, 22),
        ]
