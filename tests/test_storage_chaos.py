"""Storage chaos acceptance: corruption + node loss + ENOSPC, three seeds.

The tentpole's end-to-end bar: with the training table on the DFS, a
schedule combining replica corruption, one datanode kill, and an ENOSPC
window must leave the deployment with

- zero silent data loss (completed sessions bit-identical to solo runs —
  invariant 4 inside the explorer),
- replication restored at quiescence (invariant 5),
- typed-only failures and zero wedged threads (invariants 1–2),

and the whole run must replay deterministically.  Disarmed, the storage
plane charges none of its armed-only ledger counters, so the Figure 3/4
byte totals stay bit-identical to the seed.
"""

import pytest

from repro.sim import ChaosExplorer, FaultAction, FaultSchedule
from repro.sim.chaos import ChaosScenario

#: Ledger categories that may only ever appear when storage faults or the
#: scanner are armed.
ARMED_ONLY_PREFIXES = (
    "dfs.read.failover",
    "dfs.write.redirect",
    "dfs.scan.",
    "dfs.repair.",
    "stream.spill_enospc",
    "checkpoint.enospc_prune",
)


def storage_scenario() -> ChaosScenario:
    # Tiny blocks so every file spans many blocks and faults get many
    # chances to bite; 4 workers so a kill still leaves repair headroom.
    return ChaosScenario(num_workers=4, dfs_table=True, block_size=256)


def acceptance_schedule(seed: int) -> FaultSchedule:
    # Corruption low enough that some replica of every block survives
    # (all-replicas-rotted is *detected* loss, allowed by the invariants,
    # but this test's bar is stronger: every model must still train).
    return FaultSchedule(
        seed=seed,
        actions=(
            FaultAction("dfs_corrupt", rate=0.05),
            FaultAction("dfs_kill_datanode", site="1", at=0),
            FaultAction("dfs_enospc", rate=0.1),
        ),
    )


@pytest.mark.timeout(300)
def test_storage_chaos_survives_three_seeds():
    explorer = ChaosExplorer(scenario=storage_scenario(), base_seed=3)
    for seed in (7, 21, 99):
        result = explorer.run(acceptance_schedule(seed))
        assert not result.failed, f"seed {seed}: {result.violations}"
        # Every session trained (weight-identity to solo is invariant 4).
        failed = [o for o in result.outcomes if o["error_type"] is not None]
        assert not failed, f"seed {seed}: {failed}"
        storage = result.stats["storage"]
        assert storage["fsck"]["healthy"], f"seed {seed}: {storage['fsck']}"
        assert storage["under_replicated_after"] == 0
        # The schedule actually bit: storage faults were injected.
        kinds = {kind for kind, _site in result.events}
        assert kinds & {"replica_corrupt", "datanode_down", "enospc"}, kinds


@pytest.mark.timeout(300)
def test_storage_chaos_replays_deterministically():
    explorer = ChaosExplorer(scenario=storage_scenario(), base_seed=3)
    schedule = acceptance_schedule(7)
    fingerprints = {explorer.run(schedule).fingerprint() for _ in range(2)}
    assert len(fingerprints) == 1
    # The JSON round trip replays identically too (minimized-schedule
    # artifacts must be trustworthy).
    replay = explorer.replay(schedule.to_json())
    assert replay.fingerprint() in fingerprints


@pytest.mark.timeout(300)
def test_fault_free_dfs_table_run_is_clean():
    explorer = ChaosExplorer(scenario=storage_scenario(), base_seed=3)
    result = explorer.run(FaultSchedule(seed=1))
    # Invariant 3 inside run() already compares the ledger byte-for-byte
    # against the fault-free baseline; no violations means it matched.
    assert not result.failed, result.violations
    assert result.events == []
    storage = result.stats["storage"]
    assert storage["fsck"]["healthy"]
    assert storage["corrupt_replicas"] == 0


@pytest.mark.timeout(300)
def test_disarmed_serving_ledger_has_no_selfheal_counters():
    """The Figure 3/4-style serving scenario (in-memory table, no storage
    faults) never sees an armed-only counter — bit-identical to the seed."""
    explorer = ChaosExplorer(base_seed=3)  # default scenario: dfs_table=False
    result = explorer.run(FaultSchedule(seed=1))
    assert not result.failed, result.violations
    for key in result.ledger:
        assert not any(
            key == p or key.startswith(p) for p in ARMED_ONLY_PREFIXES
        ), key
