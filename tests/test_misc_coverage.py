"""Coverage for remaining public surfaces: reader positions, error
hierarchy, broker-UDF validation, table helpers."""

import pytest

from repro.cluster.cluster import make_paper_cluster
from repro.common import errors
from repro.common.errors import TransferError
from repro.hdfs.filesystem import DistributedFileSystem
from repro.sql.table import ExternalLocation, Partition, Table, partition_rows
from repro.sql.types import DataType, Schema


class TestErrorHierarchy:
    def test_all_subclass_repro_error(self):
        for name in (
            "ParseError",
            "PlanError",
            "CatalogError",
            "ExecutionError",
            "HdfsError",
            "TransferError",
            "MLError",
            "CacheError",
        ):
            assert issubclass(getattr(errors, name), errors.ReproError)

    def test_parse_error_position(self):
        error = errors.ParseError("bad token", position=17)
        assert "17" in str(error)
        assert error.position == 17

    def test_dfs_errors_are_hdfs_errors(self):
        assert issubclass(errors.FileNotFoundInDfs, errors.HdfsError)
        assert issubclass(errors.FileAlreadyExists, errors.HdfsError)
        assert issubclass(errors.BlockError, errors.HdfsError)


class TestDfsReaderPosition:
    def test_position_tracks_reads_and_seeks(self):
        cluster = make_paper_cluster()
        dfs = DistributedFileSystem(cluster, block_size=16)
        dfs.write_bytes("/p", bytes(range(64)))
        with dfs.open("/p") as reader:
            assert reader.position() == 0
            reader.read(10)
            assert reader.position() == 10
            reader.read(20)  # crosses block boundaries
            assert reader.position() == 30
            reader.seek(50)
            assert reader.position() == 50
            reader.read()
            assert reader.position() == 64


class TestTableHelpers:
    def test_partition_rows_round_robin(self):
        partitions = partition_rows([(i,) for i in range(10)], 3)
        assert [len(p) for p in partitions] == [4, 3, 3]
        assert [p.worker_id for p in partitions] == [0, 1, 2]

    def test_partition_rows_invalid(self):
        with pytest.raises(ValueError):
            partition_rows([], 0)

    def test_table_must_be_memory_xor_external(self):
        schema = Schema.of(("x", DataType.INT))
        with pytest.raises(Exception, match="either"):
            Table("t", schema)
        with pytest.raises(Exception, match="either"):
            Table(
                "t",
                schema,
                partitions=[Partition([])],
                external=ExternalLocation("/p"),
            )

    def test_external_table_refuses_memory_operations(self):
        table = Table("t", Schema.of(("x", DataType.INT)), external=ExternalLocation("/p"))
        assert table.is_external
        with pytest.raises(Exception):
            table.num_rows()
        with pytest.raises(Exception):
            table.all_rows()
        with pytest.raises(Exception):
            table.estimated_bytes()

    def test_partition_estimated_bytes(self):
        partition = Partition([(1, "ab"), (2, "cd")])
        assert partition.estimated_bytes() == 2 * (2 + 8 + 6)


class TestBrokerUdfValidation:
    def test_needs_topic(self, deployment):
        engine = deployment.engine
        engine.create_table("t", Schema.of(("x", DataType.INT)), [(1,)])
        with pytest.raises(TransferError, match="topic"):
            engine.query_rows("SELECT * FROM TABLE(broker_transfer(t)) AS b")

    def test_too_few_partitions_rejected(self, deployment):
        engine = deployment.engine
        engine.create_table("t", Schema.of(("x", DataType.INT)), [(1,)])
        deployment.broker.create_topic("narrow", 2)  # < 4 SQL workers
        with pytest.raises(TransferError, match="at least one each"):
            engine.query_rows(
                "SELECT * FROM TABLE(broker_transfer(t, 'narrow')) AS b"
            )

    def test_stream_udf_needs_session_arg(self, deployment):
        engine = deployment.engine
        engine.create_table("t2", Schema.of(("x", DataType.INT)), [(1,)])
        with pytest.raises(TransferError, match="session"):
            engine.query_rows("SELECT * FROM TABLE(stream_transfer(t2)) AS s")

    def test_ml_args_parsing(self):
        from repro.transfer.stream_udf import parse_ml_args

        assert parse_ml_args("iterations=10, step=0.5") == {
            "iterations": "10",
            "step": "0.5",
        }
        assert parse_ml_args("") == {}
        with pytest.raises(TransferError, match="key=value"):
            parse_ml_args("oops")
