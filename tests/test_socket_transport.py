"""Socket-backed stream channels: framing, backpressure, e2e transfer."""

import threading

import pytest

from repro import make_deployment
from repro.common.errors import TransferError
from repro.sql.types import DataType, Schema
from repro.transfer.channel import ChannelId
from repro.transfer.socket_channel import SocketStreamChannel


class TestSocketChannelUnit:
    def test_send_receive_roundtrip(self):
        channel = SocketStreamChannel(ChannelId(0, 0), buffer_bytes=65536)
        rows = [(i, f"value-{i}", i * 0.5, None) for i in range(100)]
        for row in rows:
            channel.send_row(row)
        channel.close()
        assert list(channel) == rows
        assert channel.rows_sent == channel.rows_received == 100
        assert channel.bytes_sent == channel.bytes_received > 0

    def test_eof_after_close(self):
        channel = SocketStreamChannel(ChannelId(0, 1))
        channel.send_row((1,))
        channel.close()
        assert channel.receive() == (1,)
        assert channel.receive() is None
        assert channel.receive() is None  # repeated EOF stays EOF

    def test_send_after_close_rejected(self):
        channel = SocketStreamChannel(ChannelId(0, 2))
        channel.close()
        with pytest.raises(TransferError):
            channel.send_row((1,))

    def test_backpressure_spills_without_blocking(self):
        """A tiny kernel buffer and no reader: the sender must keep going,
        spilling overflow locally like the paper requires."""
        channel = SocketStreamChannel(ChannelId(1, 0), buffer_bytes=2048)
        big_row = ("x" * 512,)
        for _ in range(200):  # far beyond any kernel buffer rounding
            channel.send_row(big_row)
        assert channel.spilled_bytes > 0
        # a concurrent reader drains everything, including the overflow
        received = []
        reader = threading.Thread(target=lambda: received.extend(iter(channel)))
        reader.start()
        channel.close()
        reader.join(timeout=10)
        assert len(received) == 200

    def test_receive_timeout(self):
        channel = SocketStreamChannel(ChannelId(2, 0), receive_timeout_s=0.05)
        with pytest.raises(TransferError, match="timed out"):
            channel.receive()

    def test_concurrent_producer_consumer(self):
        channel = SocketStreamChannel(ChannelId(3, 0), buffer_bytes=4096)
        rows = [(i, "payload" * (i % 5)) for i in range(3000)]
        received = []

        def produce():
            for row in rows:
                channel.send_row(row)
            channel.close()

        def consume():
            received.extend(iter(channel))

        threads = [threading.Thread(target=produce), threading.Thread(target=consume)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=20)
        assert received == rows


class TestSocketTransportEndToEnd:
    def test_pipeline_over_sockets_matches_memory_transport(self):
        from repro.workloads import generate_retail

        mem = make_deployment(block_size=64 * 1024, transport="memory")
        sock = make_deployment(block_size=64 * 1024, transport="socket")
        results = {}
        for name, deployment in (("memory", mem), ("socket", sock)):
            wl = generate_retail(
                deployment.engine, deployment.dfs, num_users=150, num_carts=1_500, seed=31
            )
            deployment.pipeline.byte_scale = wl.byte_scale
            result = deployment.pipeline.run_insql_stream(wl.prep_sql, wl.spec, "noop")
            results[name] = sorted(
                (lp.label, tuple(lp.features))
                for lp in result.ml_result.dataset.collect()
            )
        assert results["memory"] == results["socket"]
        assert len(results["socket"]) > 0

    def test_socket_transport_trains_model(self):
        deployment = make_deployment(block_size=64 * 1024, transport="socket")
        engine = deployment.engine
        engine.create_table(
            "pts",
            Schema.of(("a", DataType.DOUBLE), ("b", DataType.DOUBLE), ("y", DataType.DOUBLE)),
            [(float(i % 5), float(i % 3), float(i % 2)) for i in range(400)],
        )
        deployment.coordinator.create_session(
            "socksvm",
            command="svm_with_sgd",
            args={"iterations": 3},
            conf_props={"record.format": "labeled_csv", "label.index": -1},
        )
        engine.query_rows(
            "SELECT * FROM TABLE(stream_transfer((SELECT a, b, y FROM pts), 'socksvm')) AS s"
        )
        result = deployment.coordinator.wait_result("socksvm")
        assert result.dataset.count() == 400
        assert result.model.weights.shape == (2,)

    def test_unknown_transport_rejected(self):
        from repro.cluster.cluster import make_paper_cluster
        from repro.transfer.coordinator import Coordinator

        with pytest.raises(TransferError, match="transport"):
            Coordinator(make_paper_cluster(), transport="carrier-pigeon")
