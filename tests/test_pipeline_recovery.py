"""§6 recovery: restart-from-scratch retries and the unsupervised path."""

import pytest

from repro import make_deployment
from repro.common.errors import MLError, TransferError
from repro.transform.spec import TransformSpec
from repro.workloads import generate_retail


@pytest.fixture()
def retail():
    deployment = make_deployment(block_size=64 * 1024)
    workload = generate_retail(
        deployment.engine, deployment.dfs, num_users=200, num_carts=2_000, seed=5
    )
    deployment.pipeline.byte_scale = workload.byte_scale
    return deployment, workload


def flaky_trainer(fail_times: int):
    """A trainer that fails its first ``fail_times`` invocations."""
    state = {"calls": 0}

    def train(dataset, args):
        state["calls"] += 1
        if state["calls"] <= fail_times:
            raise MLError(f"injected failure #{state['calls']}")
        return {"trained_after": state["calls"], "rows": dataset.count()}

    return train, state


class TestStreamingRetry:
    def test_retry_recovers_from_transient_ml_failure(self, retail):
        """§6: 'the whole integration pipeline has to be restarted from
        scratch in case of a failure' — and with an attempt budget it is."""
        deployment, wl = retail
        trainer, state = flaky_trainer(fail_times=2)
        deployment.ml.register_algorithm("flaky", trainer)
        result = deployment.pipeline.run_insql_stream(
            wl.prep_sql, wl.spec, "flaky", max_attempts=3
        )
        assert result.attempts == 3
        assert state["calls"] == 3
        assert result.ml_result.model["rows"] > 0

    def test_attempt_budget_exhausted_raises(self, retail):
        deployment, wl = retail
        trainer, state = flaky_trainer(fail_times=10)
        deployment.ml.register_algorithm("always_down", trainer)
        with pytest.raises(TransferError, match="injected failure"):
            deployment.pipeline.run_insql_stream(
                wl.prep_sql, wl.spec, "always_down", max_attempts=2
            )
        assert state["calls"] == 2

    def test_default_is_single_attempt(self, retail):
        deployment, wl = retail
        trainer, state = flaky_trainer(fail_times=1)
        deployment.ml.register_algorithm("once_down", trainer)
        with pytest.raises(TransferError):
            deployment.pipeline.run_insql_stream(wl.prep_sql, wl.spec, "once_down")
        assert state["calls"] == 1

    def test_retry_delivers_complete_data(self, retail):
        """The successful attempt's dataset equals a clean run's."""
        deployment, wl = retail
        trainer, _state = flaky_trainer(fail_times=1)
        deployment.ml.register_algorithm("flaky2", trainer)
        retried = deployment.pipeline.run_insql_stream(
            wl.prep_sql, wl.spec, "flaky2", max_attempts=2
        )
        clean = deployment.pipeline.run_insql_stream(wl.prep_sql, wl.spec, "noop")
        sig = lambda r: sorted(
            (lp.label, tuple(lp.features)) for lp in r.ml_result.dataset.collect()
        )
        assert sig(retried) == sig(clean)

    def test_restart_cost_accounted(self, retail):
        """Failed attempts' bytes count into the stage's simulated time —
        restarting from scratch is not free."""
        deployment, wl = retail
        clean = deployment.pipeline.run_insql_stream(wl.prep_sql, wl.spec, "noop")
        trainer, _state = flaky_trainer(fail_times=1)
        deployment.ml.register_algorithm("flaky3", trainer)
        retried = deployment.pipeline.run_insql_stream(
            wl.prep_sql, wl.spec, "flaky3", max_attempts=2
        )
        clean_stage = clean.stage("prep+trsfm+input").sim_seconds
        retried_stage = retried.stage("prep+trsfm+input").sim_seconds
        assert retried_stage > 1.5 * clean_stage

    def test_full_restart_bytes_in_ordinary_counters(self, retail):
        """A pipeline-tier full restart re-executes the *whole* transfer, so
        the second attempt's bytes land in the ordinary ``stream.sent`` /
        ``ml.ingest`` counters — exactly double a clean run.  The separate
        ``stream.retry`` counter is reserved for §6 partial-restart replay
        and stays at zero here."""
        deployment, wl = retail
        ledger = deployment.cluster.ledger
        before = ledger.snapshot()
        deployment.pipeline.run_insql_stream(wl.prep_sql, wl.spec, "noop")
        clean_delta = ledger.delta(before, ledger.snapshot())

        trainer, _state = flaky_trainer(fail_times=1)
        deployment.ml.register_algorithm("flaky4", trainer)
        before = ledger.snapshot()
        retried = deployment.pipeline.run_insql_stream(
            wl.prep_sql, wl.spec, "flaky4", max_attempts=2
        )
        retried_delta = ledger.delta(before, ledger.snapshot())
        assert retried.attempts == 2
        assert retried_delta["stream.sent"] == 2 * clean_delta["stream.sent"]
        assert retried_delta["ml.ingest"] == 2 * clean_delta["ml.ingest"]
        assert retried_delta.get("stream.retry", 0) == 0


class TestUnsupervisedPath:
    def test_kmeans_over_stream_without_label(self, retail):
        """spec.label=None flows feature vectors (not labeled points) to an
        unsupervised algorithm."""
        deployment, wl = retail
        spec = TransformSpec(recode=("gender",), dummy=("gender",), label=None)
        sql = (
            "SELECT U.age, U.gender, C.amount FROM carts C, users U "
            "WHERE C.userid = U.userid AND U.country = 'USA'"
        )
        result = deployment.pipeline.run_insql_stream(
            sql, spec, "kmeans", {"k": 3, "seed": 7}
        )
        model = result.ml_result.model
        assert model.centers.shape == (3, 4)  # age, gender_F, gender_M, amount
        first = result.ml_result.dataset.first()
        assert not hasattr(first, "label")  # plain vectors, not LabeledPoint

    def test_kmeans_over_dfs_without_label(self, retail):
        deployment, wl = retail
        spec = TransformSpec(recode=("gender",), label=None)
        sql = (
            "SELECT U.age, U.gender, C.amount FROM carts C, users U "
            "WHERE C.userid = U.userid AND U.country = 'USA'"
        )
        result = deployment.pipeline.run_insql(sql, spec, "kmeans", {"k": 2})
        assert result.ml_result.model.centers.shape == (2, 3)

    def test_kmeans_over_broker_without_label(self, retail):
        deployment, wl = retail
        spec = TransformSpec(recode=("gender",), label=None)
        sql = (
            "SELECT U.age, U.gender, C.amount FROM carts C, users U "
            "WHERE C.userid = U.userid AND U.country = 'USA'"
        )
        result = deployment.pipeline.run_insql_broker(sql, spec, "kmeans", {"k": 2})
        assert result.ml_result.model.centers.shape == (2, 3)
