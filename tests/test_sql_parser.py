"""SQL parser: grammar coverage, AST shapes, rendering roundtrip."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.common.errors import ParseError
from repro.sql.ast import Join, NamedTable, SubqueryRef, TableFunction
from repro.sql.expressions import (
    AggregateCall,
    And,
    Arithmetic,
    Between,
    CaseWhen,
    ColumnRef,
    Comparison,
    FuncCall,
    InList,
    IsNull,
    Like,
    Literal,
    Negate,
    Not,
    Or,
    Star,
)
from repro.sql.parser import parse, parse_expression


class TestSelect:
    def test_simple(self):
        q = parse("SELECT a, b FROM t")
        assert len(q.items) == 2
        assert q.items[0].expr == ColumnRef(None, "a")
        assert q.from_refs == (NamedTable("t", None),)

    def test_star(self):
        q = parse("SELECT * FROM t")
        assert isinstance(q.items[0].expr, Star)

    def test_aliases(self):
        q = parse("SELECT a AS x, b y FROM t")
        assert q.items[0].alias == "x"
        assert q.items[1].alias == "y"

    def test_distinct(self):
        assert parse("SELECT DISTINCT a FROM t").distinct

    def test_table_alias_forms(self):
        q = parse("SELECT 1 FROM users AS U, carts C")
        assert q.from_refs[0] == NamedTable("users", "U")
        assert q.from_refs[1] == NamedTable("carts", "C")

    def test_where(self):
        q = parse("SELECT a FROM t WHERE a > 3 AND b = 'x'")
        assert isinstance(q.where, And)

    def test_group_by_having(self):
        q = parse("SELECT a, COUNT(*) FROM t GROUP BY a HAVING COUNT(*) > 2")
        assert q.group_by == (ColumnRef(None, "a"),)
        assert isinstance(q.having, Comparison)
        assert isinstance(q.items[1].expr, AggregateCall)

    def test_order_by(self):
        q = parse("SELECT a FROM t ORDER BY a DESC, b ASC, c")
        assert [(o.expr.name, o.ascending) for o in q.order_by] == [
            ("a", False),
            ("b", True),
            ("c", True),
        ]

    def test_limit(self):
        assert parse("SELECT a FROM t LIMIT 7").limit == 7

    def test_limit_requires_int(self):
        with pytest.raises(ParseError):
            parse("SELECT a FROM t LIMIT 1.5")

    def test_semicolon_tolerated(self):
        assert parse("SELECT a FROM t;").limit is None

    def test_trailing_garbage_rejected(self):
        with pytest.raises(ParseError, match="trailing"):
            parse("SELECT a FROM t xyzzy nonsense --")


class TestJoins:
    def test_explicit_join(self):
        q = parse("SELECT 1 FROM a JOIN b ON a.x = b.y")
        (ref,) = q.from_refs
        assert isinstance(ref, Join)
        assert ref.kind == "inner"

    def test_inner_join_keyword(self):
        q = parse("SELECT 1 FROM a INNER JOIN b ON a.x = b.y")
        assert q.from_refs[0].kind == "inner"

    def test_left_join(self):
        q = parse("SELECT 1 FROM a LEFT JOIN b ON a.x = b.y")
        assert q.from_refs[0].kind == "left"

    def test_left_outer_join(self):
        q = parse("SELECT 1 FROM a LEFT OUTER JOIN b ON a.x = b.y")
        assert q.from_refs[0].kind == "left"

    def test_chained_joins(self):
        q = parse("SELECT 1 FROM a JOIN b ON a.x = b.x JOIN c ON b.y = c.y")
        outer = q.from_refs[0]
        assert isinstance(outer.left, Join)
        assert outer.right == NamedTable("c", None)

    def test_comma_join(self):
        q = parse("SELECT 1 FROM a, b, c")
        assert len(q.from_refs) == 3


class TestSubqueriesAndTableFunctions:
    def test_subquery(self):
        q = parse("SELECT s.a FROM (SELECT a FROM t) AS s")
        (ref,) = q.from_refs
        assert isinstance(ref, SubqueryRef)
        assert ref.alias == "s"

    def test_table_function_with_table_input(self):
        q = parse("SELECT * FROM TABLE(recode(t, 'h', 'gender')) AS r")
        (ref,) = q.from_refs
        assert isinstance(ref, TableFunction)
        assert ref.udf_name == "recode"
        assert ref.input_ref == NamedTable("t", None)
        assert ref.args == (Literal("h"), Literal("gender"))
        assert ref.alias == "r"

    def test_table_function_with_subquery_input(self):
        q = parse("SELECT * FROM TABLE(f((SELECT a FROM t), 1)) x")
        (ref,) = q.from_refs
        assert isinstance(ref.input_ref, SubqueryRef)
        assert ref.args == (Literal(1),)

    def test_nested_table_functions(self):
        sql = (
            "SELECT * FROM TABLE(dummy_code((SELECT * FROM "
            "TABLE(recode(t, 'h', 'g')) AS r), 'h', 'g')) AS d"
        )
        q = parse(sql)
        outer = q.from_refs[0]
        assert outer.udf_name == "dummy_code"
        inner = outer.input_ref.query.from_refs[0]
        assert inner.udf_name == "recode"


class TestExpressions:
    def test_precedence_arith(self):
        e = parse_expression("1 + 2 * 3")
        assert isinstance(e, Arithmetic) and e.op == "+"
        assert isinstance(e.right, Arithmetic) and e.right.op == "*"

    def test_parens(self):
        e = parse_expression("(1 + 2) * 3")
        assert e.op == "*"

    def test_and_or_precedence(self):
        e = parse_expression("a = 1 OR b = 2 AND c = 3")
        assert isinstance(e, Or)
        assert isinstance(e.operands[1], And)

    def test_not(self):
        e = parse_expression("NOT a = 1")
        assert isinstance(e, Not)

    def test_comparison_ops(self):
        for op in ("=", "<>", "<", "<=", ">", ">="):
            e = parse_expression(f"a {op} 1")
            assert isinstance(e, Comparison) and e.op == op

    def test_bang_equals_normalized(self):
        assert parse_expression("a != 1").op == "<>"

    def test_is_null(self):
        assert parse_expression("a IS NULL") == IsNull(ColumnRef(None, "a"), False)
        assert parse_expression("a IS NOT NULL") == IsNull(ColumnRef(None, "a"), True)

    def test_in_list(self):
        e = parse_expression("a IN (1, 2, 3)")
        assert isinstance(e, InList) and not e.negated
        assert len(e.values) == 3

    def test_not_in(self):
        assert parse_expression("a NOT IN (1)").negated

    def test_between(self):
        e = parse_expression("a BETWEEN 1 AND 10")
        assert isinstance(e, Between)
        assert e.low == Literal(1) and e.high == Literal(10)

    def test_not_between(self):
        assert parse_expression("a NOT BETWEEN 1 AND 2").negated

    def test_like(self):
        e = parse_expression("name LIKE 'Jo%'")
        assert isinstance(e, Like) and e.pattern == "Jo%"

    def test_like_requires_string(self):
        with pytest.raises(ParseError):
            parse_expression("name LIKE 5")

    def test_case_when(self):
        e = parse_expression("CASE WHEN a > 0 THEN 'pos' ELSE 'neg' END")
        assert isinstance(e, CaseWhen)
        assert e.otherwise == Literal("neg")

    def test_function_call(self):
        e = parse_expression("upper(name)")
        assert e == FuncCall("upper", (ColumnRef(None, "name"),))

    def test_qualified_column(self):
        assert parse_expression("U.age") == ColumnRef("U", "age")

    def test_unary_minus(self):
        assert parse_expression("-a") == Negate(ColumnRef(None, "a"))

    def test_unary_plus_noop(self):
        assert parse_expression("+a") == ColumnRef(None, "a")

    def test_literals(self):
        assert parse_expression("NULL") == Literal(None)
        assert parse_expression("TRUE") == Literal(True)
        assert parse_expression("FALSE") == Literal(False)
        assert parse_expression("3.5") == Literal(3.5)
        assert parse_expression("42") == Literal(42)
        assert parse_expression("'hi'") == Literal("hi")

    def test_aggregates(self):
        e = parse_expression("COUNT(*)")
        assert e == AggregateCall("count", Star(), False)
        e = parse_expression("SUM(DISTINCT x)")
        assert e == AggregateCall("sum", ColumnRef(None, "x"), True)

    def test_star_only_for_count(self):
        with pytest.raises(ParseError):
            parse_expression("SUM(*)")

    def test_paper_example_query(self):
        """The §1 preparation query parses into the expected shape."""
        q = parse(
            "SELECT U.age, U.gender, C.amount, C.abandoned "
            "FROM carts C, users U "
            "WHERE C.userid=U.userid AND U.country= 'USA'"
        )
        assert len(q.items) == 4
        assert len(q.from_refs) == 2
        conj = q.where.operands
        assert len(conj) == 2


class TestRoundtrip:
    CASES = [
        "SELECT a, b AS x FROM t WHERE a > 3",
        "SELECT DISTINCT colName, colVal FROM TABLE(local_distinct(t, 'g')) AS d",
        "SELECT U.age FROM carts AS C, users AS U WHERE C.userid = U.userid AND U.country = 'USA'",
        "SELECT a, COUNT(*) AS c FROM t GROUP BY a HAVING COUNT(*) > 1 ORDER BY a LIMIT 3",
        "SELECT CASE WHEN a > 0 THEN 1 ELSE 0 END AS sign FROM t",
        "SELECT * FROM a JOIN b ON a.x = b.y WHERE a.z IN (1, 2)",
        "SELECT x FROM t WHERE x BETWEEN 1 AND 5 AND name LIKE 'a%' AND y IS NOT NULL",
    ]

    @pytest.mark.parametrize("sql", CASES)
    def test_to_sql_reparses_to_same_ast(self, sql):
        first = parse(sql)
        second = parse(first.to_sql())
        assert first == second

    @settings(max_examples=50, deadline=None)
    @given(
        st.recursive(
            st.one_of(
                st.integers(-100, 100).map(Literal),
                st.text(alphabet="abxyz", min_size=1, max_size=4).map(Literal),
                st.sampled_from(["a", "b", "c"]).map(lambda n: ColumnRef(None, n)),
            ),
            lambda inner: st.tuples(
                st.sampled_from(["+", "-", "*"]), inner, inner
            ).map(lambda t: Arithmetic(*t)),
            max_leaves=8,
        ).flatmap(
            # Comparisons/AND only at the top (SQL does not nest comparisons).
            lambda arith: st.one_of(
                st.just(arith),
                st.sampled_from(["=", "<", ">="]).map(
                    lambda op: Comparison(op, arith, Literal(1))
                ),
                st.just(And((Comparison("=", arith, Literal(0)),) * 2)),
            )
        )
    )
    def test_expression_roundtrip(self, expr):
        """Any generated expression renders to SQL that parses back equal."""
        assert parse_expression(expr.to_sql()) == expr
