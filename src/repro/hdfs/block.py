"""Block metadata types shared by the NameNode and clients."""

from dataclasses import dataclass


@dataclass(frozen=True)
class Block:
    """Identity and length of one DFS block (data lives on DataNodes)."""

    block_id: str
    length: int


@dataclass(frozen=True)
class BlockLocation:
    """Where one block of a file sits, as reported to clients.

    ``hosts`` are node IPs holding replicas; the classic Hadoop locality
    contract — InputSplits advertise these so schedulers can colocate work
    with data — is exactly what the paper's coordinator piggybacks on.
    """

    block_id: str
    offset: int
    length: int
    hosts: tuple[str, ...]
