"""Storage scanner: heartbeats, checksum scrubbing, re-replication.

The self-healing loop of the storage plane (DESIGN §14).  One cycle:

1. **heartbeat pump** — every :class:`~repro.hdfs.datanode.DataNode` that
   is up heartbeats the NameNode with the injected clock's ``now()``;
   nodes silent past the TTL are swept dead (a killed node stops
   heartbeating by construction);
2. **scrub** — every stored replica is verified against its CRC32; a
   corrupt replica is dropped locally and reported, which makes its block
   under-replicated;
3. **re-replication** — every block whose *live* replica count is below
   ``min(file.replication, live datanodes)`` is restored: a healthy
   source replica (checksum-verified, decommissioned nodes may serve) is
   copied to seeded-chosen live targets and the NameNode's replica map is
   updated.

All scanner traffic is accounted to the dedicated ``dfs.scan.*`` /
``dfs.repair.*`` ledger categories — never to ``dfs.read`` /
``dfs.write.local`` — and the scanner only runs when explicitly armed
(``make_deployment(dfs_scanner=True)``, an explicit :meth:`run_cycle`, or
the chaos harness's quiescence repair), so fault-free Figure 3/4 ledgers
stay bit-identical to the seed.

:meth:`start` runs cycles on a background thread through the injected
clock (virtual-clock runs prefer explicit :meth:`run_cycle` calls at
quiescence — a free-running scanner would otherwise spin virtual time to
its ceiling once the workload finishes).
"""

import threading
from dataclasses import dataclass, field

from repro.common.errors import (
    BlockCorruptError,
    BlockError,
    DataNodeDownError,
    StorageFullError,
)
from repro.sim.clock import VirtualTimeExhausted, WALL


@dataclass
class ScanReport:
    """Outcome of one scanner cycle (or one :meth:`fsck` sweep)."""

    blocks_scanned: int = 0
    corrupt_replicas: int = 0
    repaired_blocks: int = 0
    repaired_bytes: int = 0
    unrecoverable_blocks: list[str] = field(default_factory=list)
    expired_datanodes: list[str] = field(default_factory=list)
    under_replicated_after: int = 0

    @property
    def healthy(self) -> bool:
        return not self.unrecoverable_blocks and self.under_replicated_after == 0


@dataclass
class FsckReport:
    """Namespace-wide health check: every completed file's every block."""

    files: int = 0
    blocks: int = 0
    corrupt_replicas: int = 0
    missing_blocks: list[str] = field(default_factory=list)
    under_replicated: list[str] = field(default_factory=list)

    @property
    def healthy(self) -> bool:
        return not self.missing_blocks and not self.under_replicated

    def summary(self) -> dict:
        return {
            "files": self.files,
            "blocks": self.blocks,
            "corrupt_replicas": self.corrupt_replicas,
            "missing_blocks": list(self.missing_blocks),
            "under_replicated": list(self.under_replicated),
            "healthy": self.healthy,
        }


class StorageScanner:
    """Background (or on-demand) self-healing loop over one DFS."""

    def __init__(self, fs, clock=None, interval_s: float = 1.0):
        self.fs = fs
        self.clock = clock or WALL
        self.interval_s = interval_s
        self.cycles = 0
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self._cycle_lock = threading.Lock()

    # ----------------------------------------------------------- the cycle

    def run_cycle(self) -> ScanReport:
        """One full pump → scrub → re-replicate pass (thread-safe)."""
        with self._cycle_lock:
            report = ScanReport()
            report.expired_datanodes = self.pump_heartbeats()
            self._scrub(report)
            self._re_replicate(report)
            report.under_replicated_after = len(self.fs.namenode.under_replicated())
            self.cycles += 1
            return report

    def pump_heartbeats(self) -> list[str]:
        """Heartbeat every up datanode, then sweep the silent ones."""
        namenode = self.fs.namenode
        now = self.clock.now()
        for ip, datanode in self.fs.datanodes.items():
            if datanode.alive:
                namenode.heartbeat(ip, now)
            else:
                # A node that died before its first heartbeat would never
                # trip the TTL sweep (no record to go stale); start its
                # TTL clock at first observation instead.
                namenode.observe_datanode(ip, now)
        return namenode.expire_heartbeats(now)

    def _scrub(self, report: ScanReport) -> None:
        """Verify every replica on every up datanode; drop + report rot."""
        namenode = self.fs.namenode
        ledger = self.fs.ledger
        for ip, datanode in self.fs.datanodes.items():
            if not datanode.alive:
                continue
            for block_id in datanode.block_ids():
                report.blocks_scanned += 1
                length = namenode.block_length(block_id)
                if length:
                    ledger.add("dfs.scan.bytes", length)
                ledger.add("dfs.scan.blocks", 1)
                if not datanode.verify_block(block_id):
                    datanode.delete_block(block_id)
                    namenode.report_bad_replica(block_id, ip)
                    report.corrupt_replicas += 1
                    ledger.add("dfs.scan.corrupt", 1)

    def _re_replicate(self, report: ScanReport) -> None:
        """Restore the replication factor of every under-replicated block."""
        namenode = self.fs.namenode
        ledger = self.fs.ledger
        for block_id, missing, _live_hosts in namenode.under_replicated():
            data = self._healthy_source(block_id)
            if data is None:
                report.unrecoverable_blocks.append(block_id)
                ledger.add("dfs.repair.unrecoverable", 1)
                continue
            for target in namenode.choose_repair_targets(block_id, missing):
                try:
                    self.fs.datanodes[target].restore_block(block_id, data)
                except StorageFullError:
                    ledger.add("dfs.repair.enospc", 1)
                    continue
                except DataNodeDownError:
                    continue
                namenode.add_replica(block_id, target)
                report.repaired_blocks += 1
                report.repaired_bytes += len(data)
                ledger.add("dfs.repair.blocks", 1)
                ledger.add("dfs.repair.bytes", len(data))

    def _healthy_source(self, block_id: str) -> bytes | None:
        """Checksum-verified bytes from any up replica holder (recorded in
        the replica map or not — a drained node may still hold a copy);
        corrupt sources found on the way are dropped and reported."""
        namenode = self.fs.namenode
        recorded = namenode.block_replicas(block_id)
        candidates = list(recorded) + [
            ip for ip in self.fs.datanodes if ip not in recorded
        ]
        for ip in candidates:
            datanode = self.fs.datanodes.get(ip)
            if datanode is None or not datanode.alive or not datanode.has_block(block_id):
                continue
            try:
                return datanode.replica_bytes(block_id)
            except BlockCorruptError:
                datanode.delete_block(block_id)
                namenode.report_bad_replica(block_id, ip)
            except (BlockError, DataNodeDownError):
                continue
        return None

    # ----------------------------------------------------------------- fsck

    def fsck(self) -> FsckReport:
        """Namespace-wide health check (no repair, but scrub-accurate:
        replicas are checksum-verified, not just counted)."""
        namenode = self.fs.namenode
        report = FsckReport()
        live = set(namenode.live_datanodes())
        for meta in namenode.completed_files():
            report.files += 1
            target = min(meta.replication, len(live))
            for block in meta.blocks:
                report.blocks += 1
                hosts = meta.replica_hosts.get(block.block_id, ())
                healthy_live = 0
                healthy_any = 0
                for ip in hosts:
                    datanode = self.fs.datanodes.get(ip)
                    if datanode is None or not datanode.alive:
                        continue
                    if datanode.verify_block(block.block_id):
                        healthy_any += 1
                        if ip in live:
                            healthy_live += 1
                    else:
                        report.corrupt_replicas += 1
                if healthy_any == 0:
                    report.missing_blocks.append(block.block_id)
                elif healthy_live < target:
                    report.under_replicated.append(block.block_id)
        return report

    def repair_until_stable(self, max_cycles: int = 4) -> ScanReport:
        """Run cycles until a pass finds nothing to fix (quiescence repair,
        used by the chaos harness) — bounded by ``max_cycles``.  The
        returned report aggregates scan/repair totals across all cycles;
        ``under_replicated_after`` and ``unrecoverable_blocks`` reflect the
        final state."""
        total = self.run_cycle()
        for _ in range(max_cycles - 1):
            if (
                total.corrupt_replicas == 0
                and total.under_replicated_after == 0
            ):
                break
            cycle = self.run_cycle()
            total.blocks_scanned += cycle.blocks_scanned
            total.corrupt_replicas += cycle.corrupt_replicas
            total.repaired_blocks += cycle.repaired_blocks
            total.repaired_bytes += cycle.repaired_bytes
            total.expired_datanodes.extend(cycle.expired_datanodes)
            total.unrecoverable_blocks = cycle.unrecoverable_blocks
            total.under_replicated_after = cycle.under_replicated_after
            if cycle.corrupt_replicas == 0 and cycle.repaired_blocks == 0:
                break
        return total

    # ------------------------------------------------------ background loop

    def start(self) -> None:
        """Run cycles every ``interval_s`` on a daemon thread through the
        injected clock.  Idempotent."""
        if self._thread is not None and self._thread.is_alive():
            return
        self._stop.clear()

        def loop() -> None:
            while not self._stop.is_set():
                try:
                    self.run_cycle()
                    self.clock.wait_until(self._stop, self.interval_s)
                except VirtualTimeExhausted:
                    return  # the simulation's horizon: stop quietly

        self._thread = self.clock.spawn(loop, name="dfs-scanner")

    def stop(self, timeout_s: float = 5.0) -> None:
        """Stop the background loop and join it."""
        self._stop.set()
        thread = self._thread
        if thread is not None:
            thread.join(timeout_s)
            self._thread = None
