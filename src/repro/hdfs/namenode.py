"""NameNode: the DFS namespace and block map."""

import itertools
import random
import threading
from dataclasses import dataclass, field

from repro.common.errors import FileAlreadyExists, FileNotFoundInDfs, HdfsError
from repro.hdfs.block import Block, BlockLocation


def _normalize(path: str) -> str:
    """Canonicalize a DFS path: absolute, single slashes, no trailing slash."""
    if not path or not path.startswith("/"):
        raise HdfsError(f"DFS paths must be absolute: {path!r}")
    parts = [p for p in path.split("/") if p]
    for part in parts:
        if part in (".", ".."):
            raise HdfsError(f"relative components not allowed: {path!r}")
    return "/" + "/".join(parts)


@dataclass
class FileMeta:
    """Namespace entry for one file."""

    path: str
    replication: int
    block_size: int
    blocks: list[Block] = field(default_factory=list)
    # block_id -> replica host IPs
    replica_hosts: dict[str, tuple[str, ...]] = field(default_factory=dict)
    complete: bool = False

    @property
    def length(self) -> int:
        return sum(b.length for b in self.blocks)


class NameNode:
    """Owns the namespace tree, the block map, and datanode liveness.

    Placement follows the simplified classic HDFS policy: first replica on
    the writing client's node when that node hosts a DataNode, remaining
    replicas on distinct other nodes chosen pseudo-randomly (seeded, so runs
    are reproducible).  Placement only ever targets *live* datanodes: dead
    (reported or heartbeat-expired) and decommissioned nodes are excluded.

    Liveness is clock-injected: callers (the storage scanner) pump
    :meth:`heartbeat` with their clock's ``now()`` and sweep stale nodes
    with :meth:`expire_heartbeats`.  A node that never heartbeats stays
    live by default — the seed deployments never pump heartbeats, and
    their behavior must not change.
    """

    def __init__(
        self,
        datanode_ips: list[str],
        seed: int = 7,
        heartbeat_ttl_s: float = 10.0,
    ):
        if not datanode_ips:
            raise HdfsError("a NameNode needs at least one DataNode")
        self._datanode_ips = list(datanode_ips)
        self._files: dict[str, FileMeta] = {}
        self._dirs: set[str] = {"/"}
        self._lock = threading.Lock()
        self._block_counter = itertools.count(1)
        self._rng = random.Random(seed)
        self.heartbeat_ttl_s = heartbeat_ttl_s
        self._last_heartbeat: dict[str, float] = {}
        self._dead: set[str] = set()
        self._decommissioned: set[str] = set()
        #: block_id -> owning FileMeta, for replica-map surgery on repair
        self._block_owner: dict[str, FileMeta] = {}
        #: observability counters (typed, not ledger — see the scanner for
        #: the ``dfs.repair.*`` / ``dfs.scan.*`` byte accounting)
        self.bad_replica_reports = 0
        self.dead_datanode_reports = 0

    # ------------------------------------------------------------- liveness

    def datanode_ips(self) -> list[str]:
        """Every registered datanode, live or not."""
        with self._lock:
            return list(self._datanode_ips)

    def heartbeat(self, ip: str, now: float) -> None:
        """Record one datanode heartbeat; revives a reported-dead node."""
        with self._lock:
            if ip not in self._datanode_ips:
                raise HdfsError(f"unknown datanode {ip}")
            self._last_heartbeat[ip] = now
            self._dead.discard(ip)

    def observe_datanode(self, ip: str, now: float) -> None:
        """Seed a liveness baseline for a node with no heartbeat on record.

        The TTL sweep deliberately ignores nodes that never heartbeated
        (deployments without a scanner never pump, and their nodes must
        stay live).  But under a running scanner that same rule would hide
        a node that died *before its first heartbeat* forever.  The pump
        calls this for silent nodes, so the TTL clock starts at the first
        observation and the node is expired one TTL later — the detection
        delay the heartbeat model promises, instead of never."""
        with self._lock:
            if ip in self._datanode_ips:
                self._last_heartbeat.setdefault(ip, now)

    def expire_heartbeats(self, now: float) -> list[str]:
        """Mark every node whose last heartbeat is older than the TTL as
        dead; returns the newly dead ips.  Nodes that never heartbeated
        are left alone (the no-scanner deployments never pump)."""
        newly_dead = []
        with self._lock:
            for ip, seen in self._last_heartbeat.items():
                if ip not in self._dead and now - seen > self.heartbeat_ttl_s:
                    self._dead.add(ip)
                    newly_dead.append(ip)
        return newly_dead

    def report_dead_datanode(self, ip: str) -> None:
        """A client hit :class:`DataNodeDownError` — mark the node dead
        immediately instead of waiting out the heartbeat TTL."""
        with self._lock:
            if ip in self._datanode_ips and ip not in self._dead:
                self._dead.add(ip)
                self.dead_datanode_reports += 1

    def decommission(self, ip: str) -> None:
        """Exclude a node from placement; its replicas still serve reads
        but no longer count toward replication targets, so the scanner
        drains it by re-replicating everything it holds elsewhere."""
        with self._lock:
            if ip not in self._datanode_ips:
                raise HdfsError(f"unknown datanode {ip}")
            self._decommissioned.add(ip)

    def recommission(self, ip: str) -> None:
        """Readmit a decommissioned node to placement."""
        with self._lock:
            self._decommissioned.discard(ip)

    def is_live(self, ip: str) -> bool:
        """Live = registered, not reported/expired dead, not decommissioned."""
        with self._lock:
            return self._is_live_locked(ip)

    def _is_live_locked(self, ip: str) -> bool:
        return (
            ip in self._datanode_ips
            and ip not in self._dead
            and ip not in self._decommissioned
        )

    def live_datanodes(self) -> list[str]:
        """Ips eligible for placement, in registration order."""
        with self._lock:
            return [ip for ip in self._datanode_ips if self._is_live_locked(ip)]

    # ------------------------------------------------------------ block map

    def report_bad_replica(self, block_id: str, host: str) -> tuple[str, ...]:
        """A reader (or the scrub scan) found this replica corrupt or
        missing: drop the host from the block's replica set and return the
        survivors.  The repair scanner restores the factor later."""
        with self._lock:
            meta = self._block_owner.get(block_id)
            if meta is None:
                return ()
            hosts = meta.replica_hosts.get(block_id, ())
            if host in hosts:
                hosts = tuple(h for h in hosts if h != host)
                meta.replica_hosts[block_id] = hosts
                self.bad_replica_reports += 1
            return hosts

    def add_replica(self, block_id: str, host: str) -> None:
        """Record a repaired/re-replicated copy on ``host``."""
        with self._lock:
            meta = self._block_owner.get(block_id)
            if meta is None:
                return
            hosts = meta.replica_hosts.get(block_id, ())
            if host not in hosts:
                meta.replica_hosts[block_id] = hosts + (host,)

    def set_replicas(self, block_id: str, hosts: tuple[str, ...]) -> None:
        """Replace a block's replica set (the writer's pipeline records
        where the replicas actually landed after ENOSPC redirections)."""
        with self._lock:
            meta = self._block_owner.get(block_id)
            if meta is not None:
                meta.replica_hosts[block_id] = tuple(hosts)

    def block_replicas(self, block_id: str) -> tuple[str, ...]:
        """Current replica hosts of one block (empty if unknown)."""
        with self._lock:
            meta = self._block_owner.get(block_id)
            if meta is None:
                return ()
            return meta.replica_hosts.get(block_id, ())

    def under_replicated(self) -> list[tuple[str, int, tuple[str, ...]]]:
        """Blocks whose *live* replica count is below target, as
        ``(block_id, missing_count, surviving_live_hosts)``.

        The target adapts to the cluster: ``min(file.replication, live
        datanodes)`` — with every node but one dead, a replication-3 file
        is healthy at one replica.  Decommissioned and dead hosts never
        count, which is what drains a decommissioning node.
        """
        report = []
        with self._lock:
            live = [ip for ip in self._datanode_ips if self._is_live_locked(ip)]
            for meta in self._files.values():
                target = min(meta.replication, len(live))
                for block in meta.blocks:
                    hosts = meta.replica_hosts.get(block.block_id, ())
                    live_hosts = tuple(h for h in hosts if self._is_live_locked(h))
                    if len(live_hosts) < target:
                        report.append(
                            (
                                block.block_id,
                                target - len(live_hosts),
                                live_hosts,
                            )
                        )
        return report

    def block_length(self, block_id: str) -> int:
        """Length of one block (0 if unknown)."""
        with self._lock:
            meta = self._block_owner.get(block_id)
            if meta is None:
                return 0
            for block in meta.blocks:
                if block.block_id == block_id:
                    return block.length
            return 0

    def choose_repair_targets(self, block_id: str, count: int) -> tuple[str, ...]:
        """Up to ``count`` live hosts not already holding the block, chosen
        with the placement RNG (seeded, so repairs are reproducible)."""
        with self._lock:
            meta = self._block_owner.get(block_id)
            current = set(meta.replica_hosts.get(block_id, ())) if meta else set()
            candidates = [
                ip
                for ip in self._datanode_ips
                if self._is_live_locked(ip) and ip not in current
            ]
            self._rng.shuffle(candidates)
            return tuple(candidates[:count])

    # ---------------------------------------------------------------- files

    def create_file(self, path: str, replication: int, block_size: int) -> FileMeta:
        """Begin writing a new file (fails if the path exists)."""
        path = _normalize(path)
        replication = min(replication, len(self._datanode_ips))
        if replication < 1 or block_size < 1:
            raise HdfsError("replication and block_size must be >= 1")
        with self._lock:
            if path in self._files:
                raise FileAlreadyExists(path)
            if path in self._dirs:
                raise FileAlreadyExists(f"{path} is a directory")
            meta = FileMeta(path=path, replication=replication, block_size=block_size)
            self._files[path] = meta
            self._ensure_parents(path)
            return meta

    def allocate_block(self, path: str, length: int, client_ip: str | None) -> tuple[Block, tuple[str, ...]]:
        """Allocate the next block of ``path`` and choose replica hosts."""
        path = _normalize(path)
        with self._lock:
            meta = self._files.get(path)
            if meta is None:
                raise FileNotFoundInDfs(path)
            if meta.complete:
                raise HdfsError(f"cannot append to completed file {path}")
            block = Block(block_id=f"blk_{next(self._block_counter):010d}", length=length)
            hosts = self._choose_replicas(meta.replication, client_ip)
            if not hosts:
                raise HdfsError("no live datanodes available for placement")
            meta.blocks.append(block)
            meta.replica_hosts[block.block_id] = hosts
            self._block_owner[block.block_id] = meta
            return block, hosts

    def replacement_host(self, block_id: str, exclude) -> str | None:
        """One live host outside ``exclude`` for a redirected replica write
        (the ENOSPC / dead-target path of the write pipeline)."""
        with self._lock:
            candidates = [
                ip
                for ip in self._datanode_ips
                if self._is_live_locked(ip) and ip not in exclude
            ]
            if not candidates:
                return None
            self._rng.shuffle(candidates)
            return candidates[0]

    def complete_file(self, path: str) -> None:
        """Seal the file; it becomes visible to readers."""
        path = _normalize(path)
        with self._lock:
            meta = self._files.get(path)
            if meta is None:
                raise FileNotFoundInDfs(path)
            meta.complete = True

    def get_file(self, path: str) -> FileMeta:
        """Metadata of a completed file."""
        path = _normalize(path)
        with self._lock:
            meta = self._files.get(path)
            if meta is None or not meta.complete:
                raise FileNotFoundInDfs(path)
            return meta

    def completed_files(self) -> list[FileMeta]:
        """Snapshot of every completed file's metadata (fsck inventory)."""
        with self._lock:
            return [m for m in self._files.values() if m.complete]

    def block_locations(self, path: str) -> list[BlockLocation]:
        """Per-block replica locations, in file order with byte offsets."""
        meta = self.get_file(path)
        locations = []
        offset = 0
        for block in meta.blocks:
            locations.append(
                BlockLocation(
                    block_id=block.block_id,
                    offset=offset,
                    length=block.length,
                    hosts=meta.replica_hosts[block.block_id],
                )
            )
            offset += block.length
        return locations

    # ------------------------------------------------------------ namespace

    def exists(self, path: str) -> bool:
        """True for a completed file or a directory."""
        path = _normalize(path)
        with self._lock:
            meta = self._files.get(path)
            if meta is not None:
                return meta.complete
            return path in self._dirs

    def is_dir(self, path: str) -> bool:
        """True when ``path`` is a directory."""
        path = _normalize(path)
        with self._lock:
            return path in self._dirs

    def mkdirs(self, path: str) -> None:
        """Create a directory and all missing parents."""
        path = _normalize(path)
        with self._lock:
            if path in self._files:
                raise FileAlreadyExists(f"{path} is a file")
            self._dirs.add(path)
            self._ensure_parents(path + "/x")

    def listdir(self, path: str) -> list[str]:
        """Immediate children (full paths) of a directory, sorted."""
        path = _normalize(path)
        with self._lock:
            if path not in self._dirs:
                raise FileNotFoundInDfs(path)
            prefix = path if path.endswith("/") else path + "/"
            children = set()
            for candidate in itertools.chain(self._files, self._dirs):
                if candidate != path and candidate.startswith(prefix):
                    rest = candidate[len(prefix):]
                    children.add(prefix + rest.split("/", 1)[0])
            return sorted(children)

    def delete(self, path: str, recursive: bool = False) -> list[str]:
        """Remove a file or directory; returns the block ids to reclaim."""
        path = _normalize(path)
        with self._lock:
            if path in self._files:
                meta = self._files.pop(path)
                return self._reclaim_locked(meta)
            if path in self._dirs:
                prefix = path + "/"
                inside_files = [p for p in self._files if p.startswith(prefix)]
                inside_dirs = [p for p in self._dirs if p.startswith(prefix)]
                if (inside_files or inside_dirs) and not recursive:
                    raise HdfsError(f"directory not empty: {path}")
                reclaimed: list[str] = []
                for p in inside_files:
                    reclaimed.extend(self._reclaim_locked(self._files.pop(p)))
                for p in inside_dirs:
                    self._dirs.discard(p)
                self._dirs.discard(path)
                return reclaimed
            raise FileNotFoundInDfs(path)

    def _reclaim_locked(self, meta: FileMeta) -> list[str]:
        """Caller holds the lock: release a removed file's block bookkeeping."""
        ids = [b.block_id for b in meta.blocks]
        for block_id in ids:
            self._block_owner.pop(block_id, None)
        return ids

    def rename(self, src: str, dst: str, overwrite: bool = False) -> list[str]:
        """Rename a completed file (directories not supported).

        With ``overwrite`` an existing destination *file* is atomically
        replaced under the namespace lock — the commit step of the
        write-then-rename protocol (checkpoints, spill promotion).  Returns
        the replaced file's block ids so the caller can reclaim replicas
        (empty for a plain rename).
        """
        src, dst = _normalize(src), _normalize(dst)
        with self._lock:
            meta = self._files.get(src)
            if meta is None:
                raise FileNotFoundInDfs(src)
            if dst in self._dirs:
                raise FileAlreadyExists(dst)
            reclaimed: list[str] = []
            if dst in self._files:
                if not overwrite:
                    raise FileAlreadyExists(dst)
                reclaimed = self._reclaim_locked(self._files.pop(dst))
            del self._files[src]
            meta.path = dst
            self._files[dst] = meta
            self._ensure_parents(dst)
            return reclaimed

    def replica_map(self, path: str) -> dict[str, tuple[str, ...]]:
        """block_id -> replica host IPs for one file."""
        return dict(self.get_file(path).replica_hosts)

    # -------------------------------------------------------------- helpers

    def _ensure_parents(self, path: str) -> None:
        parts = [p for p in path.split("/") if p][:-1]
        current = ""
        for part in parts:
            current += "/" + part
            self._dirs.add(current)

    def _choose_replicas(self, replication: int, client_ip: str | None) -> tuple[str, ...]:
        """Caller holds the lock.  Live datanodes only: a dead or
        decommissioned node never receives new replicas."""
        chosen: list[str] = []
        if client_ip is not None and self._is_live_locked(client_ip):
            chosen.append(client_ip)
        remaining = [
            ip
            for ip in self._datanode_ips
            if ip not in chosen and self._is_live_locked(ip)
        ]
        self._rng.shuffle(remaining)
        chosen.extend(remaining[: replication - len(chosen)])
        return tuple(chosen[:replication])
