"""NameNode: the DFS namespace and block map."""

import itertools
import random
import threading
from dataclasses import dataclass, field

from repro.common.errors import FileAlreadyExists, FileNotFoundInDfs, HdfsError
from repro.hdfs.block import Block, BlockLocation


def _normalize(path: str) -> str:
    """Canonicalize a DFS path: absolute, single slashes, no trailing slash."""
    if not path or not path.startswith("/"):
        raise HdfsError(f"DFS paths must be absolute: {path!r}")
    parts = [p for p in path.split("/") if p]
    for part in parts:
        if part in (".", ".."):
            raise HdfsError(f"relative components not allowed: {path!r}")
    return "/" + "/".join(parts)


@dataclass
class FileMeta:
    """Namespace entry for one file."""

    path: str
    replication: int
    block_size: int
    blocks: list[Block] = field(default_factory=list)
    # block_id -> replica host IPs
    replica_hosts: dict[str, tuple[str, ...]] = field(default_factory=dict)
    complete: bool = False

    @property
    def length(self) -> int:
        return sum(b.length for b in self.blocks)


class NameNode:
    """Owns the namespace tree and block placement decisions.

    Placement follows the simplified classic HDFS policy: first replica on
    the writing client's node when that node hosts a DataNode, remaining
    replicas on distinct other nodes chosen pseudo-randomly (seeded, so runs
    are reproducible).
    """

    def __init__(self, datanode_ips: list[str], seed: int = 7):
        if not datanode_ips:
            raise HdfsError("a NameNode needs at least one DataNode")
        self._datanode_ips = list(datanode_ips)
        self._files: dict[str, FileMeta] = {}
        self._dirs: set[str] = {"/"}
        self._lock = threading.Lock()
        self._block_counter = itertools.count(1)
        self._rng = random.Random(seed)

    # ---------------------------------------------------------------- files

    def create_file(self, path: str, replication: int, block_size: int) -> FileMeta:
        """Begin writing a new file (fails if the path exists)."""
        path = _normalize(path)
        replication = min(replication, len(self._datanode_ips))
        if replication < 1 or block_size < 1:
            raise HdfsError("replication and block_size must be >= 1")
        with self._lock:
            if path in self._files:
                raise FileAlreadyExists(path)
            if path in self._dirs:
                raise FileAlreadyExists(f"{path} is a directory")
            meta = FileMeta(path=path, replication=replication, block_size=block_size)
            self._files[path] = meta
            self._ensure_parents(path)
            return meta

    def allocate_block(self, path: str, length: int, client_ip: str | None) -> tuple[Block, tuple[str, ...]]:
        """Allocate the next block of ``path`` and choose replica hosts."""
        path = _normalize(path)
        with self._lock:
            meta = self._files.get(path)
            if meta is None:
                raise FileNotFoundInDfs(path)
            if meta.complete:
                raise HdfsError(f"cannot append to completed file {path}")
            block = Block(block_id=f"blk_{next(self._block_counter):010d}", length=length)
            hosts = self._choose_replicas(meta.replication, client_ip)
            meta.blocks.append(block)
            meta.replica_hosts[block.block_id] = hosts
            return block, hosts

    def complete_file(self, path: str) -> None:
        """Seal the file; it becomes visible to readers."""
        path = _normalize(path)
        with self._lock:
            meta = self._files.get(path)
            if meta is None:
                raise FileNotFoundInDfs(path)
            meta.complete = True

    def get_file(self, path: str) -> FileMeta:
        """Metadata of a completed file."""
        path = _normalize(path)
        with self._lock:
            meta = self._files.get(path)
            if meta is None or not meta.complete:
                raise FileNotFoundInDfs(path)
            return meta

    def block_locations(self, path: str) -> list[BlockLocation]:
        """Per-block replica locations, in file order with byte offsets."""
        meta = self.get_file(path)
        locations = []
        offset = 0
        for block in meta.blocks:
            locations.append(
                BlockLocation(
                    block_id=block.block_id,
                    offset=offset,
                    length=block.length,
                    hosts=meta.replica_hosts[block.block_id],
                )
            )
            offset += block.length
        return locations

    # ------------------------------------------------------------ namespace

    def exists(self, path: str) -> bool:
        """True for a completed file or a directory."""
        path = _normalize(path)
        with self._lock:
            meta = self._files.get(path)
            if meta is not None:
                return meta.complete
            return path in self._dirs

    def is_dir(self, path: str) -> bool:
        """True when ``path`` is a directory."""
        path = _normalize(path)
        with self._lock:
            return path in self._dirs

    def mkdirs(self, path: str) -> None:
        """Create a directory and all missing parents."""
        path = _normalize(path)
        with self._lock:
            if path in self._files:
                raise FileAlreadyExists(f"{path} is a file")
            self._dirs.add(path)
            self._ensure_parents(path + "/x")

    def listdir(self, path: str) -> list[str]:
        """Immediate children (full paths) of a directory, sorted."""
        path = _normalize(path)
        with self._lock:
            if path not in self._dirs:
                raise FileNotFoundInDfs(path)
            prefix = path if path.endswith("/") else path + "/"
            children = set()
            for candidate in itertools.chain(self._files, self._dirs):
                if candidate != path and candidate.startswith(prefix):
                    rest = candidate[len(prefix):]
                    children.add(prefix + rest.split("/", 1)[0])
            return sorted(children)

    def delete(self, path: str, recursive: bool = False) -> list[str]:
        """Remove a file or directory; returns the block ids to reclaim."""
        path = _normalize(path)
        with self._lock:
            if path in self._files:
                meta = self._files.pop(path)
                return [b.block_id for b in meta.blocks]
            if path in self._dirs:
                prefix = path + "/"
                inside_files = [p for p in self._files if p.startswith(prefix)]
                inside_dirs = [p for p in self._dirs if p.startswith(prefix)]
                if (inside_files or inside_dirs) and not recursive:
                    raise HdfsError(f"directory not empty: {path}")
                reclaimed: list[str] = []
                for p in inside_files:
                    reclaimed.extend(b.block_id for b in self._files.pop(p).blocks)
                for p in inside_dirs:
                    self._dirs.discard(p)
                self._dirs.discard(path)
                return reclaimed
            raise FileNotFoundInDfs(path)

    def rename(self, src: str, dst: str, overwrite: bool = False) -> list[str]:
        """Rename a completed file (directories not supported).

        With ``overwrite`` an existing destination *file* is atomically
        replaced under the namespace lock — the commit step of the
        write-then-rename protocol (checkpoints, spill promotion).  Returns
        the replaced file's block ids so the caller can reclaim replicas
        (empty for a plain rename).
        """
        src, dst = _normalize(src), _normalize(dst)
        with self._lock:
            meta = self._files.get(src)
            if meta is None:
                raise FileNotFoundInDfs(src)
            if dst in self._dirs:
                raise FileAlreadyExists(dst)
            reclaimed: list[str] = []
            if dst in self._files:
                if not overwrite:
                    raise FileAlreadyExists(dst)
                reclaimed = [b.block_id for b in self._files.pop(dst).blocks]
            del self._files[src]
            meta.path = dst
            self._files[dst] = meta
            self._ensure_parents(dst)
            return reclaimed

    def replica_map(self, path: str) -> dict[str, tuple[str, ...]]:
        """block_id -> replica host IPs for one file."""
        return dict(self.get_file(path).replica_hosts)

    # -------------------------------------------------------------- helpers

    def _ensure_parents(self, path: str) -> None:
        parts = [p for p in path.split("/") if p][:-1]
        current = ""
        for part in parts:
            current += "/" + part
            self._dirs.add(current)

    def _choose_replicas(self, replication: int, client_ip: str | None) -> tuple[str, ...]:
        chosen: list[str] = []
        if client_ip in self._datanode_ips:
            chosen.append(client_ip)
        remaining = [ip for ip in self._datanode_ips if ip not in chosen]
        self._rng.shuffle(remaining)
        chosen.extend(remaining[: replication - len(chosen)])
        return tuple(chosen[:replication])
