"""DataNode: checksummed block replica storage on one worker node."""

import threading
import zlib

from repro.cluster.cost import CostLedger
from repro.cluster.node import Node
from repro.common.errors import (
    BlockCorruptError,
    BlockError,
    DataNodeDownError,
    StorageFullError,
)


def block_crc(data: bytes) -> int:
    """The per-replica checksum: CRC32 over the block bytes."""
    return zlib.crc32(data) & 0xFFFFFFFF


class DataNode:
    """Stores block replicas for one cluster node.

    Every replica carries the CRC32 computed at write time; every read
    verifies it, so silent bit rot surfaces as a typed
    :class:`~repro.common.errors.BlockCorruptError` instead of corrupt
    bytes flowing downstream.  ``capacity_bytes`` models a finite disk:
    writes past it raise :class:`~repro.common.errors.StorageFullError`.
    A stopped node (:meth:`stop`) refuses every block operation with
    :class:`~repro.common.errors.DataNodeDownError` until :meth:`restart`.

    Byte accounting: a local write records ``dfs.write.local``; when the
    writer's client sits on a different node the replication pipeline also
    records ``dfs.write.replica_net`` (handled by the filesystem client,
    which knows the client's node).  Reads record ``dfs.read``.  Repair
    and scrub traffic goes through the side doors (:meth:`replica_bytes`,
    :meth:`restore_block`, :meth:`verify_block`) whose callers charge the
    dedicated ``dfs.repair.*`` / ``dfs.scan.*`` categories instead.
    """

    def __init__(
        self,
        node: Node,
        ledger: CostLedger,
        capacity_bytes: int | None = None,
        injector=None,  # FaultInjector | None — dfs.replica_corrupt site
        dn_index: int = 0,
    ):
        self.node = node
        self.ledger = ledger
        self.capacity_bytes = capacity_bytes
        self.injector = injector
        self.dn_index = dn_index
        self._blocks: dict[str, bytes] = {}
        self._crcs: dict[str, int] = {}
        self._used = 0
        self._alive = True
        self._ops = 0  # block reads+writes, the datanode_down trigger axis
        self._lock = threading.Lock()

    # -------------------------------------------------------------- liveness

    @property
    def alive(self) -> bool:
        with self._lock:
            return self._alive

    def stop(self) -> None:
        """Take the node down: every block operation now raises
        :class:`DataNodeDownError` and heartbeats stop flowing."""
        with self._lock:
            self._alive = False

    def restart(self) -> None:
        """Bring the node back with its stored replicas intact."""
        with self._lock:
            self._alive = True

    def _check_up(self) -> None:
        """Caller holds the lock.  Counts the op and applies the injected
        ``dfs.datanode_down`` one-shot before refusing dead-node traffic."""
        if self._alive and self.injector is not None:
            if self.injector.check_datanode_down(self.dn_index, self._ops):
                self._alive = False
        self._ops += 1
        if not self._alive:
            raise DataNodeDownError(
                f"datanode {self.node.hostname} is down", host=self.node.ip
            )

    # ----------------------------------------------------------------- I/O

    def write_block(self, block_id: str, data: bytes) -> None:
        """Store one replica of ``block_id``.

        Idempotent for identical bytes: re-writing the same content is a
        no-op (the re-replication pipeline and retried checkpoint commits
        both re-send blocks a node may already hold), while a different
        payload under the same id is a hard :class:`BlockError`.
        """
        with self._lock:
            self._check_up()
            existing = self._blocks.get(block_id)
            if existing is not None:
                # Idempotency is judged against the *recorded* checksum, not
                # the stored bytes — a replica that rotted (or was stored
                # corrupted by injection) still accepts the same logical
                # re-write as a no-op; the scrub pass repairs the rot.
                if block_crc(data) == self._crcs[block_id]:
                    return  # idempotent re-write of identical content
                raise BlockError(
                    f"block {block_id} already stored on {self.node.hostname} "
                    "with different contents"
                )
            if (
                self.capacity_bytes is not None
                and self._used + len(data) > self.capacity_bytes
            ):
                raise StorageFullError(
                    f"datanode {self.node.hostname} full: "
                    f"{self._used}+{len(data)} > {self.capacity_bytes} bytes",
                    host=self.node.ip,
                )
            crc = block_crc(data)
            if self.injector is not None:
                # dfs.replica_corrupt: damage the stored bytes *after* the
                # checksum is computed, so every read detects it.
                data = self.injector.corrupt_replica(
                    data, f"replica/{self.node.ip}/{block_id}"
                )
            self._blocks[block_id] = data
            self._crcs[block_id] = crc
            self._used += len(data)
        self.ledger.add("dfs.write.local", len(data))

    def read_block(self, block_id: str) -> bytes:
        """Return the replica bytes, checksum-verified (raises
        :class:`BlockCorruptError` on damage, :class:`BlockError` if the
        replica is not stored here)."""
        with self._lock:
            self._check_up()
            data = self._blocks.get(block_id)
            if data is None:
                raise BlockError(
                    f"block {block_id} not stored on {self.node.hostname}"
                )
            if block_crc(data) != self._crcs[block_id]:
                raise BlockCorruptError(
                    f"block {block_id} failed checksum on {self.node.hostname}",
                    block_id=block_id,
                    host=self.node.ip,
                )
        self.ledger.add("dfs.read", len(data))
        return data

    # ------------------------------------------------------ repair side door

    def replica_bytes(self, block_id: str) -> bytes:
        """Checksum-verified replica bytes for the repair pipeline — no
        ``dfs.read`` charge (callers account ``dfs.repair.*`` instead)."""
        with self._lock:
            self._check_up()
            data = self._blocks.get(block_id)
            if data is None:
                raise BlockError(
                    f"block {block_id} not stored on {self.node.hostname}"
                )
            if block_crc(data) != self._crcs[block_id]:
                raise BlockCorruptError(
                    f"block {block_id} failed checksum on {self.node.hostname}",
                    block_id=block_id,
                    host=self.node.ip,
                )
            return data

    def restore_block(self, block_id: str, data: bytes) -> None:
        """Write a repaired replica — capacity-checked and idempotent like
        :meth:`write_block`, but never fault-injected (the repair pipeline
        verified these bytes against the checksum) and not charged to
        ``dfs.write.local`` (callers account ``dfs.repair.bytes``)."""
        with self._lock:
            self._check_up()
            existing = self._blocks.get(block_id)
            if existing is not None:
                if existing == data and block_crc(data) == self._crcs[block_id]:
                    return
                # A corrupt or divergent local copy is replaced outright.
                self._used -= len(existing)
                del self._blocks[block_id]
                del self._crcs[block_id]
            if (
                self.capacity_bytes is not None
                and self._used + len(data) > self.capacity_bytes
            ):
                raise StorageFullError(
                    f"datanode {self.node.hostname} full: "
                    f"{self._used}+{len(data)} > {self.capacity_bytes} bytes",
                    host=self.node.ip,
                )
            self._blocks[block_id] = data
            self._crcs[block_id] = block_crc(data)
            self._used += len(data)

    def verify_block(self, block_id: str) -> bool:
        """True when the stored replica matches its checksum (the scrub
        pass; no ledger charge — callers account ``dfs.scan.bytes``)."""
        with self._lock:
            data = self._blocks.get(block_id)
            if data is None:
                return False
            return block_crc(data) == self._crcs[block_id]

    def corrupt_replica(self, block_id: str) -> None:
        """Chaos/test helper: flip one stored byte without touching the
        recorded checksum, so the next verified read detects bit rot."""
        with self._lock:
            data = self._blocks.get(block_id)
            if not data:
                return
            mid = len(data) // 2
            self._blocks[block_id] = (
                data[:mid] + bytes([data[mid] ^ 0xFF]) + data[mid + 1 :]
            )

    # ------------------------------------------------------------- inventory

    def has_block(self, block_id: str) -> bool:
        """True when this DataNode holds a replica of ``block_id``."""
        with self._lock:
            return block_id in self._blocks

    def delete_block(self, block_id: str) -> None:
        """Drop the replica; deleting an absent block is a no-op."""
        with self._lock:
            data = self._blocks.pop(block_id, None)
            self._crcs.pop(block_id, None)
            if data is not None:
                self._used -= len(data)

    def block_ids(self) -> list[str]:
        """Ids of every replica stored here (scrub-scan inventory)."""
        with self._lock:
            return sorted(self._blocks)

    def used_bytes(self) -> int:
        """Total bytes of replicas stored here."""
        with self._lock:
            return self._used

    def block_count(self) -> int:
        """Number of replicas stored here."""
        with self._lock:
            return len(self._blocks)
