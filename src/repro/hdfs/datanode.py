"""DataNode: block replica storage on one worker node."""

import threading

from repro.cluster.cost import CostLedger
from repro.cluster.node import Node
from repro.common.errors import BlockError


class DataNode:
    """Stores block replicas for one cluster node.

    Byte accounting: a local write records ``dfs.write.local``; when the
    writer's client sits on a different node the replication pipeline also
    records ``dfs.write.replica_net`` (handled by the filesystem client,
    which knows the client's node).  Reads record ``dfs.read``.
    """

    def __init__(self, node: Node, ledger: CostLedger):
        self.node = node
        self.ledger = ledger
        self._blocks: dict[str, bytes] = {}
        self._lock = threading.Lock()

    def write_block(self, block_id: str, data: bytes) -> None:
        """Store one replica of ``block_id``."""
        with self._lock:
            if block_id in self._blocks:
                raise BlockError(f"block {block_id} already stored on {self.node.hostname}")
            self._blocks[block_id] = data
        self.ledger.add("dfs.write.local", len(data))

    def read_block(self, block_id: str) -> bytes:
        """Return the replica bytes (raises if not stored here)."""
        with self._lock:
            try:
                data = self._blocks[block_id]
            except KeyError:
                raise BlockError(
                    f"block {block_id} not stored on {self.node.hostname}"
                ) from None
        self.ledger.add("dfs.read", len(data))
        return data

    def has_block(self, block_id: str) -> bool:
        """True when this DataNode holds a replica of ``block_id``."""
        with self._lock:
            return block_id in self._blocks

    def delete_block(self, block_id: str) -> None:
        """Drop the replica; deleting an absent block is a no-op."""
        with self._lock:
            self._blocks.pop(block_id, None)

    def used_bytes(self) -> int:
        """Total bytes of replicas stored here."""
        with self._lock:
            return sum(len(d) for d in self._blocks.values())

    def block_count(self) -> int:
        """Number of replicas stored here."""
        with self._lock:
            return len(self._blocks)
