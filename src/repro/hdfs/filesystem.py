"""Client-facing DFS API: writers, readers, namespace operations."""

from dataclasses import dataclass

from repro.cluster.cluster import Cluster
from repro.common.errors import FileNotFoundInDfs, HdfsError
from repro.hdfs.block import BlockLocation
from repro.hdfs.datanode import DataNode
from repro.hdfs.namenode import NameNode, _normalize

DEFAULT_BLOCK_SIZE = 8 * 1024 * 1024  # small blocks keep scaled runs splittable
DEFAULT_REPLICATION = 3


@dataclass(frozen=True)
class FileStatus:
    """Client view of one file's metadata."""

    path: str
    length: int
    block_size: int
    replication: int
    num_blocks: int


class DfsWriter:
    """Streaming writer that chunks data into replicated blocks.

    Accounting: each replica write lands on a DataNode (``dfs.write.local``);
    replicas stored away from the client's node additionally cost
    ``dfs.write.replica_net`` network bytes, mimicking the HDFS replication
    pipeline over the wire.
    """

    def __init__(self, fs: "DistributedFileSystem", path: str, client_ip: str | None):
        self._fs = fs
        self._path = path
        self._client_ip = client_ip
        self._buffer = bytearray()
        self._closed = False
        fs.namenode.create_file(path, fs.replication, fs.block_size)

    def write(self, data: bytes | str) -> int:
        """Append bytes (str is UTF-8 encoded); returns bytes written."""
        if self._closed:
            raise HdfsError(f"writer for {self._path} is closed")
        if isinstance(data, str):
            data = data.encode("utf-8")
        self._buffer.extend(data)
        while len(self._buffer) >= self._fs.block_size:
            chunk = bytes(self._buffer[: self._fs.block_size])
            del self._buffer[: self._fs.block_size]
            self._flush_block(chunk)
        return len(data)

    def close(self) -> None:
        """Flush the tail block and seal the file."""
        if self._closed:
            return
        if self._buffer:
            self._flush_block(bytes(self._buffer))
            self._buffer.clear()
        self._fs.namenode.complete_file(self._path)
        self._closed = True

    def __enter__(self) -> "DfsWriter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def _flush_block(self, chunk: bytes) -> None:
        block, hosts = self._fs.namenode.allocate_block(
            self._path, len(chunk), self._client_ip
        )
        for host in hosts:
            self._fs.datanodes[host].write_block(block.block_id, chunk)
            if host != self._client_ip:
                self._fs.ledger.add("dfs.write.replica_net", len(chunk))


class DfsReader:
    """Sequential reader across a file's blocks, preferring local replicas."""

    def __init__(self, fs: "DistributedFileSystem", path: str, client_ip: str | None):
        self._fs = fs
        self._path = path
        self._client_ip = client_ip
        self._locations = fs.namenode.block_locations(path)
        self._block_index = 0
        self._block_data = b""
        self._block_pos = 0
        self._closed = False

    def read(self, size: int = -1) -> bytes:
        """Read up to ``size`` bytes (-1 = to end of file)."""
        if self._closed:
            raise HdfsError(f"reader for {self._path} is closed")
        chunks: list[bytes] = []
        remaining = size if size >= 0 else float("inf")
        while remaining > 0:
            if self._block_pos >= len(self._block_data):
                if not self._load_next_block():
                    break
            take = len(self._block_data) - self._block_pos
            if take > remaining:
                take = int(remaining)
            chunks.append(self._block_data[self._block_pos : self._block_pos + take])
            self._block_pos += take
            remaining -= take
        return b"".join(chunks)

    def seek(self, offset: int) -> None:
        """Position the reader at exactly ``offset`` bytes into the file.

        Loads the containing block; used by InputFormat record readers that
        process one byte-range split at a time.  Seeking to the end of the
        file is allowed (subsequent reads return empty).
        """
        total = sum(loc.length for loc in self._locations)
        if offset == total:
            self._block_index = len(self._locations)
            self._block_data = b""
            self._block_pos = 0
            return
        for i, loc in enumerate(self._locations):
            if loc.offset <= offset < loc.offset + loc.length:
                self._block_index = i
                self._block_data = b""
                self._block_pos = 0
                self._load_next_block()
                self._block_pos = offset - loc.offset
                return
        raise HdfsError(f"offset {offset} beyond end of {self._path}")

    def position(self) -> int:
        """Current byte offset into the file."""
        if self._block_index == 0 and not self._block_data:
            return 0
        if self._block_index > len(self._locations):
            raise HdfsError("reader position corrupted")
        if self._block_index == 0:
            return self._block_pos
        consumed_blocks = self._block_index - 1 if self._block_data else self._block_index
        base = sum(loc.length for loc in self._locations[:consumed_blocks])
        return base + (self._block_pos if self._block_data else 0)

    def close(self) -> None:
        self._closed = True
        self._block_data = b""

    def __enter__(self) -> "DfsReader":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def _load_next_block(self) -> bool:
        if self._block_index >= len(self._locations):
            return False
        loc = self._locations[self._block_index]
        host = self._pick_replica(loc)
        self._block_data = self._fs.datanodes[host].read_block(loc.block_id)
        self._block_pos = 0
        self._block_index += 1
        if host != self._client_ip:
            self._fs.ledger.add("dfs.read.remote_net", len(self._block_data))
        return True

    def _pick_replica(self, loc: BlockLocation) -> str:
        if self._client_ip in loc.hosts:
            return self._client_ip
        return loc.hosts[0]


class DistributedFileSystem:
    """The façade every other subsystem talks to.

    One DataNode is created per cluster worker node; the NameNode lives on
    the head.  All traffic is recorded in the cluster's ledger.
    """

    def __init__(
        self,
        cluster: Cluster,
        block_size: int = DEFAULT_BLOCK_SIZE,
        replication: int = DEFAULT_REPLICATION,
    ):
        self.cluster = cluster
        self.block_size = block_size
        self.replication = replication
        self.ledger = cluster.ledger
        worker_ips = [n.ip for n in cluster.workers]
        self.namenode = NameNode(worker_ips)
        self.datanodes: dict[str, DataNode] = {
            n.ip: DataNode(n, self.ledger) for n in cluster.workers
        }

    # ------------------------------------------------------------------ I/O

    def create(self, path: str, client_ip: str | None = None) -> DfsWriter:
        """Open a new file for writing."""
        return DfsWriter(self, path, client_ip)

    def open(self, path: str, client_ip: str | None = None) -> DfsReader:
        """Open a completed file for reading."""
        return DfsReader(self, path, client_ip)

    def write_bytes(self, path: str, data: bytes, client_ip: str | None = None) -> None:
        """Write a whole file in one call."""
        with self.create(path, client_ip) as writer:
            writer.write(data)

    def read_bytes(self, path: str, client_ip: str | None = None) -> bytes:
        """Read a whole file in one call."""
        with self.open(path, client_ip) as reader:
            return reader.read()

    def write_text(self, path: str, text: str, client_ip: str | None = None) -> None:
        """Write a whole text file (UTF-8)."""
        self.write_bytes(path, text.encode("utf-8"), client_ip)

    def read_text(self, path: str, client_ip: str | None = None) -> str:
        """Read a whole text file (UTF-8)."""
        return self.read_bytes(path, client_ip).decode("utf-8")

    # ------------------------------------------------------------ namespace

    def exists(self, path: str) -> bool:
        """True for a file or directory."""
        return self.namenode.exists(path)

    def is_dir(self, path: str) -> bool:
        """True for a directory."""
        return self.namenode.is_dir(path)

    def mkdirs(self, path: str) -> None:
        """Create a directory and missing parents."""
        self.namenode.mkdirs(path)

    def listdir(self, path: str) -> list[str]:
        """Immediate children of a directory (full paths, sorted)."""
        return self.namenode.listdir(path)

    def list_files(self, path: str) -> list[str]:
        """All files under ``path`` — itself if a file, else recursive."""
        path = _normalize(path)
        if self.namenode.is_dir(path):
            files: list[str] = []
            for child in self.listdir(path):
                files.extend(self.list_files(child))
            return files
        if self.exists(path):
            return [path]
        raise FileNotFoundInDfs(path)

    def delete(self, path: str, recursive: bool = False) -> None:
        """Remove a file or directory tree, reclaiming block replicas."""
        for block_id in self.namenode.delete(path, recursive):
            for datanode in self.datanodes.values():
                datanode.delete_block(block_id)

    def rename(self, src: str, dst: str, overwrite: bool = False) -> None:
        """Rename a completed file; ``overwrite`` atomically replaces an
        existing destination file (write-then-rename commit)."""
        for block_id in self.namenode.rename(src, dst, overwrite=overwrite):
            for datanode in self.datanodes.values():
                datanode.delete_block(block_id)

    def status(self, path: str) -> FileStatus:
        """Metadata of a completed file."""
        meta = self.namenode.get_file(path)
        return FileStatus(
            path=meta.path,
            length=meta.length,
            block_size=meta.block_size,
            replication=meta.replication,
            num_blocks=len(meta.blocks),
        )

    def block_locations(self, path: str) -> list[BlockLocation]:
        """Per-block replica locations of a file."""
        return self.namenode.block_locations(path)

    def total_size(self, path: str) -> int:
        """Sum of file lengths under ``path`` (logical, not replicated)."""
        return sum(self.status(f).length for f in self.list_files(path))
