"""Client-facing DFS API: writers, readers, namespace operations."""

import zlib
from dataclasses import dataclass

from repro.cluster.cluster import Cluster
from repro.common.errors import (
    BlockCorruptError,
    BlockError,
    DataNodeDownError,
    FileNotFoundInDfs,
    HdfsError,
    StorageFullError,
)
from repro.hdfs.block import BlockLocation
from repro.hdfs.datanode import DataNode
from repro.hdfs.namenode import NameNode, _normalize
from repro.hdfs.scanner import FsckReport, ScanReport, StorageScanner

DEFAULT_BLOCK_SIZE = 8 * 1024 * 1024  # small blocks keep scaled runs splittable
DEFAULT_REPLICATION = 3


@dataclass(frozen=True)
class FileStatus:
    """Client view of one file's metadata."""

    path: str
    length: int
    block_size: int
    replication: int
    num_blocks: int


class DfsWriter:
    """Streaming writer that chunks data into replicated blocks.

    Accounting: each replica write lands on a DataNode (``dfs.write.local``);
    replicas stored away from the client's node additionally cost
    ``dfs.write.replica_net`` network bytes, mimicking the HDFS replication
    pipeline over the wire.

    Fault behavior: a replica target that refuses the write
    (:class:`StorageFullError` — real capacity or an injected ENOSPC
    window — or :class:`DataNodeDownError`) is *redirected*: the NameNode
    picks a replacement live host and the pipeline records where replicas
    actually landed.  Only when no live DataNode can take the block does
    the typed error escalate to the caller.  A write abandoned mid-stream
    (exception inside the ``with`` block, or explicit :meth:`abort`)
    deletes the partial file and every replica it placed — no leaked
    namespace entries, no orphaned replica bytes.
    """

    def __init__(self, fs: "DistributedFileSystem", path: str, client_ip: str | None):
        self._fs = fs
        self._path = path
        self._client_ip = client_ip
        self._buffer = bytearray()
        self._closed = False
        self._aborted = False
        fs.namenode.create_file(path, fs.replication, fs.block_size)

    def write(self, data: bytes | str) -> int:
        """Append bytes (str is UTF-8 encoded); returns bytes written."""
        if self._closed:
            raise HdfsError(f"writer for {self._path} is closed")
        if isinstance(data, str):
            data = data.encode("utf-8")
        self._buffer.extend(data)
        while len(self._buffer) >= self._fs.block_size:
            chunk = bytes(self._buffer[: self._fs.block_size])
            del self._buffer[: self._fs.block_size]
            self._flush_block(chunk)
        return len(data)

    def close(self) -> None:
        """Flush the tail block and seal the file."""
        if self._closed:
            if self._aborted:
                raise HdfsError(f"writer for {self._path} was aborted")
            return
        if self._buffer:
            # A tail flush that escalates (e.g. every live node full) must
            # not leave a half-created namespace entry behind: abort first,
            # then let the typed error reach the caller.
            try:
                self._flush_block(bytes(self._buffer))
            except Exception:
                self.abort()
                raise
            self._buffer.clear()
        self._fs.namenode.complete_file(self._path)
        self._closed = True

    def abort(self) -> None:
        """Abandon the write: delete the partial file and every replica
        already placed.  Idempotent; aborting after :meth:`close` is a
        no-op (the file is already committed)."""
        if self._closed:
            return
        self._closed = True
        self._aborted = True
        self._buffer.clear()
        try:
            block_ids = self._fs.namenode.delete(self._path)
        except FileNotFoundInDfs:
            return
        for block_id in block_ids:
            for datanode in self._fs.datanodes.values():
                datanode.delete_block(block_id)

    def __enter__(self) -> "DfsWriter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is not None:
            self.abort()
        else:
            self.close()

    def _flush_block(self, chunk: bytes) -> None:
        fs = self._fs
        block, hosts = fs.namenode.allocate_block(
            self._path, len(chunk), self._client_ip
        )
        placed: list[str] = []
        tried: set[str] = set()
        pending = list(hosts)
        last_error: Exception | None = None
        while pending:
            host = pending.pop(0)
            tried.add(host)
            try:
                if fs.injector is not None:
                    fs.injector.check_dfs_enospc(
                        f"dfswrite/{self._path}/{block.block_id}/{host}"
                    )
                fs.datanodes[host].write_block(block.block_id, chunk)
            except (StorageFullError, DataNodeDownError) as exc:
                last_error = exc
                if isinstance(exc, DataNodeDownError):
                    fs.namenode.report_dead_datanode(host)
                fs.ledger.add("dfs.write.redirect", 1)
                replacement = fs.namenode.replacement_host(
                    block.block_id, tried.union(pending)
                )
                if replacement is not None:
                    pending.append(replacement)
                continue
            placed.append(host)
            if host != self._client_ip:
                fs.ledger.add("dfs.write.replica_net", len(chunk))
        if not placed:
            # Nothing could take the replica: escalate typed.  The caller's
            # ladder decides (spill buffers fall back to memory, checkpoint
            # commits prune and retry); the partial file is reclaimed by
            # abort() when the writer's context unwinds.
            fs.namenode.set_replicas(block.block_id, ())
            raise last_error  # StorageFullError or DataNodeDownError
        if tuple(placed) != hosts:
            fs.namenode.set_replicas(block.block_id, tuple(placed))


class DfsReader:
    """Sequential reader across a file's blocks, preferring local replicas.

    Remote reads rotate deterministically across the block's replicas
    (seeded by client, path, and block id) instead of hammering the first
    recorded host.  A replica that fails — checksum mismatch
    (:class:`BlockCorruptError`), dead node (:class:`DataNodeDownError`),
    or an injected transient read error — triggers *failover*: the reader
    reports the bad replica / dead node to the NameNode (so the repair
    scanner can act) and tries the next candidate, consulting the NameNode
    for freshly repaired replicas as a last resort.  Only when every
    replica fails does the read escalate as a :class:`BlockError`.
    """

    def __init__(self, fs: "DistributedFileSystem", path: str, client_ip: str | None):
        self._fs = fs
        self._path = path
        self._client_ip = client_ip
        self._locations = fs.namenode.block_locations(path)
        self._block_index = 0
        self._block_data = b""
        self._block_pos = 0
        self._closed = False

    def read(self, size: int = -1) -> bytes:
        """Read up to ``size`` bytes (-1 = to end of file)."""
        if self._closed:
            raise HdfsError(f"reader for {self._path} is closed")
        chunks: list[bytes] = []
        remaining = size if size >= 0 else float("inf")
        while remaining > 0:
            if self._block_pos >= len(self._block_data):
                if not self._load_next_block():
                    break
            take = len(self._block_data) - self._block_pos
            if take > remaining:
                take = int(remaining)
            chunks.append(self._block_data[self._block_pos : self._block_pos + take])
            self._block_pos += take
            remaining -= take
        return b"".join(chunks)

    def seek(self, offset: int) -> None:
        """Position the reader at exactly ``offset`` bytes into the file.

        Loads the containing block; used by InputFormat record readers that
        process one byte-range split at a time.  Seeking to the end of the
        file is allowed (subsequent reads return empty).
        """
        total = sum(loc.length for loc in self._locations)
        if offset == total:
            self._block_index = len(self._locations)
            self._block_data = b""
            self._block_pos = 0
            return
        for i, loc in enumerate(self._locations):
            if loc.offset <= offset < loc.offset + loc.length:
                self._block_index = i
                self._block_data = b""
                self._block_pos = 0
                self._load_next_block()
                self._block_pos = offset - loc.offset
                return
        raise HdfsError(f"offset {offset} beyond end of {self._path}")

    def position(self) -> int:
        """Current byte offset into the file."""
        if self._block_index == 0 and not self._block_data:
            return 0
        if self._block_index > len(self._locations):
            raise HdfsError("reader position corrupted")
        if self._block_index == 0:
            return self._block_pos
        consumed_blocks = self._block_index - 1 if self._block_data else self._block_index
        base = sum(loc.length for loc in self._locations[:consumed_blocks])
        return base + (self._block_pos if self._block_data else 0)

    def close(self) -> None:
        self._closed = True
        self._block_data = b""

    def __enter__(self) -> "DfsReader":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def _load_next_block(self) -> bool:
        if self._block_index >= len(self._locations):
            return False
        loc = self._locations[self._block_index]
        self._block_data = self._fetch_block(loc)
        self._block_pos = 0
        self._block_index += 1
        return True

    def _fetch_block(self, loc: BlockLocation) -> bytes:
        """Read one block with replica failover (see the class docstring)."""
        fs = self._fs
        queue = self._replica_order(loc)
        tried: set[str] = set()
        refreshed = False
        last_error: Exception | None = None
        while queue:
            host = queue.pop(0)
            if host in tried:
                continue
            tried.add(host)
            datanode = fs.datanodes.get(host)
            try:
                if datanode is None:
                    raise BlockError(f"no datanode registered at {host}")
                if fs.injector is not None:
                    fs.injector.check_dfs_read(
                        f"dfsread/{self._path}/{loc.block_id}/{host}/{self._client_ip}"
                    )
                data = datanode.read_block(loc.block_id)
            except BlockCorruptError as exc:
                last_error = exc
                fs.namenode.report_bad_replica(loc.block_id, host)
                fs.ledger.add("dfs.read.failover", 1)
            except DataNodeDownError as exc:
                last_error = exc
                fs.namenode.report_dead_datanode(host)
                fs.ledger.add("dfs.read.failover", 1)
            except BlockError as exc:
                # Injected transient read error, or a recorded replica the
                # node does not actually hold (stale map — report it so the
                # scanner restores the factor).
                last_error = exc
                fs.ledger.add("dfs.read.failover", 1)
                if (
                    datanode is not None
                    and datanode.alive
                    and not datanode.has_block(loc.block_id)
                ):
                    fs.namenode.report_bad_replica(loc.block_id, host)
            else:
                if host != self._client_ip:
                    fs.ledger.add("dfs.read.remote_net", len(data))
                return data
            if not queue and not refreshed:
                # Last resort: the NameNode may know of replicas repaired
                # after this reader cached its block locations.
                refreshed = True
                queue.extend(
                    h
                    for h in fs.namenode.block_replicas(loc.block_id)
                    if h not in tried
                )
        raise BlockError(
            f"block {loc.block_id} of {self._path} unreadable: "
            f"all {len(tried)} replicas failed"
        ) from last_error

    def _replica_order(self, loc: BlockLocation) -> list[str]:
        """Candidate replicas in preference order: the client's local copy
        first, the rest rotated deterministically (seeded by client, path,
        and block id) so concurrent remote readers spread across replicas
        instead of all hammering ``hosts[0]``."""
        hosts = list(loc.hosts)
        local = [h for h in hosts if h == self._client_ip]
        remote = [h for h in hosts if h != self._client_ip]
        if len(remote) > 1:
            key = (
                f"{self._fs.read_rotation_seed}/{self._client_ip}"
                f"/{self._path}/{loc.block_id}"
            )
            offset = zlib.crc32(key.encode("utf-8")) % len(remote)
            remote = remote[offset:] + remote[:offset]
        return local + remote


class DistributedFileSystem:
    """The façade every other subsystem talks to.

    One DataNode is created per cluster worker node; the NameNode lives on
    the head.  All traffic is recorded in the cluster's ledger.

    Self-healing knobs (all off by default — the fault-free byte ledgers
    stay bit-identical to the seed):

    * ``capacity_bytes`` — per-DataNode disk capacity; writes past it raise
      :class:`StorageFullError` (redirected by the write pipeline first);
    * ``fault_injector`` — arms the ``dfs.replica_corrupt`` /
      ``dfs.read_error`` / ``dfs.datanode_down`` / ``dfs.enospc`` sites;
    * ``clock`` — time source for heartbeats and the scanner loop
      (:data:`~repro.sim.clock.WALL` when None);
    * the :class:`~repro.hdfs.scanner.StorageScanner` is always constructed
      but never runs unless :meth:`start_scanner` / :meth:`run_repair_cycle`
      is called (``make_deployment(dfs_scanner=True)`` starts it).
    """

    def __init__(
        self,
        cluster: Cluster,
        block_size: int = DEFAULT_BLOCK_SIZE,
        replication: int = DEFAULT_REPLICATION,
        fault_injector=None,  # FaultInjector | None — storage fault sites
        clock=None,  # repro.sim.clock.Clock | None — heartbeats + scanner
        capacity_bytes: int | None = None,  # per-DataNode disk capacity
        seed: int = 7,  # placement + read-rotation seed
        heartbeat_ttl_s: float = 10.0,
        scanner_interval_s: float = 1.0,
    ):
        from repro.sim.clock import WALL

        self.cluster = cluster
        self.block_size = block_size
        self.replication = replication
        self.ledger = cluster.ledger
        self.injector = fault_injector
        self.clock = clock or WALL
        self.read_rotation_seed = seed
        worker_ips = [n.ip for n in cluster.workers]
        self.namenode = NameNode(worker_ips, seed=seed, heartbeat_ttl_s=heartbeat_ttl_s)
        self.datanodes: dict[str, DataNode] = {
            n.ip: DataNode(
                n,
                self.ledger,
                capacity_bytes=capacity_bytes,
                injector=fault_injector,
                dn_index=i,
            )
            for i, n in enumerate(cluster.workers)
        }
        self.scanner = StorageScanner(
            self, clock=self.clock, interval_s=scanner_interval_s
        )

    # ------------------------------------------------------------------ I/O

    def create(self, path: str, client_ip: str | None = None) -> DfsWriter:
        """Open a new file for writing."""
        return DfsWriter(self, path, client_ip)

    def open(self, path: str, client_ip: str | None = None) -> DfsReader:
        """Open a completed file for reading."""
        return DfsReader(self, path, client_ip)

    def write_bytes(self, path: str, data: bytes, client_ip: str | None = None) -> None:
        """Write a whole file in one call."""
        with self.create(path, client_ip) as writer:
            writer.write(data)

    def read_bytes(self, path: str, client_ip: str | None = None) -> bytes:
        """Read a whole file in one call."""
        with self.open(path, client_ip) as reader:
            return reader.read()

    def write_text(self, path: str, text: str, client_ip: str | None = None) -> None:
        """Write a whole text file (UTF-8)."""
        self.write_bytes(path, text.encode("utf-8"), client_ip)

    def read_text(self, path: str, client_ip: str | None = None) -> str:
        """Read a whole text file (UTF-8)."""
        return self.read_bytes(path, client_ip).decode("utf-8")

    # --------------------------------------------------------- self-healing

    def run_repair_cycle(self) -> ScanReport:
        """One synchronous scrub + re-replication pass (heartbeats pumped).

        The way virtual-time runs drive the scanner: call it at quiescence
        instead of :meth:`start_scanner` (a free-running loop would spin
        virtual time once the workload finishes)."""
        return self.scanner.run_cycle()

    def repair_until_stable(self, max_cycles: int = 4) -> ScanReport:
        """Repair cycles until a pass finds nothing to fix."""
        return self.scanner.repair_until_stable(max_cycles)

    def fsck(self) -> FsckReport:
        """Checksum-verified health report over every completed file."""
        return self.scanner.fsck()

    def start_scanner(self) -> None:
        """Start the periodic background scanner (wall-clock deployments)."""
        self.scanner.start()

    def stop_scanner(self) -> None:
        """Stop the background scanner, joining its thread."""
        self.scanner.stop()

    def decommission(self, ip: str) -> None:
        """Drain a DataNode: no new placements; the scanner re-replicates
        everything it holds onto the remaining live nodes."""
        self.namenode.decommission(ip)

    def recommission(self, ip: str) -> None:
        """Readmit a decommissioned DataNode to placement."""
        self.namenode.recommission(ip)

    # ------------------------------------------------------------ namespace

    def exists(self, path: str) -> bool:
        """True for a file or directory."""
        return self.namenode.exists(path)

    def is_dir(self, path: str) -> bool:
        """True for a directory."""
        return self.namenode.is_dir(path)

    def mkdirs(self, path: str) -> None:
        """Create a directory and missing parents."""
        self.namenode.mkdirs(path)

    def listdir(self, path: str) -> list[str]:
        """Immediate children of a directory (full paths, sorted)."""
        return self.namenode.listdir(path)

    def list_files(self, path: str) -> list[str]:
        """All files under ``path`` — itself if a file, else recursive."""
        path = _normalize(path)
        if self.namenode.is_dir(path):
            files: list[str] = []
            for child in self.listdir(path):
                files.extend(self.list_files(child))
            return files
        if self.exists(path):
            return [path]
        raise FileNotFoundInDfs(path)

    def delete(self, path: str, recursive: bool = False) -> None:
        """Remove a file or directory tree, reclaiming block replicas."""
        for block_id in self.namenode.delete(path, recursive):
            for datanode in self.datanodes.values():
                datanode.delete_block(block_id)

    def rename(self, src: str, dst: str, overwrite: bool = False) -> None:
        """Rename a completed file; ``overwrite`` atomically replaces an
        existing destination file (write-then-rename commit)."""
        for block_id in self.namenode.rename(src, dst, overwrite=overwrite):
            for datanode in self.datanodes.values():
                datanode.delete_block(block_id)

    def status(self, path: str) -> FileStatus:
        """Metadata of a completed file."""
        meta = self.namenode.get_file(path)
        return FileStatus(
            path=meta.path,
            length=meta.length,
            block_size=meta.block_size,
            replication=meta.replication,
            num_blocks=len(meta.blocks),
        )

    def block_locations(self, path: str) -> list[BlockLocation]:
        """Per-block replica locations of a file."""
        return self.namenode.block_locations(path)

    def total_size(self, path: str) -> int:
        """Sum of file lengths under ``path`` (logical, not replicated)."""
        return sum(self.status(f).length for f in self.list_files(path))
