"""Simulated distributed file system (the paper's HDFS substrate).

A :class:`~repro.hdfs.filesystem.DistributedFileSystem` is the shared medium
of the *naive* integration approach (SQL writes its result here, Jaql
transforms it here, the ML system ingests it from here) and the storage layer
for external SQL tables, caches, and spill files.

The implementation follows the HDFS architecture in miniature:

* a :class:`~repro.hdfs.namenode.NameNode` owns the namespace and block map,
* one :class:`~repro.hdfs.datanode.DataNode` per worker node stores block
  replicas,
* writes go through a replication pipeline (default factor 3, first replica
  local to the client when possible),
* reads prefer a local replica, and every byte moved is recorded in the
  cluster's :class:`~repro.cluster.cost.CostLedger`.

The storage plane is *self-healing* (DESIGN §14): every replica carries a
CRC32 checksum verified on read, readers fail over across replicas and
report rot / dead nodes to the NameNode, and a
:class:`~repro.hdfs.scanner.StorageScanner` scrubs replicas, sweeps
heartbeats, and re-replicates under-replicated blocks back to factor.
All of it is off by default — fault-free byte ledgers stay bit-identical
to the seed.
"""

from repro.hdfs.block import Block, BlockLocation
from repro.hdfs.datanode import DataNode, block_crc
from repro.hdfs.filesystem import DfsReader, DfsWriter, DistributedFileSystem, FileStatus
from repro.hdfs.namenode import NameNode
from repro.hdfs.scanner import FsckReport, ScanReport, StorageScanner

__all__ = [
    "Block",
    "BlockLocation",
    "DataNode",
    "DfsReader",
    "DfsWriter",
    "DistributedFileSystem",
    "FileStatus",
    "FsckReport",
    "NameNode",
    "ScanReport",
    "StorageScanner",
    "block_crc",
]
