"""Simulated distributed file system (the paper's HDFS substrate).

A :class:`~repro.hdfs.filesystem.DistributedFileSystem` is the shared medium
of the *naive* integration approach (SQL writes its result here, Jaql
transforms it here, the ML system ingests it from here) and the storage layer
for external SQL tables, caches, and spill files.

The implementation follows the HDFS architecture in miniature:

* a :class:`~repro.hdfs.namenode.NameNode` owns the namespace and block map,
* one :class:`~repro.hdfs.datanode.DataNode` per worker node stores block
  replicas,
* writes go through a replication pipeline (default factor 3, first replica
  local to the client when possible),
* reads prefer a local replica, and every byte moved is recorded in the
  cluster's :class:`~repro.cluster.cost.CostLedger`.
"""

from repro.hdfs.block import Block, BlockLocation
from repro.hdfs.datanode import DataNode
from repro.hdfs.filesystem import DistributedFileSystem, FileStatus
from repro.hdfs.namenode import NameNode

__all__ = [
    "Block",
    "BlockLocation",
    "DataNode",
    "DistributedFileSystem",
    "FileStatus",
    "NameNode",
]
