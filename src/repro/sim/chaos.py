"""Chaos exploration over virtual time: schedule search, replay, shrinking.

The §6 fault machinery answers "does the stack survive fault X at point Y?"
one hand-written test at a time.  This module turns that into a *search*:

* a :class:`FaultSchedule` is a small, JSON-serializable list of
  :class:`FaultAction` items — deterministic kills, lease expiries,
  handshake drops, seeded drop/stall rates — that compiles down to one
  :class:`~repro.faults.injector.FaultConfig`;
* :class:`ChaosExplorer` runs a fixed serving scenario (an HA deployment
  driven by concurrent loadgen clients) under a
  :class:`~repro.sim.clock.VirtualClock`, so a schedule full of 30-second
  stalls and retry backoffs costs milliseconds of wall time and the run is
  a pure function of ``(scenario, schedule)``;
* after each run it checks the serving plane's standing **invariants** —
  no wedged threads, only typed outcomes, ledger conservation, and
  bit-identical weights for completed sessions versus solo re-runs;
* a failing schedule is **shrunk** by ddmin to a minimal action list that
  still violates an invariant, and persists as replayable JSON
  (:meth:`FaultSchedule.to_json` / :meth:`ChaosExplorer.replay`).

Wall time appears in exactly two places, both harness-side: the per-run
watchdog that declares a wedge when client threads fail to join, and the
exploration wall budget.  Everything inside the system under test is
virtual.
"""

import hashlib
import json
import time
from dataclasses import asdict, dataclass, field

from repro.common.rng import derive_seed_stable, make_rng
from repro.faults.injector import FaultConfig, FaultInjector
from repro.sim.clock import VirtualClock

#: Coordinator failover points a schedule may target (see
#: :class:`~repro.faults.injector.FaultConfig`).
FAILOVER_POINTS = (
    "create_session",
    "pre_registration",
    "split_plan",
    "post_split_plan",
    "matchmaking",
    "mid_stream",
    "result",
)

#: Action kinds understood by :meth:`FaultSchedule.to_config`.
ACTION_KINDS = (
    "kill_sql",  # site=worker id, at=rows streamed
    "kill_ml",  # site=reader index, at=rows read
    "kill_train",  # at=iteration boundary
    "kill_coordinator",  # site=failover point, at=skip count
    "lease_expire",  # site=failover point, at=skip count
    "handshake_drop",  # site=failover point
    "send_drop",  # rate (per-site seeded stream)
    "send_stall",  # rate + seconds (virtual)
    "dfs_corrupt",  # rate — replica bit rot at write time (read-detectable)
    "dfs_read_error",  # rate — transient replica read failures
    "dfs_kill_datanode",  # site=datanode index, at=block ops before death
    "dfs_enospc",  # rate — full-disk windows at replica/spill write sites
)


class InvariantViolation(AssertionError):
    """A chaos run broke a serving-plane invariant (see the run's list)."""


@dataclass(frozen=True)
class FaultAction:
    """One fault in a schedule.  Field meaning depends on ``kind``:

    ========= =============================== ======================
    kind      site                            at / rate / seconds
    ========= =============================== ======================
    kill_sql  SQL worker id (as str)          at = rows streamed
    kill_ml   ML reader index (as str)        at = rows read
    kill_train —                              at = iteration
    kill_coordinator / lease_expire /
    handshake_drop
              failover point name             at = skip count
    send_drop —                               rate
    send_stall —                              rate, seconds
    ========= =============================== ======================

    Rate-driven actions carry **no global event budget**: a shared budget
    counter is consumed in thread-arrival order, which would make the
    injected-event set depend on interleaving.  Per-site seeded RNG streams
    plus finite per-site traffic keep unbudgeted rates both terminating and
    replay-deterministic.
    """

    kind: str
    site: str = ""
    at: int = 0
    rate: float = 0.0
    seconds: float = 0.0

    def __post_init__(self):
        if self.kind not in ACTION_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}")

    def describe(self) -> str:
        if self.kind in ("kill_sql", "kill_ml"):
            return f"{self.kind}[{self.site}]@{self.at}rows"
        if self.kind == "kill_train":
            return f"kill_train@iter{self.at}"
        if self.kind in ("kill_coordinator", "lease_expire", "handshake_drop"):
            return f"{self.kind}@{self.site}+{self.at}"
        if self.kind == "send_stall":
            return f"send_stall(p={self.rate:g},{self.seconds:g}s)"
        if self.kind == "dfs_kill_datanode":
            return f"dfs_kill_datanode[{self.site}]@{self.at}ops"
        return f"{self.kind}(p={self.rate:g})"


@dataclass(frozen=True)
class FaultSchedule:
    """A seeded, ordered set of fault actions; compiles to one FaultConfig.

    ``seed`` drives every probabilistic site (per-site RNG streams), so a
    schedule replays identically run after run.  Deterministic actions
    (kills at logical points) are interleaving-independent by construction.
    """

    seed: int = 0
    actions: tuple = ()

    def subset(self, actions) -> "FaultSchedule":
        return FaultSchedule(seed=self.seed, actions=tuple(actions))

    def to_config(self) -> FaultConfig:
        kill_at: dict[int, int] = {}
        kill_ml_at: dict[int, int] = {}
        fields: dict = {}
        for a in self.actions:
            if a.kind == "kill_sql":
                kill_at.setdefault(int(a.site), a.at)
            elif a.kind == "kill_ml":
                kill_ml_at.setdefault(int(a.site), a.at)
            elif a.kind == "kill_train":
                fields.setdefault("kill_train_at", max(1, a.at))
            elif a.kind == "kill_coordinator":
                fields.setdefault("kill_coordinator_at", a.site)
                fields.setdefault("coordinator_kill_skip", a.at)
            elif a.kind == "lease_expire":
                fields.setdefault("lease_expire_at", a.site)
                fields.setdefault("lease_expire_skip", a.at)
            elif a.kind == "handshake_drop":
                fields.setdefault("handshake_drop_at", a.site)
            elif a.kind == "send_drop":
                fields["send_drop_rate"] = max(fields.get("send_drop_rate", 0.0), a.rate)
            elif a.kind == "send_stall":
                fields["send_stall_rate"] = max(
                    fields.get("send_stall_rate", 0.0), a.rate
                )
                fields["stall_seconds"] = max(fields.get("stall_seconds", 0.0), a.seconds)
            elif a.kind == "dfs_corrupt":
                fields["dfs_replica_corrupt_rate"] = max(
                    fields.get("dfs_replica_corrupt_rate", 0.0), a.rate
                )
            elif a.kind == "dfs_read_error":
                fields["dfs_read_error_rate"] = max(
                    fields.get("dfs_read_error_rate", 0.0), a.rate
                )
            elif a.kind == "dfs_kill_datanode":
                fields.setdefault("dfs_kill_datanode", int(a.site))
                fields.setdefault("dfs_kill_datanode_after", a.at)
            elif a.kind == "dfs_enospc":
                fields["dfs_enospc_rate"] = max(
                    fields.get("dfs_enospc_rate", 0.0), a.rate
                )
        return FaultConfig(
            seed=self.seed,
            kill_at=kill_at,
            kill_ml_at=kill_ml_at,
            # Per-session one-shot kills: under concurrent sessions the
            # default global one-shot hands the kill to whichever session
            # crosses the threshold first, which is a thread race.
            scoped_kills=True,
            **fields,
        )

    # ------------------------------------------------------------- (de)serde

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(
            {"seed": self.seed, "actions": [asdict(a) for a in self.actions]},
            indent=indent,
            sort_keys=True,
        )

    @classmethod
    def from_json(cls, text: str) -> "FaultSchedule":
        doc = json.loads(text)
        return cls(
            seed=int(doc.get("seed", 0)),
            actions=tuple(FaultAction(**a) for a in doc.get("actions", ())),
        )

    def describe(self) -> str:
        if not self.actions:
            return f"seed={self.seed} (fault-free)"
        return f"seed={self.seed} " + " + ".join(a.describe() for a in self.actions)


@dataclass(frozen=True)
class ChaosScenario:
    """The fixed system under test: an HA serving deployment plus its load.

    Small by design — each exploration round builds a fresh deployment, so
    the scenario must stay in the tens-of-milliseconds range per run.
    """

    num_sessions: int = 3
    num_workers: int = 2
    workers_per_node: int = 2
    ha_standbys: int = 1
    max_concurrent_sessions: int = 4
    deadline_s: float | None = 120.0  # virtual seconds, generous
    iterations: int = 3
    base_seed: int = 1000  # session i trains with seed base_seed + i
    #: Storage-chaos mode: the training table lives on the DFS as external
    #: CSV part files (so ``dfs_*`` faults actually bite the workload), the
    #: sampler draws storage actions too, and the harness runs quiescence
    #: repair + fsck with their standing invariants after every run.
    dfs_table: bool = False
    block_size: int = 4 * 1024 * 1024
    replication: int = 3
    dfs_capacity_bytes: int | None = None

    def session_ids(self) -> list[str]:
        return [f"chaos_{i}" for i in range(self.num_sessions)]

    def build(self, injector, clock):
        from repro import make_deployment

        return make_deployment(
            num_workers=self.num_workers,
            workers_per_node=self.workers_per_node,
            ha_standbys=self.ha_standbys,
            max_concurrent_sessions=self.max_concurrent_sessions,
            fault_injector=injector,
            clock=clock,
            block_size=self.block_size,
            replication=self.replication,
            dfs_capacity_bytes=self.dfs_capacity_bytes,
        )

    def make_table(self, deployment) -> None:
        """Create the shared ``points`` table this scenario trains on."""
        from repro.workloads.loadgen import make_points_table, make_points_table_dfs

        if self.dfs_table:
            make_points_table_dfs(deployment.engine, deployment.dfs)
        else:
            make_points_table(deployment.engine)


#: Contention telemetry excluded from fingerprints and the fault-free
#: ledger-identity invariant: these counters record how often some thread
#: happened to block — a function of OS scheduling (core count, machine
#: load), not of ``(scenario, schedule)``.  They stay in ``result.ledger``
#: for observability; they just are not part of the determinism contract,
#: exactly like wall latencies.
CONTENTION_COUNTERS = frozenset(
    {"scheduler.waits", "admission.queued", "governor.throttled"}
)


@dataclass
class ChaosRunResult:
    """One schedule's run: outcomes, ledger, injected events, verdict."""

    schedule: FaultSchedule
    outcomes: list = field(default_factory=list)  # dicts, session_id-sorted
    ledger: dict = field(default_factory=dict)
    events: list = field(default_factory=list)  # sorted [kind, site] pairs
    violations: list = field(default_factory=list)
    wall_seconds: float = 0.0
    virtual_seconds: float = 0.0
    stats: dict = field(default_factory=dict)

    @property
    def failed(self) -> bool:
        return bool(self.violations)

    def fingerprint(self) -> str:
        """Canonical digest of everything a deterministic replay must
        reproduce: outcomes (identity, error type, exact weights), the
        byte ledger, and the injected-fault multiset.  Wall-side noise
        (latencies, wall_seconds, poll counts) and the
        :data:`CONTENTION_COUNTERS` are deliberately excluded."""
        doc = {
            "outcomes": self.outcomes,
            "ledger": {
                k: v for k, v in self.ledger.items() if k not in CONTENTION_COUNTERS
            },
            "events": self.events,
        }
        blob = json.dumps(doc, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(blob.encode()).hexdigest()

    def raise_for_violations(self) -> None:
        if self.violations:
            raise InvariantViolation(
                f"schedule [{self.schedule.describe()}] violated: "
                + "; ".join(self.violations)
            )


@dataclass
class ExploreReport:
    """Outcome of one bounded schedule search."""

    rounds_requested: int
    rounds_run: int = 0
    wall_seconds: float = 0.0
    runs: list = field(default_factory=list)  # ChaosRunResult
    #: (minimized schedule, its run result) per failing sampled schedule
    failures: list = field(default_factory=list)

    def summary(self) -> dict:
        return {
            "rounds_requested": self.rounds_requested,
            "rounds_run": self.rounds_run,
            "wall_seconds": self.wall_seconds,
            "failing_schedules": len(self.failures),
            "total_faults_injected": sum(len(r.events) for r in self.runs),
            "virtual_seconds_total": sum(r.virtual_seconds for r in self.runs),
        }


class ChaosExplorer:
    """Sample → run → check invariants → shrink failures to minimal JSON.

    ``base_seed`` seeds schedule *sampling*; each schedule carries its own
    fault seed so a minimized schedule replays without the explorer.
    """

    def __init__(
        self,
        scenario: ChaosScenario | None = None,
        base_seed: int = 0,
        run_wall_cap_s: float = 120.0,
        max_virtual_s: float = 3600.0,
        require_all_complete: bool = False,
    ):
        self.scenario = scenario or ChaosScenario()
        self.base_seed = base_seed
        self.run_wall_cap_s = run_wall_cap_s
        self.max_virtual_s = max_virtual_s
        #: opt-in strict invariant: *every* session must complete.  The
        #: default invariants accept typed failures (that is what graceful
        #: degradation means); CI's shrinking demo plants schedules against
        #: this stricter bar so a genuine minimal cause pops out.
        self.require_all_complete = require_all_complete
        self._solo: dict[int, tuple] | None = None
        self._solo_ingest: int | None = None
        self._baseline_ledger: dict | None = None

    # ------------------------------------------------------------- sampling

    def sample_schedule(self, index: int) -> FaultSchedule:
        """Deterministic schedule #``index`` of this explorer's stream."""
        rng = make_rng(derive_seed_stable(self.base_seed, f"schedule/{index}"))
        sc = self.scenario

        def draw(low: int, high: int) -> int:
            return int(rng.integers(low, high))

        def pick(options):
            return options[draw(0, len(options))]

        k = sc.num_workers * sc.workers_per_node  # ML reader count bound
        # Storage actions only exist in dfs_table scenarios — appended after
        # the base tuple so existing scenarios keep sampling (and therefore
        # fingerprinting) exactly the schedules they always did.
        storage_generators = (
            lambda: FaultAction("dfs_corrupt", rate=pick((0.05, 0.2))),
            lambda: FaultAction("dfs_read_error", rate=pick((0.05, 0.2))),
            # at=0: dead from its first block op — the only op-count trigger
            # that is interleaving-independent under concurrent sessions.
            lambda: FaultAction(
                "dfs_kill_datanode", site=str(draw(0, sc.num_workers)), at=0
            ),
            lambda: FaultAction("dfs_enospc", rate=pick((0.05, 0.2))),
        )
        generators = (
            lambda: FaultAction(
                "kill_sql", site=str(draw(0, sc.num_workers)), at=pick((1, 20, 60))
            ),
            lambda: FaultAction(
                "kill_ml", site=str(draw(0, k)), at=pick((1, 10, 40))
            ),
            lambda: FaultAction("kill_train", at=draw(1, sc.iterations + 1)),
            lambda: FaultAction(
                "kill_coordinator", site=pick(FAILOVER_POINTS), at=draw(0, 3)
            ),
            lambda: FaultAction(
                "lease_expire", site=pick(FAILOVER_POINTS), at=draw(0, 3)
            ),
            lambda: FaultAction("handshake_drop", site=pick(FAILOVER_POINTS)),
            lambda: FaultAction("send_drop", rate=pick((0.05, 0.2, 0.5))),
            lambda: FaultAction(
                "send_stall",
                rate=pick((0.05, 0.2)),
                seconds=pick((0.5, 2.0, 10.0)),  # the virtual-time axis
            ),
        )
        if sc.dfs_table:
            generators = generators + storage_generators
        actions = tuple(pick(generators)() for _ in range(draw(1, 4)))
        return FaultSchedule(
            seed=derive_seed_stable(self.base_seed, f"faults/{index}"), actions=actions
        )

    # ------------------------------------------------------------ execution

    def run(self, schedule: FaultSchedule, check: bool = True) -> ChaosRunResult:
        """Execute one schedule under a fresh VirtualClock deployment."""
        from repro.bench.overload import wedged_threads
        from repro.workloads.loadgen import run_one_session

        start_wall = time.perf_counter()
        clock = VirtualClock(max_virtual_s=self.max_virtual_s)
        injector = FaultInjector(schedule.to_config(), clock=clock)
        deployment = self.scenario.build(injector, clock)
        self.scenario.make_table(deployment)

        sc = self.scenario
        outcomes: list = [None] * sc.num_sessions
        untyped: list[str] = []

        def client(i: int) -> None:
            sid = f"chaos_{i}"
            try:
                outcomes[i] = run_one_session(
                    deployment,
                    sid,
                    seed=sc.base_seed + i,
                    iterations=sc.iterations,
                    deadline_s=sc.deadline_s,
                )
            except BaseException as exc:  # untyped escape = invariant breach
                untyped.append(f"{sid}: {type(exc).__name__}: {exc}")

        threads = [
            clock.spawn(lambda i=i: client(i), name=f"chaos-client-{i}")
            for i in range(sc.num_sessions)
        ]
        # Wall-time watchdog: the only wall clock in the harness.  A healthy
        # run joins in milliseconds; a wedged one trips the cap and the
        # still-alive (daemon) threads are reported, not waited for.
        join_deadline = start_wall + self.run_wall_cap_s
        wedged = []
        for t in threads:
            t.join(max(0.1, join_deadline - time.perf_counter()))
            if t.is_alive():
                wedged.append(t.name)
        if not wedged:
            # Serving-plane stragglers (ml-job threads finishing their last
            # statements) get a real-time grace to unwind.  Generous on
            # purpose: a cleanly exiting thread is observed the moment it
            # dies, so the grace is only ever fully burned by a genuine
            # wedge — while a short grace misfires on loaded single-core
            # CI boxes where a healthy thread can take seconds to get
            # scheduled for its last few statements.
            wedged = wedged_threads(grace_s=15.0, prefixes=("ml-job-", "chaos-client"))
        clock.stats.wedged = sorted(set(wedged) | set(clock.blocked_outside_clock()))

        # Storage quiescence (dfs_table scenarios): pump heartbeats, scrub
        # checksums, and re-replicate until stable, then fsck the namespace.
        # Runs after the workload so repair traffic is a deterministic pure
        # function of the schedule; skipped when wedged (live client threads
        # would race the scanner and nothing downstream is trustworthy).
        storage: dict | None = None
        if self.scenario.dfs_table and not clock.stats.wedged:
            repair = deployment.dfs.repair_until_stable()
            fsck = deployment.dfs.fsck()
            storage = {
                "blocks_scanned": repair.blocks_scanned,
                "corrupt_replicas": repair.corrupt_replicas,
                "repaired_blocks": repair.repaired_blocks,
                "unrecoverable_blocks": sorted(repair.unrecoverable_blocks),
                "under_replicated_after": repair.under_replicated_after,
                "fsck": fsck.summary(),
                "bad_replica_reports": deployment.dfs.namenode.bad_replica_reports,
                "dead_datanode_reports": deployment.dfs.namenode.dead_datanode_reports,
            }

        result = ChaosRunResult(
            schedule=schedule,
            outcomes=[
                {
                    "session_id": o.session_id,
                    "tenant": o.tenant,
                    "seed": o.seed,
                    "error_type": o.error_type,
                    "weights": list(o.weights),
                    "intercept": o.intercept,
                }
                for o in sorted(
                    (o for o in outcomes if o is not None),
                    key=lambda o: o.session_id,
                )
            ],
            ledger=dict(sorted(deployment.cluster.ledger.snapshot().items())),
            events=sorted([e.kind, e.site] for e in injector.events),
            wall_seconds=time.perf_counter() - start_wall,
            virtual_seconds=clock.now(),
            stats={
                "advances": clock.stats.advances,
                "sleeps": clock.stats.sleeps,
                "max_concurrent_sleepers": clock.stats.max_concurrent_sleepers,
                "wedged": clock.stats.wedged,
                "storage": storage,
            },
        )
        if check:
            result.violations = self._check_invariants(result, untyped)
        return result

    def replay(self, schedule_json: str, check: bool = True) -> ChaosRunResult:
        """Re-run a persisted (minimized) schedule from its JSON form."""
        return self.run(FaultSchedule.from_json(schedule_json), check=check)

    # ------------------------------------------------------------ invariants

    def _check_invariants(self, result: ChaosRunResult, untyped: list[str]) -> list[str]:
        violations: list[str] = []

        # 1. No wedged threads: every client joined, every serving-plane
        #    thread exited, no managed thread left stranded outside a wait.
        if result.stats.get("wedged"):
            violations.append(f"wedged threads: {result.stats['wedged']}")

        # 2. Typed-only outcomes: a fault may fail a session, but only as a
        #    typed serving error recorded by the client — never an untyped
        #    exception escaping the harness (VirtualTimeExhausted lands here
        #    too: a timeout storm is a liveness defect, not an outcome).
        violations.extend(f"untyped outcome: {u}" for u in untyped)
        if len(result.outcomes) + len(untyped) < self.scenario.num_sessions:
            violations.append(
                f"lost sessions: {len(result.outcomes)} outcomes for "
                f"{self.scenario.num_sessions} sessions"
            )

        solo, solo_ingest = self._solo_baseline()

        # 3. Ledger conservation: completed sessions ingested exactly the
        #    solo byte volume each (ml.ingest is only charged for a fully
        #    delivered dataset, so it must be a multiple of the solo cost
        #    covering at least the completed population), retry traffic
        #    appears only under a fault schedule, and a fault-free schedule
        #    reproduces the baseline ledger byte for byte.
        completed = [o for o in result.outcomes if o["error_type"] is None]
        ingest = result.ledger.get("ml.ingest", 0)
        if solo_ingest:
            if ingest < len(completed) * solo_ingest:
                violations.append(
                    f"ledger conservation: ml.ingest={ingest} < "
                    f"{len(completed)} completed x {solo_ingest} solo bytes"
                )
            elif ingest % solo_ingest:
                violations.append(
                    f"ledger conservation: ml.ingest={ingest} is not a "
                    f"multiple of the {solo_ingest}-byte solo ingest"
                )
        if not result.schedule.actions:
            if result.ledger.get("stream.retry", 0):
                violations.append(
                    "fault-free run charged stream.retry="
                    f"{result.ledger['stream.retry']}"
                )
            baseline = self._fault_free_ledger()
            if baseline is not None:
                diff = {
                    key: (baseline.get(key), result.ledger.get(key))
                    for key in set(baseline) | set(result.ledger)
                    if key not in CONTENTION_COUNTERS
                    and baseline.get(key) != result.ledger.get(key)
                }
                if diff:
                    violations.append(
                        f"fault-free ledger diverged from baseline: {diff}"
                    )

        # 4. Completed-session weight identity: interleaving and injected
        #    faults may slow or fail a session, but a session that *completes*
        #    must produce bit-identical weights to its solo fault-free run.
        for o in completed:
            expected = solo.get(o["seed"])
            got = tuple(o["weights"]) + (o["intercept"],)
            if expected is not None and got != expected:
                violations.append(
                    f"weights diverged for {o['session_id']} (seed {o['seed']}): "
                    f"{got} != solo {expected}"
                )

        # 5. Storage health at quiescence (dfs_table scenarios): after the
        #    repair scanner runs until stable, every block with at least one
        #    healthy replica is back at its replication target, and a block
        #    can only be *lost* (no healthy replica anywhere) when storage
        #    faults were actually injected — losing data without a fault is
        #    a repair-pipeline defect, not chaos.
        storage = result.stats.get("storage")
        if storage is not None:
            fsck = storage["fsck"]
            if fsck["under_replicated"]:
                violations.append(
                    "replication not restored at quiescence: "
                    f"{fsck['under_replicated']}"
                )
            storage_events = {
                "replica_corrupt",
                "datanode_down",
                "enospc",
                "dfs_read_error",
            }
            had_storage_faults = any(
                kind in storage_events for kind, _site in result.events
            )
            if fsck["missing_blocks"] and not had_storage_faults:
                violations.append(
                    "blocks lost with no storage fault injected: "
                    f"{fsck['missing_blocks']}"
                )

        # 6. Opt-in strict bar (shrinking demos): every session completes.
        if self.require_all_complete:
            for o in result.outcomes:
                if o["error_type"] is not None:
                    violations.append(
                        f"session {o['session_id']} failed: {o['error_type']}"
                    )
        return violations

    def _solo_baseline(self) -> tuple[dict[int, tuple], int]:
        """Fault-free sequential baseline: per-seed weights + ingest bytes."""
        if self._solo is None:
            from repro.workloads.loadgen import run_one_session

            clock = VirtualClock(max_virtual_s=self.max_virtual_s)
            injector = FaultInjector(FaultConfig(), clock=clock)  # inert
            deployment = self.scenario.build(injector, clock)
            self.scenario.make_table(deployment)
            sc = self.scenario
            solo: dict[int, tuple] = {}

            def runner() -> None:
                for i in range(sc.num_sessions):
                    out = run_one_session(
                        deployment,
                        f"solo_{i}",
                        seed=sc.base_seed + i,
                        iterations=sc.iterations,
                    )
                    if out.error is not None:
                        raise AssertionError(f"solo baseline failed: {out.error}")
                    solo[out.seed] = out.weights + (out.intercept,)

            t = clock.spawn(runner, name="chaos-solo-baseline")
            t.join(self.run_wall_cap_s)
            if t.is_alive() or len(solo) != sc.num_sessions:
                raise AssertionError("solo baseline did not finish (wedged?)")
            ledger = deployment.cluster.ledger
            self._solo = solo
            self._solo_ingest = ledger.get("ml.ingest") // sc.num_sessions
        return self._solo, self._solo_ingest or 0

    def _fault_free_ledger(self) -> dict | None:
        """The concurrent fault-free run's ledger (the empty-schedule bar).

        Returns None while being computed (the baseline run itself checks
        invariants 1-4 but naturally skips the self-comparison)."""
        if self._baseline_ledger is None:
            self._baseline_ledger = {}  # sentinel: computation in progress
            base = self.run(FaultSchedule(seed=self.base_seed), check=True)
            if base.violations:
                self._baseline_ledger = None
                raise AssertionError(
                    "fault-free baseline run violated invariants: "
                    + "; ".join(base.violations)
                )
            self._baseline_ledger = base.ledger
            return None
        if not self._baseline_ledger:
            return None  # re-entrant call from the baseline run itself
        return self._baseline_ledger

    # ----------------------------------------------------------- exploration

    def explore(
        self,
        rounds: int = 16,
        wall_budget_s: float | None = None,
        shrink: bool = True,
    ) -> ExploreReport:
        """Run up to ``rounds`` sampled schedules within the wall budget,
        shrinking every failure to its minimal replayable form."""
        start = time.perf_counter()
        report = ExploreReport(rounds_requested=rounds)
        for index in range(rounds):
            if (
                wall_budget_s is not None
                and time.perf_counter() - start >= wall_budget_s
            ):
                break
            schedule = self.sample_schedule(index)
            result = self.run(schedule)
            report.runs.append(result)
            report.rounds_run += 1
            if result.failed:
                if shrink:
                    minimized, min_result = self.shrink(schedule)
                else:
                    minimized, min_result = schedule, result
                report.failures.append((minimized, min_result))
        report.wall_seconds = time.perf_counter() - start
        return report

    # -------------------------------------------------------------- shrinking

    def shrink(self, schedule: FaultSchedule) -> tuple[FaultSchedule, ChaosRunResult]:
        """ddmin over the action list: the smallest subset (same fault seed)
        that still violates an invariant.  Deterministic replay makes every
        probe trustworthy — a schedule either fails or it does not."""
        result = self.run(schedule)
        if not result.failed:
            return schedule, result
        actions = list(schedule.actions)
        granularity = 2
        while len(actions) >= 2:
            chunk = max(1, len(actions) // granularity)
            chunks = [actions[i : i + chunk] for i in range(0, len(actions), chunk)]
            reduced = False
            # Try each chunk alone, then each complement (classic ddmin).
            candidates = chunks + [
                [a for j, other in enumerate(chunks) for a in other if j != i]
                for i in range(len(chunks))
            ]
            for candidate in candidates:
                if not candidate or len(candidate) >= len(actions):
                    continue
                probe = self.run(schedule.subset(candidate))
                if probe.failed:
                    actions, result = candidate, probe
                    granularity = max(granularity - 1, 2)
                    reduced = True
                    break
            if not reduced:
                if granularity >= len(actions):
                    break
                granularity = min(len(actions), granularity * 2)
        return schedule.subset(actions), result
