"""Deterministic simulation for the serving plane (DESIGN §13).

Two layers:

* :mod:`repro.sim.clock` — the :class:`Clock` abstraction.  Every timing
  site in the serving plane (budget deadlines, retry backoff, injector
  stalls, admission queue waits, socket send/recv timeouts, liveness
  sweeps) takes an injected clock instead of calling :mod:`time` directly.
  :class:`WallClock` (the default) delegates to real time — byte-identical
  behavior to the pre-sim code.  :class:`VirtualClock` advances time only
  at *quiescence* (every registered thread blocked in a clock wait), so a
  multi-second chaos run completes in milliseconds and timer firing order
  is a pure function of the requested deadlines.

* :mod:`repro.sim.chaos` — :class:`ChaosExplorer`: seeded random sampling
  of fault schedules (kill/stall/drop/expire sites x virtual-time stall
  offsets), post-run invariant checking (no wedged threads, typed-only
  outcomes, ledger conservation, completed-session weight identity vs
  solo), and ddmin shrinking of a failing schedule down to a minimal
  reproducing sequence emitted as replayable JSON.
"""

from repro.sim.clock import (
    WALL,
    Clock,
    VirtualClock,
    VirtualTimeExhausted,
    WallClock,
)

#: Chaos-layer names resolved lazily (PEP 562): the clock layer is imported
#: by low-level modules (budget, recovery), and eagerly importing the
#: explorer here — which reaches back into the transfer stack — would cycle.
_CHAOS_NAMES = (
    "ChaosExplorer",
    "ChaosRunResult",
    "ChaosScenario",
    "ExploreReport",
    "FaultAction",
    "FaultSchedule",
    "InvariantViolation",
)


def __getattr__(name):
    if name in _CHAOS_NAMES:
        from repro.sim import chaos

        return getattr(chaos, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "WALL",
    "ChaosExplorer",
    "ChaosRunResult",
    "ChaosScenario",
    "Clock",
    "ExploreReport",
    "FaultAction",
    "FaultSchedule",
    "InvariantViolation",
    "VirtualClock",
    "VirtualTimeExhausted",
    "WallClock",
]
