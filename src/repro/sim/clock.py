"""Injectable clocks: wall time and quiescence-advancing virtual time.

The serving plane never calls :func:`time.monotonic`, :func:`time.time`,
:func:`time.sleep`, ``Condition.wait`` or ``Event.wait`` directly on a
timing-sensitive path; it goes through a :class:`Clock`.  The default
:data:`WALL` clock delegates straight to the real primitives, so a
deployment that never opts in behaves exactly as before.

:class:`VirtualClock` is the deterministic-simulation clock (FoundationDB
style).  Virtual time is a number that only moves at *quiescence*: when
every **registered** (managed) thread is blocked inside a clock-mediated
sleep, the clock jumps straight to the earliest pending deadline and wakes
every sleeper due at it.  A 30-second retry backoff therefore costs
microseconds of real time, and the order in which timers fire is a pure
function of the requested durations — not of machine load.

Blocking primitives reduce to one: :meth:`VirtualClock.sleep`.  Condition
and event waits (:meth:`Clock.wait_on` / :meth:`Clock.wait_until`) are
implemented as sliced virtual polls — release, sleep one resolution tick,
re-check — so arbitrary ``threading`` objects work unchanged and no lock
ordering between the clock and application conditions can deadlock.  The
cost is that a notification is observed at the next tick boundary (default
5 virtual milliseconds), which is far below every timeout in the stack.

Thread-management contract for virtual runs:

* every thread that participates in the simulation registers via
  :meth:`Clock.managed` (or is started with :meth:`Clock.spawn`, which
  also blocks advancement until the child is registered);
* a managed thread about to block on a *non-clock* primitive (joining a
  thread, gathering ``Future`` results) brackets the wait in
  :meth:`Clock.unmanaged` so it does not stall quiescence;
* a managed thread blocked outside the clock without that bracket wedges
  the run in real time — which is exactly the "wedged threads" invariant
  the chaos explorer reports (with the wall-time watchdog as backstop).
"""

import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field

#: Virtual seconds between re-checks of a polled condition/event wait.
DEFAULT_RESOLUTION_S = 0.005
#: Hard ceiling on virtual time: a run that sleeps past this is considered
#: livelocked (a timeout storm), and further sleeps raise
#: :class:`VirtualTimeExhausted` so the run unwinds instead of spinning.
DEFAULT_MAX_VIRTUAL_S = 3600.0


class VirtualTimeExhausted(RuntimeError):
    """Virtual time passed the configured ceiling — the run is livelocked."""


class Clock:
    """Time source + blocking primitives, injectable at every wait site."""

    is_virtual = False

    # ------------------------------------------------------------- time
    def now(self) -> float:
        """Monotonic seconds (deadline arithmetic)."""
        raise NotImplementedError

    def wall(self) -> float:
        """Wall-clock epoch seconds (journal round-trips)."""
        raise NotImplementedError

    def sleep(self, seconds: float) -> None:
        raise NotImplementedError

    # -------------------------------------------------- blocking waits
    def wait_on(self, cond: threading.Condition, timeout: float | None) -> bool:
        """``cond.wait(timeout)`` through the clock.  The caller holds
        ``cond`` (non-reentrantly) and loops on its predicate/deadline —
        a ``True`` return means "re-check", exactly like a real
        condition-variable wakeup (spurious wakeups included)."""
        raise NotImplementedError

    def wait_until(self, event: threading.Event, timeout: float | None) -> bool:
        """``event.wait(timeout)`` through the clock."""
        raise NotImplementedError

    # -------------------------------------- thread management (virtual)
    def register_thread(self, name: str | None = None) -> None:
        """Mark the calling thread as simulation-managed (no-op on wall)."""

    def unregister_thread(self) -> None:
        """Remove the calling thread from the managed set (no-op on wall)."""

    @contextmanager
    def managed(self, name: str | None = None, expected: bool = False):
        """Register the calling thread for the duration of the block."""
        yield

    @contextmanager
    def unmanaged(self):
        """Temporarily leave the managed set (around joins/future waits)."""
        yield

    def expect_threads(self, count: int = 1) -> None:
        """Announce ``count`` imminent :meth:`managed` registrations; the
        virtual clock will not advance until they arrive (no-op on wall)."""

    def spawn(
        self, target, name: str | None = None, daemon: bool = True
    ) -> threading.Thread:
        """Start a thread whose body runs simulation-managed."""
        thread = threading.Thread(target=target, name=name, daemon=daemon)
        thread.start()
        return thread


class WallClock(Clock):
    """The real clock: exactly the primitives the code used before."""

    is_virtual = False

    def now(self) -> float:
        return time.monotonic()

    def wall(self) -> float:
        return time.time()

    def sleep(self, seconds: float) -> None:
        time.sleep(seconds)

    def wait_on(self, cond: threading.Condition, timeout: float | None) -> bool:
        return cond.wait(timeout)

    def wait_until(self, event: threading.Event, timeout: float | None) -> bool:
        return event.wait(timeout)


#: Module-wide default clock: injected everywhere a component does not
#: receive an explicit one, so the no-sim path is byte-identical to seed.
WALL = WallClock()


@dataclass
class _Sleeper:
    """One thread blocked in :meth:`VirtualClock.sleep`."""

    ident: int
    deadline: float
    cond: threading.Condition
    fired: bool = False


@dataclass
class ClockStats:
    """Diagnostics of one virtual run (chaos reports publish these)."""

    advances: int = 0
    sleeps: int = 0
    max_concurrent_sleepers: int = 0
    #: threads that were still managed-but-not-sleeping when the run's
    #: watchdog gave up (filled in by the chaos harness, not the clock)
    wedged: list[str] = field(default_factory=list)


class VirtualClock(Clock):
    """Deterministic virtual time, advanced only at quiescence.

    Quiescence rule: time may advance only when (a) no announced thread
    spawn is still pending and (b) **every** managed thread currently sits
    inside :meth:`sleep`.  At that instant the clock jumps to the earliest
    deadline among *all* sleepers (managed or not) and wakes every sleeper
    whose deadline was reached.  Unmanaged sleepers never gate advancement
    but are woken by it — so a test's main thread can sleep through the
    simulation without registering.
    """

    is_virtual = True

    def __init__(
        self,
        start: float = 0.0,
        epoch: float = 1_700_000_000.0,
        resolution_s: float = DEFAULT_RESOLUTION_S,
        max_virtual_s: float = DEFAULT_MAX_VIRTUAL_S,
    ):
        self._now = float(start)
        #: fixed offset mapping virtual-monotonic to virtual-wall time, so
        #: ``wall()`` round-trips (journalled deadlines) stay consistent
        #: with ``now()`` inside one simulation.
        self._epoch = float(epoch)
        self.resolution_s = float(resolution_s)
        self.max_virtual_s = float(max_virtual_s)
        self._lock = threading.Lock()
        self._sleepers: dict[int, _Sleeper] = {}
        self._managed: dict[int, str] = {}
        self._pending_spawns = 0
        self.stats = ClockStats()

    # ------------------------------------------------------------- time

    def now(self) -> float:
        with self._lock:
            return self._now

    def wall(self) -> float:
        with self._lock:
            return self._epoch + self._now

    def sleep(self, seconds: float) -> None:
        seconds = max(0.0, float(seconds))
        ident = threading.get_ident()
        cond = threading.Condition()
        sleeper = _Sleeper(ident=ident, deadline=0.0, cond=cond)
        with cond:
            with self._lock:
                if self._now > self.max_virtual_s:
                    raise VirtualTimeExhausted(
                        f"virtual time {self._now:.3f}s exceeded the "
                        f"{self.max_virtual_s:.0f}s ceiling (timeout storm?)"
                    )
                sleeper.deadline = self._now + seconds
                self._sleepers[ident] = sleeper
                self.stats.sleeps += 1
                self.stats.max_concurrent_sleepers = max(
                    self.stats.max_concurrent_sleepers, len(self._sleepers)
                )
                fired = self._advance_locked()
            self._wake(fired)
            while not sleeper.fired:
                cond.wait()
        with self._lock:
            self._sleepers.pop(ident, None)

    # -------------------------------------------------- blocking waits

    def wait_on(self, cond: threading.Condition, timeout: float | None) -> bool:
        """Sliced virtual poll: release ``cond``, sleep one tick, reacquire.

        Always returns ``True`` ("maybe notified") before the caller's own
        deadline arithmetic expires — every call site loops on a predicate
        and recomputes ``remaining`` from :meth:`now`, so the tick quantum
        is invisible beyond delaying a wakeup by at most one resolution.
        """
        step = (
            self.resolution_s
            if timeout is None
            else min(self.resolution_s, max(0.0, timeout))
        )
        cond.release()
        try:
            self.sleep(step)
        finally:
            cond.acquire()
        return True

    def wait_until(self, event: threading.Event, timeout: float | None) -> bool:
        if event.is_set():
            return True
        deadline = None if timeout is None else self.now() + max(0.0, timeout)
        while not event.is_set():
            if deadline is not None:
                remaining = deadline - self.now()
                if remaining <= 0:
                    break
                self.sleep(min(self.resolution_s, remaining))
            else:
                self.sleep(self.resolution_s)
        return event.is_set()

    # -------------------------------------- thread management

    def register_thread(self, name: str | None = None) -> None:
        ident = threading.get_ident()
        with self._lock:
            self._managed[ident] = name or threading.current_thread().name

    def unregister_thread(self) -> None:
        ident = threading.get_ident()
        with self._lock:
            removed = self._managed.pop(ident, None)
            fired = self._advance_locked() if removed is not None else []
        self._wake(fired)

    @contextmanager
    def managed(self, name: str | None = None, expected: bool = False):
        ident = threading.get_ident()
        with self._lock:
            self._managed[ident] = name or threading.current_thread().name
            if expected and self._pending_spawns > 0:
                self._pending_spawns -= 1
        try:
            yield
        finally:
            self.unregister_thread()

    @contextmanager
    def unmanaged(self):
        ident = threading.get_ident()
        with self._lock:
            name = self._managed.pop(ident, None)
            fired = self._advance_locked() if name is not None else []
        self._wake(fired)
        try:
            yield
        finally:
            if name is not None:
                with self._lock:
                    self._managed[ident] = name

    def expect_threads(self, count: int = 1) -> None:
        with self._lock:
            self._pending_spawns += count

    def spawn(
        self, target, name: str | None = None, daemon: bool = True
    ) -> threading.Thread:
        self.expect_threads()

        def runner():
            with self.managed(name, expected=True):
                target()

        thread = threading.Thread(target=runner, name=name, daemon=daemon)
        thread.start()
        return thread

    # ------------------------------------------------------ diagnostics

    def managed_threads(self) -> list[str]:
        with self._lock:
            return sorted(self._managed.values())

    def blocked_outside_clock(self) -> list[str]:
        """Names of managed threads *not* blocked in a clock sleep — the
        wedge candidates when the simulation stops making progress."""
        with self._lock:
            return sorted(
                name
                for ident, name in self._managed.items()
                if ident not in self._sleepers
            )

    # ------------------------------------------------------- internals

    def _advance_locked(self) -> list[_Sleeper]:
        """Advance virtual time if quiescent; returns the sleepers to wake.

        Caller holds ``self._lock``.  Quiescent means: no pending spawn and
        every managed thread has an un-fired sleeper entry (a fired entry
        is a thread already woken but not yet running — still not a safe
        moment to advance).
        """
        if self._pending_spawns:
            return []
        for ident in self._managed:
            sleeper = self._sleepers.get(ident)
            if sleeper is None or sleeper.fired:
                return []
        pending = [s for s in self._sleepers.values() if not s.fired]
        if not pending:
            return []
        target = min(s.deadline for s in pending)
        if target > self._now:
            self._now = target
            self.stats.advances += 1
        fired = [s for s in pending if s.deadline <= self._now]
        for sleeper in fired:
            sleeper.fired = True
        return fired

    def _wake(self, fired: list[_Sleeper]) -> None:
        """Notify fired sleepers outside the clock lock.  A sleeper's own
        condition may be held by its (still-registering) thread; acquiring
        it here simply waits until that thread parks in ``cond.wait`` —
        and the ``fired`` flag it re-checks closes the lost-wakeup race.
        Waking our *own* sleeper is a reentrant acquire and equally safe.
        """
        for sleeper in fired:
            with sleeper.cond:
                sleeper.cond.notify_all()
