"""Deterministic random number helpers.

All synthetic data generation in the library goes through :func:`make_rng`
so that workloads, tests, and benchmarks are reproducible run to run.
"""

import numpy as np


def make_rng(seed: int | None) -> np.random.Generator:
    """Return a numpy Generator; ``None`` means non-deterministic."""
    return np.random.default_rng(seed)


def derive_seed(seed: int, *parts: int | str) -> int:
    """Derive a child seed from a parent seed and a path of parts.

    Used to give each partition/worker its own independent but reproducible
    stream, e.g. ``derive_seed(base, "carts", partition_index)``.
    """
    h = np.uint64(seed & 0xFFFFFFFFFFFFFFFF)
    for part in parts:
        if isinstance(part, str):
            value = np.uint64(abs(hash(part)) & 0xFFFFFFFFFFFFFFFF)
        else:
            value = np.uint64(part & 0xFFFFFFFFFFFFFFFF)
        # SplitMix64-style mixing keeps child streams decorrelated.
        h = np.uint64((int(h) ^ int(value)) * 0x9E3779B97F4A7C15 & 0xFFFFFFFFFFFFFFFF)
        h = np.uint64((int(h) ^ (int(h) >> 30)) * 0xBF58476D1CE4E5B9 & 0xFFFFFFFFFFFFFFFF)
        h = np.uint64((int(h) ^ (int(h) >> 27)) * 0x94D049BB133111EB & 0xFFFFFFFFFFFFFFFF)
        h = np.uint64(int(h) ^ (int(h) >> 31))
    return int(h) & 0x7FFFFFFF
