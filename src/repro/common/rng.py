"""Deterministic random number helpers.

All synthetic data generation in the library goes through :func:`make_rng`
so that workloads, tests, and benchmarks are reproducible run to run.
"""

import hashlib

import numpy as np


def make_rng(seed: int | None) -> np.random.Generator:
    """Return a numpy Generator; ``None`` means non-deterministic."""
    return np.random.default_rng(seed)


def _stable_str_value(part: str) -> int:
    """A process-independent 64-bit digest of a string path part.

    Built-in ``hash()`` is salted per process (PYTHONHASHSEED), so any
    stream derived through it is only reproducible within one interpreter
    (or under a pinned hash seed).  blake2b is stable everywhere.
    """
    return int.from_bytes(hashlib.blake2b(part.encode(), digest_size=8).digest(), "big")


def _mix(seed: int, parts: tuple, str_value) -> int:
    h = np.uint64(seed & 0xFFFFFFFFFFFFFFFF)
    for part in parts:
        if isinstance(part, str):
            value = np.uint64(str_value(part))
        else:
            value = np.uint64(part & 0xFFFFFFFFFFFFFFFF)
        # SplitMix64-style mixing keeps child streams decorrelated.
        h = np.uint64((int(h) ^ int(value)) * 0x9E3779B97F4A7C15 & 0xFFFFFFFFFFFFFFFF)
        h = np.uint64((int(h) ^ (int(h) >> 30)) * 0xBF58476D1CE4E5B9 & 0xFFFFFFFFFFFFFFFF)
        h = np.uint64((int(h) ^ (int(h) >> 27)) * 0x94D049BB133111EB & 0xFFFFFFFFFFFFFFFF)
        h = np.uint64(int(h) ^ (int(h) >> 31))
    return int(h) & 0x7FFFFFFF


def derive_seed(seed: int, *parts: int | str) -> int:
    """Derive a child seed from a parent seed and a path of parts.

    Used to give each partition/worker its own independent but reproducible
    stream, e.g. ``derive_seed(base, "carts", partition_index)``.  String
    parts go through built-in ``hash()``: reproducible within a process and
    under a pinned ``PYTHONHASHSEED`` — the historical behavior every
    workload byte total (Figures 3/4) is anchored on.  Derivations that
    must replay bit-identically from a *cold* process — fault-site RNGs,
    chaos schedules — use :func:`derive_seed_stable` instead.
    """
    return _mix(seed, parts, lambda p: abs(hash(p)) & 0xFFFFFFFFFFFFFFFF)


def derive_seed_stable(seed: int, *parts: int | str) -> int:
    """Like :func:`derive_seed`, but process-independent for string parts.

    The same (seed, parts) path yields the same stream in any interpreter
    regardless of hash randomization, so persisted fault-schedule JSON
    artifacts (chaos minimized schedules) replay bit-identically from a
    cold start.  Kept separate from :func:`derive_seed` on purpose:
    switching the workload streams would shift the generated data and move
    the fault-free figure ledgers off the seed baseline.
    """
    return _mix(seed, parts, _stable_str_value)
