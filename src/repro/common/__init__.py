"""Shared utilities: errors, units, configuration, deterministic randomness.

Everything in :mod:`repro` builds on these primitives.  They deliberately have
no dependencies on the rest of the package so that any subsystem can import
them without cycles.
"""

from repro.common.errors import (
    CacheError,
    CatalogError,
    ExecutionError,
    HdfsError,
    MLError,
    ParseError,
    PlanError,
    ReproError,
    TransferError,
)
from repro.common.units import format_bytes, format_duration, parse_bytes

__all__ = [
    "CacheError",
    "CatalogError",
    "ExecutionError",
    "HdfsError",
    "MLError",
    "ParseError",
    "PlanError",
    "ReproError",
    "TransferError",
    "format_bytes",
    "format_duration",
    "parse_bytes",
]
