"""Exception hierarchy for the whole package.

Every subsystem raises a subclass of :class:`ReproError` so that callers can
catch all library failures with a single except clause while still being able
to discriminate by subsystem.
"""


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ParseError(ReproError):
    """The SQL text could not be tokenized or parsed."""

    def __init__(self, message: str, position: int | None = None):
        self.position = position
        if position is not None:
            message = f"{message} (at position {position})"
        super().__init__(message)


class PlanError(ReproError):
    """A parsed query could not be turned into an executable plan.

    Typical causes: unknown column references, ambiguous names, aggregates
    mixed with non-grouped columns, unsupported constructs.
    """


class CatalogError(ReproError):
    """A catalog object (table, view, UDF) is missing or already exists."""


class ExecutionError(ReproError):
    """A physical operator failed while executing a plan."""


class HdfsError(ReproError):
    """Base class for distributed-file-system errors."""


class FileNotFoundInDfs(HdfsError):
    """The requested path does not exist in the DFS namespace."""


class FileAlreadyExists(HdfsError):
    """Attempted to create a path that already exists."""


class BlockError(HdfsError):
    """A block is missing, corrupt, or under-replicated beyond repair."""


class TransferError(ReproError):
    """The parallel streaming transfer failed (coordinator, channel, buffer)."""


class MLError(ReproError):
    """An ML job or algorithm failed (bad input, non-convergence guards)."""


class CacheError(ReproError):
    """Cache lookup/insert/invalidation failed."""
