"""Exception hierarchy for the whole package.

Every subsystem raises a subclass of :class:`ReproError` so that callers can
catch all library failures with a single except clause while still being able
to discriminate by subsystem.
"""


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ParseError(ReproError):
    """The SQL text could not be tokenized or parsed."""

    def __init__(self, message: str, position: int | None = None):
        self.position = position
        if position is not None:
            message = f"{message} (at position {position})"
        super().__init__(message)


class PlanError(ReproError):
    """A parsed query could not be turned into an executable plan.

    Typical causes: unknown column references, ambiguous names, aggregates
    mixed with non-grouped columns, unsupported constructs.
    """


class CatalogError(ReproError):
    """A catalog object (table, view, UDF) is missing or already exists."""


class ExecutionError(ReproError):
    """A physical operator failed while executing a plan."""


class HdfsError(ReproError):
    """Base class for distributed-file-system errors."""


class FileNotFoundInDfs(HdfsError):
    """The requested path does not exist in the DFS namespace."""


class FileAlreadyExists(HdfsError):
    """Attempted to create a path that already exists."""


class BlockError(HdfsError):
    """A block is missing, corrupt, or under-replicated beyond repair."""


class TransferError(ReproError):
    """The parallel streaming transfer failed (coordinator, channel, buffer)."""


class ChannelTimeoutError(TransferError):
    """A channel/socket/broker operation timed out — *recoverable*: the peer
    may be slow or briefly unreachable, so callers should retry with backoff
    before escalating."""


class RetriesExhaustedError(TransferError):
    """A retry budget (send retries, partial restarts, replay fetches) ran
    out — *fatal* for the current strategy; callers fall back to the next
    recovery tier (full pipeline restart, materialize-to-DFS degradation)."""


class WorkerFailedError(TransferError):
    """A SQL or ML worker died mid-transfer (detected by a failed send, a
    stale heartbeat, or an expired coordination session).  §6's unit of
    recovery: the failed SQL worker and its k paired ML workers restart."""

    def __init__(self, message: str, worker_id: int | None = None):
        self.worker_id = worker_id
        super().__init__(message)


class MLError(ReproError):
    """An ML job or algorithm failed (bad input, non-convergence guards)."""


class CacheError(ReproError):
    """Cache lookup/insert/invalidation failed."""
