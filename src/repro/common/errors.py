"""Exception hierarchy for the whole package.

Every subsystem raises a subclass of :class:`ReproError` so that callers can
catch all library failures with a single except clause while still being able
to discriminate by subsystem.
"""


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ParseError(ReproError):
    """The SQL text could not be tokenized or parsed."""

    def __init__(self, message: str, position: int | None = None):
        self.position = position
        if position is not None:
            message = f"{message} (at position {position})"
        super().__init__(message)


class PlanError(ReproError):
    """A parsed query could not be turned into an executable plan.

    Typical causes: unknown column references, ambiguous names, aggregates
    mixed with non-grouped columns, unsupported constructs.
    """


class CatalogError(ReproError):
    """A catalog object (table, view, UDF) is missing or already exists."""


class ExecutionError(ReproError):
    """A physical operator failed while executing a plan."""


class HdfsError(ReproError):
    """Base class for distributed-file-system errors."""


class FileNotFoundInDfs(HdfsError):
    """The requested path does not exist in the DFS namespace."""


class FileAlreadyExists(HdfsError):
    """Attempted to create a path that already exists."""


class BlockError(HdfsError):
    """A block is missing, corrupt, or under-replicated beyond repair."""


class BlockCorruptError(BlockError):
    """One replica's bytes failed their CRC32 checksum on read.

    *Recoverable by failover*: the reader tries the remaining replicas and
    reports the bad one to the NameNode, whose repair scanner restores it
    from a healthy copy.  Only when every replica is corrupt or unreachable
    does the read escalate to a plain :class:`BlockError`."""

    def __init__(self, message: str, block_id: str | None = None, host: str | None = None):
        self.block_id = block_id
        self.host = host
        super().__init__(message)


class DataNodeDownError(HdfsError):
    """An operation hit a dead or stopped DataNode.

    *Recoverable by failover* on the read path (surviving replicas serve
    the block) and by replica redirection on the write path; the NameNode
    additionally learns of the death through the report or a missed
    heartbeat and re-replicates everything the node held."""

    def __init__(self, message: str, host: str | None = None):
        self.host = host
        super().__init__(message)


class StorageFullError(HdfsError):
    """A DataNode (or an injected ENOSPC window) refused a replica write
    for lack of capacity.

    *Recoverable by redirection*: the writer asks the NameNode for a
    replacement target; only when no live DataNode can take the replica
    does the error escalate to the caller, whose ladder is caller-specific
    — spill buffers fall back to accounted in-memory overflow, checkpoint
    commits prune old versions and retry, everything else fails typed."""

    def __init__(self, message: str, host: str | None = None):
        self.host = host
        super().__init__(message)


class TransferError(ReproError):
    """The parallel streaming transfer failed (coordinator, channel, buffer)."""


class AdmissionError(TransferError):
    """Session admission refused or timed out: the tenant's quota plus the
    bounded FIFO queue could not absorb the request.  *Recoverable* by the
    client — back off and resubmit, or route to another tenant."""


class CoordinatorUnavailableError(TransferError):
    """The coordinator a client handshook with is dead or lost its leader
    lease — *recoverable* under high availability: the client re-resolves
    the current leader from ZooKeeperLite and retries the handshake
    idempotently (re-register by ``(session_id, worker_id)``, re-claim by
    ``(session_id, channel_id)``)."""


class ChannelTimeoutError(TransferError):
    """A channel/socket/broker operation timed out — *recoverable*: the peer
    may be slow or briefly unreachable, so callers should retry with backoff
    before escalating."""


class ChannelAbortedError(TransferError):
    """The producer failed fatally mid-stream, so everything received on
    this channel is a truncated prefix — *fatal* for the reader: treating
    the abort as clean EOF would let a half-delivered dataset train (and
    charge ``ml.ingest``) silently.  Raised by every receive after the
    abort, in place of the clean-``close()`` EOF ``None``."""


class RetriesExhaustedError(TransferError):
    """A retry budget (send retries, partial restarts, replay fetches) ran
    out — *fatal* for the current strategy; callers fall back to the next
    recovery tier (full pipeline restart, materialize-to-DFS degradation)."""


class WorkerFailedError(TransferError):
    """A SQL or ML worker died mid-transfer (detected by a failed send, a
    stale heartbeat, or an expired coordination session).  §6's unit of
    recovery: the failed SQL worker and its k paired ML workers restart."""

    def __init__(self, message: str, worker_id: int | None = None):
        self.worker_id = worker_id
        super().__init__(message)


class DeadlineExceeded(TransferError):
    """The session's end-to-end budget ran out — *non-retryable*.  Unlike
    :class:`ChannelTimeoutError` (a per-call flat timeout that may succeed on
    retry), the budget is the client's own clock: once it expires, every
    retry, replay, or recovery tier would also miss the deadline, so the
    error escalates straight through the §6 recovery ladder to the client."""

    def __init__(self, message: str, session_id: str | None = None):
        self.session_id = session_id
        super().__init__(message)


class SessionCancelled(TransferError):
    """The client cancelled the session (``coordinator.cancel_session``) —
    *non-retryable* by definition.  Workers observe the flag cooperatively:
    SQL workers stop at batch boundaries, trainers abort between iterations
    after committing their last checkpoint, and blocked waiters are woken
    instead of timing out."""

    def __init__(self, message: str, session_id: str | None = None):
        self.session_id = session_id
        super().__init__(message)


class MLError(ReproError):
    """An ML job or algorithm failed (bad input, non-convergence guards)."""


class IngestError(MLError):
    """Building the in-memory Dataset failed for one or more input splits.

    Distinguishing *ingest* failures from *training* failures is what makes
    the §6 ML-stage recovery ladder sound: a dead reader means rows were
    lost in flight (recovery must replay the transfer), while a training
    crash happened with the data fully delivered (recovery can resume from
    a checkpoint or replay the input from lineage)."""

    def __init__(self, message: str, failed_split_ids: tuple[int, ...] = ()):
        self.failed_split_ids = tuple(failed_split_ids)
        super().__init__(message)


class TrainingInterrupted(MLError):
    """An iterative trainer died mid-run (injected or real).  Carries the
    iteration boundary it reached so recovery can report how much progress a
    checkpoint-resume preserved."""

    def __init__(self, message: str, iteration: int | None = None):
        self.iteration = iteration
        super().__init__(message)


class CheckpointError(ReproError):
    """Writing or reading an ML training checkpoint failed."""


class CheckpointCorruptError(CheckpointError):
    """A checkpoint file failed its checksum/format validation on load."""


class TransformError(ReproError):
    """A data transformation could not be applied — e.g. a recode map is
    missing a column, or an ``on_unseen='error'`` policy met a category
    that phase 1 never observed (the dirty-data case)."""

    def __init__(self, message: str, column: str | None = None, value=None):
        self.column = column
        self.value = value
        super().__init__(message)


class CacheError(ReproError):
    """Cache lookup/insert/invalidation failed."""
