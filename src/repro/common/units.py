"""Byte-size and duration parsing/formatting helpers."""

import re

_SIZE_RE = re.compile(r"^\s*([0-9]*\.?[0-9]+)\s*([KMGTP]?i?B?)\s*$", re.IGNORECASE)

_DECIMAL = {"": 1, "B": 1, "KB": 10**3, "MB": 10**6, "GB": 10**9, "TB": 10**12, "PB": 10**15}
_BINARY = {"KIB": 2**10, "MIB": 2**20, "GIB": 2**30, "TIB": 2**40, "PIB": 2**50}


def parse_bytes(text: str | int | float) -> int:
    """Parse a human byte size like ``"4KB"``, ``"56 GB"``, ``"1MiB"`` to bytes.

    Plain numbers (int, float, or numeric strings) are taken as bytes.
    Decimal suffixes (KB, MB, ...) are powers of 1000; binary suffixes
    (KiB, MiB, ...) are powers of 1024, matching common convention.
    """
    if isinstance(text, (int, float)):
        return int(text)
    match = _SIZE_RE.match(text)
    if not match:
        raise ValueError(f"unparseable byte size: {text!r}")
    value, unit = match.groups()
    unit = unit.upper()
    if unit in _DECIMAL:
        factor = _DECIMAL[unit]
    elif unit in _BINARY:
        factor = _BINARY[unit]
    elif unit in ("K", "M", "G", "T", "P"):
        factor = _DECIMAL[unit + "B"]
    else:
        raise ValueError(f"unknown byte unit: {unit!r}")
    return int(float(value) * factor)


def format_bytes(num_bytes: float) -> str:
    """Format a byte count with a decimal unit, e.g. ``5.6 GB``."""
    value = float(num_bytes)
    for unit in ("B", "KB", "MB", "GB", "TB"):
        if abs(value) < 1000.0 or unit == "TB":
            if unit == "B":
                return f"{int(value)} B"
            return f"{value:.1f} {unit}"
        value /= 1000.0
    raise AssertionError("unreachable")


def format_duration(seconds: float) -> str:
    """Format a duration, e.g. ``43.0 s`` or ``12m 34s`` for long times."""
    if seconds < 0:
        return "-" + format_duration(-seconds)
    if seconds < 120:
        return f"{seconds:.1f} s"
    minutes, secs = divmod(int(round(seconds)), 60)
    if minutes < 120:
        return f"{minutes}m {secs:02d}s"
    hours, minutes = divmod(minutes, 60)
    return f"{hours}h {minutes:02d}m"
