"""Ablation B: degree of parallelism k and locality-aware split placement.

§3: "we always set m = n·k, where k is a parameter to control the degree of
parallelism in the ML job", and splits advertise their SQL worker's IP "to
take advantage of the potential locality".  This ablation sweeps k and
reports the resulting split counts, per-channel row balance, and the
fraction of ML readers that landed local to their SQL worker.
"""

from dataclasses import dataclass

from repro import make_deployment
from repro.bench.common import format_table
from repro.workloads.retail import generate_retail


@dataclass
class ParallelismRow:
    k: int
    num_splits: int
    local_splits: int
    rows: int
    max_partition: int
    min_partition: int
    wall_seconds: float


def run_parallelism_ablation(
    ks: tuple[int, ...] = (1, 2, 6, 12),
    num_users: int = 600,
    num_carts: int = 6_000,
) -> list[ParallelismRow]:
    rows = []
    for k in ks:
        deployment = make_deployment(block_size=256 * 1024)
        deployment.coordinator.default_k = k
        workload = generate_retail(
            deployment.engine, deployment.dfs, num_users=num_users, num_carts=num_carts
        )
        deployment.pipeline.byte_scale = workload.byte_scale
        result = deployment.pipeline.run_insql_stream(
            workload.prep_sql, workload.spec, "noop"
        )
        stats = result.ml_result.ingest_stats
        partitions = [len(p) for p in result.ml_result.dataset.partitions()]
        rows.append(
            ParallelismRow(
                k=k,
                num_splits=stats.num_splits,
                local_splits=stats.local_splits,
                rows=stats.records,
                max_partition=max(partitions) if partitions else 0,
                min_partition=min(partitions) if partitions else 0,
                wall_seconds=result.stage("prep+trsfm+input").wall_seconds,
            )
        )
    return rows


def report(rows: list[ParallelismRow]) -> str:
    table = [
        [
            r.k,
            r.num_splits,
            f"{100.0 * r.local_splits / r.num_splits if r.num_splits else 0:.0f}%",
            r.rows,
            f"{r.min_partition}..{r.max_partition}",
            f"{r.wall_seconds * 1000:.0f} ms",
        ]
        for r in rows
    ]
    return "\n".join(
        [
            "Ablation B — degree of parallelism k (m = n*k splits) and locality",
            format_table(
                ["k", "splits", "local", "rows", "partition sizes", "wall"], table
            ),
        ]
    )


def main() -> None:  # pragma: no cover - CLI entry
    print(report(run_parallelism_ablation()))


if __name__ == "__main__":  # pragma: no cover
    main()
