"""Figure 4: effect of caching on the integrated workflow.

All three bars use In-SQL transformation + parallel streaming transfer; they
differ in what §5 cache is available:

  * ``no cache``                — both recoding passes run;
  * ``cache recode maps``      — §5.2 hit, pass 1 skipped (**1.5x** in the paper);
  * ``cache transformed result`` — §5.1 hit, the preparation query itself is
    skipped and the cached view streams to ML (**2.2x** in the paper).
"""

from dataclasses import dataclass

from repro.bench.common import BenchSetup, format_table, make_bench_setup
from repro.integration.stages import PipelineResult


@dataclass
class Figure4Row:
    """One bar of Figure 4."""

    variant: str
    rewrite_kind: str | None
    total_sim_seconds: float
    total_wall_seconds: float
    result: PipelineResult


def run_figure4(
    setup: BenchSetup | None = None,
    iterations: int = 10,
    command: str = "svm_with_sgd",
) -> list[Figure4Row]:
    """Run the no-cache / recode-map / fully-transformed variants."""
    setup = setup or make_bench_setup()
    wl = setup.workload
    pipeline = setup.pipeline
    args = {"iterations": iterations}
    rows = []

    no_cache = pipeline.run_insql_stream(wl.prep_sql, wl.spec, command, args)
    rows.append(_row("no cache", no_cache))

    pipeline.populate_caches(
        wl.prep_sql, wl.spec, cache_recode_map=True, cache_transformed=False
    )
    with_maps = pipeline.run_insql_stream(
        wl.prep_sql, wl.spec, command, args, use_cache=True
    )
    rows.append(_row("cache recode maps", with_maps))

    pipeline.populate_caches(
        wl.prep_sql, wl.spec, cache_recode_map=False, cache_transformed=True
    )
    with_view = pipeline.run_insql_stream(
        wl.prep_sql, wl.spec, command, args, use_cache=True
    )
    rows.append(_row("cache transformed result", with_view))
    return rows


def _row(variant: str, result: PipelineResult) -> Figure4Row:
    return Figure4Row(
        variant=variant,
        rewrite_kind=result.rewrite_kind,
        total_sim_seconds=result.total_sim_seconds,
        total_wall_seconds=result.total_wall_seconds,
        result=result,
    )


def report(rows: list[Figure4Row]) -> str:
    no_cache = rows[0].total_sim_seconds
    table_rows = [
        [
            r.variant,
            r.rewrite_kind or "-",
            f"{r.total_sim_seconds:.1f}s",
            f"{no_cache / r.total_sim_seconds:.2f}x",
        ]
        for r in rows
    ]
    lines = [
        "Figure 4 — effect of caching (all variants use insql+stream)",
        format_table(["variant", "rewrite", "total", "speedup vs no cache"], table_rows),
        "",
        "paper: cache recode maps 1.5x, cache transformed result 2.2x",
    ]
    return "\n".join(lines)


def main() -> None:  # pragma: no cover - CLI entry
    rows = run_figure4()
    print(report(rows))


if __name__ == "__main__":  # pragma: no cover
    main()
