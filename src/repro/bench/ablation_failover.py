"""Ablation H: coordinator failover cost across the transfer stack (§6 HA).

§6 says the coordinator itself must be resilient ("This can be achieved by
using Zookeeper") but never prices it.  This ablation kills the leader
coordinator at each failover point of the streaming handshake — before SQL
registration, after split planning, and mid-stream — with one standby
behind the ZooKeeperLite lease, and measures what a takeover actually
costs.

Expected shape: the model is weight-for-weight identical to the HA-free
baseline at every point; the journal (``zk.journal``) is the only standing
overhead; and — the headline — ``stream.retry`` stays at **zero** at every
kill point, because channels live on the worker hosts and are re-attached
by the new leader, never replayed.  Control-plane failover is data-plane
free, unlike the worker-kill recoveries of Ablation F which must re-ship
the failed group's blocks.
"""

from dataclasses import dataclass

import numpy as np

from repro import make_deployment
from repro.bench.common import format_table
from repro.faults import FaultConfig, FaultInjector
from repro.workloads.retail import generate_retail

POINTS = ("none", "pre_registration", "post_split_plan", "mid_stream")
SVM_ARGS = {"iterations": 5}


@dataclass
class FailoverAblationRow:
    point: str  # where the leader died ("none" = fault-free HA)
    ha: bool  # HA group installed (False = the single-coordinator baseline)
    rows: int
    wall_seconds: float
    transfer_bytes: int  # stream.sent
    retry_bytes: int  # stream.retry — zero is the headline
    journal_bytes: int  # zk.journal
    failovers: int
    model_ok: bool  # weights identical to the HA-free baseline


def _run(
    point: str | None,
    seed: int,
    num_users: int,
    num_carts: int,
    baseline_weights=None,
) -> tuple[FailoverAblationRow, "np.ndarray"]:
    ha = point is not None
    injector = None
    if ha and point != "none":
        injector = FaultInjector(FaultConfig(seed=seed, kill_coordinator_at=point))
    deployment = make_deployment(
        block_size=256 * 1024,
        batch_rows=16,
        ha_standbys=1 if ha else 0,
        fault_injector=injector,
    )
    workload = generate_retail(
        deployment.engine, deployment.dfs, num_users=num_users, num_carts=num_carts
    )
    deployment.pipeline.byte_scale = workload.byte_scale
    ledger = deployment.cluster.ledger
    before = ledger.snapshot()
    result = deployment.pipeline.run_insql_stream(
        workload.prep_sql, workload.spec, "svm_with_sgd", SVM_ARGS
    )
    delta = ledger.delta(before, ledger.snapshot())
    weights = result.ml_result.model.weights
    return FailoverAblationRow(
        point=point if ha else "baseline",
        ha=ha,
        rows=result.ml_result.dataset.count(),
        wall_seconds=result.stage("prep+trsfm+input").wall_seconds,
        transfer_bytes=delta["stream.sent"],
        retry_bytes=delta.get("stream.retry", 0),
        journal_bytes=delta.get("zk.journal", 0),
        failovers=result.failovers,
        model_ok=(
            True
            if baseline_weights is None
            else bool(np.array_equal(weights, baseline_weights))
        ),
    ), weights


def run_failover_ablation(
    points: tuple[str, ...] = POINTS,
    seed: int = 11,
    num_users: int = 400,
    num_carts: int = 4_000,
) -> list[FailoverAblationRow]:
    """Kill the leader at each failover point; compare against no-HA.

    The first row is the single-coordinator baseline every other row's
    model is compared against; ``"none"`` is HA standing by with nothing
    injected (its only delta must be the journal bytes).
    """
    baseline, weights = _run(None, seed, num_users, num_carts)
    rows = [baseline]
    for point in points:
        row, _w = _run(point, seed, num_users, num_carts, baseline_weights=weights)
        rows.append(row)
    return rows


def report(rows: list[FailoverAblationRow]) -> str:
    table = [
        [
            r.point,
            "yes" if r.ha else "no",
            f"{r.rows}",
            f"{r.wall_seconds * 1000:.0f} ms",
            f"{r.transfer_bytes}",
            f"{r.retry_bytes}",
            f"{r.journal_bytes}",
            f"{r.failovers}",
            "ok" if r.model_ok else "DIVERGED",
        ]
        for r in rows
    ]
    return "\n".join(
        [
            "Ablation H — coordinator failover cost by kill point (§6 HA)",
            format_table(
                [
                    "kill point",
                    "ha",
                    "rows",
                    "wall",
                    "stream bytes",
                    "retry bytes",
                    "journal bytes",
                    "failovers",
                    "model",
                ],
                table,
            ),
        ]
    )


def main() -> None:  # pragma: no cover - CLI entry
    print(report(run_failover_ablation()))


if __name__ == "__main__":  # pragma: no cover
    main()
