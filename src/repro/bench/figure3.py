"""Figure 3: three approaches of connecting big SQL and big ML systems.

Regenerates the stacked-bar breakdown of the paper's Figure 3 — ``naive``
(SQL -> HDFS -> Jaql -> HDFS -> ML), ``insql`` (UDF transformation pipelined
into the query, one HDFS hop), and ``insql+stream`` (everything pipelined,
no HDFS) — with per-stage simulated paper-scale seconds.

Paper-reported shape (from §7's text):
  * In-SQL transformation: **1.7x** speedup over naive;
  * streaming saves roughly the DFS ingest (**~43 s** of a **46 s** read).
"""

from dataclasses import dataclass

from repro.bench.common import BenchSetup, format_table, make_bench_setup
from repro.integration.stages import PipelineResult


@dataclass
class Figure3Row:
    """One bar of Figure 3."""

    approach: str
    stages: dict[str, float]  # stage name -> simulated seconds
    total_sim_seconds: float
    total_wall_seconds: float
    result: PipelineResult


def run_figure3(
    setup: BenchSetup | None = None,
    iterations: int = 10,
    command: str = "svm_with_sgd",
) -> list[Figure3Row]:
    """Run all three approaches on the paper workload."""
    setup = setup or make_bench_setup()
    wl = setup.workload
    pipeline = setup.pipeline
    args = {"iterations": iterations}
    rows = []
    for approach, runner in (
        ("naive", pipeline.run_naive),
        ("insql", pipeline.run_insql),
        ("insql+stream", pipeline.run_insql_stream),
    ):
        result = runner(wl.prep_sql, wl.spec, command, args)
        rows.append(
            Figure3Row(
                approach=approach,
                stages={
                    s.name: s.sim_seconds for s in result.stages if s.counted
                },
                total_sim_seconds=result.total_sim_seconds,
                total_wall_seconds=result.total_wall_seconds,
                result=result,
            )
        )
    return rows


def report(rows: list[Figure3Row]) -> str:
    """The figure as text: one row per approach with its stage breakdown."""
    table_rows = []
    for row in rows:
        stages = " + ".join(f"{name}={sec:.1f}s" for name, sec in row.stages.items())
        table_rows.append(
            [row.approach, f"{row.total_sim_seconds:.1f}s", stages]
        )
    naive = next(r for r in rows if r.approach == "naive")
    insql = next(r for r in rows if r.approach == "insql")
    stream = next(r for r in rows if r.approach == "insql+stream")
    lines = [
        "Figure 3 — connecting big SQL and big ML (simulated paper-scale seconds)",
        format_table(["approach", "total", "stage breakdown"], table_rows),
        "",
        f"insql speedup over naive : {naive.total_sim_seconds / insql.total_sim_seconds:.2f}x"
        "   (paper: 1.7x)",
        f"streaming saves          : {insql.total_sim_seconds - stream.total_sim_seconds:.1f} s"
        "   (paper: ~43 s)",
    ]
    return "\n".join(lines)


def main() -> None:  # pragma: no cover - CLI entry
    rows = run_figure3()
    print(report(rows))


if __name__ == "__main__":  # pragma: no cover
    main()
