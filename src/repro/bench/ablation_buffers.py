"""Ablation A: send/receive buffer size in the streaming transfer.

The paper fixes both buffers at 4 KB without exploring the choice; this
ablation sweeps the size and reports spill behaviour (bytes that overflowed
to local disk when the ML side lagged) and transfer wall time.  Expected
shape: tiny buffers spill heavily; past a modest size spilling vanishes and
wall time flattens — i.e. the paper's 4 KB sits near the knee for row-sized
payloads.
"""

from dataclasses import dataclass

from repro import make_deployment
from repro.bench.common import format_table
from repro.workloads.retail import generate_retail


@dataclass
class BufferRow:
    buffer_bytes: int
    spilled_bytes: int
    streamed_bytes: int
    wall_seconds: float
    rows: int


def run_buffer_ablation(
    sizes: tuple[int, ...] = (256, 1024, 4096, 16384, 65536),
    num_users: int = 600,
    num_carts: int = 6_000,
) -> list[BufferRow]:
    rows = []
    for size in sizes:
        deployment = make_deployment(block_size=256 * 1024, buffer_bytes=size)
        workload = generate_retail(
            deployment.engine, deployment.dfs, num_users=num_users, num_carts=num_carts
        )
        deployment.pipeline.byte_scale = workload.byte_scale
        ledger = deployment.cluster.ledger
        before_spill = ledger.get("stream.spilled")
        before_sent = ledger.get("stream.sent")
        result = deployment.pipeline.run_insql_stream(
            workload.prep_sql, workload.spec, "noop"
        )
        stage = result.stage("prep+trsfm+input")
        rows.append(
            BufferRow(
                buffer_bytes=size,
                spilled_bytes=ledger.get("stream.spilled") - before_spill,
                streamed_bytes=ledger.get("stream.sent") - before_sent,
                wall_seconds=stage.wall_seconds,
                rows=result.ml_result.dataset.count(),
            )
        )
    return rows


@dataclass
class BatchRow:
    batch_rows: int
    wall_seconds: float
    rows_per_second: float
    spilled_bytes: int
    streamed_bytes: int
    rows: int


def run_batch_rows_ablation(
    batch_sizes: tuple[int, ...] = (1, 16, 256, 4096),
    num_users: int = 600,
    num_carts: int = 6_000,
) -> list[BatchRow]:
    """Sweep the RowBlock size of the transfer stack.

    ``batch_rows=1`` is the seed's per-row wire format; larger blocks move
    the same rows with fewer lock acquisitions and pickle calls."""
    out = []
    for batch in batch_sizes:
        deployment = make_deployment(
            block_size=256 * 1024, buffer_bytes=64 * 1024, batch_rows=batch
        )
        workload = generate_retail(
            deployment.engine, deployment.dfs, num_users=num_users, num_carts=num_carts
        )
        deployment.pipeline.byte_scale = workload.byte_scale
        ledger = deployment.cluster.ledger
        before_spill = ledger.get("stream.spilled")
        before_sent = ledger.get("stream.sent")
        result = deployment.pipeline.run_insql_stream(
            workload.prep_sql, workload.spec, "noop"
        )
        stage = result.stage("prep+trsfm+input")
        nrows = result.ml_result.dataset.count()
        wall = stage.wall_seconds
        out.append(
            BatchRow(
                batch_rows=batch,
                wall_seconds=wall,
                rows_per_second=nrows / wall if wall > 0 else float("inf"),
                spilled_bytes=ledger.get("stream.spilled") - before_spill,
                streamed_bytes=ledger.get("stream.sent") - before_sent,
                rows=nrows,
            )
        )
    return out


def report_batch_rows(rows: list[BatchRow]) -> str:
    table = [
        [
            f"{r.batch_rows}",
            f"{r.streamed_bytes}",
            f"{r.spilled_bytes}",
            f"{r.wall_seconds * 1000:.0f} ms",
            f"{r.rows_per_second:,.0f}",
        ]
        for r in rows
    ]
    return "\n".join(
        [
            "Ablation A2 — RowBlock size (batch_rows=1 is the per-row seed path)",
            format_table(
                ["batch_rows", "streamed bytes", "spilled bytes", "wall", "rows/sec"],
                table,
            ),
        ]
    )


def report(rows: list[BufferRow]) -> str:
    table = [
        [
            f"{r.buffer_bytes} B",
            f"{r.streamed_bytes}",
            f"{r.spilled_bytes}",
            f"{100.0 * r.spilled_bytes / r.streamed_bytes if r.streamed_bytes else 0:.1f}%",
            f"{r.wall_seconds * 1000:.0f} ms",
        ]
        for r in rows
    ]
    return "\n".join(
        [
            "Ablation A — stream buffer size (paper fixes 4 KB)",
            format_table(
                ["buffer", "streamed bytes", "spilled bytes", "spill %", "wall"], table
            ),
        ]
    )


def main() -> None:  # pragma: no cover - CLI entry
    print(report(run_buffer_ablation()))
    print()
    print(report_batch_rows(run_batch_rows_ablation()))


if __name__ == "__main__":  # pragma: no cover
    main()
