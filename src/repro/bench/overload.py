"""Ablation K: overload protection — deadlines, shedding, and bounded latency.

Two runs over a deliberately starved deployment (a 4-slot ML worker pool, an
8-session admission cap, a 4-deep admission queue):

* **Deadline sweep** — a fixed closed-loop load offers the same session
  stream once per deadline value (tight → unbounded), measuring how the
  outcome mix shifts from completed to typed ``DeadlineExceeded`` as the
  budget shrinks.  The unbounded point is the control: with no deadline and
  offered concurrency within cap+queue, every session completes.
* **Acceptance** — the ISSUE's overload bar: 32 sessions (8x the slot
  count) through 16 clients with mixed tight/generous/unbounded deadlines,
  two priority tiers, seeded faults, and a mid-flight cancel harness.  The
  checks: zero wedged worker or client threads after the run, every failure
  a *typed* serving outcome (shed, deadline, cancel — never a stack trace),
  every completed session's weights bit-identical to a solo re-run, and
  every deadline-armed session's end-to-end latency bounded by its own
  budget plus a small enforcement grace — not by the sum of the per-layer
  flat timeouts it replaced.
"""

import json
import threading
from collections import Counter
from dataclasses import asdict, dataclass

from repro import make_deployment
from repro.faults import FaultConfig, FaultInjector
from repro.sim.clock import WALL
from repro.workloads.loadgen import (
    LoadReport,
    make_points_table,
    percentile,
    run_closed_loop,
    solo_weights,
    verify_against_solo,
)

#: The Ablation K sweep: one end-to-end deadline per point (None = unbounded).
#: Sessions on this workload complete in ~5 ms solo, so 1 ms is below the
#: floor (always expires), 10 ms bites only under queueing, 100 ms is
#: effectively generous, and None is the control.
DEFAULT_DEADLINES: tuple = (0.001, 0.01, 0.1, None)
DEFAULT_SWEEP_SESSIONS = 16
DEFAULT_SWEEP_CLIENTS = 12

#: The starved serving plane every run shares: 2 workers x 2 slots = 4 ML
#: slots, 8 admitted sessions contending for them, 4 queue places behind.
POOL_WORKERS = 2
POOL_SLOTS_PER_NODE = 2
OVERLOAD_CAP = 8
OVERLOAD_QUEUE_DEPTH = 4

#: The acceptance run: 8x oversubscription (32 sessions / 4 slots).
ACCEPTANCE_SESSIONS = 32
ACCEPTANCE_CLIENTS = 16
TIGHT_DEADLINE_S = 0.001
GENEROUS_DEADLINE_S = 30.0
#: Enforcement grace: an armed session may overshoot its deadline by at most
#: this long (one budget-clamped wait quantum), nowhere near the 30s+ a
#: single stacked flat timeout would add.
DEFAULT_GRACE_S = 5.0

#: Thread-name prefixes of everything the serving plane spawns per session;
#: the wedge check asserts none survive the run.
WORKER_THREAD_PREFIXES = ("ml-job-", "loadgen-client")


@dataclass
class OverloadRow:
    """One sweep point: the outcome mix at one uniform deadline."""

    deadline_s: float | None
    num_sessions: int
    num_clients: int
    completed: int
    deadline_exceeded: int
    shed: int
    cancelled: int
    other_failures: int
    p99_completed_s: float | None
    wall_seconds: float
    shed_expired: int
    deadline_expired_ledger: int


@dataclass
class OverloadAcceptanceRow:
    """The 8x-oversubscription chaos run and its acceptance checks."""

    num_sessions: int
    num_clients: int
    pool_slots: int
    max_concurrent: int
    queue_depth: int
    completed: int
    deadline_exceeded: int
    shed: int
    cancelled: int
    other_failures: int
    shed_expired: int
    shed_preempted: int
    rejected: int
    cancel_requested: int
    faults_injected: int
    weight_identical: bool
    wedged_threads: int
    worst_armed_overshoot_s: float
    grace_s: float
    p99_completed_s: float | None
    wall_seconds: float

    @property
    def all_failures_typed(self) -> bool:
        return self.other_failures == 0


def _overload_deployment(**overrides):
    kwargs = dict(
        num_workers=POOL_WORKERS,
        workers_per_node=POOL_SLOTS_PER_NODE,
        max_concurrent_sessions=OVERLOAD_CAP,
        admission_queue_depth=OVERLOAD_QUEUE_DEPTH,
    )
    kwargs.update(overrides)
    deployment = make_deployment(**kwargs)
    make_points_table(deployment.engine)
    return deployment


def acceptance_tenant_of(i: int) -> str:
    """Two priority tiers: even sessions interactive, odd sessions batch."""
    return "interactive" if i % 2 == 0 else "batch"


def acceptance_deadline_of(i: int) -> float | None:
    """Mixed budgets: a tight pair per 8 sessions (one of each tenant, so a
    deadline expiry is observed even if every batch waiter gets preempted
    first), one generous armed session, the rest unbounded."""
    if i % 8 in (3, 4):
        return TIGHT_DEADLINE_S
    if i % 8 == 5:
        return GENEROUS_DEADLINE_S
    return None


def bucket_outcomes(report: LoadReport) -> Counter:
    """Outcome mix keyed by typed error class name (or ``completed``)."""
    buckets: Counter = Counter()
    for o in report.outcomes:
        buckets[o.error_type or "completed"] += 1
    return buckets


def _mix(report: LoadReport) -> tuple[int, int, int, int, int]:
    buckets = bucket_outcomes(report)
    completed = buckets.pop("completed", 0)
    deadline = buckets.pop("DeadlineExceeded", 0)
    shed = buckets.pop("AdmissionError", 0)
    cancelled = buckets.pop("SessionCancelled", 0)
    other = sum(buckets.values())
    return completed, deadline, shed, cancelled, other


def _p99_completed(report: LoadReport) -> float | None:
    latencies = [o.latency_s for o in report.outcomes if o.error is None]
    return percentile(latencies, 99) if latencies else None


def wedged_threads(
    grace_s: float = 10.0,
    clock=None,  # repro.sim.clock.Clock | None — poll/deadline timing
    prefixes: tuple = WORKER_THREAD_PREFIXES,
) -> list[str]:
    """Names of serving-plane threads still alive after ``grace_s``.

    A clean overload run leaves zero: shed sessions never spawn an ML job,
    expired and cancelled sessions unwind cooperatively, and the load
    clients were joined by ``run_closed_loop``.  Anything remaining is a
    wedged wait — the exact failure mode the budget layer exists to kill.

    Under a :class:`~repro.sim.clock.VirtualClock` the grace elapses in
    virtual time: each poll sleeps one clock tick, so a stuck thread is
    detected after ``grace_s`` *simulated* seconds — milliseconds of wall
    time — while a cleanly unwinding thread is observed as soon as it exits.
    """
    clock = clock or WALL
    deadline = clock.now() + grace_s
    while True:
        alive = [
            t.name
            for t in threading.enumerate()
            if t.is_alive() and t.name.startswith(prefixes)
        ]
        if not alive or clock.now() >= deadline:
            return alive
        clock.sleep(0.05)


def _run_cancel_harness(coordinator, session_ids: list[str], stop: threading.Event):
    """Poll until each target session exists, then cancel it mid-flight."""
    pending = set(session_ids)
    while pending and not stop.is_set():
        for sid in sorted(pending):
            try:
                if coordinator.cancel_session(sid, reason="overload harness"):
                    pending.discard(sid)
            except Exception:  # a torn-down session: nothing left to cancel
                pending.discard(sid)
        stop.wait(0.001)


def run_deadline_sweep(
    deadlines: tuple = DEFAULT_DEADLINES,
    num_sessions: int = DEFAULT_SWEEP_SESSIONS,
    num_clients: int = DEFAULT_SWEEP_CLIENTS,
) -> list[OverloadRow]:
    """One closed-loop run per uniform deadline, fresh deployment each time."""
    rows = []
    for deadline_s in deadlines:
        deployment = _overload_deployment()
        report = run_closed_loop(
            deployment,
            num_sessions=num_sessions,
            num_clients=num_clients,
            deadline_of=lambda i, d=deadline_s: d,
            tolerate_failures=True,
            session_prefix="sweep",
        )
        completed, deadline, shed, cancelled, other = _mix(report)
        ledger = deployment.cluster.ledger
        rows.append(
            OverloadRow(
                deadline_s=deadline_s,
                num_sessions=report.num_sessions,
                num_clients=report.num_clients,
                completed=completed,
                deadline_exceeded=deadline,
                shed=shed,
                cancelled=cancelled,
                other_failures=other,
                p99_completed_s=_p99_completed(report),
                wall_seconds=report.wall_seconds,
                shed_expired=int(ledger.get("shed.expired")),
                deadline_expired_ledger=int(ledger.get("deadline.expired")),
            )
        )
    return rows


def run_acceptance(
    num_sessions: int = ACCEPTANCE_SESSIONS,
    num_clients: int = ACCEPTANCE_CLIENTS,
    grace_s: float = DEFAULT_GRACE_S,
) -> tuple[OverloadAcceptanceRow, LoadReport]:
    """The chaos run: oversubscription + faults + deadlines + cancels.

    Returns the acceptance row and the raw load report; ``main`` and the
    smoke benchmark assert on the row's checks.
    """
    injector = FaultInjector(
        FaultConfig(
            seed=11,
            send_drop_rate=0.05,
            kill_sql_worker_rate=0.05,
            max_kills=1,
            max_events=4,
        )
    )
    loaded = _overload_deployment(
        fault_injector=injector,
        tenant_priorities={"interactive": 1, "batch": 0},
        retry_budget_tokens=64,
    )
    # Cancel a couple of unbounded batch sessions mid-flight: the harness
    # races real completion on purpose — a cancel that loses the race leaves
    # a completed (and weight-checked) session, one that wins leaves a typed
    # SessionCancelled outcome.  Both are correct; neither may wedge.
    cancel_ids = [f"over_{i}" for i in range(num_sessions) if i % 8 == 1]
    stop = threading.Event()
    canceller = threading.Thread(
        target=_run_cancel_harness,
        args=(loaded.coordinator, cancel_ids, stop),
        name="overload-canceller",
        daemon=True,
    )
    canceller.start()
    try:
        report = run_closed_loop(
            loaded,
            num_sessions=num_sessions,
            num_clients=num_clients,
            tenant_of=acceptance_tenant_of,
            deadline_of=acceptance_deadline_of,
            tolerate_failures=True,
            session_prefix="over",
        )
    finally:
        stop.set()
        canceller.join(2.0)
    wedged = wedged_threads()

    # Bit-identity of completed work: solo re-runs on a fresh, identically
    # shaped (fault-free) deployment must reproduce every completed weight
    # vector exactly.  Shed/expired/cancelled sessions have no weights.
    completed_seeds = sorted({o.seed for o in report.outcomes if o.error is None})
    solo = _overload_deployment()
    baselines = solo_weights(solo, completed_seeds)
    verify_against_solo(report, baselines)

    # The latency bar: every deadline-armed session — completed or failed —
    # finished within its own budget plus the enforcement grace.
    worst_overshoot = float("-inf")
    for o in report.outcomes:
        armed = acceptance_deadline_of(int(o.session_id.rsplit("_", 1)[1]))
        if armed is not None:
            worst_overshoot = max(worst_overshoot, o.latency_s - armed)

    completed, deadline, shed, cancelled, other = _mix(report)
    ledger = loaded.cluster.ledger
    row = OverloadAcceptanceRow(
        num_sessions=report.num_sessions,
        num_clients=report.num_clients,
        pool_slots=POOL_WORKERS * POOL_SLOTS_PER_NODE,
        max_concurrent=OVERLOAD_CAP,
        queue_depth=OVERLOAD_QUEUE_DEPTH,
        completed=completed,
        deadline_exceeded=deadline,
        shed=shed,
        cancelled=cancelled,
        other_failures=other,
        shed_expired=int(ledger.get("shed.expired")),
        shed_preempted=int(ledger.get("shed.preempted")),
        rejected=int(ledger.get("admission.rejected")),
        cancel_requested=int(ledger.get("cancel.requested")),
        faults_injected=sum(injector.counts.values()),
        weight_identical=bool(report.weight_identical),
        wedged_threads=len(wedged),
        worst_armed_overshoot_s=worst_overshoot,
        grace_s=grace_s,
        p99_completed_s=_p99_completed(report),
        wall_seconds=report.wall_seconds,
    )
    return row, report


def check_acceptance(row: OverloadAcceptanceRow) -> list[str]:
    """The ISSUE's acceptance bars; returns human-readable violations."""
    problems = []
    if row.completed < 1:
        problems.append("no session completed under overload")
    if row.deadline_exceeded < 1:
        problems.append("no tight-deadline session produced DeadlineExceeded")
    if not row.all_failures_typed:
        problems.append(f"{row.other_failures} failures were not typed serving errors")
    if not row.weight_identical:
        problems.append("completed weights diverged from solo baselines")
    if row.wedged_threads:
        problems.append(f"{row.wedged_threads} serving threads wedged after the run")
    if row.worst_armed_overshoot_s > row.grace_s:
        problems.append(
            f"armed session overshot its deadline by "
            f"{row.worst_armed_overshoot_s:.2f}s (> {row.grace_s:g}s grace)"
        )
    return problems


def report(rows: list[OverloadRow], acceptance: OverloadAcceptanceRow | None = None) -> str:
    lines = [
        "Ablation K — outcome mix vs end-to-end deadline "
        f"({rows[0].num_sessions} sessions, {rows[0].num_clients} clients, "
        f"{POOL_WORKERS * POOL_SLOTS_PER_NODE} worker slots)"
    ]
    for r in rows:
        label = "unbounded" if r.deadline_s is None else f"{r.deadline_s:g}s"
        p99 = "   -  " if r.p99_completed_s is None else f"{r.p99_completed_s * 1000:6.0f}"
        lines.append(
            f"  deadline={label:>9}  completed={r.completed:>3}"
            f"  deadline_exceeded={r.deadline_exceeded:>3}  shed={r.shed:>3}"
            f"  p99(completed) {p99} ms"
        )
    if acceptance is not None:
        a = acceptance
        lines.append(
            f"  acceptance: {a.num_sessions} sessions / {a.pool_slots} slots — "
            f"{a.completed} completed, {a.deadline_exceeded} deadline, "
            f"{a.shed} shed, {a.cancelled} cancelled, {a.faults_injected} faults; "
            f"wedged={a.wedged_threads}, weights "
            + ("bit-identical" if a.weight_identical else "DIVERGED")
        )
    return "\n".join(lines)


def persist_results(
    rows: list[OverloadRow],
    path: str,
    acceptance: OverloadAcceptanceRow | None = None,
) -> None:
    """Write the run as JSON (the CI overload-smoke artifact)."""
    doc = {
        "benchmark": "overload",
        "results": [asdict(r) for r in rows],
    }
    if acceptance is not None:
        doc["acceptance"] = asdict(acceptance)
    with open(path, "w") as f:
        json.dump(doc, f, indent=2)
        f.write("\n")


def main() -> None:  # pragma: no cover - CLI entry
    import sys

    rows = run_deadline_sweep()
    acceptance, _report = run_acceptance()
    print(report(rows, acceptance))
    problems = check_acceptance(acceptance)
    if problems:
        raise SystemExit("overload acceptance failed: " + "; ".join(problems))
    if len(sys.argv) > 1:
        persist_results(rows, sys.argv[1], acceptance=acceptance)


if __name__ == "__main__":  # pragma: no cover
    main()
