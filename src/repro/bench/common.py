"""Shared benchmark plumbing: standard deployment + workload + reporting."""

from dataclasses import dataclass

from repro import Deployment, make_deployment
from repro.common.units import format_duration
from repro.workloads.retail import RetailWorkload, generate_retail

#: Default scaled-down workload size for benchmark runs (the cost model
#: scales byte counts back to the paper's 1B-row / 56 GB workload).
DEFAULT_USERS = 1_500
DEFAULT_CARTS = 15_000


@dataclass
class BenchSetup:
    """A wired deployment plus the generated retail workload."""

    deployment: Deployment
    workload: RetailWorkload

    @property
    def pipeline(self):
        return self.deployment.pipeline


def make_bench_setup(
    num_users: int = DEFAULT_USERS,
    num_carts: int = DEFAULT_CARTS,
    seed: int = 7,
    buffer_bytes: int = 4096,
) -> BenchSetup:
    """The standard benchmark environment: paper topology, retail workload,
    byte scale mapping observed bytes to the paper's 56 GB carts table."""
    deployment = make_deployment(block_size=256 * 1024, buffer_bytes=buffer_bytes)
    workload = generate_retail(
        deployment.engine,
        deployment.dfs,
        num_users=num_users,
        num_carts=num_carts,
        seed=seed,
    )
    deployment.pipeline.byte_scale = workload.byte_scale
    return BenchSetup(deployment=deployment, workload=workload)


def format_table(headers: list[str], rows: list[list]) -> str:
    """Plain-text aligned table."""
    cells = [headers] + [[str(c) for c in row] for row in rows]
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]
    lines = []
    for r, row in enumerate(cells):
        lines.append("  ".join(c.ljust(widths[i]) for i, c in enumerate(row)))
        if r == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)


def seconds(value: float) -> str:
    return format_duration(value)
