"""Ablation D: direct streaming vs the Kafka-like broker transfer (§8).

The paper's future work proposes a message broker between SQL and ML
workers for at-least-once delivery and broker-side caching.  This ablation
quantifies the trade-off on the same workload:

* the broker decouples producer and consumer in time, so the consume phase
  does *not* overlap the SQL query the way direct streaming's ingest does —
  that serialization is the performance price of the decoupling;
* what the broker buys: at-least-once recovery, and the retained topic is
  replayed by a second ML job at a fraction of the original pipeline cost
  (the broker-as-cache use).
"""

from dataclasses import dataclass

from repro.bench.common import BenchSetup, format_table, make_bench_setup


@dataclass
class BrokerRow:
    variant: str
    total_sim_seconds: float
    rows_delivered: int
    broker_bytes: int


def run_broker_ablation(setup: BenchSetup | None = None) -> list[BrokerRow]:
    setup = setup or make_bench_setup(num_users=600, num_carts=6_000)
    wl = setup.workload
    pipeline = setup.pipeline
    ledger = setup.deployment.cluster.ledger
    rows: list[BrokerRow] = []

    def broker_bytes_during(fn):
        before = ledger.get("broker.in")
        result = fn()
        return result, ledger.get("broker.in") - before

    stream = pipeline.run_insql_stream(wl.prep_sql, wl.spec, "noop")
    rows.append(
        BrokerRow(
            "stream (no cache)",
            stream.total_sim_seconds,
            stream.ml_result.dataset.count(),
            0,
        )
    )

    broker, produced = broker_bytes_during(
        lambda: pipeline.run_insql_broker(wl.prep_sql, wl.spec, "noop", keep_topic=True)
    )
    rows.append(
        BrokerRow(
            "broker (no cache)",
            broker.total_sim_seconds,
            broker.ml_result.dataset.count(),
            produced,
        )
    )

    # With the fully transformed result cached, the base-table scan no
    # longer masks the transfer: the broker's persistence hop shows.
    pipeline.populate_caches(
        wl.prep_sql, wl.spec, cache_recode_map=True, cache_transformed=True
    )
    cached_stream = pipeline.run_insql_stream(
        wl.prep_sql, wl.spec, "noop", use_cache=True
    )
    rows.append(
        BrokerRow(
            "stream (full cache)",
            cached_stream.total_sim_seconds,
            cached_stream.ml_result.dataset.count(),
            0,
        )
    )
    cached_broker, produced = broker_bytes_during(
        lambda: pipeline.run_insql_broker(
            wl.prep_sql, wl.spec, "noop", use_cache=True, keep_topic=True
        )
    )
    rows.append(
        BrokerRow(
            "broker (full cache)",
            cached_broker.total_sim_seconds,
            cached_broker.ml_result.dataset.count(),
            produced,
        )
    )

    # Replay: a second ML job re-reads the retained topic under a new group
    # — no SQL, no transform, just the broker consume + ingest.
    from repro.broker.inputformat import BrokerInputFormat
    from repro.iofmt.inputformat import JobConf

    topic = cached_broker.broker_topic
    conf = JobConf(
        {"broker.topic": topic, "broker.group": "replay", "record.format": "raw"},
        broker=setup.deployment.broker,
    )
    # Charge the replay at the bytes its fetches put on the ledger (logical,
    # per-row framing size) rather than the topic's stored size: RowBlock
    # records store fewer wire bytes than they account for, and simulated
    # time must stay invariant under re-batching.
    before_out = ledger.get("broker.out")
    replay = setup.deployment.ml.run_job("noop", {}, BrokerInputFormat(), conf)
    replayed_bytes = ledger.get("broker.out") - before_out
    cost = setup.pipeline.cost
    replay_sim = cost.ml_stream_ingest_time(
        replayed_bytes * setup.pipeline.byte_scale
    ) + cost.broker_overhead_s
    rows.append(
        BrokerRow(
            "replay retained topic",
            replay_sim,
            replay.dataset.count(),
            replayed_bytes,
        )
    )
    return rows


def report(rows: list[BrokerRow]) -> str:
    table = [
        [r.variant, f"{r.total_sim_seconds:.1f}s", r.rows_delivered, r.broker_bytes]
        for r in rows
    ]
    return "\n".join(
        [
            "Ablation D — direct streaming vs Kafka-like broker transfer (§8)",
            format_table(
                ["variant", "sim total", "rows delivered", "broker bytes"], table
            ),
            "",
            "the broker pays its decoupled (non-overlapped) consume phase against",
            "direct streaming, and buys replayability + at-least-once delivery.",
        ]
    )


def main() -> None:  # pragma: no cover - CLI entry
    print(report(run_broker_ablation()))


if __name__ == "__main__":  # pragma: no cover
    main()
