"""Ablation J: multi-tenant serving — session latency vs. admitted concurrency.

Sweeps the coordinator's ``max_concurrent_sessions`` cap while a fixed
closed-loop client population offers the same session stream, measuring
p50/p99 session-completion latency and aggregate throughput at each cap.
``cap=1`` serializes the whole stream through the admission queue — the
latency cost of strict isolation; larger caps trade queueing delay for
scheduler contention on the shared worker pool.

The acceptance run then drives ~100 interleaved sessions at a mid-size cap
and checks the multi-tenant correctness bar: every session's trained
weights bit-identical to a solo re-run of the same seed on a fresh,
identically configured deployment.
"""

import json
from dataclasses import asdict, dataclass

from repro import make_deployment
from repro.workloads.loadgen import (
    BASE_SEED,
    LoadReport,
    make_points_table,
    run_closed_loop,
    solo_weights,
    verify_against_solo,
)

#: The Ablation J sweep: admission caps under a fixed 16-client offered load.
DEFAULT_CAPS = (1, 4, 8, 16)
DEFAULT_SWEEP_SESSIONS = 32
DEFAULT_CLIENTS = 16

#: The acceptance run (the ISSUE's ~100-interleaved-session bar).
ACCEPTANCE_SESSIONS = 100
ACCEPTANCE_CAP = 8
ACCEPTANCE_CLIENTS = 8


@dataclass
class MultitenantRow:
    """One sweep point: latency distribution at one admission cap."""

    max_concurrent: int
    num_sessions: int
    num_clients: int
    wall_seconds: float
    p50_s: float
    p99_s: float
    mean_s: float
    sessions_per_second: float
    sessions_queued: int
    scheduler_waits: int


@dataclass
class AcceptanceRow:
    """The 100-session correctness run."""

    num_sessions: int
    num_clients: int
    max_concurrent: int
    wall_seconds: float
    p50_s: float
    p99_s: float
    weight_identical: bool


def _fresh_loaded_deployment(cap: int):
    # ``max_concurrent_sessions=1`` alone is the seed default (admission
    # off, unmanaged concurrency).  The sweep's cap=1 point should measure
    # *strict serialization*, so force the admission gate on with an
    # equivalent tenant quota.
    quotas = {"default": 1} if cap == 1 else None
    deployment = make_deployment(max_concurrent_sessions=cap, tenant_quotas=quotas)
    make_points_table(deployment.engine)
    return deployment


def run_cap_sweep(
    caps: tuple[int, ...] = DEFAULT_CAPS,
    num_sessions: int = DEFAULT_SWEEP_SESSIONS,
    num_clients: int = DEFAULT_CLIENTS,
) -> list[MultitenantRow]:
    """One closed-loop run per admission cap, fresh deployment each time."""
    rows = []
    for cap in caps:
        deployment = _fresh_loaded_deployment(cap)
        report = run_closed_loop(
            deployment, num_sessions=num_sessions, num_clients=num_clients
        )
        ledger = deployment.cluster.ledger
        rows.append(
            MultitenantRow(
                max_concurrent=cap,
                num_sessions=report.num_sessions,
                num_clients=report.num_clients,
                wall_seconds=report.wall_seconds,
                p50_s=report.p50_s,
                p99_s=report.p99_s,
                mean_s=report.mean_s,
                sessions_per_second=report.sessions_per_second,
                sessions_queued=int(ledger.get("admission.queued")),
                scheduler_waits=int(ledger.get("scheduler.waits")),
            )
        )
    return rows


def run_acceptance(
    num_sessions: int = ACCEPTANCE_SESSIONS,
    num_clients: int = ACCEPTANCE_CLIENTS,
    cap: int = ACCEPTANCE_CAP,
) -> tuple[AcceptanceRow, LoadReport]:
    """~100 interleaved sessions, every one weight-checked against solo."""
    loaded = _fresh_loaded_deployment(cap)
    report = run_closed_loop(
        loaded, num_sessions=num_sessions, num_clients=num_clients
    )
    solo = _fresh_loaded_deployment(cap)
    baselines = solo_weights(
        solo, [BASE_SEED + i for i in range(num_sessions)]
    )
    verify_against_solo(report, baselines)
    row = AcceptanceRow(
        num_sessions=report.num_sessions,
        num_clients=report.num_clients,
        max_concurrent=cap,
        wall_seconds=report.wall_seconds,
        p50_s=report.p50_s,
        p99_s=report.p99_s,
        weight_identical=bool(report.weight_identical),
    )
    return row, report


def report(rows: list[MultitenantRow], acceptance: AcceptanceRow | None = None) -> str:
    lines = [
        "Ablation J — session latency vs admitted concurrency "
        f"({rows[0].num_sessions} sessions, {rows[0].num_clients} clients)"
    ]
    for r in rows:
        lines.append(
            f"  cap={r.max_concurrent:>3}  p50 {r.p50_s * 1000:7.1f} ms"
            f"  p99 {r.p99_s * 1000:7.1f} ms"
            f"  {r.sessions_per_second:6.1f} sessions/s"
            f"  queued={r.sessions_queued}"
        )
    if acceptance is not None:
        lines.append(
            f"  acceptance: {acceptance.num_sessions} sessions @ cap="
            f"{acceptance.max_concurrent} — p50 {acceptance.p50_s * 1000:.1f} ms, "
            f"p99 {acceptance.p99_s * 1000:.1f} ms, weights "
            + ("bit-identical to solo" if acceptance.weight_identical else "DIVERGED")
        )
    return "\n".join(lines)


def persist_results(
    rows: list[MultitenantRow],
    path: str,
    acceptance: AcceptanceRow | None = None,
) -> None:
    """Write the run as JSON (the CI multitenant-smoke artifact)."""
    doc = {
        "benchmark": "multitenant",
        "results": [asdict(r) for r in rows],
    }
    if acceptance is not None:
        doc["acceptance"] = asdict(acceptance)
    with open(path, "w") as f:
        json.dump(doc, f, indent=2)
        f.write("\n")


def main() -> None:  # pragma: no cover - CLI entry
    import sys

    rows = run_cap_sweep()
    acceptance, _report = run_acceptance()
    print(report(rows, acceptance))
    if not acceptance.weight_identical:
        raise SystemExit("acceptance run: interleaved weights diverged from solo")
    if len(sys.argv) > 1:
        persist_results(rows, sys.argv[1], acceptance=acceptance)


if __name__ == "__main__":  # pragma: no cover
    main()
