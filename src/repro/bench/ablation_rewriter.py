"""Ablation C: which follow-up queries can reuse which cache (§5 rules).

Runs the rewriter's cache matching over a family of follow-up queries —
including the paper's own §5.1 and §5.2 examples verbatim — after caching
the §1 preparation query, and reports the rewrite kind each one gets.
"""

from dataclasses import dataclass

from repro.bench.common import BenchSetup, format_table, make_bench_setup
from repro.workloads.retail import PAPER_SPEC, PREP_SQL, RECODE_REUSE_SQL, SUBSET_SQL
from repro.transform.spec import TransformSpec

#: (description, SQL, spec, expected rewrite kind)
QUERY_FAMILY = [
    (
        "identical query (rerun for another classifier, §5.1 motivation)",
        PREP_SQL,
        PAPER_SPEC,
        "full_cache",
    ),
    (
        "§5.1 example: subset projection + predicate on projected field",
        SUBSET_SQL,
        TransformSpec(recode=("abandoned",), label="abandoned"),
        "full_cache",
    ),
    (
        "§5.2 example: new projected field nItems + new predicate on year",
        RECODE_REUSE_SQL,
        PAPER_SPEC,
        "recode_map_cache",
    ),
    (
        "logically stronger predicate (country IN ('USA') ⊆ ... )",
        "SELECT U.age, U.gender, C.amount, C.abandoned FROM carts C, users U "
        "WHERE C.userid = U.userid AND U.country = 'USA' AND U.age < 30",
        PAPER_SPEC,
        "full_cache",  # extra conjunct on projected field age
    ),
    (
        "different predicate constant (country = 'DE'): no reuse possible",
        "SELECT U.age, U.gender, C.amount, C.abandoned FROM carts C, users U "
        "WHERE C.userid = U.userid AND U.country = 'DE'",
        PAPER_SPEC,
        "no_cache",
    ),
    (
        "new categorical column (channel) not in the cached maps: no reuse",
        "SELECT U.age, U.gender, C.channel, C.amount, C.abandoned "
        "FROM carts C, users U WHERE C.userid = U.userid AND U.country = 'USA'",
        TransformSpec(recode=("gender", "abandoned", "channel"), label="abandoned"),
        "no_cache",
    ),
]


@dataclass
class RewriterRow:
    description: str
    expected: str
    actual: str
    total_sim_seconds: float


def run_rewriter_ablation(setup: BenchSetup | None = None) -> list[RewriterRow]:
    setup = setup or make_bench_setup(num_users=600, num_carts=6_000)
    pipeline = setup.pipeline
    pipeline.populate_caches(
        PREP_SQL, PAPER_SPEC, cache_recode_map=True, cache_transformed=True
    )
    rows = []
    for description, sql, spec, expected in QUERY_FAMILY:
        result = pipeline.run_insql_stream(sql, spec, "noop", use_cache=True)
        rows.append(
            RewriterRow(
                description=description,
                expected=expected,
                actual=result.rewrite_kind or "-",
                total_sim_seconds=result.total_sim_seconds,
            )
        )
    return rows


def report(rows: list[RewriterRow]) -> str:
    table = [
        [
            r.description,
            r.expected,
            r.actual,
            "OK" if r.expected == r.actual else "MISMATCH",
            f"{r.total_sim_seconds:.1f}s",
        ]
        for r in rows
    ]
    return "\n".join(
        [
            "Ablation C — cache-reuse decisions of the query rewriter",
            format_table(["follow-up query", "expected", "actual", "", "total"], table),
        ]
    )


def main() -> None:  # pragma: no cover - CLI entry
    print(report(run_rewriter_ablation()))


if __name__ == "__main__":  # pragma: no cover
    main()
