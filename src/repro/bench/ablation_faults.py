"""Ablation F: recovery overhead and goodput under injected failures (§6).

The paper's fault-tolerance discussion names the recovery options but never
measures them.  This ablation injects seeded faults at increasing rates and
compares the three recovery paths end to end:

* ``stream-partial`` — the §6 protocol: only the failed SQL worker and its
  k paired ML workers restart; replayed blocks dedup by sequence number.
* ``pipeline-full`` — the conservative tier ("the whole integration
  pipeline has to be restarted from scratch"): the partial-restart budget
  is zero, so any worker death fails the session and the pipeline re-runs
  the entire transfer (``max_attempts``).
* ``broker-replay`` — §8's broker transfer under at-least-once chaos:
  duplicate and corrupted fetches recovered from the retained log.

Expected shape: at rate 0 every path matches its fault-free byte totals
exactly (replay counters all zero — the Figure 3/4 invariance); as the rate
grows, partial restart re-ships only the failed group's blocks while the
full restart re-ships everything, and the gap is the point of §6.
"""

from dataclasses import dataclass

from repro import make_deployment
from repro.bench.common import format_table
from repro.faults import FaultConfig, FaultInjector, RecoveryManager
from repro.workloads.retail import generate_retail

PATHS = ("stream-partial", "pipeline-full", "broker-replay")


@dataclass
class FaultAblationRow:
    path: str
    rate: float
    rows: int
    wall_seconds: float
    goodput_rows_s: float
    transfer_bytes: int  # fault-free ledger counters (stream.sent / broker.out)
    retry_bytes: int  # replay-only counters (stream.retry / broker.retry)
    partial_restarts: int
    attempts: int
    faults: int  # events the injector actually fired


def _retail(deployment, num_users: int, num_carts: int):
    workload = generate_retail(
        deployment.engine, deployment.dfs, num_users=num_users, num_carts=num_carts
    )
    deployment.pipeline.byte_scale = workload.byte_scale
    return workload


def _run_stream(
    path: str, rate: float, seed: int, num_users: int, num_carts: int
) -> FaultAblationRow:
    injector = FaultInjector(
        FaultConfig(seed=seed, kill_sql_worker_rate=rate, max_kills=1)
    )
    if path == "stream-partial":
        recovery = RecoveryManager(injector=injector, sleep=lambda _s: None)
        max_attempts = 1  # partial restart absorbs the kill in-session
    else:
        # Zero partial-restart budget: any worker death escalates straight
        # to the fatal tier and the pipeline restarts from scratch.
        recovery = RecoveryManager(
            injector=injector, max_partial_restarts=0, sleep=lambda _s: None
        )
        max_attempts = 4
    deployment = make_deployment(
        block_size=256 * 1024, batch_rows=16, recovery=recovery
    )
    workload = _retail(deployment, num_users, num_carts)
    ledger = deployment.cluster.ledger
    before = ledger.snapshot()
    result = deployment.pipeline.run_insql_stream(
        workload.prep_sql, workload.spec, "noop", max_attempts=max_attempts
    )
    delta = ledger.delta(before, ledger.snapshot())
    stage = result.stage("prep+trsfm+input")
    nrows = result.ml_result.dataset.count()
    wall = stage.wall_seconds
    return FaultAblationRow(
        path=path,
        rate=rate,
        rows=nrows,
        wall_seconds=wall,
        goodput_rows_s=nrows / wall if wall > 0 else float("inf"),
        transfer_bytes=delta["stream.sent"],
        retry_bytes=delta.get("stream.retry", 0),
        partial_restarts=recovery.summary()["partial_restarts"],
        attempts=result.attempts,
        faults=sum(injector.counts.values()),
    )


def _run_broker(
    rate: float, seed: int, num_users: int, num_carts: int
) -> FaultAblationRow:
    injector = FaultInjector(
        FaultConfig(
            seed=seed,
            broker_duplicate_rate=rate,
            broker_corrupt_rate=rate,
            max_events=None,
        )
    )
    deployment = make_deployment(
        block_size=256 * 1024, batch_rows=16, fault_injector=injector
    )
    workload = _retail(deployment, num_users, num_carts)
    ledger = deployment.cluster.ledger
    before = ledger.snapshot()
    result = deployment.pipeline.run_insql_broker(
        workload.prep_sql, workload.spec, "noop"
    )
    delta = ledger.delta(before, ledger.snapshot())
    wall = (
        result.stage("prep+trsfm+produce").wall_seconds
        + result.stage("consume+input").wall_seconds
    )
    nrows = result.ml_result.dataset.count()
    return FaultAblationRow(
        path="broker-replay",
        rate=rate,
        rows=nrows,
        wall_seconds=wall,
        goodput_rows_s=nrows / wall if wall > 0 else float("inf"),
        transfer_bytes=delta["broker.out"],
        retry_bytes=delta.get("broker.retry", 0),
        partial_restarts=0,
        attempts=result.attempts,
        faults=sum(injector.counts.values()),
    )


def run_fault_ablation(
    rates: tuple[float, ...] = (0.0, 0.02, 0.05),
    seed: int = 11,
    num_users: int = 400,
    num_carts: int = 4_000,
) -> list[FaultAblationRow]:
    """Sweep the injected failure rate across the three recovery paths.

    ``rates`` are per-opportunity probabilities — per block boundary for the
    streaming kills, per fetch for the broker faults.  Rate 0.0 is the
    invariance row: the recovery stack installed but nothing injected.
    """
    rows = []
    for rate in rates:
        rows.append(_run_stream("stream-partial", rate, seed, num_users, num_carts))
        rows.append(_run_stream("pipeline-full", rate, seed, num_users, num_carts))
        rows.append(_run_broker(rate, seed, num_users, num_carts))
    return rows


def report(rows: list[FaultAblationRow]) -> str:
    table = [
        [
            r.path,
            f"{r.rate:.2f}",
            f"{r.rows}",
            f"{r.wall_seconds * 1000:.0f} ms",
            f"{r.goodput_rows_s:,.0f}",
            f"{r.transfer_bytes}",
            f"{r.retry_bytes}",
            f"{r.partial_restarts}",
            f"{r.attempts}",
            f"{r.faults}",
        ]
        for r in rows
    ]
    return "\n".join(
        [
            "Ablation F — recovery paths vs injected failure rate (§6)",
            format_table(
                [
                    "path",
                    "rate",
                    "rows",
                    "wall",
                    "rows/sec",
                    "transfer bytes",
                    "retry bytes",
                    "restarts",
                    "attempts",
                    "faults",
                ],
                table,
            ),
        ]
    )


def main() -> None:  # pragma: no cover - CLI entry
    print(report(run_fault_ablation()))


if __name__ == "__main__":  # pragma: no cover
    main()
