"""Microbenchmark: raw stream-channel throughput, per-row vs RowBlock vs columnar.

One producer thread pushes rows through a single :class:`StreamChannel`
while the caller drains it — the tightest loop the transfer stack has.
``batch_rows=1`` pays one pickle call, one lock acquisition, and one ledger
entry per row; larger blocks amortize all three across the batch.  The
columnar mode sends the same rows as one typed ``C`` frame (a pickled
numpy array per column) and drains whole frames — no per-row pickle on
either end, and no rows pivot on the receive side.  This is the
measurement behind both framing decisions: each successive format must
beat the per-row seed path by a wide margin on wall clock while delivering
the identical row sequence.
"""

import json
import threading
from dataclasses import asdict, dataclass
from time import perf_counter

from repro.columnar.batch import ColumnBatch
from repro.sql.types import DataType, Schema
from repro.transfer.channel import ChannelId, StreamChannel

MICRO_SCHEMA = Schema.of(
    ("id", DataType.BIGINT),
    ("score", DataType.DOUBLE),
    ("name", DataType.VARCHAR),
    ("flag", DataType.BOOLEAN),
)


@dataclass
class MicroRow:
    batch_rows: int
    wall_seconds: float
    rows_per_second: float
    rows: int
    #: "rows" for per-row/RowBlock framing, "columnar" for ``C`` frames
    mode: str = "rows"


def _make_rows(num_rows: int) -> list[tuple]:
    return [(i, float(i) * 0.5, f"user-{i % 997}", i % 7 == 0) for i in range(num_rows)]


def run_transfer_microbench(
    num_rows: int = 100_000,
    batch_sizes: tuple[int, ...] = (1, 16, 256, 4096),
    buffer_bytes: int = 64 * 1024,
    columnar: bool = False,
) -> list[MicroRow]:
    rows = _make_rows(num_rows)  # built outside the timed region
    results = []
    for batch in batch_sizes:
        channel = StreamChannel(
            ChannelId(0, 0), buffer_bytes=buffer_bytes, local=True
        )

        def produce(channel=channel, batch=batch):
            if batch <= 1:
                for row in rows:
                    channel.send_row(row)
            else:
                for off in range(0, len(rows), batch):
                    channel.send_many(rows[off : off + batch])
            channel.close()

        start = perf_counter()
        producer = threading.Thread(target=produce)
        producer.start()
        received = 0
        for _row in channel:
            received += 1
        producer.join()
        wall = perf_counter() - start

        if received != num_rows:
            raise AssertionError(
                f"batch_rows={batch}: received {received} of {num_rows} rows"
            )
        results.append(
            MicroRow(
                batch_rows=batch,
                wall_seconds=wall,
                rows_per_second=received / wall if wall > 0 else float("inf"),
                rows=received,
            )
        )
    if columnar:
        results.append(_run_columnar(rows, buffer_bytes))
    return results


def _run_columnar(rows: list[tuple], buffer_bytes: int) -> MicroRow:
    """The columnar data plane's send path: the partition travels as one
    typed ``C`` frame (what the stream UDF sends per channel slice) and the
    receiver drains whole frames.  The batch is built outside the timed
    region, symmetric with the row modes' pre-built ``rows`` list — in the
    columnar plane the batch comes straight from the columnar scan, so the
    rows->batch pivot is not part of the transfer cost being measured."""
    channel = StreamChannel(ChannelId(0, 0), buffer_bytes=buffer_bytes, local=True)
    batch = ColumnBatch.from_rows(MICRO_SCHEMA, rows)

    def produce():
        channel.send_col_batch(batch)
        channel.close()

    start = perf_counter()
    producer = threading.Thread(target=produce)
    producer.start()
    received = 0
    while True:
        frame = channel.receive_frame()
        if frame is None:
            break
        received += len(frame)
    producer.join()
    wall = perf_counter() - start

    if received != len(rows):
        raise AssertionError(f"columnar: received {received} of {len(rows)} rows")
    return MicroRow(
        batch_rows=len(rows),
        wall_seconds=wall,
        rows_per_second=received / wall if wall > 0 else float("inf"),
        rows=received,
        mode="columnar",
    )


def report(results: list[MicroRow]) -> str:
    base = results[0].wall_seconds
    lines = ["Transfer microbench — one channel, producer thread vs drain loop"]
    for r in results:
        speedup = base / r.wall_seconds if r.wall_seconds > 0 else float("inf")
        label = "columnar" if r.mode == "columnar" else f"batch_rows={r.batch_rows}"
        lines.append(
            f"  {label:>16}  {r.wall_seconds * 1000:8.1f} ms"
            f"  {r.rows_per_second:>12,.0f} rows/s  {speedup:5.2f}x vs per-row"
        )
    return "\n".join(lines)


def persist_results(results: list[MicroRow], path: str) -> None:
    """Write the run as JSON (the CI perf-smoke artifact)."""
    base = results[0].wall_seconds
    doc = {
        "benchmark": "transfer_micro",
        "rows": results[0].rows,
        "results": [
            dict(
                asdict(r),
                speedup_vs_per_row=(
                    base / r.wall_seconds if r.wall_seconds > 0 else None
                ),
            )
            for r in results
        ],
    }
    with open(path, "w") as f:
        json.dump(doc, f, indent=2)
        f.write("\n")


def main() -> None:  # pragma: no cover - CLI entry
    import sys

    results = run_transfer_microbench(columnar=True)
    print(report(results))
    if len(sys.argv) > 1:
        persist_results(results, sys.argv[1])


if __name__ == "__main__":  # pragma: no cover
    main()
