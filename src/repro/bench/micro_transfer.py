"""Microbenchmark: raw stream-channel throughput, per-row vs RowBlock.

One producer thread pushes rows through a single :class:`StreamChannel`
while the caller drains it — the tightest loop the transfer stack has.
``batch_rows=1`` pays one pickle call, one lock acquisition, and one ledger
entry per row; larger blocks amortize all three across the batch.  This is
the measurement behind the row-block framing decision: the block path must
beat the per-row path by a wide margin on wall clock while delivering the
identical row sequence.
"""

import threading
from dataclasses import dataclass
from time import perf_counter

from repro.transfer.channel import ChannelId, StreamChannel


@dataclass
class MicroRow:
    batch_rows: int
    wall_seconds: float
    rows_per_second: float
    rows: int


def _make_rows(num_rows: int) -> list[tuple]:
    return [(i, float(i) * 0.5, f"user-{i % 997}", i % 7 == 0) for i in range(num_rows)]


def run_transfer_microbench(
    num_rows: int = 100_000,
    batch_sizes: tuple[int, ...] = (1, 16, 256, 4096),
    buffer_bytes: int = 64 * 1024,
) -> list[MicroRow]:
    rows = _make_rows(num_rows)  # built outside the timed region
    results = []
    for batch in batch_sizes:
        channel = StreamChannel(
            ChannelId(0, 0), buffer_bytes=buffer_bytes, local=True
        )

        def produce(channel=channel, batch=batch):
            if batch <= 1:
                for row in rows:
                    channel.send_row(row)
            else:
                for off in range(0, len(rows), batch):
                    channel.send_many(rows[off : off + batch])
            channel.close()

        start = perf_counter()
        producer = threading.Thread(target=produce)
        producer.start()
        received = 0
        for _row in channel:
            received += 1
        producer.join()
        wall = perf_counter() - start

        if received != num_rows:
            raise AssertionError(
                f"batch_rows={batch}: received {received} of {num_rows} rows"
            )
        results.append(
            MicroRow(
                batch_rows=batch,
                wall_seconds=wall,
                rows_per_second=received / wall if wall > 0 else float("inf"),
                rows=received,
            )
        )
    return results


def report(results: list[MicroRow]) -> str:
    base = results[0].wall_seconds
    lines = ["Transfer microbench — one channel, producer thread vs drain loop"]
    for r in results:
        speedup = base / r.wall_seconds if r.wall_seconds > 0 else float("inf")
        lines.append(
            f"  batch_rows={r.batch_rows:>5}  {r.wall_seconds * 1000:8.1f} ms"
            f"  {r.rows_per_second:>12,.0f} rows/s  {speedup:5.2f}x vs per-row"
        )
    return "\n".join(lines)


def main() -> None:  # pragma: no cover - CLI entry
    print(report(run_transfer_microbench()))


if __name__ == "__main__":  # pragma: no cover
    main()
