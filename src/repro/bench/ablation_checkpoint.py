"""Ablation G: checkpoint-interval sweep vs ML-stage fault recovery (§6).

The checkpoint subsystem trades steady-state overhead (snapshot bytes per
iteration) against recovery work when an iterative trainer dies.  This
ablation sweeps the interval (off / every iteration / every k) under both
a fault-free run and an injected ``ml.iteration_kill`` halfway through
training, and compares the recovery tiers end to end:

* ``resume-ckpt-1`` / ``resume-ckpt-4`` — tier 1: restore the latest
  snapshot and finish the remaining iterations in place;
* ``replay-query`` — tier 3 (checkpointing off): re-run the rewritten
  query, rebuild the exact streamed partition layout, retrain from scratch;
* ``full-restart`` — the conservative baseline (no recovery manager
  installed): the whole pipeline re-runs, SQL stages included.

Expected shape: fault-free rows are byte-identical on every transfer
counter at any interval (checkpoint traffic rides its own counters); under
the kill every mode delivers the exact fault-free model, with recovery
wall-clock growing from resume (cheapest) through replay to full restart.
"""

import time
from dataclasses import dataclass

from repro import make_deployment
from repro.bench.common import format_table
from repro.faults import FaultConfig, FaultInjector
from repro.workloads.retail import generate_retail

ITERATIONS = 12


@dataclass
class CheckpointAblationRow:
    mode: str
    fault: str  # "none" | "kill"
    interval: int  # 0 = checkpointing off
    tier: str | None  # recovery tier that produced the surviving model
    attempts: int  # whole-pipeline attempts
    train_attempts: int
    wall_seconds: float
    stream_bytes: int  # fault-free transfer counter (must stay invariant)
    checkpoint_bytes: int  # dedicated checkpoint.write counter
    replay_bytes: int  # dedicated ml.replay counter
    model_matches: bool  # weight-identical to the fault-free baseline


def _model_key(model):
    return (
        tuple(model.weights.tolist()),
        model.intercept,
    )


def _run_once(
    mode: str,
    fault: str,
    interval: int,
    seed: int,
    num_users: int,
    num_carts: int,
    with_recovery: bool = True,
):
    injector = None
    if fault == "kill":
        injector = FaultInjector(
            FaultConfig(seed=seed, kill_train_at=ITERATIONS // 2)
        )
    deployment = make_deployment(
        block_size=256 * 1024,
        batch_rows=16,
        fault_injector=injector if with_recovery else None,
        checkpoint_interval=interval,
    )
    if not with_recovery and injector is not None:
        # The conservative baseline: training chaos with *no* recovery
        # manager, so an ML-stage death restarts the whole pipeline.
        deployment.ml.fault_injector = injector
    workload = generate_retail(
        deployment.engine, deployment.dfs, num_users=num_users, num_carts=num_carts
    )
    deployment.pipeline.byte_scale = workload.byte_scale
    ledger = deployment.cluster.ledger
    before = ledger.snapshot()
    start = time.perf_counter()
    result = deployment.pipeline.run_insql_stream(
        workload.prep_sql,
        workload.spec,
        "svm_with_sgd",
        args={"iterations": ITERATIONS},
        max_attempts=2 if not with_recovery else 1,
    )
    wall = time.perf_counter() - start
    delta = ledger.delta(before, ledger.snapshot())
    tier = result.ml_recovery_tier
    if not with_recovery and result.attempts > 1:
        tier = "full_restart"
    return result, CheckpointAblationRow(
        mode=mode,
        fault=fault,
        interval=interval,
        tier=tier,
        attempts=result.attempts,
        train_attempts=result.ml_result.train_attempts,
        wall_seconds=wall,
        stream_bytes=delta["stream.sent"],
        checkpoint_bytes=delta.get("checkpoint.write", 0),
        replay_bytes=delta.get("ml.replay", 0),
        model_matches=False,  # filled in by the sweep
    )


def run_checkpoint_ablation(
    seed: int = 11,
    num_users: int = 300,
    num_carts: int = 3_000,
) -> list[CheckpointAblationRow]:
    """Interval sweep x fault sweep; every row is one end-to-end run."""
    baseline_result, baseline_row = _run_once(
        "clean-off", "none", 0, seed, num_users, num_carts
    )
    baseline_key = _model_key(baseline_result.ml_result.model)

    plan = [
        # fault-free interval sweep: the steady-state overhead rows
        ("clean-ckpt-1", "none", 1, True),
        ("clean-ckpt-4", "none", 4, True),
        # iteration-kill sweep: one row per recovery mode
        ("resume-ckpt-1", "kill", 1, True),
        ("resume-ckpt-4", "kill", 4, True),
        ("replay-query", "kill", 0, True),
        ("full-restart", "kill", 0, False),
    ]
    rows = [baseline_row]
    results = [baseline_result]
    for mode, fault, interval, with_recovery in plan:
        result, row = _run_once(
            mode, fault, interval, seed, num_users, num_carts, with_recovery
        )
        rows.append(row)
        results.append(result)
    for row, result in zip(rows, results):
        row.model_matches = _model_key(result.ml_result.model) == baseline_key
    return rows


def report(rows: list[CheckpointAblationRow]) -> str:
    table = [
        [
            r.mode,
            r.fault,
            f"{r.interval}",
            r.tier or "-",
            f"{r.attempts}/{r.train_attempts}",
            f"{r.wall_seconds * 1000:.0f} ms",
            f"{r.stream_bytes}",
            f"{r.checkpoint_bytes}",
            f"{r.replay_bytes}",
            "yes" if r.model_matches else "NO",
        ]
        for r in rows
    ]
    return "\n".join(
        [
            "Ablation G — checkpoint interval vs ML-stage fault recovery (§6)",
            format_table(
                [
                    "mode",
                    "fault",
                    "intvl",
                    "tier",
                    "att/train",
                    "wall",
                    "stream bytes",
                    "ckpt bytes",
                    "replay bytes",
                    "model ok",
                ],
                table,
            ),
        ]
    )


def main() -> None:  # pragma: no cover - CLI entry
    print(report(run_checkpoint_ablation()))


if __name__ == "__main__":  # pragma: no cover
    main()
