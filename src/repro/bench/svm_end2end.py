"""In-text §7 number: DFS read + 10 SVM-SGD iterations took 774 seconds.

"For example, reading the transformed data from HDFS and running the
SVMWithSGD for 10 iterations took 774 seconds" — with the 46 s DFS read
that implies ~73 s per SGD iteration over the 5.6 GB dataset.  This harness
reproduces the decomposition: transformed data is materialized once, then
read into the ML system and trained, reporting ingest and train separately.
"""

from dataclasses import dataclass

from repro.bench.common import BenchSetup, make_bench_setup


@dataclass
class SvmEndToEndRow:
    """The reproduced in-text decomposition."""

    ingest_sim_seconds: float
    train_sim_seconds: float
    total_sim_seconds: float
    iterations: int
    accuracy_hint: float  # training-set accuracy, sanity only


def run_svm_end2end(
    setup: BenchSetup | None = None, iterations: int = 10
) -> SvmEndToEndRow:
    setup = setup or make_bench_setup()
    wl = setup.workload
    result = setup.pipeline.run_insql(
        wl.prep_sql, wl.spec, "svm_with_sgd", {"iterations": iterations}
    )
    ingest = result.stage("input for ml").sim_seconds
    train = result.stage("ml train").sim_seconds
    X, y = result.ml_result.dataset.to_arrays()
    predictions = result.ml_result.model.predict_many(X)
    accuracy = float((predictions == y).mean()) if len(y) else 0.0
    return SvmEndToEndRow(
        ingest_sim_seconds=ingest,
        train_sim_seconds=train,
        total_sim_seconds=ingest + train,
        iterations=iterations,
        accuracy_hint=accuracy,
    )


def report(row: SvmEndToEndRow) -> str:
    return "\n".join(
        [
            "In-text §7 — DFS read + SVMWithSGD x10 (simulated paper-scale seconds)",
            f"  input for ml : {row.ingest_sim_seconds:7.1f} s   (paper: 46 s)",
            f"  ml train x{row.iterations:<3}: {row.train_sim_seconds:7.1f} s   (paper: ~728 s)",
            f"  total        : {row.total_sim_seconds:7.1f} s   (paper: 774 s)",
            f"  (training-set accuracy of the fitted model: {row.accuracy_hint:.3f})",
        ]
    )


def main() -> None:  # pragma: no cover - CLI entry
    print(report(run_svm_end2end()))


if __name__ == "__main__":  # pragma: no cover
    main()
