"""Benchmark harnesses regenerating the paper's figures.

Each module exposes ``run_*(...)`` returning structured rows plus a
``report(rows)`` formatter, and is executable as a script::

   python -m repro.bench.figure3
   python -m repro.bench.figure4
   python -m repro.bench.svm_end2end
   python -m repro.bench.ablation_buffers
   python -m repro.bench.ablation_parallelism
   python -m repro.bench.ablation_rewriter

The pytest-benchmark wrappers in ``benchmarks/`` call the same code and
assert the paper-shape invariants (who wins, by roughly what factor).

Submodules are imported lazily — import the one you need directly.
"""

__all__ = [
    "ablation_buffers",
    "ablation_parallelism",
    "ablation_rewriter",
    "common",
    "figure3",
    "figure4",
    "multitenant",
    "overload",
    "svm_end2end",
]
