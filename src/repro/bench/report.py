"""One-shot report: regenerate every experiment in a single run.

``python -m repro.bench.report`` runs Figures 3 and 4, the in-text §7
decomposition, and all four ablations on a shared workload, printing the
same sections EXPERIMENTS.md records.  ``--fast`` shrinks the workload for
smoke runs.
"""

import argparse
import sys
import time

from repro.bench import (  # noqa: F401 (import side: submodule list)
    ablation_broker,
    ablation_buffers,
    ablation_parallelism,
    ablation_rewriter,
    figure3,
    figure4,
    svm_end2end,
)
from repro.bench.common import make_bench_setup


def run_all(fast: bool = False, out=sys.stdout) -> None:
    """Run every harness, streaming sections to ``out``."""
    sizes = dict(num_users=600, num_carts=6_000) if fast else {}
    started = time.perf_counter()

    def section(title: str, body: str) -> None:
        out.write(f"\n{'=' * 72}\n{title}\n{'=' * 72}\n{body}\n")

    setup = make_bench_setup(**sizes)
    section("Figure 3", figure3.report(figure3.run_figure3(setup)))
    section("Figure 4", figure4.report(figure4.run_figure4(make_bench_setup(**sizes))))
    section(
        "In-text §7 (SVM end-to-end)",
        svm_end2end.report(svm_end2end.run_svm_end2end(make_bench_setup(**sizes))),
    )
    section(
        "Ablation A (buffers)",
        ablation_buffers.report(ablation_buffers.run_buffer_ablation()),
    )
    section(
        "Ablation B (parallelism & locality)",
        ablation_parallelism.report(ablation_parallelism.run_parallelism_ablation()),
    )
    section(
        "Ablation C (rewriter reuse)",
        ablation_rewriter.report(ablation_rewriter.run_rewriter_ablation()),
    )
    section(
        "Ablation D (broker vs streaming)",
        ablation_broker.report(ablation_broker.run_broker_ablation()),
    )
    out.write(
        f"\nall experiments regenerated in {time.perf_counter() - started:.1f}s "
        "wall (timings above are simulated paper-scale seconds)\n"
    )


def main() -> None:  # pragma: no cover - CLI entry
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--fast", action="store_true", help="smaller workload")
    args = parser.parse_args()
    run_all(fast=args.fast)


if __name__ == "__main__":  # pragma: no cover
    main()
