"""Checkpointing of iterative ML training state (§6 ML-stage recovery).

The streaming transfer of §3 deliberately never lands the SQL output on the
DFS, so an analytics-side failure after ingest has nothing to re-read — the
paper's observation that "the whole integration pipeline has to be restarted
from scratch".  This package restores MapReduce-style restartability for the
ML stage itself: :class:`CheckpointStore` persists checksummed, versioned
snapshots of iterative-model state to the simulated HDFS with atomic
write-then-rename, and :class:`TrainCheckpointer` is the per-job hook the
iterative trainers call at every iteration boundary.
"""

from repro.checkpoint.store import CheckpointStore, TrainCheckpointer

__all__ = ["CheckpointStore", "TrainCheckpointer"]
