"""Checksummed, versioned training checkpoints on the simulated HDFS.

File format (one checkpoint = one DFS file)::

   +--------+---------+-----------+-------------+----------------+
   | magic  | version | crc32     | payload len | pickled state  |
   | 4s     | >H      | >I        | >Q          | ...            |
   +--------+---------+-----------+-------------+----------------+

The payload is a plain ``dict`` produced by the trainer (weights/centers,
iteration counter, RNG bit-generator state, optimizer step) — the store
never interprets it beyond the ``algorithm`` tag used as a resume guard.

Durability discipline:

* **atomic commit** — the blob is written to ``<file>.tmp`` and renamed
  into place, so a crash mid-write never leaves a half-visible checkpoint
  (readers only ever list committed ``ckpt-*.bin`` names);
* **versioning** — every save gets the next monotonically increasing
  version; :meth:`CheckpointStore.load_latest` walks versions newest-first
  and falls back past any checkpoint whose checksum fails, so a corrupted
  latest file degrades to the previous good one instead of poisoning the
  resume;
* **dedicated accounting** — logical checkpoint traffic is charged to the
  ``checkpoint.write`` / ``checkpoint.read`` ledger counters (on top of the
  physical ``dfs.*`` counters the DFS itself records), and checkpointing is
  off by default, so the fault-free Figure 3/4 byte totals are untouched.
"""

import pickle
import struct
import threading
import zlib

from repro.common.errors import (
    CheckpointCorruptError,
    CheckpointError,
    StorageFullError,
)

_MAGIC = b"RCKP"
_FORMAT_VERSION = 1
_HEADER = struct.Struct(">4sHIQ")  # magic, format version, crc32, payload len


def encode_checkpoint(state: dict) -> bytes:
    """Serialize one state dict into the framed, checksummed blob."""
    payload = pickle.dumps(state, protocol=4)
    crc = zlib.crc32(payload) & 0xFFFFFFFF
    return _HEADER.pack(_MAGIC, _FORMAT_VERSION, crc, len(payload)) + payload


def decode_checkpoint(blob: bytes) -> dict:
    """Parse and validate a checkpoint blob; raises on any damage."""
    if len(blob) < _HEADER.size:
        raise CheckpointCorruptError(f"checkpoint truncated: {len(blob)} bytes")
    magic, fmt, crc, length = _HEADER.unpack_from(blob)
    if magic != _MAGIC:
        raise CheckpointCorruptError(f"bad checkpoint magic {magic!r}")
    if fmt != _FORMAT_VERSION:
        raise CheckpointCorruptError(f"unsupported checkpoint format v{fmt}")
    payload = blob[_HEADER.size :]
    if len(payload) != length:
        raise CheckpointCorruptError(
            f"checkpoint payload length {len(payload)} != header {length}"
        )
    if (zlib.crc32(payload) & 0xFFFFFFFF) != crc:
        raise CheckpointCorruptError("checkpoint checksum mismatch")
    try:
        state = pickle.loads(payload)
    except Exception as exc:  # crc passed but pickle is damaged
        raise CheckpointCorruptError(f"checkpoint payload undecodable: {exc}") from exc
    if not isinstance(state, dict):
        raise CheckpointCorruptError(f"checkpoint payload is {type(state).__name__}")
    return state


class CheckpointStore:
    """Per-deployment checkpoint directory on the simulated DFS."""

    def __init__(
        self,
        dfs,
        base_dir: str = "/checkpoints",
        ledger=None,
        injector=None,
        client_ip: str | None = None,
    ):
        self.dfs = dfs
        self.base_dir = base_dir.rstrip("/")
        self.ledger = ledger
        self.injector = injector  # FaultInjector | None (§6 checkpoint chaos)
        self.client_ip = client_ip
        self._lock = threading.Lock()
        self.writes = 0
        self.write_failures = 0
        self.corrupt_detected = 0
        self.bytes_written = 0
        self.bytes_read = 0
        self.enospc_prunes = 0  # old versions deleted to make room

    # ------------------------------------------------------------- namespace

    def _job_dir(self, job_id: str) -> str:
        return f"{self.base_dir}/{job_id}"

    def _path(self, job_id: str, version: int) -> str:
        return f"{self._job_dir(job_id)}/ckpt-{version:06d}.bin"

    def versions(self, job_id: str) -> list[int]:
        """Committed checkpoint versions of a job, ascending."""
        job_dir = self._job_dir(job_id)
        if not self.dfs.exists(job_dir):
            return []
        found = []
        for path in self.dfs.listdir(job_dir):
            name = path.rsplit("/", 1)[-1]
            if name.startswith("ckpt-") and name.endswith(".bin"):
                try:
                    found.append(int(name[len("ckpt-") : -len(".bin")]))
                except ValueError:
                    continue
        return sorted(found)

    def delete_job(self, job_id: str) -> None:
        """Drop every checkpoint of a finished job."""
        job_dir = self._job_dir(job_id)
        if self.dfs.exists(job_dir):
            self.dfs.delete(job_dir, recursive=True)

    def export(self, job_id: str) -> dict[str, bytes]:
        """Raw bytes of every committed checkpoint (for CI artifacts)."""
        return {
            self._path(job_id, v).rsplit("/", 1)[-1]: self.dfs.read_bytes(
                self._path(job_id, v), client_ip=self.client_ip
            )
            for v in self.versions(job_id)
        }

    # ------------------------------------------------------------ save/load

    def save(self, job_id: str, state: dict) -> int:
        """Atomically commit one checkpoint; returns its version.

        Injected ``checkpoint.write_fail`` faults fire *between* the tmp
        write and the rename — the window where a real crash would land —
        so the committed namespace never sees a partial file.  Injected
        ``checkpoint.corrupt`` faults flip payload bytes after the checksum
        is computed, so the damage is always detectable at load time.

        ENOSPC ladder: when the DFS refuses the tmp write with
        :class:`StorageFullError` (capacity or an injected window, after
        the write pipeline's own replica redirection), the store prunes
        this job's older committed versions — the newest stays, resumes
        must keep working — and retries once.  Only when the cluster is
        full even after pruning does the failure escalate, as a typed
        :class:`CheckpointError` (which the best-effort
        :class:`TrainCheckpointer` counts instead of crashing training).
        """
        with self._lock:
            existing = self.versions(job_id)
            version = (existing[-1] + 1) if existing else 1
            payload = pickle.dumps(state, protocol=4)
            crc = zlib.crc32(payload) & 0xFFFFFFFF
            if self.injector is not None:
                payload = self.injector.corrupt_checkpoint(
                    payload, f"checkpoint/{job_id}/{version}"
                )
            blob = _HEADER.pack(_MAGIC, _FORMAT_VERSION, crc, len(payload)) + payload
            path = self._path(job_id, version)
            tmp = f"{path}.tmp"
            self.dfs.mkdirs(self._job_dir(job_id))
            if self.dfs.exists(tmp):  # stale tmp from an earlier failed save
                self.dfs.delete(tmp)
            try:
                try:
                    self.dfs.write_bytes(tmp, blob, client_ip=self.client_ip)
                except StorageFullError as exc:
                    pruned = self._prune_for_space(job_id, keep=1)
                    if pruned == 0:
                        raise CheckpointError(
                            f"checkpoint {job_id} v{version}: storage full and "
                            "nothing left to prune"
                        ) from exc
                    try:
                        self.dfs.write_bytes(tmp, blob, client_ip=self.client_ip)
                    except StorageFullError as retry_exc:
                        raise CheckpointError(
                            f"checkpoint {job_id} v{version}: storage full even "
                            f"after pruning {pruned} old version(s)"
                        ) from retry_exc
                if self.injector is not None:
                    self.injector.check_checkpoint_write(
                        f"checkpoint/{job_id}/{version}"
                    )
                self.dfs.rename(tmp, path, overwrite=True)
            except CheckpointError:
                self.write_failures += 1
                raise
            self.writes += 1
            self.bytes_written += len(blob)
            if self.ledger is not None:
                self.ledger.add("checkpoint.write", len(blob))
            return version

    def _prune_for_space(self, job_id: str, keep: int = 1) -> int:
        """Delete this job's oldest committed versions (keeping the newest
        ``keep``) to free replica space; returns how many were pruned.
        Caller holds the lock."""
        versions = self.versions(job_id)
        victims = versions[:-keep] if keep else versions
        pruned = 0
        for version in victims:
            self.dfs.delete(self._path(job_id, version))
            pruned += 1
        if pruned:
            self.enospc_prunes += pruned
            if self.ledger is not None:
                self.ledger.add("checkpoint.enospc_prune", pruned)
        return pruned

    def load(self, job_id: str, version: int) -> dict:
        """Load and validate one specific checkpoint version."""
        blob = self.dfs.read_bytes(self._path(job_id, version), client_ip=self.client_ip)
        state = decode_checkpoint(blob)
        with self._lock:
            self.bytes_read += len(blob)
        if self.ledger is not None:
            self.ledger.add("checkpoint.read", len(blob))
        return state

    def load_latest(self, job_id: str) -> tuple[dict, int] | None:
        """Newest checkpoint that validates, or None.

        Corrupted versions are counted and skipped — the fall-back-to-older
        behavior that makes ``checkpoint.corrupt`` chaos survivable.
        """
        for version in reversed(self.versions(job_id)):
            try:
                return self.load(job_id, version), version
            except CheckpointCorruptError:
                with self._lock:
                    self.corrupt_detected += 1
        return None


class TrainCheckpointer:
    """Per-job iteration hooks handed to the iterative trainers.

    ``iteration_done(t, state_fn)`` is called at every iteration boundary:
    it saves a checkpoint when ``t`` hits the interval (``state_fn`` is only
    invoked when a save is due), then gives the fault injector its
    ``ml.iteration_kill`` window.  Checkpoint *write* failures are swallowed
    — checkpointing is best-effort and must never fail a healthy run — but
    they are counted by the store and recorded by the injector.

    A checkpointer may exist without a store (``can_resume`` False): it then
    acts purely as the iteration-kill conduit for chaos runs that test the
    no-checkpoint recovery tiers.

    With a session :class:`~repro.runtime.budget.Budget` attached, the
    iteration boundary is also where trainers observe cancellation and
    deadlines: the budget check runs *after* the maybe-save, so an aborting
    trainer has always committed its last due checkpoint — a later retry of
    the same job id resumes instead of restarting.
    """

    def __init__(
        self,
        job_id: str,
        store: CheckpointStore | None = None,
        interval: int = 1,
        injector=None,
        budget=None,
    ):
        self.job_id = job_id
        self.store = store
        self.interval = max(int(interval), 1)
        self.injector = injector
        self.budget = budget
        self.saves = 0
        self.save_failures = 0
        self.restored_iteration: int | None = None

    @property
    def can_resume(self) -> bool:
        return self.store is not None

    def restore(self, algorithm: str) -> dict | None:
        """Latest valid state for this job, or None for a fresh start.

        ``algorithm`` guards against resuming one trainer from another's
        state (a stable job id reused across pipeline attempts must still
        never cross algorithms).
        """
        if self.store is None:
            return None
        loaded = self.store.load_latest(self.job_id)
        if loaded is None:
            return None
        state, _version = loaded
        if state.get("algorithm") != algorithm:
            return None
        self.restored_iteration = int(state.get("iteration", 0))
        return state

    def iteration_done(self, iteration: int, state_fn) -> None:
        """One iteration boundary: maybe save, then maybe stop.

        Order: save first (the last due checkpoint is always committed
        before an abort), then the budget check — raising the typed
        :class:`~repro.common.errors.SessionCancelled` /
        :class:`~repro.common.errors.DeadlineExceeded`, which are *not*
        ``MLError`` so the in-place training retry loop never swallows
        them — then the injected iteration-kill window.
        """
        if self.store is not None and iteration % self.interval == 0:
            try:
                self.store.save(self.job_id, state_fn())
                self.saves += 1
            except CheckpointError:
                self.save_failures += 1
        if self.budget is not None:
            self.budget.check(f"training iteration {iteration}")
        if self.injector is not None:
            self.injector.check_train_kill(self.job_id, iteration)
