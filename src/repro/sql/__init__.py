"""A partition-parallel ("big") SQL engine with UDF extensibility.

This is the reproduction's stand-in for IBM Big SQL 3.0 / any MPP database or
SQL-on-Hadoop engine.  The paper's techniques only require two properties of
the SQL system, and this engine provides exactly them:

* **massive parallelism** — tables are partitioned across worker slots (one
  per cluster worker node); scans, filters, projections, joins (broadcast or
  repartition), DISTINCT and aggregation all execute per-partition on a
  thread pool, with exchange operators accounting shuffled bytes;
* **UDF extensibility** — scalar UDFs usable in any expression, and
  *parallel table UDFs* (``SELECT ... FROM TABLE(udf(input, args...))``) that
  see one partition at a time plus a worker context.  All of the paper's
  machinery (recoding pass 1/2, dummy coding, the streaming sender) is built
  as UDFs on this public interface, not as engine specials.

Entry point: :class:`~repro.sql.engine.BigSQL`.
"""

from repro.sql.engine import BigSQL
from repro.sql.table import Partition, Table
from repro.sql.types import Column, DataType, Schema
from repro.sql.udf import TableUDF, UdfContext

__all__ = [
    "BigSQL",
    "Column",
    "DataType",
    "Partition",
    "Schema",
    "Table",
    "TableUDF",
    "UdfContext",
]
