"""SQL tokenizer."""

import re
from dataclasses import dataclass

from repro.common.errors import ParseError

KEYWORDS = {
    "select", "distinct", "from", "where", "group", "by", "having", "order",
    "limit", "as", "and", "or", "not", "in", "between", "like", "is", "null",
    "true", "false", "join", "inner", "left", "outer", "on", "case", "when",
    "then", "else", "end", "table", "asc", "desc", "union", "all",
}

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<comment>--[^\n]*)
  | (?P<number>\d+\.\d*(?:[eE][+-]?\d+)?|\.\d+(?:[eE][+-]?\d+)?|\d+(?:[eE][+-]?\d+)?)
  | (?P<string>'(?:[^']|'')*')
  | (?P<ident>[A-Za-z_][A-Za-z_0-9]*)
  | (?P<qident>"[^"]+")
  | (?P<op><>|!=|<=|>=|=|<|>|\+|-|\*|/|%|\(|\)|,|\.|;)
    """,
    re.VERBOSE,
)


@dataclass(frozen=True)
class Token:
    """One lexical token: kind is keyword/ident/number/string/op/eof."""

    kind: str
    value: str
    position: int

    def is_keyword(self, word: str) -> bool:
        return self.kind == "keyword" and self.value == word.lower()

    def is_op(self, op: str) -> bool:
        return self.kind == "op" and self.value == op


def tokenize(sql: str) -> list[Token]:
    """Tokenize SQL text; raises :class:`ParseError` on illegal characters."""
    tokens: list[Token] = []
    position = 0
    length = len(sql)
    while position < length:
        match = _TOKEN_RE.match(sql, position)
        if match is None:
            raise ParseError(f"illegal character {sql[position]!r}", position)
        kind = match.lastgroup
        text = match.group()
        if kind == "ws" or kind == "comment":
            position = match.end()
            continue
        if kind == "number":
            tokens.append(Token("number", text, position))
        elif kind == "string":
            tokens.append(Token("string", text[1:-1].replace("''", "'"), position))
        elif kind == "ident":
            lowered = text.lower()
            if lowered in KEYWORDS:
                tokens.append(Token("keyword", lowered, position))
            else:
                tokens.append(Token("ident", text, position))
        elif kind == "qident":
            tokens.append(Token("ident", text[1:-1], position))
        elif kind == "op":
            op = "<>" if text == "!=" else text
            tokens.append(Token("op", op, position))
        position = match.end()
    tokens.append(Token("eof", "", length))
    return tokens
