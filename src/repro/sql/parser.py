"""Recursive-descent SQL parser.

Supported grammar (enough for the paper's workloads, the transformation
queries of §2, the cache-reuse queries of §5, and general testing):

.. code-block:: text

   query      := SELECT [DISTINCT] item ("," item)*
                 FROM tableRef ("," tableRef)*
                 [WHERE expr] [GROUP BY expr ("," expr)*] [HAVING expr]
                 [ORDER BY orderItem ("," orderItem)*] [LIMIT int]
   item       := "*" | expr [[AS] ident]
   tableRef   := primaryRef (joinClause)*
   joinClause := [INNER | LEFT [OUTER]] JOIN primaryRef ON expr
   primaryRef := ident [[AS] ident]
               | TABLE "(" ident "(" tfInput ("," expr)* ")" ")" [[AS] ident]
               | "(" query ")" [AS] ident
   tfInput    := ident | "(" query ")"
   expr       := or-expr with AND/OR/NOT, comparisons, IS [NOT] NULL,
                 [NOT] IN, [NOT] BETWEEN, [NOT] LIKE, + - * / %,
                 CASE WHEN, function calls, literals, column refs
"""

from repro.common.errors import ParseError
from repro.sql.ast import (
    Join,
    NamedTable,
    OrderItem,
    SelectItem,
    SelectQuery,
    SubqueryRef,
    TableFunction,
    TableRef,
    UnionAll,
)
from repro.sql.expressions import (
    AGGREGATE_FUNCTIONS,
    AggregateCall,
    And,
    Arithmetic,
    Between,
    CaseWhen,
    ColumnRef,
    Comparison,
    Expr,
    FuncCall,
    InList,
    IsNull,
    Like,
    Literal,
    Negate,
    Not,
    Or,
    Star,
)
from repro.sql.lexer import Token, tokenize


def parse(sql: str) -> "SelectQuery | UnionAll":
    """Parse SQL text into a query AST (raises ParseError).

    Returns a :class:`SelectQuery`, or a :class:`UnionAll` when the text
    contains top-level ``UNION ALL`` branches.
    """
    return Parser(tokenize(sql)).parse_statement()


def parse_expression(sql: str) -> Expr:
    """Parse a standalone scalar/boolean expression (for tests and tools)."""
    parser = Parser(tokenize(sql))
    expr = parser.parse_expr()
    parser.expect_eof()
    return expr


class Parser:
    """One-token-lookahead recursive-descent parser over a token list."""

    def __init__(self, tokens: list[Token]):
        self._tokens = tokens
        self._pos = 0

    # ------------------------------------------------------------- plumbing

    def _peek(self) -> Token:
        return self._tokens[self._pos]

    def _advance(self) -> Token:
        token = self._tokens[self._pos]
        if token.kind != "eof":
            self._pos += 1
        return token

    def _accept_keyword(self, word: str) -> bool:
        if self._peek().is_keyword(word):
            self._advance()
            return True
        return False

    def _accept_op(self, op: str) -> bool:
        if self._peek().is_op(op):
            self._advance()
            return True
        return False

    def _expect_keyword(self, word: str) -> None:
        token = self._peek()
        if not token.is_keyword(word):
            raise ParseError(f"expected {word.upper()}, found {token.value!r}", token.position)
        self._advance()

    def _expect_op(self, op: str) -> None:
        token = self._peek()
        if not token.is_op(op):
            raise ParseError(f"expected {op!r}, found {token.value!r}", token.position)
        self._advance()

    def _expect_ident(self) -> str:
        token = self._peek()
        if token.kind != "ident":
            raise ParseError(f"expected identifier, found {token.value!r}", token.position)
        self._advance()
        return token.value

    def expect_eof(self) -> None:
        token = self._peek()
        if token.kind == "op" and token.value == ";":
            self._advance()
            token = self._peek()
        if token.kind != "eof":
            raise ParseError(f"unexpected trailing input {token.value!r}", token.position)

    # ------------------------------------------------------------ statement

    def parse_statement(self) -> "SelectQuery | UnionAll":
        branches = [self._parse_select()]
        while self._accept_keyword("union"):
            self._expect_keyword("all")
            branches.append(self._parse_select())
        self.expect_eof()
        if len(branches) == 1:
            return branches[0]
        return UnionAll(tuple(branches))

    def _parse_select(self) -> SelectQuery:
        self._expect_keyword("select")
        distinct = self._accept_keyword("distinct")
        items = [self._parse_select_item()]
        while self._accept_op(","):
            items.append(self._parse_select_item())
        self._expect_keyword("from")
        from_refs = [self._parse_table_ref()]
        while self._accept_op(","):
            from_refs.append(self._parse_table_ref())
        where = self.parse_expr() if self._accept_keyword("where") else None
        group_by: list[Expr] = []
        if self._accept_keyword("group"):
            self._expect_keyword("by")
            group_by.append(self.parse_expr())
            while self._accept_op(","):
                group_by.append(self.parse_expr())
        having = self.parse_expr() if self._accept_keyword("having") else None
        order_by: list[OrderItem] = []
        if self._accept_keyword("order"):
            self._expect_keyword("by")
            order_by.append(self._parse_order_item())
            while self._accept_op(","):
                order_by.append(self._parse_order_item())
        limit = None
        if self._accept_keyword("limit"):
            token = self._peek()
            if token.kind != "number" or "." in token.value:
                raise ParseError("LIMIT requires an integer", token.position)
            self._advance()
            limit = int(token.value)
        return SelectQuery(
            items=tuple(items),
            from_refs=tuple(from_refs),
            where=where,
            group_by=tuple(group_by),
            having=having,
            order_by=tuple(order_by),
            limit=limit,
            distinct=distinct,
        )

    def _parse_select_item(self) -> SelectItem:
        if self._peek().is_op("*"):
            self._advance()
            return SelectItem(Star())
        expr = self.parse_expr()
        alias = None
        if self._accept_keyword("as"):
            alias = self._expect_ident()
        elif self._peek().kind == "ident":
            alias = self._expect_ident()
        return SelectItem(expr, alias)

    def _parse_order_item(self) -> OrderItem:
        expr = self.parse_expr()
        ascending = True
        if self._accept_keyword("desc"):
            ascending = False
        else:
            self._accept_keyword("asc")
        return OrderItem(expr, ascending)

    # ----------------------------------------------------------- table refs

    def _parse_table_ref(self) -> TableRef:
        ref = self._parse_primary_ref()
        while True:
            kind = None
            if self._accept_keyword("join") or (
                self._accept_keyword("inner") and (self._expect_keyword("join") or True)
            ):
                kind = "inner"
            elif self._peek().is_keyword("left"):
                self._advance()
                self._accept_keyword("outer")
                self._expect_keyword("join")
                kind = "left"
            if kind is None:
                return ref
            right = self._parse_primary_ref()
            self._expect_keyword("on")
            condition = self.parse_expr()
            ref = Join(left=ref, right=right, kind=kind, condition=condition)

    def _parse_primary_ref(self) -> TableRef:
        token = self._peek()
        if token.is_keyword("table"):
            return self._parse_table_function()
        if token.is_op("("):
            self._advance()
            query = self._parse_select()
            self._expect_op(")")
            self._accept_keyword("as")
            alias = self._expect_ident()
            return SubqueryRef(query, alias)
        name = self._expect_ident()
        alias = None
        if self._accept_keyword("as"):
            alias = self._expect_ident()
        elif self._peek().kind == "ident":
            alias = self._expect_ident()
        return NamedTable(name, alias)

    def _parse_table_function(self) -> TableFunction:
        self._expect_keyword("table")
        self._expect_op("(")
        udf_name = self._expect_ident()
        self._expect_op("(")
        input_ref = self._parse_tf_input()
        args: list[Expr] = []
        while self._accept_op(","):
            args.append(self.parse_expr())
        self._expect_op(")")
        self._expect_op(")")
        alias = None
        if self._accept_keyword("as"):
            alias = self._expect_ident()
        elif self._peek().kind == "ident":
            alias = self._expect_ident()
        return TableFunction(udf_name, input_ref, tuple(args), alias)

    def _parse_tf_input(self) -> TableRef:
        if self._accept_op("("):
            query = self._parse_select()
            self._expect_op(")")
            return SubqueryRef(query, alias="_tf_input")
        name = self._expect_ident()
        return NamedTable(name, None)

    # ---------------------------------------------------------- expressions

    def parse_expr(self) -> Expr:
        return self._parse_or()

    def _parse_or(self) -> Expr:
        operands = [self._parse_and()]
        while self._accept_keyword("or"):
            operands.append(self._parse_and())
        if len(operands) == 1:
            return operands[0]
        return Or(tuple(operands))

    def _parse_and(self) -> Expr:
        operands = [self._parse_not()]
        while self._accept_keyword("and"):
            operands.append(self._parse_not())
        if len(operands) == 1:
            return operands[0]
        return And(tuple(operands))

    def _parse_not(self) -> Expr:
        if self._accept_keyword("not"):
            return Not(self._parse_not())
        return self._parse_predicate()

    def _parse_predicate(self) -> Expr:
        left = self._parse_additive()
        token = self._peek()
        if token.kind == "op" and token.value in ("=", "<>", "<", "<=", ">", ">="):
            self._advance()
            right = self._parse_additive()
            return Comparison(token.value, left, right)
        if token.is_keyword("is"):
            self._advance()
            negated = self._accept_keyword("not")
            self._expect_keyword("null")
            return IsNull(left, negated)
        negated = False
        if token.is_keyword("not"):
            self._advance()
            negated = True
            token = self._peek()
        if token.is_keyword("in"):
            self._advance()
            self._expect_op("(")
            values = [self.parse_expr()]
            while self._accept_op(","):
                values.append(self.parse_expr())
            self._expect_op(")")
            return InList(left, tuple(values), negated)
        if token.is_keyword("between"):
            self._advance()
            low = self._parse_additive()
            self._expect_keyword("and")
            high = self._parse_additive()
            return Between(left, low, high, negated)
        if token.is_keyword("like"):
            self._advance()
            pattern_token = self._peek()
            if pattern_token.kind != "string":
                raise ParseError("LIKE requires a string pattern", pattern_token.position)
            self._advance()
            return Like(left, pattern_token.value, negated)
        if negated:
            raise ParseError("NOT must be followed by IN, BETWEEN, or LIKE here", token.position)
        return left

    def _parse_additive(self) -> Expr:
        left = self._parse_multiplicative()
        while True:
            token = self._peek()
            if token.kind == "op" and token.value in ("+", "-"):
                self._advance()
                right = self._parse_multiplicative()
                left = Arithmetic(token.value, left, right)
            else:
                return left

    def _parse_multiplicative(self) -> Expr:
        left = self._parse_unary()
        while True:
            token = self._peek()
            if token.kind == "op" and token.value in ("*", "/", "%"):
                self._advance()
                right = self._parse_unary()
                left = Arithmetic(token.value, left, right)
            else:
                return left

    def _parse_unary(self) -> Expr:
        if self._accept_op("-"):
            operand = self._parse_unary()
            # Fold a minus applied to a numeric literal into the literal, so
            # "-5" roundtrips as Literal(-5) rather than Negate(Literal(5)).
            if isinstance(operand, Literal) and isinstance(operand.value, (int, float)):
                return Literal(-operand.value)
            return Negate(operand)
        if self._accept_op("+"):
            return self._parse_unary()
        return self._parse_primary()

    def _parse_primary(self) -> Expr:
        token = self._peek()
        if token.kind == "number":
            self._advance()
            text = token.value
            if "." in text or "e" in text.lower():
                return Literal(float(text))
            return Literal(int(text))
        if token.kind == "string":
            self._advance()
            return Literal(token.value)
        if token.is_keyword("null"):
            self._advance()
            return Literal(None)
        if token.is_keyword("true"):
            self._advance()
            return Literal(True)
        if token.is_keyword("false"):
            self._advance()
            return Literal(False)
        if token.is_keyword("case"):
            return self._parse_case()
        if token.is_op("("):
            self._advance()
            expr = self.parse_expr()
            self._expect_op(")")
            return expr
        if token.kind == "ident":
            return self._parse_ident_expr()
        raise ParseError(f"unexpected token {token.value!r}", token.position)

    def _parse_case(self) -> Expr:
        self._expect_keyword("case")
        whens: list[tuple[Expr, Expr]] = []
        while self._accept_keyword("when"):
            condition = self.parse_expr()
            self._expect_keyword("then")
            result = self.parse_expr()
            whens.append((condition, result))
        if not whens:
            raise ParseError("CASE requires at least one WHEN", self._peek().position)
        otherwise = None
        if self._accept_keyword("else"):
            otherwise = self.parse_expr()
        self._expect_keyword("end")
        return CaseWhen(tuple(whens), otherwise)

    def _parse_ident_expr(self) -> Expr:
        name = self._expect_ident()
        if self._accept_op("("):
            return self._finish_call(name)
        if self._accept_op("."):
            column = self._expect_ident()
            return ColumnRef(name, column)
        return ColumnRef(None, name)

    def _finish_call(self, name: str) -> Expr:
        lowered = name.lower()
        distinct = False
        args: list[Expr] = []
        if self._peek().is_op(")"):
            self._advance()
            if lowered in AGGREGATE_FUNCTIONS:
                raise ParseError(f"{name} requires an argument", self._peek().position)
            return FuncCall(lowered, ())
        if lowered in AGGREGATE_FUNCTIONS and self._accept_keyword("distinct"):
            distinct = True
        if self._peek().is_op("*"):
            self._advance()
            self._expect_op(")")
            if lowered != "count":
                raise ParseError(f"{name}(*) is only valid for COUNT", self._peek().position)
            return AggregateCall("count", Star(), distinct)
        args.append(self.parse_expr())
        while self._accept_op(","):
            args.append(self.parse_expr())
        self._expect_op(")")
        if lowered in AGGREGATE_FUNCTIONS:
            if len(args) != 1:
                raise ParseError(f"{name} takes exactly one argument", self._peek().position)
            return AggregateCall(lowered, args[0], distinct)
        return FuncCall(lowered, tuple(args))
