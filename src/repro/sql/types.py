"""SQL data types, columns, and schemas."""

import enum
from dataclasses import dataclass

from repro.common.errors import PlanError


class DataType(enum.Enum):
    """The scalar types the engine supports."""

    INT = "INT"
    BIGINT = "BIGINT"
    DOUBLE = "DOUBLE"
    VARCHAR = "VARCHAR"
    BOOLEAN = "BOOLEAN"

    @property
    def is_numeric(self) -> bool:
        return self in (DataType.INT, DataType.BIGINT, DataType.DOUBLE)

    def parse(self, text: str):
        """Parse a CSV field into a Python value (empty string -> NULL)."""
        if text == "" or text == r"\N":
            return None
        if self in (DataType.INT, DataType.BIGINT):
            return int(text)
        if self is DataType.DOUBLE:
            return float(text)
        if self is DataType.BOOLEAN:
            return text.strip().lower() in ("true", "t", "1", "yes")
        return text

    def render(self, value) -> str:
        """Render a Python value as a CSV field (NULL -> empty string)."""
        if value is None:
            return ""
        if self is DataType.DOUBLE:
            return repr(float(value))
        if self is DataType.BOOLEAN:
            return "true" if value else "false"
        return str(value)


@dataclass(frozen=True)
class Column:
    """A named, typed column, optionally qualified by its table alias."""

    name: str
    dtype: DataType
    qualifier: str | None = None

    def matches(self, qualifier: str | None, name: str) -> bool:
        """True when a reference ``qualifier.name`` resolves to this column."""
        if name.lower() != self.name.lower():
            return False
        if qualifier is None:
            return True
        return self.qualifier is not None and qualifier.lower() == self.qualifier.lower()

    def with_qualifier(self, qualifier: str | None) -> "Column":
        """Copy of this column under a new table alias."""
        return Column(self.name, self.dtype, qualifier)

    def __str__(self) -> str:
        if self.qualifier:
            return f"{self.qualifier}.{self.name} {self.dtype.value}"
        return f"{self.name} {self.dtype.value}"


class Schema:
    """An ordered list of columns with reference resolution.

    Column lookup implements SQL scoping: an unqualified name must match
    exactly one column; a qualified name must match a column carrying that
    qualifier.  Ambiguity and misses raise :class:`PlanError` with the
    candidate list, which makes planner errors debuggable.
    """

    def __init__(self, columns: list[Column] | tuple[Column, ...]):
        self.columns: tuple[Column, ...] = tuple(columns)

    @staticmethod
    def of(*pairs: tuple[str, DataType]) -> "Schema":
        """Shorthand: ``Schema.of(("age", DataType.INT), ...)``."""
        return Schema([Column(name, dtype) for name, dtype in pairs])

    @property
    def names(self) -> list[str]:
        return [c.name for c in self.columns]

    def __len__(self) -> int:
        return len(self.columns)

    def __iter__(self):
        return iter(self.columns)

    def __eq__(self, other) -> bool:
        return isinstance(other, Schema) and self.columns == other.columns

    def __hash__(self) -> int:
        return hash(self.columns)

    def __repr__(self) -> str:
        return "Schema(" + ", ".join(str(c) for c in self.columns) + ")"

    def column(self, index: int) -> Column:
        return self.columns[index]

    def resolve(self, qualifier: str | None, name: str) -> int:
        """Index of the column referenced by ``qualifier.name``."""
        matches = [
            i for i, c in enumerate(self.columns) if c.matches(qualifier, name)
        ]
        ref = f"{qualifier}.{name}" if qualifier else name
        if not matches:
            raise PlanError(
                f"unknown column {ref!r}; available: "
                + ", ".join(str(c) for c in self.columns)
            )
        if len(matches) > 1:
            raise PlanError(
                f"ambiguous column {ref!r}; matches: "
                + ", ".join(str(self.columns[i]) for i in matches)
            )
        return matches[0]

    def maybe_resolve(self, qualifier: str | None, name: str) -> int | None:
        """Like :meth:`resolve` but returns None when not found (still raises
        on ambiguity)."""
        try:
            return self.resolve(qualifier, name)
        except PlanError as exc:
            if "ambiguous" in str(exc):
                raise
            return None

    def with_qualifier(self, qualifier: str | None) -> "Schema":
        """All columns re-qualified under one alias (joins, subqueries)."""
        return Schema([c.with_qualifier(qualifier) for c in self.columns])

    def concat(self, other: "Schema") -> "Schema":
        """Schema of a join output: this schema followed by the other's."""
        return Schema(self.columns + other.columns)


def estimate_value_bytes(value) -> int:
    """Rough wire size of one value, for shuffle/stream accounting."""
    if value is None:
        return 1
    if isinstance(value, bool):
        return 1
    if isinstance(value, int):
        return 8
    if isinstance(value, float):
        return 8
    if isinstance(value, str):
        return len(value) + 4
    if isinstance(value, bytes):
        return len(value) + 4
    return 16


def estimate_row_bytes(row: tuple) -> int:
    """Rough wire size of one row."""
    return 2 + sum(estimate_value_bytes(v) for v in row)
