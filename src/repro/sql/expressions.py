"""Expression AST: evaluation, typing, references, and SQL rendering.

Expressions are frozen dataclasses, so two structurally identical expressions
compare and hash equal — the property the cache fingerprints (§5) and the
rewriter's predicate matching (§5.1/§5.2) are built on.

Evaluation uses SQL's three-valued logic: comparisons and arithmetic with a
NULL operand yield NULL; AND/OR follow Kleene logic; filters keep only rows
where the predicate is exactly TRUE.
"""

import re
from abc import ABC, abstractmethod
from collections.abc import Callable
from dataclasses import dataclass
from typing import Any

from repro.common.errors import PlanError
from repro.sql.types import DataType, Schema


class Binder:
    """Resolution context for binding expressions to a row layout."""

    def __init__(self, schema: Schema, functions: "FunctionRegistry | None" = None):
        self.schema = schema
        self.functions = functions or FunctionRegistry()


class Expr(ABC):
    """Base class of all expression nodes."""

    @abstractmethod
    def bind(self, binder: Binder) -> Callable[[tuple], Any]:
        """Compile to a row -> value evaluator."""

    def bind_batch(self, binder: Binder) -> Callable[[list[tuple]], list]:
        """Compile to a rows -> values evaluator over a whole partition.

        The executor's hot loops (filter, project, hash-key extraction) call
        this once per partition instead of dispatching ``bind``'s closure
        tree per row.  Node types whose scalar evaluation is unconditional
        override it to evaluate column-at-a-time with list comprehensions;
        short-circuiting nodes (AND/OR/CASE/COALESCE) keep this fallback so
        their lazy-evaluation semantics are untouched.
        """
        fn = self.bind(binder)
        return lambda rows: [fn(row) for row in rows]

    @abstractmethod
    def data_type(self, binder: Binder) -> DataType:
        """Static result type under the binder's schema."""

    @abstractmethod
    def references(self) -> set[tuple[str | None, str]]:
        """All (qualifier, column) pairs this expression reads."""

    @abstractmethod
    def to_sql(self) -> str:
        """Render back to SQL text (parseable by our parser)."""

    def contains_aggregate(self) -> bool:
        """True when an AggregateCall appears anywhere in this tree."""
        return any(isinstance(node, AggregateCall) for node in walk(self))


def walk(expr: Expr):
    """Yield ``expr`` and all its descendants."""
    yield expr
    for child in getattr(expr, "_children", lambda: [])():
        yield from walk(child)


def _sql_string(value: str) -> str:
    return "'" + value.replace("'", "''") + "'"


# --------------------------------------------------------------------- leaves


@dataclass(frozen=True)
class ColumnRef(Expr):
    """A possibly-qualified column reference like ``U.age`` or ``gender``."""

    qualifier: str | None
    name: str

    def bind(self, binder: Binder) -> Callable[[tuple], Any]:
        index = binder.schema.resolve(self.qualifier, self.name)
        return lambda row: row[index]

    def bind_batch(self, binder: Binder) -> Callable[[list[tuple]], list]:
        index = binder.schema.resolve(self.qualifier, self.name)
        return lambda rows: [row[index] for row in rows]

    def data_type(self, binder: Binder) -> DataType:
        index = binder.schema.resolve(self.qualifier, self.name)
        return binder.schema.column(index).dtype

    def references(self) -> set[tuple[str | None, str]]:
        return {(self.qualifier, self.name)}

    def to_sql(self) -> str:
        if self.qualifier:
            return f"{self.qualifier}.{self.name}"
        return self.name

    def _children(self) -> list[Expr]:
        return []


@dataclass(frozen=True)
class Literal(Expr):
    """A constant: number, string, boolean, or NULL."""

    value: Any

    def bind(self, binder: Binder) -> Callable[[tuple], Any]:
        value = self.value
        return lambda row: value

    def bind_batch(self, binder: Binder) -> Callable[[list[tuple]], list]:
        value = self.value
        return lambda rows: [value] * len(rows)

    def data_type(self, binder: Binder) -> DataType:
        if self.value is None:
            return DataType.VARCHAR
        if isinstance(self.value, bool):
            return DataType.BOOLEAN
        if isinstance(self.value, int):
            return DataType.BIGINT
        if isinstance(self.value, float):
            return DataType.DOUBLE
        if isinstance(self.value, str):
            return DataType.VARCHAR
        raise PlanError(f"unsupported literal type: {type(self.value).__name__}")

    def references(self) -> set[tuple[str | None, str]]:
        return set()

    def to_sql(self) -> str:
        if self.value is None:
            return "NULL"
        if isinstance(self.value, bool):
            return "TRUE" if self.value else "FALSE"
        if isinstance(self.value, str):
            return _sql_string(self.value)
        return repr(self.value)

    def _children(self) -> list[Expr]:
        return []


@dataclass(frozen=True)
class Star(Expr):
    """``*`` — valid only in SELECT lists and COUNT(*)."""

    def bind(self, binder: Binder) -> Callable[[tuple], Any]:
        raise PlanError("* cannot be evaluated as a scalar expression")

    def data_type(self, binder: Binder) -> DataType:
        raise PlanError("* has no scalar type")

    def references(self) -> set[tuple[str | None, str]]:
        return set()

    def to_sql(self) -> str:
        return "*"

    def _children(self) -> list[Expr]:
        return []


# ----------------------------------------------------------------- operators

def _sql_divide(a: Any, b: Any) -> Any:
    """SQL division: true division with a DOUBLE operand, otherwise integer
    division truncating toward zero (like DB2/Hive, unlike Python's floor)."""
    if isinstance(a, float) or isinstance(b, float):
        return a / b
    quotient = a // b
    if quotient < 0 and quotient * b != a:
        quotient += 1
    return quotient


_ARITH_OPS: dict[str, Callable[[Any, Any], Any]] = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "/": _sql_divide,
    "%": lambda a, b: a % b,
}

_CMP_OPS: dict[str, Callable[[Any, Any], bool]] = {
    "=": lambda a, b: a == b,
    "<>": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}


@dataclass(frozen=True)
class Arithmetic(Expr):
    """Binary arithmetic (+ - * / %) with NULL propagation.

    ``/`` between two integers performs SQL-style integer division truncating
    toward zero; with any DOUBLE operand it is true division.
    """

    op: str
    left: Expr
    right: Expr

    def bind(self, binder: Binder) -> Callable[[tuple], Any]:
        if self.op not in _ARITH_OPS:
            raise PlanError(f"unknown arithmetic operator {self.op!r}")
        fn = _ARITH_OPS[self.op]
        lhs, rhs = self.left.bind(binder), self.right.bind(binder)

        def evaluate(row: tuple) -> Any:
            a, b = lhs(row), rhs(row)
            if a is None or b is None:
                return None
            return fn(a, b)

        return evaluate

    def bind_batch(self, binder: Binder) -> Callable[[list[tuple]], list]:
        if self.op not in _ARITH_OPS:
            raise PlanError(f"unknown arithmetic operator {self.op!r}")
        fn = _ARITH_OPS[self.op]
        lhs = self.left.bind_batch(binder)
        rhs = self.right.bind_batch(binder)
        return lambda rows: [
            None if a is None or b is None else fn(a, b)
            for a, b in zip(lhs(rows), rhs(rows))
        ]

    def data_type(self, binder: Binder) -> DataType:
        lt, rt = self.left.data_type(binder), self.right.data_type(binder)
        if not (lt.is_numeric and rt.is_numeric):
            if self.op == "+" and lt == rt == DataType.VARCHAR:
                return DataType.VARCHAR
            raise PlanError(
                f"arithmetic {self.op!r} needs numeric operands, got {lt} and {rt}"
            )
        if DataType.DOUBLE in (lt, rt):
            return DataType.DOUBLE
        if DataType.BIGINT in (lt, rt):
            return DataType.BIGINT
        return DataType.INT

    def references(self) -> set[tuple[str | None, str]]:
        return self.left.references() | self.right.references()

    def to_sql(self) -> str:
        return f"({self.left.to_sql()} {self.op} {self.right.to_sql()})"

    def _children(self) -> list[Expr]:
        return [self.left, self.right]


@dataclass(frozen=True)
class Comparison(Expr):
    """Binary comparison with NULL propagation."""

    op: str
    left: Expr
    right: Expr

    def bind(self, binder: Binder) -> Callable[[tuple], Any]:
        if self.op not in _CMP_OPS:
            raise PlanError(f"unknown comparison operator {self.op!r}")
        fn = _CMP_OPS[self.op]
        lhs, rhs = self.left.bind(binder), self.right.bind(binder)

        def evaluate(row: tuple) -> Any:
            a, b = lhs(row), rhs(row)
            if a is None or b is None:
                return None
            return fn(a, b)

        return evaluate

    def bind_batch(self, binder: Binder) -> Callable[[list[tuple]], list]:
        if self.op not in _CMP_OPS:
            raise PlanError(f"unknown comparison operator {self.op!r}")
        fn = _CMP_OPS[self.op]
        lhs = self.left.bind_batch(binder)
        rhs = self.right.bind_batch(binder)
        return lambda rows: [
            None if a is None or b is None else fn(a, b)
            for a, b in zip(lhs(rows), rhs(rows))
        ]

    def data_type(self, binder: Binder) -> DataType:
        return DataType.BOOLEAN

    def references(self) -> set[tuple[str | None, str]]:
        return self.left.references() | self.right.references()

    def to_sql(self) -> str:
        return f"{self.left.to_sql()} {self.op} {self.right.to_sql()}"

    def _children(self) -> list[Expr]:
        return [self.left, self.right]

    def flipped(self) -> "Comparison":
        """Mirror image: ``a < b`` becomes ``b > a`` (same truth value)."""
        flip = {"=": "=", "<>": "<>", "<": ">", "<=": ">=", ">": "<", ">=": "<="}
        return Comparison(flip[self.op], self.right, self.left)


@dataclass(frozen=True)
class And(Expr):
    """Kleene conjunction over two or more operands."""

    operands: tuple[Expr, ...]

    def bind(self, binder: Binder) -> Callable[[tuple], Any]:
        fns = [op.bind(binder) for op in self.operands]

        def evaluate(row: tuple) -> Any:
            saw_null = False
            for fn in fns:
                value = fn(row)
                if value is None:
                    saw_null = True
                elif not value:
                    return False
            return None if saw_null else True

        return evaluate

    def data_type(self, binder: Binder) -> DataType:
        return DataType.BOOLEAN

    def references(self) -> set[tuple[str | None, str]]:
        refs: set[tuple[str | None, str]] = set()
        for op in self.operands:
            refs |= op.references()
        return refs

    def to_sql(self) -> str:
        return "(" + " AND ".join(op.to_sql() for op in self.operands) + ")"

    def _children(self) -> list[Expr]:
        return list(self.operands)


@dataclass(frozen=True)
class Or(Expr):
    """Kleene disjunction over two or more operands."""

    operands: tuple[Expr, ...]

    def bind(self, binder: Binder) -> Callable[[tuple], Any]:
        fns = [op.bind(binder) for op in self.operands]

        def evaluate(row: tuple) -> Any:
            saw_null = False
            for fn in fns:
                value = fn(row)
                if value is None:
                    saw_null = True
                elif value:
                    return True
            return None if saw_null else False

        return evaluate

    def data_type(self, binder: Binder) -> DataType:
        return DataType.BOOLEAN

    def references(self) -> set[tuple[str | None, str]]:
        refs: set[tuple[str | None, str]] = set()
        for op in self.operands:
            refs |= op.references()
        return refs

    def to_sql(self) -> str:
        return "(" + " OR ".join(op.to_sql() for op in self.operands) + ")"

    def _children(self) -> list[Expr]:
        return list(self.operands)


@dataclass(frozen=True)
class Not(Expr):
    """Logical negation (NULL stays NULL)."""

    operand: Expr

    def bind(self, binder: Binder) -> Callable[[tuple], Any]:
        fn = self.operand.bind(binder)

        def evaluate(row: tuple) -> Any:
            value = fn(row)
            if value is None:
                return None
            return not value

        return evaluate

    def bind_batch(self, binder: Binder) -> Callable[[list[tuple]], list]:
        fn = self.operand.bind_batch(binder)
        return lambda rows: [None if v is None else (not v) for v in fn(rows)]

    def data_type(self, binder: Binder) -> DataType:
        return DataType.BOOLEAN

    def references(self) -> set[tuple[str | None, str]]:
        return self.operand.references()

    def to_sql(self) -> str:
        return f"NOT ({self.operand.to_sql()})"

    def _children(self) -> list[Expr]:
        return [self.operand]


@dataclass(frozen=True)
class Negate(Expr):
    """Unary minus."""

    operand: Expr

    def bind(self, binder: Binder) -> Callable[[tuple], Any]:
        fn = self.operand.bind(binder)

        def evaluate(row: tuple) -> Any:
            value = fn(row)
            return None if value is None else -value

        return evaluate

    def bind_batch(self, binder: Binder) -> Callable[[list[tuple]], list]:
        fn = self.operand.bind_batch(binder)
        return lambda rows: [None if v is None else -v for v in fn(rows)]

    def data_type(self, binder: Binder) -> DataType:
        return self.operand.data_type(binder)

    def references(self) -> set[tuple[str | None, str]]:
        return self.operand.references()

    def to_sql(self) -> str:
        return f"(-{self.operand.to_sql()})"

    def _children(self) -> list[Expr]:
        return [self.operand]


@dataclass(frozen=True)
class IsNull(Expr):
    """``expr IS [NOT] NULL`` — never returns NULL itself."""

    operand: Expr
    negated: bool = False

    def bind(self, binder: Binder) -> Callable[[tuple], Any]:
        fn = self.operand.bind(binder)
        negated = self.negated
        return lambda row: (fn(row) is not None) if negated else (fn(row) is None)

    def bind_batch(self, binder: Binder) -> Callable[[list[tuple]], list]:
        fn = self.operand.bind_batch(binder)
        if self.negated:
            return lambda rows: [v is not None for v in fn(rows)]
        return lambda rows: [v is None for v in fn(rows)]

    def data_type(self, binder: Binder) -> DataType:
        return DataType.BOOLEAN

    def references(self) -> set[tuple[str | None, str]]:
        return self.operand.references()

    def to_sql(self) -> str:
        suffix = "IS NOT NULL" if self.negated else "IS NULL"
        return f"{self.operand.to_sql()} {suffix}"

    def _children(self) -> list[Expr]:
        return [self.operand]


@dataclass(frozen=True)
class InList(Expr):
    """``expr [NOT] IN (v1, v2, ...)`` with literal members."""

    operand: Expr
    values: tuple[Expr, ...]
    negated: bool = False

    def bind(self, binder: Binder) -> Callable[[tuple], Any]:
        fn = self.operand.bind(binder)
        member_fns = [v.bind(binder) for v in self.values]
        negated = self.negated

        def evaluate(row: tuple) -> Any:
            value = fn(row)
            if value is None:
                return None
            members = [m(row) for m in member_fns]
            found = value in [m for m in members if m is not None]
            if not found and any(m is None for m in members):
                return None
            return (not found) if negated else found

        return evaluate

    def data_type(self, binder: Binder) -> DataType:
        return DataType.BOOLEAN

    def references(self) -> set[tuple[str | None, str]]:
        refs = self.operand.references()
        for v in self.values:
            refs |= v.references()
        return refs

    def to_sql(self) -> str:
        keyword = "NOT IN" if self.negated else "IN"
        members = ", ".join(v.to_sql() for v in self.values)
        return f"{self.operand.to_sql()} {keyword} ({members})"

    def _children(self) -> list[Expr]:
        return [self.operand, *self.values]


@dataclass(frozen=True)
class Between(Expr):
    """``expr [NOT] BETWEEN lo AND hi`` (inclusive both ends)."""

    operand: Expr
    low: Expr
    high: Expr
    negated: bool = False

    def bind(self, binder: Binder) -> Callable[[tuple], Any]:
        fn = self.operand.bind(binder)
        lo_fn, hi_fn = self.low.bind(binder), self.high.bind(binder)
        negated = self.negated

        def evaluate(row: tuple) -> Any:
            value, lo, hi = fn(row), lo_fn(row), hi_fn(row)
            if value is None or lo is None or hi is None:
                return None
            inside = lo <= value <= hi
            return (not inside) if negated else inside

        return evaluate

    def bind_batch(self, binder: Binder) -> Callable[[list[tuple]], list]:
        fn = self.operand.bind_batch(binder)
        lo_fn, hi_fn = self.low.bind_batch(binder), self.high.bind_batch(binder)
        negated = self.negated

        def evaluate(rows: list[tuple]) -> list:
            out = []
            for value, lo, hi in zip(fn(rows), lo_fn(rows), hi_fn(rows)):
                if value is None or lo is None or hi is None:
                    out.append(None)
                else:
                    inside = lo <= value <= hi
                    out.append((not inside) if negated else inside)
            return out

        return evaluate

    def data_type(self, binder: Binder) -> DataType:
        return DataType.BOOLEAN

    def references(self) -> set[tuple[str | None, str]]:
        return self.operand.references() | self.low.references() | self.high.references()

    def to_sql(self) -> str:
        keyword = "NOT BETWEEN" if self.negated else "BETWEEN"
        return f"{self.operand.to_sql()} {keyword} {self.low.to_sql()} AND {self.high.to_sql()}"

    def _children(self) -> list[Expr]:
        return [self.operand, self.low, self.high]


@dataclass(frozen=True)
class Like(Expr):
    """``expr [NOT] LIKE pattern`` with % and _ wildcards."""

    operand: Expr
    pattern: str
    negated: bool = False

    def bind(self, binder: Binder) -> Callable[[tuple], Any]:
        fn = self.operand.bind(binder)
        regex = re.compile(
            "^" + re.escape(self.pattern).replace("%", ".*").replace("_", ".") + "$",
            re.DOTALL,
        )
        negated = self.negated

        def evaluate(row: tuple) -> Any:
            value = fn(row)
            if value is None:
                return None
            matched = regex.match(str(value)) is not None
            return (not matched) if negated else matched

        return evaluate

    def bind_batch(self, binder: Binder) -> Callable[[list[tuple]], list]:
        fn = self.operand.bind_batch(binder)
        regex = re.compile(
            "^" + re.escape(self.pattern).replace("%", ".*").replace("_", ".") + "$",
            re.DOTALL,
        )
        match = regex.match
        if self.negated:
            return lambda rows: [
                None if v is None else match(str(v)) is None for v in fn(rows)
            ]
        return lambda rows: [
            None if v is None else match(str(v)) is not None for v in fn(rows)
        ]

    def data_type(self, binder: Binder) -> DataType:
        return DataType.BOOLEAN

    def references(self) -> set[tuple[str | None, str]]:
        return self.operand.references()

    def to_sql(self) -> str:
        keyword = "NOT LIKE" if self.negated else "LIKE"
        return f"{self.operand.to_sql()} {keyword} {_sql_string(self.pattern)}"

    def _children(self) -> list[Expr]:
        return [self.operand]


@dataclass(frozen=True)
class CaseWhen(Expr):
    """``CASE WHEN c1 THEN r1 [WHEN ...] [ELSE e] END``."""

    whens: tuple[tuple[Expr, Expr], ...]
    otherwise: Expr | None = None

    def bind(self, binder: Binder) -> Callable[[tuple], Any]:
        compiled = [(c.bind(binder), r.bind(binder)) for c, r in self.whens]
        else_fn = self.otherwise.bind(binder) if self.otherwise else None

        def evaluate(row: tuple) -> Any:
            for cond, result in compiled:
                if cond(row):
                    return result(row)
            return else_fn(row) if else_fn else None

        return evaluate

    def data_type(self, binder: Binder) -> DataType:
        return self.whens[0][1].data_type(binder)

    def references(self) -> set[tuple[str | None, str]]:
        refs: set[tuple[str | None, str]] = set()
        for cond, result in self.whens:
            refs |= cond.references() | result.references()
        if self.otherwise:
            refs |= self.otherwise.references()
        return refs

    def to_sql(self) -> str:
        parts = ["CASE"]
        for cond, result in self.whens:
            parts.append(f"WHEN {cond.to_sql()} THEN {result.to_sql()}")
        if self.otherwise:
            parts.append(f"ELSE {self.otherwise.to_sql()}")
        parts.append("END")
        return " ".join(parts)

    def _children(self) -> list[Expr]:
        children: list[Expr] = []
        for cond, result in self.whens:
            children.extend((cond, result))
        if self.otherwise:
            children.append(self.otherwise)
        return children


# ----------------------------------------------------------------- functions


class FunctionRegistry:
    """Scalar functions: builtins plus user-registered UDFs."""

    def __init__(self):
        self._functions: dict[str, tuple[Callable, DataType | None]] = {}
        self._register_builtins()

    def register(self, name: str, fn: Callable, return_type: DataType) -> None:
        """Register a scalar UDF (NULL-in -> NULL-out wrapping applied)."""
        self._functions[name.lower()] = (fn, return_type)

    def lookup(self, name: str) -> tuple[Callable, DataType | None]:
        try:
            return self._functions[name.lower()]
        except KeyError:
            raise PlanError(
                f"unknown function {name!r}; known: {sorted(self._functions)}"
            ) from None

    def known(self, name: str) -> bool:
        return name.lower() in self._functions

    def _register_builtins(self) -> None:
        self._functions.update(
            {
                "upper": (lambda s: s.upper(), DataType.VARCHAR),
                "lower": (lambda s: s.lower(), DataType.VARCHAR),
                "length": (lambda s: len(s), DataType.INT),
                "abs": (lambda x: abs(x), None),
                "round": (lambda x, digits=0: round(x, int(digits)), DataType.DOUBLE),
                "floor": (lambda x: int(x // 1), DataType.BIGINT),
                "ceil": (lambda x: int(-((-x) // 1)), DataType.BIGINT),
                "concat": (lambda *parts: "".join(str(p) for p in parts), DataType.VARCHAR),
                "substr": (
                    lambda s, start, length=None: (
                        s[int(start) - 1 :]
                        if length is None
                        else s[int(start) - 1 : int(start) - 1 + int(length)]
                    ),
                    DataType.VARCHAR,
                ),
                "mod": (lambda a, b: a % b, DataType.BIGINT),
                "int": (lambda x: int(x), DataType.BIGINT),
                "double": (lambda x: float(x), DataType.DOUBLE),
                "varchar": (lambda x: str(x), DataType.VARCHAR),
            }
        )


@dataclass(frozen=True)
class FuncCall(Expr):
    """Scalar function/UDF invocation; NULL arguments yield NULL.

    COALESCE is special-cased (its whole point is accepting NULLs).
    """

    name: str
    args: tuple[Expr, ...]

    def bind(self, binder: Binder) -> Callable[[tuple], Any]:
        if self.name.lower() == "coalesce":
            arg_fns = [a.bind(binder) for a in self.args]

            def evaluate_coalesce(row: tuple) -> Any:
                for fn in arg_fns:
                    value = fn(row)
                    if value is not None:
                        return value
                return None

            return evaluate_coalesce

        fn, _ = binder.functions.lookup(self.name)
        arg_fns = [a.bind(binder) for a in self.args]

        def evaluate(row: tuple) -> Any:
            args = [f(row) for f in arg_fns]
            if any(a is None for a in args):
                return None
            return fn(*args)

        return evaluate

    def bind_batch(self, binder: Binder) -> Callable[[list[tuple]], list]:
        if self.name.lower() == "coalesce":
            # COALESCE short-circuits argument evaluation; keep per-row.
            return super().bind_batch(binder)
        fn, _ = binder.functions.lookup(self.name)
        arg_batch_fns = [a.bind_batch(binder) for a in self.args]
        if not arg_batch_fns:
            return lambda rows: [fn() for _ in rows]

        def evaluate(rows: list[tuple]) -> list:
            columns = [f(rows) for f in arg_batch_fns]
            return [
                None if any(a is None for a in args) else fn(*args)
                for args in zip(*columns)
            ]

        return evaluate

    def data_type(self, binder: Binder) -> DataType:
        if self.name.lower() == "coalesce":
            return self.args[0].data_type(binder)
        _, return_type = binder.functions.lookup(self.name)
        if return_type is None:
            return self.args[0].data_type(binder)
        return return_type

    def references(self) -> set[tuple[str | None, str]]:
        refs: set[tuple[str | None, str]] = set()
        for a in self.args:
            refs |= a.references()
        return refs

    def to_sql(self) -> str:
        return f"{self.name}({', '.join(a.to_sql() for a in self.args)})"

    def _children(self) -> list[Expr]:
        return list(self.args)


AGGREGATE_FUNCTIONS = ("count", "sum", "avg", "min", "max")


@dataclass(frozen=True)
class AggregateCall(Expr):
    """COUNT/SUM/AVG/MIN/MAX — planned specially, never row-evaluated."""

    func: str
    arg: Expr
    distinct: bool = False

    def bind(self, binder: Binder) -> Callable[[tuple], Any]:
        raise PlanError(
            f"aggregate {self.func.upper()} cannot be evaluated per row; "
            "it must appear in a SELECT list with optional GROUP BY"
        )

    def data_type(self, binder: Binder) -> DataType:
        func = self.func.lower()
        if func == "count":
            return DataType.BIGINT
        if func == "avg":
            return DataType.DOUBLE
        if isinstance(self.arg, Star):
            raise PlanError(f"{self.func.upper()}(*) is only valid for COUNT")
        return self.arg.data_type(binder)

    def references(self) -> set[tuple[str | None, str]]:
        return self.arg.references()

    def to_sql(self) -> str:
        inner = ("DISTINCT " if self.distinct else "") + self.arg.to_sql()
        return f"{self.func.upper()}({inner})"

    def _children(self) -> list[Expr]:
        return [self.arg]


def conjuncts(expr: Expr | None) -> list[Expr]:
    """Flatten a predicate into its top-level AND-ed conjuncts."""
    if expr is None:
        return []
    if isinstance(expr, And):
        result: list[Expr] = []
        for op in expr.operands:
            result.extend(conjuncts(op))
        return result
    return [expr]


def combine_conjuncts(parts: list[Expr]) -> Expr | None:
    """Inverse of :func:`conjuncts`: AND the parts back together."""
    if not parts:
        return None
    if len(parts) == 1:
        return parts[0]
    return And(tuple(parts))


def transform(expr: Expr, fn: Callable[[Expr], Expr | None]) -> Expr:
    """Bottom-up rewrite: ``fn`` may replace any node (return None = keep).

    ``fn`` is offered each node *before* its children are rebuilt; returning
    a replacement short-circuits descent into that subtree.  Used by the
    planner (substituting aggregate calls with references into the aggregate
    operator's output) and by the query rewriter (re-rooting predicates onto
    a cached table).
    """
    import dataclasses

    replacement = fn(expr)
    if replacement is not None:
        return replacement

    def rebuild(value):
        if isinstance(value, Expr):
            return transform(value, fn)
        if isinstance(value, tuple):
            return tuple(rebuild(v) for v in value)
        return value

    kwargs = {
        f.name: rebuild(getattr(expr, f.name)) for f in dataclasses.fields(expr)
    }
    return type(expr)(**kwargs)
