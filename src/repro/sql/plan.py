"""Logical plan nodes produced by the planner, consumed by the executor."""

from dataclasses import dataclass, field

from repro.sql.expressions import AggregateCall, Expr
from repro.sql.table import Table
from repro.sql.types import Schema
from repro.sql.udf import TableUDF


class LogicalPlan:
    """Base class; every node exposes its output :attr:`schema`."""

    schema: Schema

    def children(self) -> list["LogicalPlan"]:
        return []

    def explain(self, indent: int = 0) -> str:
        """Human-readable plan tree (for tests and debugging)."""
        line = "  " * indent + self.describe()
        return "\n".join([line] + [c.explain(indent + 1) for c in self.children()])

    def describe(self) -> str:
        return type(self).__name__


@dataclass
class LogicalScan(LogicalPlan):
    """Scan a catalog table under a binding qualifier, with an optional
    pushed-down filter."""

    table: Table
    qualifier: str | None
    schema: Schema
    pushed_filter: Expr | None = None

    def describe(self) -> str:
        text = f"Scan({self.table.name}"
        if self.qualifier and self.qualifier != self.table.name:
            text += f" AS {self.qualifier}"
        if self.pushed_filter is not None:
            text += f", filter={self.pushed_filter.to_sql()}"
        return text + ")"


@dataclass
class LogicalTableFunction(LogicalPlan):
    """Parallel table UDF over a child plan's partitions."""

    udf: TableUDF
    child: LogicalPlan
    args: tuple
    qualifier: str | None
    schema: Schema

    def children(self) -> list[LogicalPlan]:
        return [self.child]

    def describe(self) -> str:
        return f"TableFunction({self.udf.name})"


@dataclass
class LogicalFilter(LogicalPlan):
    """Row filter (predicate must be TRUE, not NULL)."""

    child: LogicalPlan
    predicate: Expr
    schema: Schema = field(init=False)

    def __post_init__(self):
        self.schema = self.child.schema

    def children(self) -> list[LogicalPlan]:
        return [self.child]

    def describe(self) -> str:
        return f"Filter({self.predicate.to_sql()})"


@dataclass
class LogicalProject(LogicalPlan):
    """Compute output expressions; schema carries the output names."""

    child: LogicalPlan
    exprs: list[Expr]
    schema: Schema

    def children(self) -> list[LogicalPlan]:
        return [self.child]

    def describe(self) -> str:
        return "Project(" + ", ".join(e.to_sql() for e in self.exprs) + ")"


@dataclass
class LogicalJoin(LogicalPlan):
    """Equi-join with optional residual predicate; kind inner or left."""

    left: LogicalPlan
    right: LogicalPlan
    kind: str
    left_keys: list[Expr]
    right_keys: list[Expr]
    residual: Expr | None
    schema: Schema

    def children(self) -> list[LogicalPlan]:
        return [self.left, self.right]

    def describe(self) -> str:
        keys = ", ".join(
            f"{l.to_sql()}={r.to_sql()}" for l, r in zip(self.left_keys, self.right_keys)
        )
        return f"Join({self.kind}, {keys})"


@dataclass
class LogicalDistinct(LogicalPlan):
    """Global row deduplication."""

    child: LogicalPlan
    schema: Schema = field(init=False)

    def __post_init__(self):
        self.schema = self.child.schema

    def children(self) -> list[LogicalPlan]:
        return [self.child]


@dataclass
class LogicalAggregate(LogicalPlan):
    """Grouped aggregation.

    ``output_exprs`` mirror the SELECT list: each is either an index into the
    group keys (int) or an index into ``agg_calls`` (tagged tuple).
    """

    child: LogicalPlan
    group_exprs: list[Expr]
    agg_calls: list[AggregateCall]
    # each item: ("group", i) or ("agg", i)
    output_slots: list[tuple[str, int]]
    schema: Schema
    having: Expr | None = None

    def children(self) -> list[LogicalPlan]:
        return [self.child]

    def describe(self) -> str:
        aggs = ", ".join(a.to_sql() for a in self.agg_calls)
        keys = ", ".join(e.to_sql() for e in self.group_exprs)
        return f"Aggregate(keys=[{keys}], aggs=[{aggs}])"


@dataclass
class LogicalUnionAll(LogicalPlan):
    """Bag union: branches concatenated per worker slot."""

    branches: list[LogicalPlan]
    schema: Schema

    def children(self) -> list[LogicalPlan]:
        return list(self.branches)

    def describe(self) -> str:
        return f"UnionAll({len(self.branches)} branches)"


@dataclass
class LogicalSort(LogicalPlan):
    """Global sort by (expr, ascending) keys; result lands on one partition."""

    child: LogicalPlan
    keys: list[tuple[Expr, bool]]
    schema: Schema = field(init=False)

    def __post_init__(self):
        self.schema = self.child.schema

    def children(self) -> list[LogicalPlan]:
        return [self.child]

    def describe(self) -> str:
        keys = ", ".join(e.to_sql() + ("" if asc else " DESC") for e, asc in self.keys)
        return f"Sort({keys})"


@dataclass
class LogicalLimit(LogicalPlan):
    """Keep the first n rows (global)."""

    child: LogicalPlan
    limit: int
    schema: Schema = field(init=False)

    def __post_init__(self):
        self.schema = self.child.schema

    def children(self) -> list[LogicalPlan]:
        return [self.child]

    def describe(self) -> str:
        return f"Limit({self.limit})"
