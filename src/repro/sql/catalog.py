"""Catalog: tables, materialized views, table UDFs, versions."""

import threading
from dataclasses import dataclass

from repro.common.errors import CatalogError
from repro.sql.ast import SelectQuery
from repro.sql.table import Table
from repro.sql.udf import TableUDF


@dataclass(frozen=True)
class TableStats:
    """ANALYZE output: cardinality and per-column distinct counts.

    ``ndv`` maps lowercase column name to the number of distinct non-NULL
    values; the planner uses it for equality-predicate selectivity and join
    ordering.  ``analyzed_version`` records the table version the stats were
    computed against — stale stats are ignored.
    """

    row_count: int
    avg_row_bytes: float
    ndv: dict[str, int]
    analyzed_version: int

    @property
    def total_bytes(self) -> float:
        return self.row_count * self.avg_row_bytes


@dataclass
class CatalogEntry:
    """One catalog object: the table plus bookkeeping.

    ``definition`` is set for materialized views: the parsed query whose
    result the table holds.  The rewriter's cache-matching (§5) consults it.
    ``version`` increments on every data change; caches remember the version
    they were built against and treat mismatches as stale.
    ``stats`` holds the latest ANALYZE result, if any.
    """

    table: Table
    definition: SelectQuery | None = None
    version: int = 0
    stats: TableStats | None = None

    def fresh_stats(self) -> TableStats | None:
        """Stats, unless the table changed since they were computed."""
        if self.stats is not None and self.stats.analyzed_version == self.version:
            return self.stats
        return None


class Catalog:
    """Thread-safe name -> entry registry."""

    def __init__(self):
        self._entries: dict[str, CatalogEntry] = {}
        self._table_udfs: dict[str, TableUDF] = {}
        self._lock = threading.Lock()

    # ---------------------------------------------------------------- tables

    def add_table(self, table: Table, definition: SelectQuery | None = None) -> None:
        key = table.name.lower()
        with self._lock:
            if key in self._entries:
                raise CatalogError(f"table {table.name!r} already exists")
            self._entries[key] = CatalogEntry(table=table, definition=definition)

    def get_table(self, name: str) -> Table:
        return self.get_entry(name).table

    def get_entry(self, name: str) -> CatalogEntry:
        with self._lock:
            entry = self._entries.get(name.lower())
        if entry is None:
            raise CatalogError(
                f"unknown table {name!r}; known: {sorted(self._entries)}"
            )
        return entry

    def has_table(self, name: str) -> bool:
        with self._lock:
            return name.lower() in self._entries

    def drop_table(self, name: str) -> None:
        with self._lock:
            if self._entries.pop(name.lower(), None) is None:
                raise CatalogError(f"unknown table {name!r}")

    def bump_version(self, name: str) -> int:
        """Record a data change; returns the new version."""
        entry = self.get_entry(name)
        with self._lock:
            entry.version += 1
            return entry.version

    def table_names(self) -> list[str]:
        with self._lock:
            return sorted(self._entries)

    def materialized_views(self) -> list[CatalogEntry]:
        """All entries that are materialized views (have a definition)."""
        with self._lock:
            return [e for e in self._entries.values() if e.definition is not None]

    # ------------------------------------------------------------ table UDFs

    def register_table_udf(self, udf: TableUDF) -> None:
        if not udf.name:
            raise CatalogError("table UDF must set a name")
        key = udf.name.lower()
        with self._lock:
            if key in self._table_udfs:
                raise CatalogError(f"table UDF {udf.name!r} already registered")
            self._table_udfs[key] = udf

    def get_table_udf(self, name: str) -> TableUDF:
        with self._lock:
            udf = self._table_udfs.get(name.lower())
        if udf is None:
            raise CatalogError(
                f"unknown table UDF {name!r}; known: {sorted(self._table_udfs)}"
            )
        return udf
