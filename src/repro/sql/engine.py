"""The ``BigSQL`` engine facade — the library's stand-in for a big SQL system."""

from collections.abc import Callable
from typing import Any

from repro.cluster.cluster import Cluster
from repro.common.errors import CatalogError, HdfsError, PlanError
from repro.sql.ast import SelectQuery
from repro.sql.catalog import Catalog
from repro.sql.executor import (
    DistRelation,
    ExecutionContext,
    Executor,
    partition_rows as relation_rows,
)
from repro.sql.expressions import FunctionRegistry
from repro.sql.parser import parse
from repro.sql.plan import LogicalPlan
from repro.sql.planner import Planner, PlannerContext
from repro.sql.table import Partition, Table, partition_rows
from repro.sql.types import DataType, Schema
from repro.sql.udf import TableUDF


class BigSQL:
    """A partition-parallel SQL engine bound to a cluster.

    One worker slot per cluster worker node (the paper runs "1 Big SQL
    worker with multi-threading on each server").  Tables live either in
    memory, partitioned across slots, or externally as text on the attached
    DFS.  Extensibility — scalar UDFs and parallel table UDFs — is the
    public surface everything in this reproduction builds on.
    """

    def __init__(self, cluster: Cluster, dfs: Any = None, columnar: bool = False):
        self.cluster = cluster
        self.dfs = dfs
        #: Run queries on the columnar data plane (ColumnBatch partitions +
        #: vectorized kernels).  Off by default: the row path is the seed
        #: behaviour and stays bit-identical on the wire.
        self.columnar = bool(columnar)
        self.num_workers = len(cluster.workers)
        self.catalog = Catalog()
        self.functions = FunctionRegistry()
        self.services: dict[str, Any] = {"engine": self}
        if dfs is not None:
            self.services["dfs"] = dfs
        self._result_counter = 0

    # ----------------------------------------------------------------- DDL

    def create_table(self, name: str, schema: Schema, rows: list[tuple]) -> Table:
        """Create an in-memory table, round-robin partitioned across slots."""
        table = Table(
            name=name,
            schema=schema,
            partitions=partition_rows(list(rows), self.num_workers),
        )
        self.catalog.add_table(table)
        return table

    def register_external_table(
        self,
        name: str,
        schema: Schema,
        path: str,
        delimiter: str = ",",
        format: str = "csv",
    ) -> Table:
        """Register a DFS-resident table, scanned and decoded on read.

        ``format`` is ``"csv"`` (line-oriented text, the paper's setup) or
        ``"columnar"`` (dictionary-encoded part files, see
        :mod:`repro.columnar`)."""
        if self.dfs is None:
            raise CatalogError("external tables require a DFS-attached engine")
        if format not in ("csv", "columnar"):
            raise CatalogError(f"unknown external format {format!r}")
        from repro.sql.table import ExternalLocation

        table = Table(
            name=name,
            schema=schema,
            external=ExternalLocation(path=path, delimiter=delimiter, format=format),
        )
        self.catalog.add_table(table)
        return table

    def drop_table(self, name: str) -> None:
        """Remove a table from the catalog (external data stays on the DFS)."""
        self.catalog.drop_table(name)

    def insert_rows(self, name: str, rows: list[tuple]) -> None:
        """Append rows to an in-memory table; bumps the table version so
        caches built on the old contents invalidate (§5 assumes no updates —
        this is the hook that enforces it)."""
        entry = self.catalog.get_entry(name)
        table = entry.table
        if table.is_external:
            raise CatalogError(f"cannot insert into external table {name!r}")
        for i, row in enumerate(rows):
            table.partitions[i % len(table.partitions)].rows.append(row)
        self.catalog.bump_version(name)

    # ----------------------------------------------------------------- UDFs

    def register_scalar_udf(self, name: str, fn: Callable, return_type: DataType) -> None:
        """Make ``fn`` callable from any SQL expression."""
        self.functions.register(name, fn, return_type)

    def register_table_udf(self, udf: TableUDF) -> None:
        """Make ``udf`` invocable as ``TABLE(name(input, args...))``."""
        self.catalog.register_table_udf(udf)

    def add_service(self, name: str, service: Any) -> None:
        """Expose an object (coordinator, cache, ...) to table UDF contexts."""
        self.services[name] = service

    # ------------------------------------------------------------- ANALYZE

    def analyze(self, name: str):
        """Compute and store table statistics (row count, per-column NDV).

        One full scan through the normal executor — external tables pay
        their DFS read like any other scan.  The planner consumes the stats
        for selectivity estimation and join ordering until the table's
        version changes."""
        from repro.sql.catalog import TableStats
        from repro.sql.types import estimate_row_bytes

        entry = self.catalog.get_entry(name)
        relation = self.execute_distributed(f"SELECT * FROM {name}")
        row_count = relation.total_rows()
        all_rows = relation.all_rows()
        total_bytes = sum(estimate_row_bytes(r) for r in all_rows)
        distinct: list[set] = [set() for _ in relation.schema]
        for row in all_rows:
            for i, value in enumerate(row):
                if value is not None:
                    distinct[i].add(value)
        stats = TableStats(
            row_count=row_count,
            avg_row_bytes=(total_bytes / row_count) if row_count else 0.0,
            ndv={
                column.name.lower(): len(values)
                for column, values in zip(relation.schema, distinct)
            },
            analyzed_version=entry.version,
        )
        entry.stats = stats
        return stats

    # ---------------------------------------------------------------- query

    def parse(self, sql: str) -> SelectQuery:
        """Parse only (used by the rewriter and tests)."""
        return parse(sql)

    def plan(self, query: str | SelectQuery) -> LogicalPlan:
        """Parse (if needed) and plan a query."""
        if isinstance(query, str):
            query = parse(query)
        planner = Planner(
            PlannerContext(
                resolve_table=self.catalog.get_table,
                resolve_table_udf=self.catalog.get_table_udf,
                functions=self.functions,
                estimate_table_bytes=self._estimate_table_bytes,
                table_stats=self._fresh_table_stats,
            )
        )
        from repro.sql.ast import UnionAll
        from repro.sql.plan import LogicalUnionAll

        if isinstance(query, UnionAll):
            branches = [planner.plan(b) for b in query.branches]
            first = branches[0].schema
            for i, branch in enumerate(branches[1:], start=2):
                if len(branch.schema) != len(first):
                    raise PlanError(
                        f"UNION ALL branch {i} has {len(branch.schema)} "
                        f"columns, branch 1 has {len(first)}"
                    )
                for a, b in zip(first, branch.schema):
                    if a.dtype is not b.dtype:
                        raise PlanError(
                            f"UNION ALL type mismatch on column "
                            f"{a.name!r}: {a.dtype.value} vs {b.dtype.value}"
                        )
            return LogicalUnionAll(branches=branches, schema=first)
        return planner.plan(query)

    def explain(self, query: str | SelectQuery) -> str:
        """Human-readable plan tree."""
        return self.plan(query).explain()

    def execute(self, query: str | SelectQuery) -> Table:
        """Run a query and return the (in-memory, partitioned) result."""
        relation = self.execute_distributed(query)
        self._result_counter += 1
        return Table(
            name=f"_result_{self._result_counter}",
            schema=relation.schema,
            partitions=[
                Partition(rows=relation_rows(rows), worker_id=i)
                for i, rows in enumerate(relation.partitions)
            ],
        )

    def execute_distributed(self, query: str | SelectQuery) -> DistRelation:
        """Run a query, keeping the per-slot partition structure."""
        plan = self.plan(query)
        executor = Executor(
            ExecutionContext(
                num_workers=self.num_workers,
                worker_nodes=list(self.cluster.workers),
                ledger=self.cluster.ledger,
                functions=self.functions,
                services=dict(self.services),
                dfs=self.dfs,
                columnar=self.columnar,
            )
        )
        return executor.execute(plan)

    def query_rows(self, sql: str) -> list[tuple]:
        """Convenience: run and gather all result rows."""
        return self.execute(sql).all_rows()

    # ---------------------------------------------------------------- views

    def create_materialized_view(self, name: str, sql: str) -> Table:
        """Execute ``sql`` and store its result under ``name``.

        The parsed definition is kept in the catalog so the rewriter can
        match later queries against it (§5's "similar to utilizing
        materialized views in query optimization")."""
        query = parse(sql)
        relation = self.execute_distributed(query)
        table = Table(
            name=name,
            schema=relation.schema,
            partitions=[
                Partition(rows=relation_rows(rows), worker_id=i)
                for i, rows in enumerate(relation.partitions)
            ],
        )
        self.catalog.add_table(table, definition=query)
        return table

    # -------------------------------------------------------------- internal

    def _fresh_table_stats(self, table: Table):
        try:
            return self.catalog.get_entry(table.name).fresh_stats()
        except CatalogError:
            return None

    def _estimate_table_bytes(self, table: Table) -> float:
        if table.is_external:
            if self.dfs is None:
                return float(2**40)
            # Only a typed DFS failure (path missing, block lost) degrades to
            # the pessimistic 2^40 estimate — and each such degradation is
            # counted, so a planner silently costing on fiction is visible.
            # Any other exception is a bug and propagates.
            try:
                return float(self.dfs.total_size(table.external.path))
            except HdfsError:
                self.cluster.ledger.add("planner.estimate_fallback", 1)
                return float(2**40)
        return float(table.estimated_bytes())
