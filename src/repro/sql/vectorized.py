"""Vectorized expression kernels over :class:`ColumnBatch` partitions.

This is the columnar counterpart of ``Expr.bind_batch``: instead of
compiling to a ``rows -> list`` evaluator, each supported expression node
compiles to a ``batch -> VCol`` kernel operating on whole numpy arrays.
NULL semantics are carried in explicit validity masks (SQL three-valued
logic: Kleene AND/OR, NULL-propagating comparisons and arithmetic).

VARCHAR values stay dictionary-encoded throughout: a predicate like
``name LIKE 'a%'`` or ``gender = 'F'`` is evaluated once per *dictionary
word* and then mapped over the code array — O(cardinality) regex/compare
work instead of O(rows).

The compiler is deliberately partial.  ``compile_*`` returns ``None`` when
any node in the tree falls outside the supported subset (scalar UDF calls,
COALESCE, ``/`` and ``%`` whose ZeroDivisionError/truncation semantics are
row-defined, VARCHAR-vs-VARCHAR column comparisons), and a compiled kernel
raises :class:`VectorFallback` when a runtime shape/type doesn't match its
assumptions.  Callers fall back to the row-oriented path over
``batch.to_rows()`` in both cases, so vectorization is a pure optimization:
it can never change results, only skip itself.  One deliberate deviation is
documented: integer arithmetic runs in int64 (numpy) rather than Python's
arbitrary precision, so values beyond 2**63 would wrap where the row path
would not — the executor's strict ``from_rows`` conversion refuses such
values long before a kernel sees them.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.columnar.batch import ColumnBatch, ColumnVector
from repro.common.errors import PlanError
from repro.sql.expressions import (
    And,
    Arithmetic,
    Between,
    Binder,
    CaseWhen,
    ColumnRef,
    Comparison,
    Expr,
    InList,
    IsNull,
    Like,
    Literal,
    Negate,
    Not,
    Or,
    Star,
)
from repro.sql.types import DataType, Schema


class VectorFallback(Exception):
    """A compiled kernel met data it cannot handle; use the row path."""


@dataclass
class VCol:
    """An evaluated column: values + validity (+ dictionary for VARCHAR).

    ``values`` holds numerics/bools directly, or int32 dictionary codes
    when ``dictionary`` is set.  Invalid lanes hold unspecified
    placeholders — every consumer masks with ``valid``.
    """

    values: np.ndarray
    valid: np.ndarray
    dictionary: list[str] | None = None

    def to_pylist(self) -> list:
        raw = self.values.tolist()
        ok = self.valid.tolist()
        if self.dictionary is not None:
            words = self.dictionary
            return [words[c] if good else None for c, good in zip(raw, ok)]
        return [v if good else None for v, good in zip(raw, ok)]


Kernel = Callable[[ColumnBatch], VCol]

_CMP_UFUNCS = {
    "=": np.equal,
    "<>": np.not_equal,
    "<": np.less,
    "<=": np.less_equal,
    ">": np.greater,
    ">=": np.greater_equal,
}

_ARITH_UFUNCS = {"+": np.add, "-": np.subtract, "*": np.multiply}

_CMP_PY = {
    "=": lambda a, b: a == b,
    "<>": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}


def _expr_type(expr: Expr, schema: Schema) -> DataType | None:
    # PlanError is the binder's typed "this expression doesn't type under
    # this schema" signal — the legitimate compile-to-row-path fallback.
    # Any other exception is a bug in the binder or a kernel and must
    # surface rather than silently degrade the columnar plane.
    try:
        return expr.data_type(Binder(schema))
    except PlanError:
        return None


def _all_true(n: int) -> np.ndarray:
    return np.ones(n, dtype=np.bool_)


# --------------------------------------------------------------- node kernels


def _compile(expr: Expr, schema: Schema) -> Kernel | None:
    if isinstance(expr, ColumnRef):
        return _compile_column_ref(expr, schema)
    if isinstance(expr, Literal):
        return _compile_literal(expr)
    if isinstance(expr, Comparison):
        return _compile_comparison(expr, schema)
    if isinstance(expr, Arithmetic):
        return _compile_arithmetic(expr, schema)
    if isinstance(expr, And):
        return _compile_and_or(expr, schema, is_and=True)
    if isinstance(expr, Or):
        return _compile_and_or(expr, schema, is_and=False)
    if isinstance(expr, Not):
        return _compile_not(expr, schema)
    if isinstance(expr, Negate):
        return _compile_negate(expr, schema)
    if isinstance(expr, IsNull):
        return _compile_is_null(expr, schema)
    if isinstance(expr, Between):
        return _compile_between(expr, schema)
    if isinstance(expr, InList):
        return _compile_in_list(expr, schema)
    if isinstance(expr, Like):
        return _compile_like(expr, schema)
    if isinstance(expr, CaseWhen):
        return _compile_case(expr, schema)
    return None  # FuncCall, Coalesce, Star, aggregates: row path


def _compile_column_ref(expr: ColumnRef, schema: Schema) -> Kernel:
    index = schema.resolve(expr.qualifier, expr.name)

    def kernel(batch: ColumnBatch) -> VCol:
        vector = batch.columns[index]
        return VCol(vector.data, vector.valid, vector.dictionary)

    return kernel


def _compile_literal(expr: Literal) -> Kernel:
    value = expr.value

    def kernel(batch: ColumnBatch) -> VCol:
        n = batch.num_rows
        if value is None:
            return VCol(np.zeros(n, dtype=np.int64), np.zeros(n, dtype=np.bool_))
        if isinstance(value, bool):
            return VCol(np.full(n, value, dtype=np.bool_), _all_true(n))
        if isinstance(value, int):
            return VCol(np.full(n, value, dtype=np.int64), _all_true(n))
        if isinstance(value, float):
            return VCol(np.full(n, value, dtype=np.float64), _all_true(n))
        if isinstance(value, str):
            return VCol(np.zeros(n, dtype=np.int32), _all_true(n), [value])
        raise VectorFallback(f"literal {type(value).__name__}")

    return kernel


def _compile_comparison(expr: Comparison, schema: Schema) -> Kernel | None:
    lt, rt = _expr_type(expr.left, schema), _expr_type(expr.right, schema)
    if lt is None or rt is None:
        return None
    left = _compile(expr.left, schema)
    right = _compile(expr.right, schema)
    if left is None or right is None:
        return None
    op = expr.op

    if lt is DataType.VARCHAR or rt is DataType.VARCHAR:
        if lt is not rt:
            return None
        # Dictionary-space comparison: only when one side is a single-word
        # dictionary (a literal) — the common point-predicate shape.
        py_op = _CMP_PY[op]

        def kernel(batch: ColumnBatch) -> VCol:
            lv, rv = left(batch), right(batch)
            if lv.dictionary is None or rv.dictionary is None:
                raise VectorFallback("VARCHAR comparison without dictionaries")
            if len(rv.dictionary) == 1 and rv.valid.all():
                word = rv.dictionary[0]
                table = np.fromiter(
                    (py_op(w, word) for w in lv.dictionary),
                    dtype=np.bool_,
                    count=len(lv.dictionary),
                )
                values = (
                    table[np.clip(lv.values, 0, None)]
                    if len(table)
                    else np.zeros(batch.num_rows, dtype=np.bool_)
                )
                return VCol(values, lv.valid & rv.valid)
            if len(lv.dictionary) == 1 and lv.valid.all():
                word = lv.dictionary[0]
                table = np.fromiter(
                    (py_op(word, w) for w in rv.dictionary),
                    dtype=np.bool_,
                    count=len(rv.dictionary),
                )
                values = (
                    table[np.clip(rv.values, 0, None)]
                    if len(table)
                    else np.zeros(batch.num_rows, dtype=np.bool_)
                )
                return VCol(values, lv.valid & rv.valid)
            raise VectorFallback("VARCHAR column-vs-column comparison")

        return kernel

    ufunc = _CMP_UFUNCS[op]

    def kernel(batch: ColumnBatch) -> VCol:
        lv, rv = left(batch), right(batch)
        if lv.dictionary is not None or rv.dictionary is not None:
            raise VectorFallback("dictionary operand in numeric comparison")
        return VCol(ufunc(lv.values, rv.values), lv.valid & rv.valid)

    return kernel


def _compile_arithmetic(expr: Arithmetic, schema: Schema) -> Kernel | None:
    if expr.op not in _ARITH_UFUNCS:
        return None  # / and % keep the row path's exact semantics
    lt, rt = _expr_type(expr.left, schema), _expr_type(expr.right, schema)
    if lt is None or rt is None or not (lt.is_numeric and rt.is_numeric):
        return None
    left = _compile(expr.left, schema)
    right = _compile(expr.right, schema)
    if left is None or right is None:
        return None
    ufunc = _ARITH_UFUNCS[expr.op]

    def kernel(batch: ColumnBatch) -> VCol:
        lv, rv = left(batch), right(batch)
        return VCol(ufunc(lv.values, rv.values), lv.valid & rv.valid)

    return kernel


def _compile_and_or(expr: And | Or, schema: Schema, is_and: bool) -> Kernel | None:
    parts = [_compile_predicate_vcol(op, schema) for op in expr.operands]
    if any(p is None for p in parts):
        return None

    def kernel(batch: ColumnBatch) -> VCol:
        vcols = [p(batch) for p in parts]
        trues = [v.valid & v.values.astype(np.bool_) for v in vcols]
        falses = [v.valid & ~v.values.astype(np.bool_) for v in vcols]
        if is_and:
            # False if any operand is False; True only if all are True.
            is_false = np.logical_or.reduce(falses)
            is_true = np.logical_and.reduce(trues)
        else:
            is_true = np.logical_or.reduce(trues)
            is_false = np.logical_and.reduce(falses)
        return VCol(is_true, is_true | is_false)

    return kernel


def _compile_predicate_vcol(expr: Expr, schema: Schema) -> Kernel | None:
    inner = _compile(expr, schema)
    if inner is None:
        return None

    def kernel(batch: ColumnBatch) -> VCol:
        vcol = inner(batch)
        if vcol.dictionary is not None:
            raise VectorFallback("non-boolean predicate operand")
        return vcol

    return kernel


def _compile_not(expr: Not, schema: Schema) -> Kernel | None:
    inner = _compile_predicate_vcol(expr.operand, schema)
    if inner is None:
        return None

    def kernel(batch: ColumnBatch) -> VCol:
        vcol = inner(batch)
        return VCol(~vcol.values.astype(np.bool_), vcol.valid)

    return kernel


def _compile_negate(expr: Negate, schema: Schema) -> Kernel | None:
    dtype = _expr_type(expr.operand, schema)
    if dtype is None or not dtype.is_numeric:
        return None
    inner = _compile(expr.operand, schema)
    if inner is None:
        return None

    def kernel(batch: ColumnBatch) -> VCol:
        vcol = inner(batch)
        return VCol(-vcol.values, vcol.valid)

    return kernel


def _compile_is_null(expr: IsNull, schema: Schema) -> Kernel | None:
    inner = _compile(expr.operand, schema)
    if inner is None:
        return None
    negated = expr.negated

    def kernel(batch: ColumnBatch) -> VCol:
        vcol = inner(batch)
        values = vcol.valid.copy() if negated else ~vcol.valid
        return VCol(values, _all_true(batch.num_rows))

    return kernel


def _compile_between(expr: Between, schema: Schema) -> Kernel | None:
    types = [_expr_type(e, schema) for e in (expr.operand, expr.low, expr.high)]
    if any(t is None or not t.is_numeric for t in types):
        return None
    parts = [_compile(e, schema) for e in (expr.operand, expr.low, expr.high)]
    if any(p is None for p in parts):
        return None
    operand, low, high = parts
    negated = expr.negated

    def kernel(batch: ColumnBatch) -> VCol:
        v, lo, hi = operand(batch), low(batch), high(batch)
        inside = (lo.values <= v.values) & (v.values <= hi.values)
        return VCol(~inside if negated else inside, v.valid & lo.valid & hi.valid)

    return kernel


def _compile_in_list(expr: InList, schema: Schema) -> Kernel | None:
    if not all(isinstance(v, Literal) for v in expr.values):
        return None
    members = [v.value for v in expr.values]
    if any(m is None for m in members):
        return None  # NULL members need three-valued not-found semantics
    inner = _compile(expr.operand, schema)
    if inner is None:
        return None
    operand_type = _expr_type(expr.operand, schema)
    negated = expr.negated

    if operand_type is DataType.VARCHAR:
        words = {m for m in members if isinstance(m, str)}

        def kernel(batch: ColumnBatch) -> VCol:
            vcol = inner(batch)
            if vcol.dictionary is None:
                raise VectorFallback("IN over non-dictionary VARCHAR")
            table = np.fromiter(
                (w in words for w in vcol.dictionary),
                dtype=np.bool_,
                count=len(vcol.dictionary),
            )
            found = (
                table[np.clip(vcol.values, 0, None)]
                if len(table)
                else np.zeros(batch.num_rows, dtype=np.bool_)
            )
            return VCol(~found if negated else found, vcol.valid)

        return kernel

    if operand_type is None or not (
        operand_type.is_numeric or operand_type is DataType.BOOLEAN
    ):
        return None
    member_arr = np.array(members)

    def kernel(batch: ColumnBatch) -> VCol:
        vcol = inner(batch)
        found = np.isin(vcol.values, member_arr)
        return VCol(~found if negated else found, vcol.valid)

    return kernel


def _compile_like(expr: Like, schema: Schema) -> Kernel | None:
    if _expr_type(expr.operand, schema) is not DataType.VARCHAR:
        return None
    inner = _compile(expr.operand, schema)
    if inner is None:
        return None
    regex = re.compile(
        "^" + re.escape(expr.pattern).replace("%", ".*").replace("_", ".") + "$",
        re.DOTALL,
    )
    negated = expr.negated

    def kernel(batch: ColumnBatch) -> VCol:
        vcol = inner(batch)
        if vcol.dictionary is None:
            raise VectorFallback("LIKE over non-dictionary VARCHAR")
        # O(cardinality) regex work, O(rows) table lookup.
        table = np.fromiter(
            (regex.match(w) is not None for w in vcol.dictionary),
            dtype=np.bool_,
            count=len(vcol.dictionary),
        )
        matched = (
            table[np.clip(vcol.values, 0, None)]
            if len(table)
            else np.zeros(batch.num_rows, dtype=np.bool_)
        )
        return VCol(~matched if negated else matched, vcol.valid)

    return kernel


def _compile_case(expr: CaseWhen, schema: Schema) -> Kernel | None:
    cond_fns = [_compile_predicate_vcol(c, schema) for c, _r in expr.whens]
    result_fns = [_compile(r, schema) for _c, r in expr.whens]
    else_fn = _compile(expr.otherwise, schema) if expr.otherwise else None
    if any(f is None for f in cond_fns + result_fns):
        return None
    if expr.otherwise is not None and else_fn is None:
        return None
    out_type = _expr_type(expr, schema)
    if out_type is None:
        return None
    is_varchar = out_type is DataType.VARCHAR

    def kernel(batch: ColumnBatch) -> VCol:
        n = batch.num_rows
        masks = []
        taken = np.zeros(n, dtype=np.bool_)  # first matching WHEN wins
        for fn in cond_fns:
            cond = fn(batch)
            fires = cond.valid & cond.values.astype(np.bool_) & ~taken
            masks.append(fires)
            taken = taken | fires
        results = [fn(batch) for fn in result_fns]
        otherwise = else_fn(batch) if else_fn else None
        branches = results + ([otherwise] if otherwise is not None else [])
        if is_varchar:
            if any(b.dictionary is None for b in branches):
                raise VectorFallback("mixed-type CASE branches")
            union: list[str] = []
            positions: dict[str, int] = {}
            remapped = []
            for branch in branches:
                lookup = np.empty(max(len(branch.dictionary), 1), dtype=np.int32)
                for i, word in enumerate(branch.dictionary):
                    position = positions.get(word)
                    if position is None:
                        position = len(union)
                        positions[word] = position
                        union.append(word)
                    lookup[i] = position
                remapped.append(lookup[np.clip(branch.values, 0, None)])
            values = np.full(n, -1, dtype=np.int32)
            valid = np.zeros(n, dtype=np.bool_)
            active = otherwise is not None
            if active:
                values = remapped[-1].astype(np.int32, copy=True)
                valid = branches[-1].valid.copy()
            for mask, codes, branch in zip(masks, remapped, results):
                values[mask] = codes[mask]
                valid[mask] = branch.valid[mask]
            return VCol(values, valid, union)
        if any(b.dictionary is not None for b in branches):
            raise VectorFallback("mixed-type CASE branches")
        out_dtype = np.result_type(*(b.values.dtype for b in branches))
        values = np.zeros(n, dtype=out_dtype)
        valid = np.zeros(n, dtype=np.bool_)
        if otherwise is not None:
            values = otherwise.values.astype(out_dtype, copy=True)
            valid = otherwise.valid.copy()
        for mask, branch in zip(masks, results):
            values[mask] = branch.values[mask].astype(out_dtype)
            valid[mask] = branch.valid[mask]
        return VCol(values, valid)

    return kernel


# ----------------------------------------------------------------- public API


def compile_predicate(expr: Expr, schema: Schema) -> Callable[[ColumnBatch], np.ndarray] | None:
    """Compile a filter predicate to ``batch -> keep-mask`` (True lanes
    survive; NULL and False do not), or None if unsupported."""
    inner = _compile(expr, schema)
    if inner is None:
        return None

    def kernel(batch: ColumnBatch) -> np.ndarray:
        vcol = inner(batch)
        if vcol.dictionary is not None:
            raise VectorFallback("non-boolean filter predicate")
        return vcol.valid & vcol.values.astype(np.bool_)

    return kernel


def _to_vector(vcol: VCol, dtype: DataType) -> ColumnVector:
    """Adapt an evaluated VCol to a schema-typed ColumnVector, refusing any
    conversion that could change values (float into INT, etc.)."""
    if dtype is DataType.VARCHAR:
        if vcol.dictionary is None:
            raise VectorFallback("VARCHAR output without dictionary")
        return ColumnVector(
            dtype, vcol.values.astype(np.int32, copy=False), vcol.valid,
            list(vcol.dictionary),
        )
    if vcol.dictionary is not None:
        raise VectorFallback(f"dictionary values for {dtype.value} output")
    kind = vcol.values.dtype.kind
    if dtype in (DataType.INT, DataType.BIGINT):
        if kind not in "iub":
            raise VectorFallback(f"{kind}-kind values for {dtype.value} output")
        return ColumnVector(dtype, vcol.values.astype(np.int64, copy=False), vcol.valid)
    if dtype is DataType.DOUBLE:
        if kind not in "fiu":
            raise VectorFallback(f"{kind}-kind values for DOUBLE output")
        return ColumnVector(dtype, vcol.values.astype(np.float64, copy=False), vcol.valid)
    if dtype is DataType.BOOLEAN:
        if kind != "b":
            raise VectorFallback(f"{kind}-kind values for BOOLEAN output")
        return ColumnVector(dtype, vcol.values, vcol.valid)
    raise VectorFallback(f"unsupported output type {dtype}")


def compile_projection(
    exprs: list[Expr], out_schema: Schema, schema: Schema
) -> Callable[[ColumnBatch], ColumnBatch] | None:
    """Compile a SELECT list to ``batch -> batch``, or None if any
    expression is unsupported."""
    kernels = [_compile(e, schema) for e in exprs]
    if any(k is None for k in kernels):
        return None
    out_columns = list(out_schema)

    def kernel(batch: ColumnBatch) -> ColumnBatch:
        vectors = [
            _to_vector(fn(batch), column.dtype)
            for fn, column in zip(kernels, out_columns)
        ]
        return ColumnBatch.from_columns(out_schema, vectors, batch.num_rows)

    return kernel


def compile_value_lists(
    exprs: list[Expr], schema: Schema
) -> Callable[[ColumnBatch], list[list]] | None:
    """Compile expressions to ``batch -> [python value column, ...]`` —
    vectorized evaluation with a row-compatible output, used for group
    keys and aggregate arguments feeding hash-based operators."""
    kernels = [_compile(e, schema) for e in exprs]
    if any(k is None for k in kernels):
        return None

    def kernel(batch: ColumnBatch) -> list[list]:
        return [fn(batch).to_pylist() for fn in kernels]

    return kernel


def compile_global_aggregate(
    agg_calls, schema: Schema
) -> Callable[[ColumnBatch], dict[tuple, list]] | None:
    """Compile a global (no GROUP BY) aggregate to one numpy reduction per
    call, producing the same ``{(): [accumulators...]}`` partial shape the
    row path builds, so merging and finalization are shared."""
    compiled = []
    for call in agg_calls:
        star = call.func == "count" and isinstance(call.arg, Star)
        if star:
            compiled.append((call.func, None, call.distinct, None))
            continue
        fn = _compile(call.arg, schema)
        if fn is None:
            return None
        compiled.append((call.func, fn, call.distinct, _expr_type(call.arg, schema)))

    def kernel(batch: ColumnBatch) -> dict[tuple, list]:
        accumulators = []
        for func, fn, distinct, _dtype in compiled:
            if fn is None:  # COUNT(*)
                if distinct:
                    raise VectorFallback("COUNT(DISTINCT *)")
                accumulators.append([batch.num_rows])
                continue
            vcol = fn(batch)
            if vcol.dictionary is not None:
                present = vcol.values[vcol.valid]
                words = vcol.dictionary
                if distinct:
                    accumulators.append(
                        [{words[c] for c in np.unique(present).tolist()}]
                    )
                    continue
                if func == "count":
                    accumulators.append([int(present.size)])
                    continue
                if func in ("min", "max"):
                    distinct_words = [words[c] for c in np.unique(present).tolist()]
                    if not distinct_words:
                        accumulators.append([None])
                    elif func == "min":
                        accumulators.append([min(distinct_words)])
                    else:
                        accumulators.append([max(distinct_words)])
                    continue
                raise VectorFallback(f"{func} over VARCHAR")
            present = vcol.values[vcol.valid]
            if distinct:
                accumulators.append([set(np.unique(present).tolist())])
            elif func == "count":
                accumulators.append([int(present.size)])
            elif func == "sum":
                accumulators.append([present.sum().item() if present.size else None])
            elif func == "avg":
                total = present.sum().item() if present.size else 0
                accumulators.append([float(total), int(present.size)])
            elif func == "min":
                accumulators.append([present.min().item() if present.size else None])
            elif func == "max":
                accumulators.append([present.max().item() if present.size else None])
            else:
                raise VectorFallback(f"unknown aggregate {func!r}")
        return {(): accumulators}

    return kernel
