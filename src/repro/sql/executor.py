"""Physical execution: partition-parallel operators over worker slots.

The executor mirrors an MPP engine's runtime: every operator runs once per
worker slot on a thread pool, and data only crosses slots through explicit
exchanges (broadcast or hash repartition), whose bytes are recorded in the
cluster ledger under ``sql.shuffle``.  Scans record ``sql.scan`` and
project/table-function output records ``sql.output`` — the categories the
cost model converts into paper-scale seconds.
"""

from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Any

from repro.cluster.cost import CostLedger
from repro.cluster.node import Node
from repro.columnar.batch import ColumnBatch
from repro.common.errors import ExecutionError
from repro.iofmt.inputformat import JobConf
from repro.iofmt.text import CsvInputFormat, FileSplit
from repro.sql import vectorized
from repro.sql.expressions import Binder, FunctionRegistry, Star
from repro.sql.plan import (
    LogicalAggregate,
    LogicalDistinct,
    LogicalFilter,
    LogicalJoin,
    LogicalLimit,
    LogicalPlan,
    LogicalProject,
    LogicalScan,
    LogicalSort,
    LogicalTableFunction,
    LogicalUnionAll,
)
from repro.sql.planner import BROADCAST_THRESHOLD_BYTES
from repro.sql.table import Table
from repro.sql.types import Schema, estimate_row_bytes
from repro.sql.udf import UdfContext


def partition_rows(partition) -> list[tuple]:
    """Row view of one partition — the seam adapter between columnar and
    row-oriented operators (a no-op for row partitions; ``to_rows`` is
    memoized on batches)."""
    if isinstance(partition, ColumnBatch):
        return partition.to_rows()
    return partition


# Runtime conditions under which a vectorized kernel abdicates to the row
# path: explicit fallbacks, plus type/shape refusals from strict conversion.
_VECTOR_FALLBACK_ERRORS = (TypeError, ValueError, OverflowError)


@dataclass
class DistRelation:
    """An intermediate result: one partition per worker slot.

    A partition is a ``list[tuple]``, or — on the columnar data plane — a
    :class:`~repro.columnar.batch.ColumnBatch`.  Operators with columnar
    kernels consume batches directly; everything else goes through
    :func:`partition_rows`.
    """

    schema: Schema
    partitions: list  # list[list[tuple] | ColumnBatch]

    def total_rows(self) -> int:
        return sum(len(p) for p in self.partitions)

    def all_rows(self) -> list[tuple]:
        rows: list[tuple] = []
        for p in self.partitions:
            rows.extend(partition_rows(p))
        return rows

    def estimated_bytes(self) -> int:
        # ColumnBatch.logical_bytes() computes the same per-row estimate
        # formula vectorized, so the two representations account equally.
        return sum(
            p.logical_bytes()
            if isinstance(p, ColumnBatch)
            else sum(estimate_row_bytes(r) for r in p)
            for p in self.partitions
        )


@dataclass
class ExecutionContext:
    """Runtime facilities shared by all operators of one query."""

    num_workers: int
    worker_nodes: list[Node]
    ledger: CostLedger
    functions: FunctionRegistry
    services: dict[str, Any]
    dfs: Any = None  # DistributedFileSystem | None
    columnar: bool = False  # carry ColumnBatch partitions + vector kernels


class Executor:
    """Executes a logical plan and returns a :class:`DistRelation`."""

    def __init__(self, ctx: ExecutionContext):
        self._ctx = ctx

    def execute(self, plan: LogicalPlan) -> DistRelation:
        pool = ThreadPoolExecutor(max_workers=self._ctx.num_workers)
        self._pool = pool
        try:
            return self._execute(plan)
        finally:
            self._pool = None
            clock = self._ctx.services.get("clock")
            if clock is None:
                pool.shutdown(wait=True)
            else:
                # When a gathered future raises (an injected send fault),
                # sibling workers may still sit in clock-mediated retry
                # backoffs; joining them from inside the managed set would
                # gate the very time advancement they need to finish.
                with clock.unmanaged():
                    pool.shutdown(wait=True)

    # -------------------------------------------------------------- dispatch

    def _execute(self, plan: LogicalPlan) -> DistRelation:
        if isinstance(plan, LogicalScan):
            return self._exec_scan(plan)
        if isinstance(plan, LogicalTableFunction):
            return self._exec_table_function(plan)
        if isinstance(plan, LogicalFilter):
            return self._exec_filter(plan)
        if isinstance(plan, LogicalProject):
            return self._exec_project(plan)
        if isinstance(plan, LogicalJoin):
            return self._exec_join(plan)
        if isinstance(plan, LogicalDistinct):
            return self._exec_distinct(plan)
        if isinstance(plan, LogicalAggregate):
            return self._exec_aggregate(plan)
        if isinstance(plan, LogicalSort):
            return self._exec_sort(plan)
        if isinstance(plan, LogicalLimit):
            return self._exec_limit(plan)
        if isinstance(plan, LogicalUnionAll):
            return self._exec_union_all(plan)
        raise ExecutionError(f"no physical operator for {type(plan).__name__}")

    def _exec_union_all(self, plan: LogicalUnionAll) -> DistRelation:
        results = [self._execute(branch) for branch in plan.branches]
        partitions = self._empty_partitions()
        for relation in results:
            for worker_id, rows in enumerate(relation.partitions):
                partitions[worker_id].extend(partition_rows(rows))
        return DistRelation(schema=plan.schema, partitions=partitions)

    def _map_partitions(self, partitions, fn) -> list:
        """Run ``fn(worker_id, partition)`` once per slot, concurrently.

        Worker tasks register with the injected clock (virtual under the
        chaos harness) so blocking sends inside them — governed throttles,
        socket flushes — count toward quiescence; the gather steps out of
        the managed set while it blocks in ``Future.result()``.
        """
        clock = self._ctx.services.get("clock")
        if clock is None:
            futures = [
                self._pool.submit(fn, worker_id, partition)
                for worker_id, partition in enumerate(partitions)
            ]
            return [f.result() for f in futures]

        def task(worker_id: int, partition):
            with clock.managed(f"sql-worker-{worker_id}", expected=True):
                return fn(worker_id, partition)

        parts = list(partitions)
        # Never expect more concurrent tasks than the pool can run: excess
        # expectations would hold virtual time still for threads that cannot
        # start until running ones (possibly parked in clock waits) finish.
        clock.expect_threads(min(len(parts), self._ctx.num_workers))
        futures = [
            self._pool.submit(task, worker_id, partition)
            for worker_id, partition in enumerate(parts)
        ]
        with clock.unmanaged():
            return [f.result() for f in futures]

    def _empty_partitions(self) -> list[list[tuple]]:
        return [[] for _ in range(self._ctx.num_workers)]

    # ------------------------------------------------------------------ scan

    def _exec_scan(self, plan: LogicalScan) -> DistRelation:
        table = plan.table
        if table.is_external:
            partitions = self._scan_external(table)
        else:
            partitions = self._redistribute_table(table)
            self._ctx.ledger.add("sql.scan", table.estimated_bytes())
        if self._ctx.columnar:
            partitions = [
                self._to_batch(plan.schema, p) if not isinstance(p, ColumnBatch) else p
                for p in partitions
            ]
        relation = DistRelation(schema=plan.schema, partitions=partitions)
        if plan.pushed_filter is not None:
            relation = self._apply_filter(relation, plan.pushed_filter)
        return relation

    def _to_batch(self, schema: Schema, rows: list[tuple]):
        """Best-effort columnarization: rows whose Python types don't fit
        the typed storage stay rows (the adapters handle either shape)."""
        try:
            return ColumnBatch.from_rows(schema, rows)
        except _VECTOR_FALLBACK_ERRORS:
            self._count_columnar_fallback()
            return rows

    def _count_columnar_fallback(self) -> None:
        """Every columnar->row degradation (unsupported tree at compile
        time, VectorFallback at runtime, rows that refuse typed storage)
        charges one ``columnar.fallback`` tick, so the columnar plane can't
        quietly decay into the row path.  Reached only in columnar mode —
        default deployments emit no such ledger category."""
        self._ctx.ledger.add("columnar.fallback", 1)

    def _redistribute_table(self, table: Table) -> list[list[tuple]]:
        n = self._ctx.num_workers
        if len(table.partitions) == n:
            return [list(p.rows) for p in table.partitions]
        partitions = self._empty_partitions()
        for i, row in enumerate(table.all_rows()):
            partitions[i % n].append(row)
        return partitions

    def _scan_external(self, table: Table) -> list[list[tuple]]:
        if self._ctx.dfs is None:
            raise ExecutionError(
                f"external table {table.name!r} requires a DFS-attached engine"
            )
        if table.external.format == "columnar":
            return self._scan_external_columnar(table)
        conf = JobConf(
            {"input.path": table.external.path, "csv.delimiter": table.external.delimiter},
            dfs=self._ctx.dfs,
        )
        fmt = CsvInputFormat()
        splits = fmt.get_splits(conf, self._ctx.num_workers * 2)
        assignments = assign_splits(splits, self._ctx.worker_nodes)
        dtypes = [c.dtype for c in table.schema]
        total_bytes = sum(s.length() for s in splits)
        self._ctx.ledger.add("sql.scan", total_bytes)

        def read_worker(worker_id: int, worker_splits) -> list[tuple]:
            node = self._ctx.worker_nodes[worker_id % len(self._ctx.worker_nodes)]
            worker_conf = JobConf(
                dict(conf.props, **{"client.ip": node.ip}), dfs=self._ctx.dfs
            )
            rows: list[tuple] = []
            for split in worker_splits:
                with fmt.create_record_reader(split, worker_conf) as reader:
                    for fields in reader:
                        if len(fields) != len(dtypes):
                            raise ExecutionError(
                                f"bad record in {table.name}: expected "
                                f"{len(dtypes)} fields, got {len(fields)}"
                            )
                        rows.append(
                            tuple(dt.parse(f) for dt, f in zip(dtypes, fields))
                        )
            return rows

        return self._map_partitions(assignments, read_worker)

    def _scan_external_columnar(self, table: Table) -> list[list[tuple]]:
        """Columnar scan: one part file at a time, rows arrive pre-typed.

        Scan bytes are the (dictionary-compressed) file bytes — columnar
        tables cost less I/O than text, exactly the Parquet/ORC advantage
        §2.1 alludes to.

        On the columnar data plane the scan skips row materialization
        entirely: each part file decodes straight into a
        :class:`~repro.columnar.batch.ColumnBatch`, adopting the file's
        dictionary encoding."""
        from repro.columnar.format import ColumnarInputFormat, decode_partition_batch

        conf = JobConf({"input.path": table.external.path}, dfs=self._ctx.dfs)
        fmt = ColumnarInputFormat()
        splits = fmt.get_splits(conf, self._ctx.num_workers)
        assignments = assign_splits(splits, self._ctx.worker_nodes)
        self._ctx.ledger.add("sql.scan", sum(s.length() for s in splits))
        expected_width = len(table.schema)

        if self._ctx.columnar:

            def read_worker_batch(worker_id: int, worker_splits):
                node = self._ctx.worker_nodes[worker_id % len(self._ctx.worker_nodes)]
                batches = []
                for split in worker_splits:
                    data = self._ctx.dfs.read_bytes(split.path, client_ip=node.ip)
                    batches.append(decode_partition_batch(data, table.schema))
                if not batches:
                    return ColumnBatch.from_rows(table.schema, [])
                return ColumnBatch.concat(table.schema, batches)

            return self._map_partitions(assignments, read_worker_batch)

        def read_worker(worker_id: int, worker_splits) -> list[tuple]:
            node = self._ctx.worker_nodes[worker_id % len(self._ctx.worker_nodes)]
            worker_conf = JobConf(
                {"input.path": table.external.path, "client.ip": node.ip},
                dfs=self._ctx.dfs,
            )
            rows: list[tuple] = []
            for split in worker_splits:
                with fmt.create_record_reader(split, worker_conf) as reader:
                    for row in reader:
                        if len(row) != expected_width:
                            raise ExecutionError(
                                f"bad columnar record in {table.name}: expected "
                                f"{expected_width} fields, got {len(row)}"
                            )
                        rows.append(row)
            return rows

        return self._map_partitions(assignments, read_worker)

    # ------------------------------------------------------ simple operators

    def _exec_filter(self, plan: LogicalFilter) -> DistRelation:
        child = self._execute(plan.child)
        return self._apply_filter(child, plan.predicate)

    def _apply_filter(self, relation: DistRelation, predicate) -> DistRelation:
        binder = Binder(relation.schema, self._ctx.functions)
        evaluate = predicate.bind_batch(binder)
        vec_predicate = (
            vectorized.compile_predicate(predicate, relation.schema)
            if self._ctx.columnar
            else None
        )
        if self._ctx.columnar and vec_predicate is None:
            self._count_columnar_fallback()

        def filter_partition(_w: int, partition) -> list[tuple]:
            if isinstance(partition, ColumnBatch):
                if vec_predicate is not None:
                    try:
                        return partition.filter(vec_predicate(partition))
                    except (vectorized.VectorFallback, *_VECTOR_FALLBACK_ERRORS):
                        self._count_columnar_fallback()
                rows = partition.to_rows()
                kept = [r for r, keep in zip(rows, evaluate(rows)) if keep is True]
                return self._to_batch(relation.schema, kept)
            rows = partition
            # One batch evaluation per partition, then a zip-scan: no
            # per-row closure-tree dispatch on the hot path.
            return [r for r, keep in zip(rows, evaluate(rows)) if keep is True]

        partitions = self._map_partitions(relation.partitions, filter_partition)
        return DistRelation(schema=relation.schema, partitions=partitions)

    def _exec_project(self, plan: LogicalProject) -> DistRelation:
        child = self._execute(plan.child)
        binder = Binder(child.schema, self._ctx.functions)
        evaluators = [e.bind_batch(binder) for e in plan.exprs]
        vec_project = (
            vectorized.compile_projection(plan.exprs, plan.schema, child.schema)
            if self._ctx.columnar
            else None
        )
        if self._ctx.columnar and vec_project is None:
            self._count_columnar_fallback()

        def project(_w: int, partition) -> list[tuple]:
            if isinstance(partition, ColumnBatch):
                if vec_project is not None:
                    try:
                        return vec_project(partition)
                    except (vectorized.VectorFallback, *_VECTOR_FALLBACK_ERRORS):
                        self._count_columnar_fallback()
                rows = partition.to_rows()
                columns = [fn(rows) for fn in evaluators]
                out_rows = list(zip(*columns)) if rows else []
                return self._to_batch(plan.schema, out_rows)
            rows = partition
            # Column-at-a-time evaluation, re-zipped into row tuples.
            columns = [fn(rows) for fn in evaluators]
            return list(zip(*columns)) if rows else []

        partitions = self._map_partitions(child.partitions, project)
        out = DistRelation(schema=plan.schema, partitions=partitions)
        self._ctx.ledger.add("sql.output", out.estimated_bytes())
        return out

    def _exec_table_function(self, plan: LogicalTableFunction) -> DistRelation:
        child = self._execute(plan.child)

        def run_udf(worker_id: int, partition) -> list[tuple]:
            node = self._ctx.worker_nodes[worker_id % len(self._ctx.worker_nodes)]
            ctx = UdfContext(
                worker_id=worker_id,
                num_workers=self._ctx.num_workers,
                node=node,
                ledger=self._ctx.ledger,
                services=self._ctx.services,
            )
            if self._ctx.columnar and not isinstance(partition, ColumnBatch):
                # Seam adapter: a row-only operator upstream (sort, limit,
                # global distinct, ...) dropped out of the columnar plane;
                # re-batch so the UDF's columnar kernel still engages.
                partition = self._to_batch(child.schema, partition)
            if isinstance(partition, ColumnBatch):
                # A UDF with a columnar kernel consumes the batch directly;
                # returning None means "no columnar path for these args".
                out = plan.udf.process_batch(partition, child.schema, plan.args, ctx)
                if out is not None:
                    return out
                rows = partition.to_rows()
            else:
                rows = partition
            return list(
                plan.udf.process_partition(rows, child.schema, plan.args, ctx)
            )

        partitions = self._map_partitions(child.partitions, run_udf)
        return DistRelation(schema=plan.schema, partitions=partitions)

    # ------------------------------------------------------------------ join

    def _exec_join(self, plan: LogicalJoin) -> DistRelation:
        left = self._execute(plan.left)
        right = self._execute(plan.right)
        left_binder = Binder(left.schema, self._ctx.functions)
        right_binder = Binder(right.schema, self._ctx.functions)
        left_key_fns = [k.bind_batch(left_binder) for k in plan.left_keys]
        right_key_fns = [k.bind_batch(right_binder) for k in plan.right_keys]
        if not left_key_fns:
            # Cartesian product: broadcast the smaller side unconditionally.
            left_key_fns = [lambda rows: [0] * len(rows)]
            right_key_fns = [lambda rows: [0] * len(rows)]

        left_bytes = left.estimated_bytes()
        right_bytes = right.estimated_bytes()

        if plan.kind == "left":
            build_side, probe_side = "right", "left"
            use_broadcast = right_bytes <= BROADCAST_THRESHOLD_BYTES
        else:
            if left_bytes <= right_bytes:
                build_side, probe_side = "left", "right"
                use_broadcast = left_bytes <= BROADCAST_THRESHOLD_BYTES
            else:
                build_side, probe_side = "right", "left"
                use_broadcast = right_bytes <= BROADCAST_THRESHOLD_BYTES

        if use_broadcast:
            relation = self._broadcast_join(
                plan, left, right, left_key_fns, right_key_fns, build_side
            )
        else:
            relation = self._shuffle_join(
                plan, left, right, left_key_fns, right_key_fns
            )

        if self._ctx.columnar:
            # Joins build/probe over row tuples; re-enter the columnar plane
            # at their output so everything downstream (projections, UDFs,
            # the stream sender) vectorizes again.
            relation = DistRelation(
                schema=relation.schema,
                partitions=[
                    p
                    if isinstance(p, ColumnBatch)
                    else self._to_batch(relation.schema, p)
                    for p in relation.partitions
                ],
            )

        if plan.residual is not None:
            if plan.kind == "left":
                raise ExecutionError(
                    "LEFT JOIN with non-equi residual conditions is unsupported"
                )
            relation = self._apply_filter(relation, plan.residual)
        return relation

    def _broadcast_join(
        self, plan, left, right, left_key_fns, right_key_fns, build_side
    ) -> DistRelation:
        if build_side == "left":
            build, probe = left, right
            build_key_fns, probe_key_fns = left_key_fns, right_key_fns
        else:
            build, probe = right, left
            build_key_fns, probe_key_fns = right_key_fns, left_key_fns

        build_rows = build.all_rows()
        replication_cost = build.estimated_bytes() * max(self._ctx.num_workers - 1, 0)
        self._ctx.ledger.add("sql.shuffle", int(replication_cost))

        hash_table: dict[tuple, list[tuple]] = {}
        for row, key in zip(build_rows, _batch_key_tuples(build_key_fns, build_rows)):
            if any(k is None for k in key):
                continue
            hash_table.setdefault(key, []).append(row)

        left_join = plan.kind == "left"
        null_pad = (None,) * len(build.schema)

        def probe_partition(_w: int, partition) -> list[tuple]:
            rows = partition_rows(partition)
            out: list[tuple] = []
            for row, key in zip(rows, _batch_key_tuples(probe_key_fns, rows)):
                matches = (
                    hash_table.get(key, ()) if not any(k is None for k in key) else ()
                )
                if matches:
                    for other in matches:
                        out.append(
                            row + other if build_side == "right" else other + row
                        )
                elif left_join:
                    # probe side is the preserved (left) side here
                    out.append(row + null_pad)
            return out

        partitions = self._map_partitions(probe.partitions, probe_partition)
        return DistRelation(schema=plan.schema, partitions=partitions)

    def _shuffle_join(
        self, plan, left, right, left_key_fns, right_key_fns
    ) -> DistRelation:
        n = self._ctx.num_workers
        left_parts, left_keys = self._repartition_by_key(left, left_key_fns)
        right_parts, right_keys = self._repartition_by_key(right, right_key_fns)
        left_join = plan.kind == "left"
        null_pad = (None,) * len(right.schema)

        def local_join(worker_id: int, _ignored) -> list[tuple]:
            build: dict[tuple, list[tuple]] = {}
            for row, key in zip(right_parts[worker_id], right_keys[worker_id]):
                if any(k is None for k in key):
                    continue
                build.setdefault(key, []).append(row)
            out: list[tuple] = []
            for row, key in zip(left_parts[worker_id], left_keys[worker_id]):
                matches = build.get(key, ()) if not any(k is None for k in key) else ()
                if matches:
                    for other in matches:
                        out.append(row + other)
                elif left_join:
                    out.append(row + null_pad)
            return out

        partitions = self._map_partitions([None] * n, local_join)
        return DistRelation(schema=plan.schema, partitions=partitions)

    def _repartition_by_key(
        self, relation: DistRelation, key_fns
    ) -> tuple[list[list[tuple]], list[list[tuple]]]:
        """Hash-repartition on batch-evaluated key tuples.

        Returns the row buckets *and* the matching key buckets so downstream
        operators (the local join build/probe) reuse the key tuples instead
        of recomputing them per row."""
        n = self._ctx.num_workers
        buckets = self._empty_partitions()
        key_buckets: list[list[tuple]] = [[] for _ in range(n)]
        moved_bytes = 0
        for source, partition in enumerate(relation.partitions):
            rows = partition_rows(partition)
            for row, key in zip(rows, _batch_key_tuples(key_fns, rows)):
                target = hash(key) % n
                if target != source:
                    moved_bytes += estimate_row_bytes(row)
                buckets[target].append(row)
                key_buckets[target].append(key)
        self._ctx.ledger.add("sql.shuffle", moved_bytes)
        return buckets, key_buckets

    # --------------------------------------------------------------- distinct

    def _exec_distinct(self, plan: LogicalDistinct) -> DistRelation:
        child = self._execute(plan.child)
        local = self._map_partitions(
            child.partitions,
            lambda _w, rows: list(dict.fromkeys(partition_rows(rows))),
        )
        # Key tuple is (row,) — identical hash placement to the seed path.
        shuffled, _keys = self._repartition_by_key(
            DistRelation(schema=child.schema, partitions=local),
            [lambda rows: rows],
        )
        partitions = self._map_partitions(
            shuffled, lambda _w, rows: list(dict.fromkeys(rows))
        )
        return DistRelation(schema=plan.schema, partitions=partitions)

    # -------------------------------------------------------------- aggregate

    def _exec_aggregate(self, plan: LogicalAggregate) -> DistRelation:
        child = self._execute(plan.child)
        binder = Binder(child.schema, self._ctx.functions)
        key_fns = [e.bind_batch(binder) for e in plan.group_exprs]
        agg_specs = []
        for call in plan.agg_calls:
            if call.func == "count" and isinstance(call.arg, Star):
                arg_fn = None
            else:
                arg_fn = call.arg.bind_batch(binder)
            agg_specs.append((call.func, arg_fn, call.distinct))

        vec_global = vec_keys = vec_args = None
        arg_positions: list[int | None] = []
        if self._ctx.columnar:
            if not plan.group_exprs:
                vec_global = vectorized.compile_global_aggregate(
                    plan.agg_calls, child.schema
                )
            else:
                vec_keys = vectorized.compile_value_lists(
                    plan.group_exprs, child.schema
                )
                arg_exprs = []
                for call in plan.agg_calls:
                    if call.func == "count" and isinstance(call.arg, Star):
                        arg_positions.append(None)
                    else:
                        arg_positions.append(len(arg_exprs))
                        arg_exprs.append(call.arg)
                vec_args = vectorized.compile_value_lists(arg_exprs, child.schema)
            if (vec_global is None) and (vec_keys is None or vec_args is None):
                self._count_columnar_fallback()

        def partial(_w: int, partition) -> dict[tuple, list]:
            if isinstance(partition, ColumnBatch):
                # Global aggregates reduce whole arrays; grouped aggregates
                # vectorize key/argument extraction and keep the (hash-based)
                # grouping loop.  Either way the partial shape matches the
                # row path, so merge/finalize below are shared.
                if vec_global is not None:
                    try:
                        return vec_global(partition)
                    except (vectorized.VectorFallback, *_VECTOR_FALLBACK_ERRORS):
                        self._count_columnar_fallback()
                if vec_keys is not None and vec_args is not None:
                    try:
                        keys = list(zip(*vec_keys(partition)))
                        value_columns = vec_args(partition)
                        arg_columns = [
                            value_columns[pos] if pos is not None else None
                            for pos in arg_positions
                        ]
                        return group_partial(keys, arg_columns)
                    except (vectorized.VectorFallback, *_VECTOR_FALLBACK_ERRORS):
                        self._count_columnar_fallback()
                rows = partition.to_rows()
            else:
                rows = partition
            # Group keys and aggregate arguments are evaluated once per
            # partition as columns; the grouping loop only indexes them.
            keys = _batch_key_tuples(key_fns, rows)
            arg_columns = [
                arg_fn(rows) if arg_fn is not None else None
                for _f, arg_fn, _d in agg_specs
            ]
            return group_partial(keys, arg_columns)

        def group_partial(keys: list[tuple], arg_columns: list) -> dict[tuple, list]:
            groups: dict[tuple, list] = {}
            for idx, key in enumerate(keys):
                acc = groups.get(key)
                if acc is None:
                    acc = [_new_accumulator(f, d) for f, _a, d in agg_specs]
                    groups[key] = acc
                for i, (func, _arg_fn, distinct) in enumerate(agg_specs):
                    column = arg_columns[i]
                    value = column[idx] if column is not None else 1
                    _accumulate(acc[i], func, value, distinct, star=column is None)
            return groups

        partials = self._map_partitions(child.partitions, partial)

        n = self._ctx.num_workers
        merged_buckets: list[dict[tuple, list]] = [dict() for _ in range(n)]
        moved = 0
        for source, groups in enumerate(partials):
            for key, acc in groups.items():
                target = hash(key) % n if plan.group_exprs else 0
                if target != source:
                    moved += estimate_row_bytes(key) + 32 * len(acc)
                bucket = merged_buckets[target]
                existing = bucket.get(key)
                if existing is None:
                    bucket[key] = acc
                else:
                    for i, (func, _a, distinct) in enumerate(agg_specs):
                        _merge_accumulator(existing[i], acc[i], func, distinct)
        self._ctx.ledger.add("sql.shuffle", moved)

        partitions = self._empty_partitions()
        for worker_id, bucket in enumerate(merged_buckets):
            for key, acc in bucket.items():
                finals = [
                    _finalize(acc[i], func, distinct)
                    for i, (func, _a, distinct) in enumerate(agg_specs)
                ]
                row = []
                for slot_kind, index in plan.output_slots:
                    row.append(key[index] if slot_kind == "group" else finals[index])
                partitions[worker_id].append(tuple(row))

        if not plan.group_exprs and not any(partitions):
            # Global aggregate over empty input still yields one row.
            empty_row = []
            for slot_kind, index in plan.output_slots:
                func, _a, distinct = agg_specs[index]
                acc = _new_accumulator(func, distinct)
                empty_row.append(_finalize(acc, func, distinct))
            partitions[0].append(tuple(empty_row))

        return DistRelation(schema=plan.schema, partitions=partitions)

    # ------------------------------------------------------------ sort/limit

    def _exec_sort(self, plan: LogicalSort) -> DistRelation:
        child = self._execute(plan.child)
        rows = child.all_rows()
        binder = Binder(child.schema, self._ctx.functions)
        # Stable sorts applied in reverse key order implement multi-key sort;
        # each pass batch-evaluates its key as a column (decorate-sort-
        # undecorate) instead of calling the evaluator once per comparison.
        for expr, ascending in reversed(plan.keys):
            values = expr.bind_batch(binder)(rows)
            decorated = sorted(
                zip(values, rows),
                key=lambda pair: _null_safe_key(pair[0], ascending),
                reverse=not ascending,
            )
            rows = [row for _v, row in decorated]
        partitions = self._empty_partitions()
        partitions[0] = rows
        return DistRelation(schema=plan.schema, partitions=partitions)

    def _exec_limit(self, plan: LogicalLimit) -> DistRelation:
        child = self._execute(plan.child)
        partitions = self._empty_partitions()
        taken: list[tuple] = []
        for partition in child.partitions:
            if len(taken) >= plan.limit:
                break
            taken.extend(partition_rows(partition)[: plan.limit - len(taken)])
        partitions[0] = taken
        return DistRelation(schema=plan.schema, partitions=partitions)


def _batch_key_tuples(batch_fns, rows: list[tuple]) -> list[tuple]:
    """Key tuples for a whole partition: one batch evaluation per key expr.

    With no key exprs every row keys to ``()`` (the global-aggregate case).
    """
    if not rows:
        return []
    if not batch_fns:
        return [()] * len(rows)
    columns = [fn(rows) for fn in batch_fns]
    return list(zip(*columns))


# -------------------------------------------------------------- accumulators


def _new_accumulator(func: str, distinct: bool) -> list:
    if distinct:
        return [set()]
    if func == "count":
        return [0]
    if func == "avg":
        return [0.0, 0]
    return [None]  # sum / min / max


def _accumulate(acc: list, func: str, value, distinct: bool, star: bool) -> None:
    if value is None and not star:
        return
    if distinct:
        acc[0].add(value)
        return
    if func == "count":
        acc[0] += 1
    elif func == "sum":
        acc[0] = value if acc[0] is None else acc[0] + value
    elif func == "avg":
        acc[0] += value
        acc[1] += 1
    elif func == "min":
        acc[0] = value if acc[0] is None else min(acc[0], value)
    elif func == "max":
        acc[0] = value if acc[0] is None else max(acc[0], value)
    else:
        raise ExecutionError(f"unknown aggregate {func!r}")


def _merge_accumulator(target: list, source: list, func: str, distinct: bool) -> None:
    if distinct:
        target[0] |= source[0]
        return
    if func == "count":
        target[0] += source[0]
    elif func == "avg":
        target[0] += source[0]
        target[1] += source[1]
    elif func in ("sum", "min", "max"):
        if source[0] is None:
            return
        if target[0] is None:
            target[0] = source[0]
        elif func == "sum":
            target[0] += source[0]
        elif func == "min":
            target[0] = min(target[0], source[0])
        else:
            target[0] = max(target[0], source[0])
    else:
        raise ExecutionError(f"unknown aggregate {func!r}")


def _finalize(acc: list, func: str, distinct: bool):
    if distinct:
        values = acc[0]
        if func == "count":
            return len(values)
        if not values:
            return None
        if func == "sum":
            return sum(values)
        if func == "avg":
            return sum(values) / len(values)
        if func == "min":
            return min(values)
        if func == "max":
            return max(values)
        raise ExecutionError(f"unknown aggregate {func!r}")
    if func == "avg":
        return acc[0] / acc[1] if acc[1] else None
    return acc[0]


def _null_safe_key(value, ascending: bool):
    """NULLs sort last ascending (and, via reverse=, first descending)."""
    if value is None:
        return (1, 0)
    return (0, value)


def assign_splits(splits: list[FileSplit], worker_nodes: list[Node]) -> list[list]:
    """Distribute splits over worker slots, preferring local replicas.

    Greedy two-phase: first give every split a local worker when one has
    spare capacity; then round-robin the rest — the "best effort" locality
    the paper describes for spawning ML readers next to SQL workers applies
    the same way to DFS scans.
    """
    n = len(worker_nodes)
    target = -(-len(splits) // n) if splits else 0  # ceil
    assignments: list[list] = [[] for _ in range(n)]
    ip_to_worker = {node.ip: i for i, node in enumerate(worker_nodes)}
    leftovers = []
    for split in splits:
        placed = False
        for ip in split.locations():
            worker = ip_to_worker.get(ip)
            if worker is not None and len(assignments[worker]) < target:
                assignments[worker].append(split)
                placed = True
                break
        if not placed:
            leftovers.append(split)
    cursor = 0
    for split in leftovers:
        for _ in range(n):
            if len(assignments[cursor % n]) < target:
                break
            cursor += 1
        assignments[cursor % n].append(split)
        cursor += 1
    return assignments
