"""User-defined function interfaces — the engine's extensibility surface.

The paper's whole approach rests on this: "our techniques apply to any big
SQL system that supports UDFs".  Two kinds are supported:

* **scalar UDFs** — registered into the expression
  :class:`~repro.sql.expressions.FunctionRegistry`, usable anywhere an
  expression is;
* **parallel table UDFs** — subclasses of :class:`TableUDF`, invoked as
  ``SELECT ... FROM TABLE(name(input, args...))``.  The engine calls
  :meth:`TableUDF.process_partition` once per partition, concurrently across
  worker slots, handing each invocation a :class:`UdfContext` describing its
  slot (worker id, node, total workers) and the engine services it may use
  (DFS handle, transfer coordinator, cost ledger).

All of §2's transformations and §3's streaming sender are implemented purely
against this interface — see :mod:`repro.transform` and
:mod:`repro.transfer`.
"""

from abc import ABC, abstractmethod
from collections.abc import Iterable
from dataclasses import dataclass, field
from typing import Any

from repro.cluster.cost import CostLedger
from repro.cluster.node import Node
from repro.sql.types import Schema


@dataclass
class UdfContext:
    """What one table-UDF invocation knows about its execution slot."""

    worker_id: int
    num_workers: int
    node: Node
    ledger: CostLedger
    services: dict[str, Any] = field(default_factory=dict)

    def service(self, name: str) -> Any:
        """Fetch an engine service (e.g. ``"dfs"``, ``"coordinator"``)."""
        try:
            return self.services[name]
        except KeyError:
            raise KeyError(
                f"engine service {name!r} not available; registered: "
                f"{sorted(self.services)}"
            ) from None


class TableUDF(ABC):
    """A parallel table function: partitions in, rows out.

    Subclasses must be stateless across partitions (one instance serves all
    worker slots concurrently); per-invocation state belongs in local
    variables of :meth:`process_partition`.
    """

    #: Name used in ``TABLE(name(...))`` SQL syntax.
    name: str = ""

    @abstractmethod
    def output_schema(self, input_schema: Schema, args: tuple) -> Schema:
        """The schema of the rows this UDF produces for the given input."""

    @abstractmethod
    def process_partition(
        self,
        rows: Iterable[tuple],
        input_schema: Schema,
        args: tuple,
        ctx: UdfContext,
    ) -> Iterable[tuple]:
        """Transform one input partition into output rows."""

    def process_batch(self, batch, input_schema: Schema, args: tuple, ctx: UdfContext):
        """Optional columnar kernel: consume one
        :class:`~repro.columnar.batch.ColumnBatch`, return a ColumnBatch (or
        a row list), or ``None`` to decline — the executor then falls back to
        :meth:`process_partition` over ``batch.to_rows()``.  Only called on
        the columnar data plane."""
        return None
