"""Table storage: in-memory partitioned tables and DFS-backed external tables."""

from dataclasses import dataclass

from repro.common.errors import CatalogError
from repro.sql.types import Schema, estimate_row_bytes


@dataclass
class Partition:
    """One horizontal slice of a table, pinned to a worker slot."""

    rows: list[tuple]
    worker_id: int = 0

    def __len__(self) -> int:
        return len(self.rows)

    def estimated_bytes(self) -> int:
        """Approximate in-memory/wire size of this partition."""
        return sum(estimate_row_bytes(r) for r in self.rows)


@dataclass
class ExternalLocation:
    """Where an external table's data lives on the DFS."""

    path: str
    format: str = "csv"
    delimiter: str = ","


class Table:
    """A named relation: either memory-resident partitions or a DFS path.

    In-memory tables hold their rows in :class:`Partition` objects, one per
    worker slot, mirroring an MPP engine's per-node storage.  External tables
    (the paper stores carts/users "in text format on HDFS") record only their
    location; the scan operator reads and parses them through the DFS with
    full byte accounting.
    """

    def __init__(
        self,
        name: str,
        schema: Schema,
        partitions: list[Partition] | None = None,
        external: ExternalLocation | None = None,
    ):
        if (partitions is None) == (external is None):
            raise CatalogError(
                f"table {name!r} must be either in-memory or external, not both/neither"
            )
        self.name = name
        self.schema = schema
        self.partitions = partitions
        self.external = external

    @property
    def is_external(self) -> bool:
        return self.external is not None

    def num_rows(self) -> int:
        """Row count (in-memory tables only)."""
        if self.partitions is None:
            raise CatalogError(f"row count of external table {self.name!r} unknown")
        return sum(len(p) for p in self.partitions)

    def all_rows(self) -> list[tuple]:
        """Gather every row (in-memory tables only) in partition order."""
        if self.partitions is None:
            raise CatalogError(f"cannot gather external table {self.name!r}")
        rows: list[tuple] = []
        for partition in self.partitions:
            rows.extend(partition.rows)
        return rows

    def estimated_bytes(self) -> int:
        """Approximate size (in-memory tables only)."""
        if self.partitions is None:
            raise CatalogError(f"size of external table {self.name!r} unknown")
        return sum(p.estimated_bytes() for p in self.partitions)

    def __repr__(self) -> str:  # pragma: no cover - debug convenience
        kind = f"external:{self.external.path}" if self.external else (
            f"{len(self.partitions)} partitions, {self.num_rows()} rows"
        )
        return f"Table({self.name!r}, {kind})"


def partition_rows(rows: list[tuple], num_partitions: int) -> list[Partition]:
    """Round-robin rows into ``num_partitions`` partitions (MPP load style)."""
    if num_partitions < 1:
        raise ValueError("num_partitions must be >= 1")
    buckets: list[list[tuple]] = [[] for _ in range(num_partitions)]
    for i, row in enumerate(rows):
        buckets[i % num_partitions].append(row)
    return [Partition(rows=b, worker_id=w) for w, b in enumerate(buckets)]
