"""Query-level AST nodes (above the expression layer)."""

from dataclasses import dataclass

from repro.sql.expressions import Expr


@dataclass(frozen=True)
class SelectItem:
    """One entry of a SELECT list: an expression plus optional alias."""

    expr: Expr
    alias: str | None = None

    def to_sql(self) -> str:
        if self.alias:
            return f"{self.expr.to_sql()} AS {self.alias}"
        return self.expr.to_sql()


class TableRef:
    """Base of FROM-clause items."""


@dataclass(frozen=True)
class NamedTable(TableRef):
    """A catalog table with an optional alias: ``users U``."""

    name: str
    alias: str | None = None

    @property
    def binding_name(self) -> str:
        return self.alias or self.name

    def to_sql(self) -> str:
        if self.alias:
            return f"{self.name} AS {self.alias}"
        return self.name


@dataclass(frozen=True)
class TableFunction(TableRef):
    """A parallel table UDF in the FROM clause.

    Syntax: ``TABLE(udf_name(input, arg, ...)) AS alias`` where ``input`` is
    a table name or a parenthesized subquery, and the remaining arguments are
    constant expressions handed to the UDF.  This is the paper's
    extensibility hook: recoding pass 1, dummy coding, and the streaming
    sender are all invoked this way.
    """

    udf_name: str
    input_ref: TableRef
    args: tuple = ()
    alias: str | None = None

    @property
    def binding_name(self) -> str:
        return self.alias or self.udf_name

    def to_sql(self) -> str:
        parts = [self.input_ref.to_sql()]
        parts.extend(a.to_sql() for a in self.args)
        text = f"TABLE({self.udf_name}({', '.join(parts)}))"
        if self.alias:
            text += f" AS {self.alias}"
        return text


@dataclass(frozen=True)
class SubqueryRef(TableRef):
    """A derived table: ``(SELECT ...) AS alias``."""

    query: "SelectQuery"
    alias: str

    @property
    def binding_name(self) -> str:
        return self.alias

    def to_sql(self) -> str:
        return f"({self.query.to_sql()}) AS {self.alias}"


@dataclass(frozen=True)
class Join(TableRef):
    """An explicit ``A [INNER|LEFT] JOIN B ON cond``."""

    left: TableRef
    right: TableRef
    kind: str  # "inner" | "left"
    condition: Expr

    def to_sql(self) -> str:
        keyword = "LEFT JOIN" if self.kind == "left" else "JOIN"
        return f"{self.left.to_sql()} {keyword} {self.right.to_sql()} ON {self.condition.to_sql()}"


@dataclass(frozen=True)
class OrderItem:
    """One ORDER BY key."""

    expr: Expr
    ascending: bool = True

    def to_sql(self) -> str:
        return self.expr.to_sql() + ("" if self.ascending else " DESC")


@dataclass(frozen=True)
class UnionAll:
    """``query UNION ALL query [UNION ALL ...]`` — bag union of branches."""

    branches: tuple["SelectQuery", ...]

    def to_sql(self) -> str:
        return " UNION ALL ".join(b.to_sql() for b in self.branches)


@dataclass(frozen=True)
class SelectQuery:
    """A full SELECT statement."""

    items: tuple[SelectItem, ...]
    from_refs: tuple[TableRef, ...]
    where: Expr | None = None
    group_by: tuple[Expr, ...] = ()
    having: Expr | None = None
    order_by: tuple[OrderItem, ...] = ()
    limit: int | None = None
    distinct: bool = False

    def to_sql(self) -> str:
        parts = ["SELECT"]
        if self.distinct:
            parts.append("DISTINCT")
        parts.append(", ".join(item.to_sql() for item in self.items))
        parts.append("FROM " + ", ".join(ref.to_sql() for ref in self.from_refs))
        if self.where is not None:
            parts.append("WHERE " + self.where.to_sql())
        if self.group_by:
            parts.append("GROUP BY " + ", ".join(e.to_sql() for e in self.group_by))
        if self.having is not None:
            parts.append("HAVING " + self.having.to_sql())
        if self.order_by:
            parts.append("ORDER BY " + ", ".join(o.to_sql() for o in self.order_by))
        if self.limit is not None:
            parts.append(f"LIMIT {self.limit}")
        return " ".join(parts)
