"""Logical planner: AST -> logical plan with pushdown and join ordering."""

from collections.abc import Callable
from dataclasses import dataclass

from repro.common.errors import PlanError
from repro.sql.ast import (
    Join,
    NamedTable,
    SelectItem,
    SelectQuery,
    SubqueryRef,
    TableFunction,
    TableRef,
)
from repro.sql.expressions import (
    AggregateCall,
    Binder,
    ColumnRef,
    Comparison,
    Expr,
    FunctionRegistry,
    Star,
    combine_conjuncts,
    conjuncts,
    transform,
    walk,
)
from repro.sql.plan import (
    LogicalAggregate,
    LogicalDistinct,
    LogicalFilter,
    LogicalJoin,
    LogicalLimit,
    LogicalPlan,
    LogicalProject,
    LogicalScan,
    LogicalSort,
    LogicalTableFunction,
)
from repro.sql.types import Column, Schema

#: Broadcast a join side when its estimated size is below this many bytes.
BROADCAST_THRESHOLD_BYTES = 64 * 1024 * 1024


@dataclass
class PlannerContext:
    """What the planner needs from the engine."""

    resolve_table: Callable[[str], object]  # name -> Table (raises CatalogError)
    resolve_table_udf: Callable[[str], object]  # name -> TableUDF
    functions: FunctionRegistry
    estimate_table_bytes: Callable[[object], float]  # Table -> bytes
    # Table -> TableStats | None (fresh ANALYZE output, when available)
    table_stats: Callable[[object], object] = lambda table: None


@dataclass
class _Relation:
    """One base input to the join: a plan plus its binding name."""

    plan: LogicalPlan
    name: str
    estimated_bytes: float
    stats: object = None  # TableStats | None


class Planner:
    """Plans one SELECT statement (subqueries recurse)."""

    def __init__(self, ctx: PlannerContext):
        self._ctx = ctx

    def plan(self, query: SelectQuery) -> LogicalPlan:
        relations, join_pool = self._plan_from(query.from_refs)
        pool = list(join_pool) + conjuncts(query.where)
        self._reject_aggregates(pool, "WHERE")
        relations = self._push_filters(relations, pool)
        joined = self._order_joins(relations, pool)
        return self._plan_select(query, joined)

    @staticmethod
    def _reject_aggregates(predicates: list[Expr], clause: str) -> None:
        for predicate in predicates:
            if predicate.contains_aggregate():
                raise PlanError(
                    f"aggregates are not allowed in {clause}: {predicate.to_sql()}"
                )

    # ------------------------------------------------------------ FROM refs

    def _plan_from(
        self, refs: tuple[TableRef, ...]
    ) -> tuple[list[_Relation], list[Expr]]:
        relations: list[_Relation] = []
        pool: list[Expr] = []
        for ref in refs:
            self._flatten_ref(ref, relations, pool)
        if not relations:
            raise PlanError("FROM clause resolved to no relations")
        names = [r.name.lower() for r in relations]
        if len(set(names)) != len(names):
            raise PlanError(f"duplicate table binding in FROM: {names}")
        return relations, pool

    def _flatten_ref(
        self, ref: TableRef, relations: list[_Relation], pool: list[Expr]
    ) -> None:
        if isinstance(ref, Join):
            if ref.kind == "inner":
                self._flatten_ref(ref.left, relations, pool)
                self._flatten_ref(ref.right, relations, pool)
                pool.extend(conjuncts(ref.condition))
            else:
                relations.append(self._plan_outer_join(ref))
            return
        relations.append(self._plan_base_ref(ref))

    def _plan_outer_join(self, ref: Join) -> _Relation:
        """LEFT joins are planned as written (no reordering)."""
        left_relations: list[_Relation] = []
        left_pool: list[Expr] = []
        self._flatten_ref(ref.left, left_relations, left_pool)
        left_relations = self._push_filters(left_relations, left_pool)
        left = self._order_joins(left_relations, left_pool)
        right = self._plan_base_ref(ref.right)
        left_keys, right_keys, residual = self._split_join_condition(
            ref.condition, left.schema, right.plan.schema
        )
        schema = left.schema.concat(right.plan.schema)
        plan = LogicalJoin(
            left=left,
            right=right.plan,
            kind="left",
            left_keys=left_keys,
            right_keys=right_keys,
            residual=residual,
            schema=schema,
        )
        name = f"__leftjoin_{right.name}"
        return _Relation(plan=plan, name=name, estimated_bytes=right.estimated_bytes)

    def _plan_base_ref(self, ref: TableRef) -> _Relation:
        if isinstance(ref, NamedTable):
            table = self._ctx.resolve_table(ref.name)
            qualifier = ref.binding_name
            schema = table.schema.with_qualifier(qualifier)
            plan = LogicalScan(table=table, qualifier=qualifier, schema=schema)
            stats = self._ctx.table_stats(table)
            estimated = (
                stats.total_bytes
                if stats is not None
                else self._ctx.estimate_table_bytes(table)
            )
            return _Relation(
                plan=plan,
                name=qualifier,
                estimated_bytes=estimated,
                stats=stats,
            )
        if isinstance(ref, SubqueryRef):
            child = Planner(self._ctx).plan(ref.query)
            schema = child.schema.with_qualifier(ref.alias)
            plan = _requalify(child, schema)
            return _Relation(plan=plan, name=ref.alias, estimated_bytes=2**30)
        if isinstance(ref, TableFunction):
            return self._plan_table_function(ref)
        raise PlanError(f"unsupported FROM item: {type(ref).__name__}")

    def _plan_table_function(self, ref: TableFunction) -> _Relation:
        udf = self._ctx.resolve_table_udf(ref.udf_name)
        input_relation = self._plan_base_ref(ref.input_ref)
        args = tuple(self._constant(a) for a in ref.args)
        input_schema = input_relation.plan.schema
        out_schema = udf.output_schema(input_schema, args)
        qualifier = ref.binding_name
        plan = LogicalTableFunction(
            udf=udf,
            child=input_relation.plan,
            args=args,
            qualifier=qualifier,
            schema=out_schema.with_qualifier(qualifier),
        )
        return _Relation(
            plan=plan, name=qualifier, estimated_bytes=input_relation.estimated_bytes
        )

    def _constant(self, expr: Expr):
        if expr.references():
            raise PlanError(
                f"table UDF arguments must be constants, got {expr.to_sql()}"
            )
        empty = Binder(Schema([]), self._ctx.functions)
        return expr.bind(empty)(())

    # ------------------------------------------------------------- pushdown

    def _push_filters(
        self, relations: list[_Relation], pool: list[Expr]
    ) -> list[_Relation]:
        remaining: list[Expr] = []
        per_relation: dict[int, list[Expr]] = {}
        for predicate in pool:
            target = self._single_relation(predicate, relations)
            if target is None:
                remaining.append(predicate)
            else:
                per_relation.setdefault(target, []).append(predicate)
        pool[:] = remaining
        result: list[_Relation] = []
        for i, relation in enumerate(relations):
            conjunct_list = per_relation.get(i, [])
            predicate = combine_conjuncts(conjunct_list)
            if predicate is None:
                result.append(relation)
                continue
            plan = relation.plan
            if isinstance(plan, LogicalScan) and plan.pushed_filter is None:
                plan.pushed_filter = predicate
                new_plan: LogicalPlan = plan
            else:
                new_plan = LogicalFilter(child=plan, predicate=predicate)
            selectivity = 1.0
            for conjunct in conjunct_list:
                selectivity *= self._selectivity(conjunct, relation.stats)
            result.append(
                _Relation(
                    plan=new_plan,
                    name=relation.name,
                    estimated_bytes=relation.estimated_bytes * selectivity,
                    stats=relation.stats,
                )
            )
        return result

    @staticmethod
    def _selectivity(predicate: Expr, stats) -> float:
        """Estimated fraction of rows a conjunct keeps.

        With fresh ANALYZE stats, an equality against a known column uses
        the classic 1/NDV estimate and IN-lists k/NDV; otherwise textbook
        defaults (equality 0.1, range 1/3, fallback 0.25)."""
        from repro.sql.expressions import Between, InList, Like

        column: ColumnRef | None = None
        if isinstance(predicate, Comparison):
            if isinstance(predicate.left, ColumnRef):
                column = predicate.left
            elif isinstance(predicate.right, ColumnRef):
                column = predicate.right
            if predicate.op == "=":
                if column is not None and stats is not None:
                    ndv = stats.ndv.get(column.name.lower())
                    if ndv:
                        return min(1.0, 1.0 / ndv)
                return 0.1
            return 1.0 / 3.0
        if isinstance(predicate, InList) and not predicate.negated:
            if (
                isinstance(predicate.operand, ColumnRef)
                and stats is not None
            ):
                ndv = stats.ndv.get(predicate.operand.name.lower())
                if ndv:
                    return min(1.0, len(predicate.values) / ndv)
            return min(1.0, 0.1 * len(predicate.values))
        if isinstance(predicate, (Between, Like)):
            return 1.0 / 3.0
        return 0.25

    def _single_relation(
        self, predicate: Expr, relations: list[_Relation]
    ) -> int | None:
        refs = predicate.references()
        if not refs:
            return 0
        owners = set()
        for qualifier, name in refs:
            owner = self._owner_of(qualifier, name, relations)
            if owner is None:
                return None
            owners.add(owner)
        if len(owners) == 1:
            return owners.pop()
        return None

    @staticmethod
    def _owner_of(
        qualifier: str | None, name: str, relations: list[_Relation]
    ) -> int | None:
        candidates = [
            i
            for i, rel in enumerate(relations)
            if rel.plan.schema.maybe_resolve(qualifier, name) is not None
        ]
        if len(candidates) == 1:
            return candidates[0]
        return None

    # ---------------------------------------------------------- join order

    def _order_joins(self, relations: list[_Relation], pool: list[Expr]) -> LogicalPlan:
        if len(relations) == 1:
            plan = relations[0].plan
            residual = combine_conjuncts(pool)
            pool.clear()
            if residual is not None:
                plan = LogicalFilter(child=plan, predicate=residual)
            return plan

        pending = list(relations)
        pending.sort(key=lambda r: r.estimated_bytes)
        current = pending.pop(0)
        current_plan = current.plan
        current_bytes = current.estimated_bytes

        while pending:
            chosen = None
            for candidate in pending:
                if self._join_predicates(current_plan.schema, candidate.plan.schema, pool):
                    chosen = candidate
                    break
            if chosen is None:
                chosen = pending[0]  # cartesian fallback (predicates may be residual)
            pending.remove(chosen)
            preds = self._join_predicates(current_plan.schema, chosen.plan.schema, pool)
            for p in preds:
                pool.remove(p)
            left_keys, right_keys, extra_residual = self._split_predicates(
                preds, current_plan.schema, chosen.plan.schema
            )
            schema = current_plan.schema.concat(chosen.plan.schema)
            current_plan = LogicalJoin(
                left=current_plan,
                right=chosen.plan,
                kind="inner",
                left_keys=left_keys,
                right_keys=right_keys,
                residual=extra_residual,
                schema=schema,
            )
            current_bytes += chosen.estimated_bytes

        residual = combine_conjuncts(pool)
        pool.clear()
        if residual is not None:
            current_plan = LogicalFilter(child=current_plan, predicate=residual)
        return current_plan

    def _join_predicates(
        self, left_schema: Schema, right_schema: Schema, pool: list[Expr]
    ) -> list[Expr]:
        """Predicates fully resolvable over left+right (for this join step)."""
        combined = left_schema.concat(right_schema)
        usable = []
        for predicate in pool:
            refs = predicate.references()
            if refs and all(
                combined.maybe_resolve(q, n) is not None for q, n in refs
            ):
                usable.append(predicate)
        return usable

    def _split_predicates(
        self, predicates: list[Expr], left_schema: Schema, right_schema: Schema
    ) -> tuple[list[Expr], list[Expr], Expr | None]:
        left_keys: list[Expr] = []
        right_keys: list[Expr] = []
        residual: list[Expr] = []
        for predicate in predicates:
            pair = self._equi_pair(predicate, left_schema, right_schema)
            if pair is None:
                residual.append(predicate)
            else:
                left_keys.append(pair[0])
                right_keys.append(pair[1])
        return left_keys, right_keys, combine_conjuncts(residual)

    def _split_join_condition(
        self, condition: Expr, left_schema: Schema, right_schema: Schema
    ) -> tuple[list[Expr], list[Expr], Expr | None]:
        return self._split_predicates(conjuncts(condition), left_schema, right_schema)

    @staticmethod
    def _equi_pair(
        predicate: Expr, left_schema: Schema, right_schema: Schema
    ) -> tuple[Expr, Expr] | None:
        if not isinstance(predicate, Comparison) or predicate.op != "=":
            return None

        def side(expr: Expr) -> str | None:
            refs = expr.references()
            if not refs:
                return None
            on_left = all(left_schema.maybe_resolve(q, n) is not None for q, n in refs)
            on_right = all(right_schema.maybe_resolve(q, n) is not None for q, n in refs)
            if on_left and not on_right:
                return "left"
            if on_right and not on_left:
                return "right"
            return None

        lhs, rhs = side(predicate.left), side(predicate.right)
        if lhs == "left" and rhs == "right":
            return predicate.left, predicate.right
        if lhs == "right" and rhs == "left":
            return predicate.right, predicate.left
        return None

    # ------------------------------------------------------------- SELECT

    def _plan_select(self, query: SelectQuery, input_plan: LogicalPlan) -> LogicalPlan:
        items = self._expand_star(query.items, input_plan.schema)
        has_aggregates = bool(query.group_by) or any(
            item.expr.contains_aggregate() for item in items
        )
        if query.having is not None and not has_aggregates:
            raise PlanError("HAVING requires GROUP BY or aggregates")

        if has_aggregates:
            plan, items = self._plan_aggregate(query, items, input_plan)
        else:
            plan = input_plan

        exprs = [item.expr for item in items]
        names = self._output_names(items)
        binder = Binder(plan.schema, self._ctx.functions)
        columns = [
            Column(name, expr.data_type(binder)) for name, expr in zip(names, exprs)
        ]
        pre_projection = plan
        plan = LogicalProject(child=plan, exprs=exprs, schema=Schema(columns))

        if query.distinct:
            plan = LogicalDistinct(child=plan)
        if query.order_by:
            keys = [(o.expr, o.ascending) for o in query.order_by]
            if self._resolves_all(keys, plan.schema):
                plan = LogicalSort(child=plan, keys=keys)
            elif not query.distinct and self._resolves_all(keys, pre_projection.schema):
                # ORDER BY references input columns dropped by the SELECT
                # list (standard SQL): sort beneath the projection.  The
                # projection preserves row order, so the output stays sorted.
                sorted_child = LogicalSort(child=pre_projection, keys=keys)
                plan = LogicalProject(
                    child=sorted_child, exprs=exprs, schema=Schema(columns)
                )
            else:
                # Raise with the output-schema resolution error (clearer).
                for expr, _asc in keys:
                    for q, n in expr.references():
                        plan.schema.resolve(q, n)
        if query.limit is not None:
            plan = LogicalLimit(child=plan, limit=query.limit)
        return plan

    @staticmethod
    def _resolves_all(keys: list[tuple[Expr, bool]], schema: Schema) -> bool:
        return all(
            schema.maybe_resolve(q, n) is not None
            for expr, _asc in keys
            for q, n in expr.references()
        )

    def _plan_aggregate(
        self,
        query: SelectQuery,
        items: list[SelectItem],
        input_plan: LogicalPlan,
    ) -> tuple[LogicalPlan, list[SelectItem]]:
        group_exprs = list(query.group_by)
        agg_calls: list[AggregateCall] = []
        for item in items:
            for node in walk(item.expr):
                if isinstance(node, AggregateCall) and node not in agg_calls:
                    agg_calls.append(node)
        if query.having is not None:
            for node in walk(query.having):
                if isinstance(node, AggregateCall) and node not in agg_calls:
                    agg_calls.append(node)

        binder = Binder(input_plan.schema, self._ctx.functions)
        key_columns = []
        for i, expr in enumerate(group_exprs):
            name = expr.name if isinstance(expr, ColumnRef) else f"__key{i}"
            key_columns.append(Column(name, expr.data_type(binder)))
        agg_columns = [
            Column(f"__agg{i}", call.data_type(binder))
            for i, call in enumerate(agg_calls)
        ]
        agg_schema = Schema(key_columns + agg_columns)

        plan: LogicalPlan = LogicalAggregate(
            child=input_plan,
            group_exprs=group_exprs,
            agg_calls=agg_calls,
            output_slots=[("group", i) for i in range(len(group_exprs))]
            + [("agg", i) for i in range(len(agg_calls))],
            schema=agg_schema,
        )

        substitution = self._aggregate_substitution(group_exprs, agg_calls, agg_schema)

        if query.having is not None:
            having = transform(query.having, substitution)
            self._check_resolves(having, agg_schema, "HAVING")
            plan = LogicalFilter(child=plan, predicate=having)

        new_items = []
        for item in items:
            rewritten = transform(item.expr, substitution)
            self._check_resolves(rewritten, agg_schema, "SELECT")
            new_items.append(SelectItem(rewritten, item.alias))
        return plan, new_items

    @staticmethod
    def _aggregate_substitution(
        group_exprs: list[Expr], agg_calls: list[AggregateCall], agg_schema: Schema
    ):
        def substitute(node: Expr) -> Expr | None:
            for i, call in enumerate(agg_calls):
                if node == call:
                    return ColumnRef(None, f"__agg{i}")
            for i, key in enumerate(group_exprs):
                if node == key:
                    return ColumnRef(None, agg_schema.column(i).name)
            return None

        return substitute

    def _check_resolves(self, expr: Expr, schema: Schema, clause: str) -> None:
        for qualifier, name in expr.references():
            if schema.maybe_resolve(qualifier, name) is None:
                ref = f"{qualifier}.{name}" if qualifier else name
                raise PlanError(
                    f"{clause} references {ref!r}, which is neither grouped "
                    "nor aggregated"
                )
        for node in walk(expr):
            if isinstance(node, AggregateCall):
                raise PlanError(f"nested aggregate left in {clause}")

    @staticmethod
    def _expand_star(
        items: tuple[SelectItem, ...], schema: Schema
    ) -> list[SelectItem]:
        expanded: list[SelectItem] = []
        for item in items:
            if isinstance(item.expr, Star):
                for column in schema:
                    expanded.append(
                        SelectItem(ColumnRef(column.qualifier, column.name), None)
                    )
            else:
                expanded.append(item)
        return expanded

    @staticmethod
    def _output_names(items: list[SelectItem]) -> list[str]:
        names = []
        for i, item in enumerate(items):
            if item.alias:
                names.append(item.alias)
            elif isinstance(item.expr, ColumnRef):
                names.append(item.expr.name)
            else:
                names.append(f"_c{i}")
        return names


def _requalify(plan: LogicalPlan, schema: Schema) -> LogicalPlan:
    """Re-expose a subquery's output under its alias (zero-cost projection)."""
    exprs = [ColumnRef(c.qualifier, c.name) for c in plan.schema]
    return LogicalProject(child=plan, exprs=exprs, schema=schema)
