"""Synthetic workload generators for the paper's experiments."""

from repro.workloads.clickstream import ClickstreamWorkload, generate_clickstream
from repro.workloads.loadgen import (
    LoadReport,
    SessionOutcome,
    make_points_table,
    percentile,
    run_closed_loop,
    run_one_session,
    solo_weights,
    verify_against_solo,
)
from repro.workloads.retail import (
    RetailWorkload,
    generate_retail,
    PAPER_CARTS_BYTES,
    PAPER_CARTS_ROWS,
    PAPER_TRANSFORMED_BYTES,
    PAPER_USERS_BYTES,
    PAPER_USERS_ROWS,
)

__all__ = [
    "ClickstreamWorkload",
    "LoadReport",
    "SessionOutcome",
    "generate_clickstream",
    "make_points_table",
    "percentile",
    "run_closed_loop",
    "run_one_session",
    "solo_weights",
    "verify_against_solo",
    "PAPER_CARTS_BYTES",
    "PAPER_CARTS_ROWS",
    "PAPER_TRANSFORMED_BYTES",
    "PAPER_USERS_BYTES",
    "PAPER_USERS_ROWS",
    "RetailWorkload",
    "generate_retail",
]
