"""Synthetic workload generators for the paper's experiments."""

from repro.workloads.clickstream import ClickstreamWorkload, generate_clickstream
from repro.workloads.retail import (
    RetailWorkload,
    generate_retail,
    PAPER_CARTS_BYTES,
    PAPER_CARTS_ROWS,
    PAPER_TRANSFORMED_BYTES,
    PAPER_USERS_BYTES,
    PAPER_USERS_ROWS,
)

__all__ = [
    "ClickstreamWorkload",
    "generate_clickstream",
    "PAPER_CARTS_BYTES",
    "PAPER_CARTS_ROWS",
    "PAPER_TRANSFORMED_BYTES",
    "PAPER_USERS_BYTES",
    "PAPER_USERS_ROWS",
    "RetailWorkload",
    "generate_retail",
]
