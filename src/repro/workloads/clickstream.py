"""A second warehouse workload: web clickstream sessions.

Exercises the parts of the system the retail scenario does not: a
categorical with more than two levels (``device``: 4 levels, so dummy/effect
coding expands wider), an unsupervised preparation query (visitor
segmentation by k-means, no label column), and a different join shape
(sessions x visitors).

Schema:

* ``visitors(userid, plan, tenure, region)`` — ``plan`` in
  {free, basic, pro}, the churn-relevant attribute;
* ``sessions(sessionid, userid, device, referrer, pages, duration,
  bounced)`` — one row per site visit; ``bounced`` is the supervised label.
"""

from dataclasses import dataclass

import numpy as np

from repro.common.rng import derive_seed, make_rng
from repro.hdfs.filesystem import DistributedFileSystem
from repro.sql.engine import BigSQL
from repro.sql.types import DataType, Schema
from repro.transform.spec import TransformSpec

VISITORS_SCHEMA = Schema.of(
    ("userid", DataType.BIGINT),
    ("plan", DataType.VARCHAR),
    ("tenure", DataType.INT),
    ("region", DataType.VARCHAR),
)

SESSIONS_SCHEMA = Schema.of(
    ("sessionid", DataType.BIGINT),
    ("userid", DataType.BIGINT),
    ("device", DataType.VARCHAR),
    ("referrer", DataType.VARCHAR),
    ("pages", DataType.INT),
    ("duration", DataType.DOUBLE),
    ("bounced", DataType.VARCHAR),
)

PLANS = ("free", "basic", "pro")
DEVICES = ("desktop", "phone", "tablet", "tv")
REFERRERS = ("search", "social", "direct", "email", "ads")
REGIONS = ("NA", "EU", "APAC")

#: Supervised preparation: predict bounce from session + visitor attributes.
BOUNCE_PREP_SQL = (
    "SELECT V.tenure, V.plan, S.device, S.pages, S.duration / 60.0 AS duration, S.bounced "
    "FROM sessions S, visitors V "
    "WHERE S.userid = V.userid AND S.referrer = 'search'"
)

BOUNCE_SPEC = TransformSpec(
    recode=("plan", "device", "bounced"), dummy=("device",), label="bounced"
)

#: Unsupervised preparation: behavioural features for visitor segmentation.
#: Numeric columns are scaled into comparable ranges in SQL — feature
#: preparation exactly where the paper puts it.
SEGMENT_PREP_SQL = (
    "SELECT V.tenure / 60.0 AS tenure, V.plan, S.pages / 10.0 AS pages, "
    "S.duration / 60.0 AS duration "
    "FROM sessions S, visitors V WHERE S.userid = V.userid"
)

SEGMENT_SPEC = TransformSpec(recode=("plan",), dummy=("plan",), label=None)


@dataclass
class ClickstreamWorkload:
    """Everything a test or example needs about one generated workload."""

    visitors_path: str
    sessions_path: str
    num_visitors: int
    num_sessions: int
    sessions_bytes: int
    byte_scale: float
    bounce_sql: str = BOUNCE_PREP_SQL
    bounce_spec: TransformSpec = BOUNCE_SPEC
    segment_sql: str = SEGMENT_PREP_SQL
    segment_spec: TransformSpec = SEGMENT_SPEC


def generate_clickstream(
    engine: BigSQL,
    dfs: DistributedFileSystem,
    num_visitors: int = 1_000,
    num_sessions: int = 10_000,
    seed: int = 13,
    base_dir: str = "/clickstream",
) -> ClickstreamWorkload:
    """Generate, store on the DFS, and register the two tables.

    Bounce probability is a logistic in device, pages, and plan, so the
    supervised task has learnable signal; session behaviour clusters by plan
    so segmentation finds real structure.
    """
    visitors_dir = f"{base_dir}/visitors"
    sessions_dir = f"{base_dir}/sessions"
    worker_ips = [n.ip for n in engine.cluster.workers]
    num_parts = len(worker_ips)

    rng = make_rng(seed)
    plans = rng.choice(PLANS, size=num_visitors, p=(0.6, 0.3, 0.1))
    tenures = rng.integers(0, 60, size=num_visitors)
    regions = rng.choice(REGIONS, size=num_visitors, p=(0.5, 0.3, 0.2))

    dfs.mkdirs(visitors_dir)
    for part in range(num_parts):
        lines = [
            f"{uid},{plans[uid]},{tenures[uid]},{regions[uid]}"
            for uid in range(part, num_visitors, num_parts)
        ]
        if lines:
            dfs.write_text(
                f"{visitors_dir}/part-{part:05d}",
                "\n".join(lines) + "\n",
                client_ip=worker_ips[part],
            )

    session_rng = make_rng(derive_seed(seed, "sessions"))
    user_ids = session_rng.integers(0, num_visitors, size=num_sessions)
    devices = session_rng.choice(DEVICES, size=num_sessions, p=(0.45, 0.35, 0.15, 0.05))
    referrers = session_rng.choice(REFERRERS, size=num_sessions, p=(0.35, 0.25, 0.2, 0.1, 0.1))
    plan_level = np.array([PLANS.index(p) for p in plans])[user_ids]
    # engagement scales with plan: pro users browse more and longer
    pages = 1 + session_rng.poisson(2 + 3 * plan_level, size=num_sessions)
    durations = np.round(
        np.exp(session_rng.normal(3.0 + 0.8 * plan_level, 0.6, size=num_sessions)), 1
    )
    logits = (
        1.0
        - 0.5 * plan_level
        - 0.35 * pages
        + 0.9 * (devices == "phone").astype(float)
        + 0.5 * (devices == "tv").astype(float)
    )
    probs = 1.0 / (1.0 + np.exp(-logits))
    bounced = session_rng.random(num_sessions) < probs

    sessions_bytes = 0
    dfs.mkdirs(sessions_dir)
    for part in range(num_parts):
        lines = []
        for sid in range(part, num_sessions, num_parts):
            label = "Yes" if bounced[sid] else "No"
            lines.append(
                f"{sid},{user_ids[sid]},{devices[sid]},{referrers[sid]},"
                f"{pages[sid]},{durations[sid]},{label}"
            )
        if lines:
            text = "\n".join(lines) + "\n"
            dfs.write_text(
                f"{sessions_dir}/part-{part:05d}", text, client_ip=worker_ips[part]
            )
            sessions_bytes += len(text.encode("utf-8"))

    engine.register_external_table("visitors", VISITORS_SCHEMA, visitors_dir)
    engine.register_external_table("sessions", SESSIONS_SCHEMA, sessions_dir)

    from repro.workloads.retail import PAPER_CARTS_BYTES

    return ClickstreamWorkload(
        visitors_path=visitors_dir,
        sessions_path=sessions_dir,
        num_visitors=num_visitors,
        num_sessions=num_sessions,
        sessions_bytes=sessions_bytes,
        byte_scale=PAPER_CARTS_BYTES / sessions_bytes if sessions_bytes else 1.0,
    )
