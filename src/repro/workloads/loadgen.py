"""Closed-loop multi-tenant load generator for the serving stack.

Drives many interleaved streaming-ML sessions through one deployment: a
fixed pool of client threads pulls session indices off a shared queue, and
each client runs the full §3 protocol end to end — ``create_session`` →
``stream_transfer`` SQL → ``wait_result`` → ``close_session`` — timing the
whole round trip.  "Closed loop" means a client only starts its next
session after finishing the previous one, so offered concurrency equals
the client count, not the session count.

Every session trains ``svm_with_sgd`` on the same small labeled table but
with a *distinct* seed, so each produces distinct weights.  Because the
split layout (``part[j::k]``) is a pure function of the table and worker
registration order, a session's weights must be bit-identical whether it
ran alone or interleaved with 99 neighbours — that is the correctness bar
for the multi-tenant scheduler, and :func:`verify_against_solo` checks it
against sequential re-runs on a fresh, identically configured deployment.
"""

import queue
import threading
from dataclasses import dataclass, field
from time import perf_counter

from repro.common.errors import ReproError
from repro.sql.types import DataType, Schema

#: The serving-plane failures a load client *expects* and records as a
#: typed outcome: everything in the repro error hierarchy (admission
#: rejections, deadline/cancel, transfer faults, ML faults, ...).  Anything
#: outside it — a TypeError from a harness bug, KeyboardInterrupt — is a
#: defect, not a load outcome, and propagates out of the client thread
#: loudly instead of being folded into the report.
SERVING_ERRORS: tuple = (ReproError,)

#: Default labeled workload: small enough that a 100-session run stays in
#: CI budget, large enough that every worker slot sees rows in each split.
DEFAULT_POINTS = 240
#: Session seeds start here; session ``i`` trains with seed ``BASE_SEED + i``.
BASE_SEED = 1000


@dataclass
class SessionOutcome:
    """One completed session: identity, placement, timing, and the model."""

    session_id: str
    tenant: str
    seed: int
    latency_s: float
    weights: tuple
    intercept: float
    error: str | None = None
    #: exception class name of the typed serving error (None on success) —
    #: overload reports bucket outcomes by this (DeadlineExceeded,
    #: AdmissionError, SessionCancelled, ...).
    error_type: str | None = None


@dataclass
class LoadReport:
    """Aggregate result of one closed-loop run."""

    num_sessions: int
    num_clients: int
    wall_seconds: float
    p50_s: float
    p99_s: float
    mean_s: float
    max_s: float
    outcomes: list[SessionOutcome] = field(default_factory=list)
    #: None until :func:`verify_against_solo` fills it in.
    weight_identical: bool | None = None

    @property
    def sessions_per_second(self) -> float:
        if self.wall_seconds <= 0:
            return float("inf")
        return self.num_sessions / self.wall_seconds

    @property
    def failures(self) -> list[SessionOutcome]:
        return [o for o in self.outcomes if o.error is not None]


def percentile(values: list[float], q: float) -> float:
    """Nearest-rank percentile over a non-empty list (q in [0, 100])."""
    if not values:
        raise ValueError("percentile of empty list")
    ordered = sorted(values)
    rank = max(0, min(len(ordered) - 1, round(q / 100.0 * (len(ordered) - 1))))
    return ordered[rank]


def make_points_table(engine, num_points: int = DEFAULT_POINTS) -> None:
    """Create the shared labeled table every load session trains on."""
    rows = [
        (i, float(i % 7), float(i % 5), 1.0 if i % 2 else -1.0)
        for i in range(num_points)
    ]
    engine.create_table(
        "points",
        Schema.of(
            ("id", DataType.BIGINT),
            ("f1", DataType.DOUBLE),
            ("f2", DataType.DOUBLE),
            ("label", DataType.DOUBLE),
        ),
        rows,
    )


def make_points_table_dfs(
    engine,
    dfs,
    num_points: int = DEFAULT_POINTS,
    base_dir: str = "/loadgen/points",
) -> None:
    """DFS-backed variant of :func:`make_points_table`: the same labeled
    rows written as replicated CSV part files (one per worker, written
    node-local) and registered as an *external* table.

    The storage-chaos scenarios use this so every training row actually
    crosses the DFS read path — replica corruption, datanode loss, and
    ENOSPC then bite the workload instead of an untouched in-memory table.
    """
    num_parts = max(1, len(engine.cluster.workers))
    worker_ips = [n.ip for n in engine.cluster.workers]
    dfs.mkdirs(base_dir)
    for part in range(num_parts):
        lines = [
            f"{i},{float(i % 7)},{float(i % 5)},{1.0 if i % 2 else -1.0}"
            for i in range(part, num_points, num_parts)
        ]
        if lines:
            dfs.write_text(
                f"{base_dir}/part-{part:05d}",
                "\n".join(lines) + "\n",
                client_ip=worker_ips[part % len(worker_ips)],
            )
    engine.register_external_table(
        "points",
        Schema.of(
            ("id", DataType.BIGINT),
            ("f1", DataType.DOUBLE),
            ("f2", DataType.DOUBLE),
            ("label", DataType.DOUBLE),
        ),
        base_dir,
    )


def run_one_session(
    deployment,
    session_id: str,
    seed: int,
    tenant: str = "default",
    iterations: int = 3,
    deadline_s: float | None = None,
) -> SessionOutcome:
    """Run one complete streaming-ML session and time create → close.

    Only *typed* serving errors (:data:`SERVING_ERRORS`) are recorded as a
    session outcome; anything else is a harness defect and propagates.
    ``deadline_s`` arms the session's end-to-end budget — the overload
    benchmark uses it to produce typed shed/deadline outcomes under load.
    """
    coordinator = deployment.coordinator
    start = perf_counter()
    error: str | None = None
    error_type: str | None = None
    weights: tuple = ()
    intercept = 0.0
    try:
        coordinator.create_session(
            session_id,
            command="svm_with_sgd",
            args={"iterations": iterations, "seed": seed},
            conf_props={"record.format": "labeled_csv", "label.index": -1},
            tenant=tenant,
            deadline_s=deadline_s,
        )
        deployment.engine.query_rows(
            "SELECT * FROM TABLE(stream_transfer((SELECT f1, f2, label "
            f"FROM points), '{session_id}')) AS s"
        )
        result = coordinator.wait_result(session_id)
        coordinator.close_session(session_id)
        weights = tuple(float(w) for w in result.model.weights)
        intercept = float(result.model.intercept)
    except SERVING_ERRORS as exc:  # recorded, not raised: the report shows it
        error = f"{type(exc).__name__}: {exc}"
        error_type = type(exc).__name__
        try:
            coordinator.close_session(session_id)
        except SERVING_ERRORS:
            pass
    return SessionOutcome(
        session_id=session_id,
        tenant=tenant,
        seed=seed,
        latency_s=perf_counter() - start,
        weights=weights,
        intercept=intercept,
        error=error,
        error_type=error_type,
    )


def run_closed_loop(
    deployment,
    num_sessions: int = 100,
    num_clients: int = 8,
    iterations: int = 3,
    tenant_of=None,
    session_prefix: str = "load",
    deadline_of=None,
    tolerate_failures: bool = False,
) -> LoadReport:
    """Drive ``num_sessions`` sessions through ``num_clients`` client threads.

    ``tenant_of`` maps a session index to its tenant name (default: every
    session belongs to ``"default"``).  The table must already exist (see
    :func:`make_points_table`).  Raises if any session failed — a load run
    that silently drops sessions is not a benchmark result.

    Overload mode: ``deadline_of`` maps a session index to its end-to-end
    deadline (None = unbounded), and ``tolerate_failures=True`` keeps typed
    failures (shed sessions, expired deadlines) in the report instead of
    raising — the overload benchmark *expects* a shed population and
    asserts on its composition.
    """
    pending: queue.Queue[int] = queue.Queue()
    for i in range(num_sessions):
        pending.put(i)
    outcomes: list[SessionOutcome | None] = [None] * num_sessions

    def client() -> None:
        while True:
            try:
                i = pending.get_nowait()
            except queue.Empty:
                return
            tenant = tenant_of(i) if tenant_of is not None else "default"
            outcomes[i] = run_one_session(
                deployment,
                f"{session_prefix}_{i}",
                seed=BASE_SEED + i,
                tenant=tenant,
                iterations=iterations,
                deadline_s=deadline_of(i) if deadline_of is not None else None,
            )

    start = perf_counter()
    clients = [
        threading.Thread(target=client, name=f"loadgen-client-{c}")
        for c in range(min(num_clients, num_sessions))
    ]
    for t in clients:
        t.start()
    for t in clients:
        t.join()
    wall = perf_counter() - start

    done = [o for o in outcomes if o is not None]
    if len(done) != num_sessions:
        raise AssertionError(
            f"load run lost sessions: {len(done)} of {num_sessions} completed"
        )
    failed = [o for o in done if o.error is not None]
    if failed and not tolerate_failures:
        raise AssertionError(
            f"{len(failed)} of {num_sessions} sessions failed; first: "
            f"{failed[0].session_id}: {failed[0].error}"
        )
    latencies = [o.latency_s for o in done]
    return LoadReport(
        num_sessions=num_sessions,
        num_clients=len(clients),
        wall_seconds=wall,
        p50_s=percentile(latencies, 50),
        p99_s=percentile(latencies, 99),
        mean_s=sum(latencies) / len(latencies),
        max_s=max(latencies),
        outcomes=done,
    )


def solo_weights(
    deployment,
    seeds: list[int],
    iterations: int = 3,
    session_prefix: str = "solo",
) -> dict[int, tuple]:
    """Sequential baseline: one session at a time on ``deployment``.

    Returns ``{seed: (weights..., intercept)}`` for bit-identity checks.
    The caller provides a *fresh* deployment configured identically to the
    loaded one (same workers, transport, points table) so split layouts
    match.
    """
    baselines: dict[int, tuple] = {}
    for i, seed in enumerate(seeds):
        outcome = run_one_session(
            deployment,
            f"{session_prefix}_{i}",
            seed=seed,
            iterations=iterations,
        )
        if outcome.error is not None:
            raise AssertionError(f"solo baseline failed: {outcome.error}")
        baselines[seed] = outcome.weights + (outcome.intercept,)
    return baselines


def verify_against_solo(report: LoadReport, baselines: dict[int, tuple]) -> bool:
    """Fill in and return ``report.weight_identical``.

    Every interleaved session's (weights, intercept) must equal — by exact
    float comparison, i.e. bit-identity for IEEE doubles — the solo run
    with the same seed.  Failed sessions (overload mode: shed or expired)
    have no weights and are excluded; only *completed* work must be
    bit-identical to the solo baseline.
    """
    identical = all(
        baselines.get(o.seed) == o.weights + (o.intercept,)
        for o in report.outcomes
        if o.error is None
    )
    report.weight_identical = identical
    return identical
