"""The paper's example scenario: online-retail cart abandonment.

§7: "we created a 56GB carts table with 1 billion records and 361 MB users
table with 10 million records.  Both tables were stored in text format on
HDFS."  This generator reproduces that workload at a configurable scale —
same schemas, same text-on-DFS storage, plus a ``byte_scale`` factor that
maps observed byte counts back to paper scale for the cost model.

The abandonment label is generated from a logistic model over (age, gender,
amount) so the downstream classifiers genuinely have signal to learn.
"""

from dataclasses import dataclass

import numpy as np

from repro.common.rng import derive_seed, make_rng
from repro.hdfs.filesystem import DistributedFileSystem
from repro.sql.engine import BigSQL
from repro.sql.types import DataType, Schema
from repro.transform.spec import TransformSpec

PAPER_CARTS_ROWS = 1_000_000_000
PAPER_CARTS_BYTES = 56e9
PAPER_USERS_ROWS = 10_000_000
PAPER_USERS_BYTES = 361e6
PAPER_TRANSFORMED_BYTES = 5.6e9

USERS_SCHEMA = Schema.of(
    ("userid", DataType.BIGINT),
    ("age", DataType.INT),
    ("gender", DataType.VARCHAR),
    ("country", DataType.VARCHAR),
)

# Carts carry the operational detail a real warehouse table would
# (timestamp, channel, coupon code), which also lands the text row width at
# the paper's ~56 bytes — keeping the transformed/input size ratio faithful.
CARTS_SCHEMA = Schema.of(
    ("cartid", DataType.BIGINT),
    ("userid", DataType.BIGINT),
    ("amount", DataType.DOUBLE),
    ("nItems", DataType.INT),
    ("year", DataType.INT),
    ("created", DataType.VARCHAR),
    ("channel", DataType.VARCHAR),
    ("couponCode", DataType.VARCHAR),
    ("abandoned", DataType.VARCHAR),
)

CHANNELS = ("web", "mobile", "app", "kiosk")

COUNTRIES = ("USA", "DE", "FR", "UK", "JP", "BR")

#: The §1 example query (data preparation for the SVM).
PREP_SQL = (
    "SELECT U.age, U.gender, C.amount, C.abandoned "
    "FROM carts C, users U "
    "WHERE C.userid = U.userid AND U.country = 'USA'"
)

#: §5.1's follow-up query: fully answerable from the cached transformed data.
SUBSET_SQL = (
    "SELECT U.age, C.amount, C.abandoned "
    "FROM carts C, users U "
    "WHERE C.userid = U.userid AND U.country = 'USA' AND U.gender = 'F'"
)

#: §5.2's follow-up query: can only reuse the cached recode maps.
RECODE_REUSE_SQL = (
    "SELECT U.age, U.gender, C.amount, C.nItems, C.abandoned "
    "FROM carts C, users U "
    "WHERE C.userid = U.userid AND U.country = 'USA' AND C.year = 2014"
)

#: The transformation of the paper's experiment: recode both categoricals,
#: dummy-code gender, learn to predict abandonment.
PAPER_SPEC = TransformSpec(recode=("gender", "abandoned"), dummy=("gender",), label="abandoned")


@dataclass
class RetailWorkload:
    """Everything a benchmark needs about one generated workload."""

    users_path: str
    carts_path: str
    num_users: int
    num_carts: int
    users_bytes: int
    carts_bytes: int
    byte_scale: float
    prep_sql: str = PREP_SQL
    subset_sql: str = SUBSET_SQL
    recode_reuse_sql: str = RECODE_REUSE_SQL
    spec: TransformSpec = PAPER_SPEC


def generate_retail(
    engine: BigSQL,
    dfs: DistributedFileSystem,
    num_users: int = 2_000,
    num_carts: int = 20_000,
    seed: int = 7,
    base_dir: str = "/warehouse",
) -> RetailWorkload:
    """Generate, store on the DFS, and register the two tables.

    Row-count ratio follows the paper (100 carts per user by default).
    """
    users_dir = f"{base_dir}/users"
    carts_dir = f"{base_dir}/carts"
    worker_ips = [n.ip for n in engine.cluster.workers]
    num_parts = len(worker_ips)

    rng = make_rng(seed)
    ages = rng.integers(18, 80, size=num_users)
    genders = rng.choice(["F", "M"], size=num_users)
    countries = rng.choice(COUNTRIES, size=num_users, p=(0.4, 0.15, 0.15, 0.15, 0.1, 0.05))

    users_bytes = 0
    dfs.mkdirs(users_dir)
    for part in range(num_parts):
        lines = []
        for uid in range(part, num_users, num_parts):
            lines.append(
                f"{uid},{ages[uid]},{genders[uid]},{countries[uid]}"
            )
        text = "\n".join(lines) + "\n" if lines else ""
        if text:
            dfs.write_text(
                f"{users_dir}/part-{part:05d}", text, client_ip=worker_ips[part]
            )
            users_bytes += len(text.encode("utf-8"))

    # Cart label: logistic in amount, gender, and age (real signal).
    cart_rng = make_rng(derive_seed(seed, "carts"))
    user_ids = cart_rng.integers(0, num_users, size=num_carts)
    amounts = np.round(np.exp(cart_rng.normal(3.6, 1.0, size=num_carts)), 2)
    n_items = cart_rng.integers(1, 20, size=num_carts)
    years = cart_rng.choice([2012, 2013, 2014], size=num_carts, p=(0.2, 0.3, 0.5))
    months = cart_rng.integers(1, 13, size=num_carts)
    days = cart_rng.integers(1, 29, size=num_carts)
    hours = cart_rng.integers(0, 24, size=num_carts)
    minutes = cart_rng.integers(0, 60, size=num_carts)
    channels = cart_rng.choice(CHANNELS, size=num_carts, p=(0.5, 0.3, 0.15, 0.05))
    coupon_pool = np.array(["", "SAVE10", "FREESHIP", "VIP2014", "NEWUSER8"])
    coupons = coupon_pool[cart_rng.integers(0, len(coupon_pool), size=num_carts)]
    logits = (
        -1.8
        + 0.012 * amounts
        + 1.4 * (genders[user_ids] == "F").astype(float)
        - 0.04 * (ages[user_ids] - 45)
    )
    probs = 1.0 / (1.0 + np.exp(-logits))
    abandoned = cart_rng.random(num_carts) < probs

    carts_bytes = 0
    dfs.mkdirs(carts_dir)
    for part in range(num_parts):
        lines = []
        for cid in range(part, num_carts, num_parts):
            label = "Yes" if abandoned[cid] else "No"
            created = (
                f"{years[cid]}-{months[cid]:02d}-{days[cid]:02d} "
                f"{hours[cid]:02d}:{minutes[cid]:02d}:00"
            )
            lines.append(
                f"{cid},{user_ids[cid]},{amounts[cid]},{n_items[cid]},"
                f"{years[cid]},{created},{channels[cid]},{coupons[cid]},{label}"
            )
        text = "\n".join(lines) + "\n" if lines else ""
        if text:
            dfs.write_text(
                f"{carts_dir}/part-{part:05d}", text, client_ip=worker_ips[part]
            )
            carts_bytes += len(text.encode("utf-8"))

    engine.register_external_table("users", USERS_SCHEMA, users_dir)
    engine.register_external_table("carts", CARTS_SCHEMA, carts_dir)

    return RetailWorkload(
        users_path=users_dir,
        carts_path=carts_dir,
        num_users=num_users,
        num_carts=num_carts,
        users_bytes=users_bytes,
        carts_bytes=carts_bytes,
        byte_scale=PAPER_CARTS_BYTES / carts_bytes if carts_bytes else 1.0,
    )
