"""Fault injection and §6 recovery for the transfer stack.

:class:`FaultInjector` deterministically injects worker kills, channel
drops/stalls, and broker corruption/replay from a seed;
:class:`RecoveryManager` executes the paper's recovery plan — retries with
backoff, heartbeat failure detection, and coordinated partial restart of a
failed SQL worker together with its k paired ML workers.
"""

from repro.faults.injector import FaultConfig, FaultEvent, FaultInjector
from repro.faults.recovery import (
    LivenessMonitor,
    MLRecoveryEvent,
    RecoveryManager,
    RestartEvent,
    RetryPolicy,
)

__all__ = [
    "FaultConfig",
    "FaultEvent",
    "FaultInjector",
    "LivenessMonitor",
    "MLRecoveryEvent",
    "RecoveryManager",
    "RestartEvent",
    "RetryPolicy",
]
