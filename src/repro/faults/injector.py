"""Deterministic, seed-driven fault injection for the transfer stack.

§6 describes the failure modes of the integration pipeline — worker crashes
during the parallel streaming transfer, lost/stalled channels, and broker
replay after a consumer dies before committing — but a reproduction can only
*test* them if failures arrive on demand and identically run after run.  The
:class:`FaultInjector` is that chaos source: every decision draws from a
per-site :func:`repro.common.rng.derive_seed_stable` stream, so outcomes are
independent of thread interleaving (each SQL worker, channel, and broker
partition owns its own RNG), and two runs with the same seed inject the
exact same faults at the exact same points.

Injection sites (all no-ops when the matching rate/point is unset):

* ``check_kill(worker_id, rows_streamed)`` — SQL-worker crash, by
  deterministic point (``kill_at``) or per-block probability;
* ``check_ml_kill(index, rows_read)`` — ML-reader crash at a
  deterministic point (``kill_ml_at``; recovered at the pipeline tier);
* ``check_send(channel_key)`` — transient channel loss
  (:class:`~repro.common.errors.ChannelTimeoutError`) or a stall
  (sleep) on one send;
* ``corrupt_fetch(payload, site)`` — bit-flips a broker record in flight;
* ``check_duplicate_fetch(site)`` — re-delivers a broker fetch, modelling a
  consumer that died after processing but before committing;
* ``check_train_kill(job_id, iteration)`` — the ``ml.iteration_kill`` site:
  crashes iterative training at an iteration boundary (one-shot; recovered
  by checkpoint resume or the lineage replay ladder);
* ``check_checkpoint_write(site)`` — the ``checkpoint.write_fail`` site:
  fails a checkpoint commit between tmp-write and rename;
* ``corrupt_checkpoint(payload, site)`` — the ``checkpoint.corrupt`` site:
  flips a payload byte after the checksum is computed, so loads detect it;
* ``check_coordinator_kill(point)`` / ``check_lease_expire(point)`` /
  ``check_handshake_drop(point)`` — the coordinator-HA sites: crash the
  leader, expire its ZooKeeper lease, or lose one handshake response at a
  named failover point (recovered by leader election + idempotent
  re-handshake; see :mod:`repro.transfer.ha`);
* ``corrupt_replica(payload, site)`` — the ``dfs.replica_corrupt`` site:
  damages a freshly written block replica *after* its checksum is
  recorded, so every verified read detects it (recovered by reader
  failover + scanner repair from a healthy copy);
* ``check_dfs_read(site)`` — the ``dfs.read_error`` site: one replica
  read fails transiently (recovered by reader failover);
* ``check_datanode_down(index, ops)`` — the ``dfs.datanode_down`` site:
  one-shot death of one DataNode after it has served a given number of
  block operations (recovered by failover + re-replication);
* ``check_dfs_enospc(site)`` — the ``dfs.enospc`` site: one replica write
  hits a full disk (recovered by write redirection, spill fallback, or
  the checkpoint prune-and-retry ladder).

Every injected event is recorded in :attr:`FaultInjector.events` so tests
and the chaos benchmark can assert exactly what happened.
"""

import re
import threading
import time
from collections import Counter
from dataclasses import dataclass, field

from repro.common.errors import (
    BlockError,
    ChannelTimeoutError,
    CheckpointError,
    StorageFullError,
    TrainingInterrupted,
    WorkerFailedError,
)
from repro.common.rng import derive_seed_stable, make_rng

#: The §6 pipeline's retry-attempt naming (``<session>_a<N>``); stripped
#: when scoping one-shot kills so every attempt of one logical session
#: shares the same bookkeeping.
_ATTEMPT_SUFFIX = re.compile(r"_a\d+$")


@dataclass(frozen=True)
class FaultConfig:
    """What to inject, how often, and where.

    Rates are per-opportunity probabilities (per block sent, per fetch).
    ``kill_at`` pins deterministic crashes: ``{worker_id: row_index}`` kills
    that SQL worker the first time it has streamed >= ``row_index`` rows.
    Budgets (``max_kills``, ``max_events``) bound rate-driven chaos so a
    seeded run always terminates.
    """

    seed: int = 0
    #: deterministic kills: SQL worker id -> row index of the crash
    kill_at: dict[int, int] = field(default_factory=dict)
    #: deterministic ML-reader kills: split index -> rows read at the crash
    kill_ml_at: dict[int, int] = field(default_factory=dict)
    #: probability a SQL worker dies at each block boundary
    kill_sql_worker_rate: float = 0.0
    #: probability one channel send fails transiently (retryable timeout)
    send_drop_rate: float = 0.0
    #: probability one channel send stalls for ``stall_seconds``
    send_stall_rate: float = 0.0
    stall_seconds: float = 0.0
    #: probability one broker fetch arrives corrupted (re-fetch recovers)
    broker_corrupt_rate: float = 0.0
    #: probability one broker fetch is re-delivered (at-least-once replay)
    broker_duplicate_rate: float = 0.0
    #: probability one broker append fails transiently before commit
    producer_drop_rate: float = 0.0
    #: deterministic training crash: kill the first ML training job that
    #: completes this many iterations (0 = off; one-shot, like ``kill_at``)
    kill_train_at: int = 0
    #: probability one checkpoint commit fails between write and rename
    checkpoint_write_fail_rate: float = 0.0
    #: probability one checkpoint payload is corrupted after checksumming
    checkpoint_corrupt_rate: float = 0.0
    #: the ``coordinator.kill`` site: one-shot crash of the *leader*
    #: coordinator the next time a client handshake hits this failover
    #: point ("create_session" / "pre_registration" / "split_plan" /
    #: "post_split_plan" / "matchmaking" / "mid_stream" / "result")
    kill_coordinator_at: str = ""
    #: occurrences of the point to let pass before the kill fires (lets
    #: "mid_stream" mean *mid*, not the first heartbeat)
    coordinator_kill_skip: int = 0
    #: the ``coordinator.lease_expire`` site: one-shot expiry of the
    #: leader's ZooKeeper session at a failover point — the process stays
    #: alive but loses its lease (and must be fenced out of the journal)
    lease_expire_at: str = ""
    lease_expire_skip: int = 0
    #: the ``handshake.drop`` site: one-shot loss of a handshake *response*
    #: at a failover point — the mutation applied server-side, the client
    #: never heard, and must re-issue the call idempotently
    handshake_drop_at: str = ""
    #: probability any handshake response is dropped (budgeted)
    handshake_drop_rate: float = 0.0
    #: probability a freshly written block replica is stored damaged
    #: (bytes flipped after the checksum was recorded, so reads detect it)
    dfs_replica_corrupt_rate: float = 0.0
    #: probability one replica read fails transiently (reader fails over)
    dfs_read_error_rate: float = 0.0
    #: the ``dfs.datanode_down`` site: index of the DataNode to kill
    #: one-shot (-1 = off) ...
    dfs_kill_datanode: int = -1
    #: ... after it has served this many block operations (0 = dead from
    #: its first operation on)
    dfs_kill_datanode_after: int = 0
    #: probability one replica write hits an injected full disk
    dfs_enospc_rate: float = 0.0
    #: scope point-kill one-shots per logical session instead of globally.
    #: Off (the seed behavior), ``kill_at`` / ``kill_ml_at`` fire exactly
    #: once per deployment — whichever stream crosses the row threshold
    #: first eats the kill, which is interleaving-dependent when sessions
    #: run concurrently.  On (set by the chaos schedule compiler), every
    #: logical session hits its kill point exactly once, so the victim set
    #: is a pure function of the schedule.
    scoped_kills: bool = False
    #: cap on rate-driven kills (None = unlimited; kill_at is separate)
    max_kills: int | None = 1
    #: cap on all transient events — drops, stalls, corruptions, duplicates
    max_events: int | None = None

    @property
    def any_faults(self) -> bool:
        return bool(
            self.kill_at
            or self.kill_ml_at
            or self.kill_sql_worker_rate
            or self.send_drop_rate
            or self.send_stall_rate
            or self.broker_corrupt_rate
            or self.broker_duplicate_rate
            or self.producer_drop_rate
            or self.kill_train_at
            or self.checkpoint_write_fail_rate
            or self.checkpoint_corrupt_rate
            or self.kill_coordinator_at
            or self.lease_expire_at
            or self.handshake_drop_at
            or self.handshake_drop_rate
            or self.dfs_replica_corrupt_rate
            or self.dfs_read_error_rate
            or self.dfs_kill_datanode >= 0
            or self.dfs_enospc_rate
        )


@dataclass(frozen=True)
class FaultEvent:
    """One injected fault, for post-hoc assertions."""

    kind: str  # kill | drop | stall | corrupt | duplicate | producer_drop
    site: str  # worker/channel/partition identifier


class FaultInjector:
    """Seeded chaos source consulted by the transfer stack at each site."""

    def __init__(self, config: FaultConfig | None = None, sleep=time.sleep, clock=None):
        self.config = config or FaultConfig()
        # Stall sleeps go through the injected clock when one is named, so a
        # virtual-time chaos run pays stall_seconds in virtual time only.
        if clock is not None and sleep is time.sleep:
            sleep = clock.sleep
        self._sleep = sleep
        self._lock = threading.Lock()
        self._rngs: dict[str, object] = {}
        #: (scope, index) pairs already point-killed.  The scope — the
        #: session id at the streaming call sites — keeps the one-shot
        #: bookkeeping per-session: with concurrent sessions sharing one
        #: injector, a bare index would hand the kill to whichever session
        #: crossed the row threshold first (thread-arrival order), making
        #: the victim interleaving-dependent.
        self._killed: set[tuple[str, int]] = set()
        self._killed_ml: set[tuple[str, int]] = set()
        self._killed_train = False  # the one-shot ml.iteration_kill fired
        self._coordinator_killed = False  # the one-shot coordinator.kill fired
        self._lease_expired = False  # the one-shot coordinator.lease_expire fired
        self._handshake_dropped = False  # the one-shot handshake.drop fired
        self._datanode_killed = False  # the one-shot dfs.datanode_down fired
        self._point_hits = Counter()  # (site, point) -> handshakes seen
        self._kills = 0
        self._events_used = 0
        self.events: list[FaultEvent] = []
        self.counts: Counter = Counter()

    @classmethod
    def disabled(cls) -> "FaultInjector":
        """An installed-but-inert injector (the fault-free invariance case)."""
        return cls(FaultConfig())

    @property
    def enabled(self) -> bool:
        return self.config.any_faults

    # ------------------------------------------------------------- plumbing

    def _rng(self, site: str):
        """The per-site RNG stream (deterministic under thread interleaving)."""
        with self._lock:
            rng = self._rngs.get(site)
            if rng is None:
                rng = make_rng(derive_seed_stable(self.config.seed, site))
                self._rngs[site] = rng
            return rng

    def _record(self, kind: str, site: str) -> None:
        with self._lock:
            self.events.append(FaultEvent(kind, site))
            self.counts[kind] += 1

    def _take_event_budget(self) -> bool:
        with self._lock:
            if (
                self.config.max_events is not None
                and self._events_used >= self.config.max_events
            ):
                return False
            self._events_used += 1
            return True

    def _take_kill_budget(self) -> bool:
        with self._lock:
            if self.config.max_kills is not None and self._kills >= self.config.max_kills:
                return False
            self._kills += 1
            return True

    # ------------------------------------------------------ streaming sites

    def _kill_scope(self, scope: str) -> str:
        """One-shot bookkeeping key for point kills.  Globally scoped by
        default (the kill fires once per deployment); with
        ``scoped_kills`` every logical session keeps its own bookkeeping.
        The §6 pipeline names retry attempts ``<session>_a<N>``, and a
        retried attempt must share its predecessor's scope (the
        replacement survives) while concurrent sessions keep their own."""
        if not self.config.scoped_kills:
            return ""
        return _ATTEMPT_SUFFIX.sub("", scope)

    def check_kill(self, worker_id: int, rows_streamed: int, scope: str = "") -> None:
        """Crash this SQL worker if its point or rate says so (raises
        :class:`WorkerFailedError`).  ``scope`` (the session id) makes the
        one-shot bookkeeping per-session, so concurrent sessions each hit
        the kill point deterministically instead of racing for one kill."""
        if not self.enabled:
            return
        scope = self._kill_scope(scope)
        point = self.config.kill_at.get(worker_id)
        if point is not None and rows_streamed >= point:
            with self._lock:
                if (scope, worker_id) in self._killed:
                    point = None  # one-shot: the replacement worker survives
                else:
                    self._killed.add((scope, worker_id))
            if point is not None:
                self._record("kill", f"sql-worker-{worker_id}")
                raise WorkerFailedError(
                    f"injected crash of SQL worker {worker_id} "
                    f"after {rows_streamed} rows",
                    worker_id=worker_id,
                )
        rate = self.config.kill_sql_worker_rate
        if rate and self._rng(f"kill/{worker_id}").random() < rate:
            if self._take_kill_budget():
                self._record("kill", f"sql-worker-{worker_id}")
                raise WorkerFailedError(
                    f"injected crash of SQL worker {worker_id} "
                    f"after {rows_streamed} rows",
                    worker_id=worker_id,
                )

    def check_ml_kill(self, index: int, rows_read: int, scope: str = "") -> None:
        """Crash one ML reader at its ``kill_ml_at`` point (one-shot per
        ``scope`` — the session id; raises :class:`WorkerFailedError`).

        A dead ML reader is the *fatal* tier of §6 — its split cannot be
        handed to anyone else mid-stream — so recovery happens one level up:
        the session fails and the pipeline re-runs the transfer
        (``max_attempts``) or degrades to the DFS path.
        """
        if not self.enabled:
            return
        scope = self._kill_scope(scope)
        point = self.config.kill_ml_at.get(index)
        if point is None or rows_read < point:
            return
        with self._lock:
            if (scope, index) in self._killed_ml:
                return  # one-shot: the retried attempt's reader survives
            self._killed_ml.add((scope, index))
        self._record("kill_ml", f"ml-reader-{index}")
        raise WorkerFailedError(
            f"injected crash of ML reader {index} after {rows_read} rows",
            worker_id=index,
        )

    def check_send(self, channel_key: str) -> None:
        """Transient channel fault on one send: drop (raises a retryable
        :class:`ChannelTimeoutError`) or stall (sleeps)."""
        if not self.enabled:
            return
        rng = self._rng(f"send/{channel_key}")
        if self.config.send_drop_rate and rng.random() < self.config.send_drop_rate:
            if self._take_event_budget():
                self._record("drop", channel_key)
                raise ChannelTimeoutError(
                    f"injected send timeout on channel {channel_key}"
                )
        if self.config.send_stall_rate and rng.random() < self.config.send_stall_rate:
            if self._take_event_budget():
                self._record("stall", channel_key)
                if self.config.stall_seconds > 0:
                    self._sleep(self.config.stall_seconds)

    # ------------------------------------------------ coordinator HA sites

    def check_coordinator_kill(self, point: str) -> bool:
        """The ``coordinator.kill`` site: True when the leader coordinator
        should crash at this failover point (one-shot; the caller — the
        failover proxy — performs the kill so the election is observable)."""
        if not self.enabled or self.config.kill_coordinator_at != point:
            return False
        with self._lock:
            if self._coordinator_killed:
                return False
            self._point_hits[("coordinator_kill", point)] += 1
            if (
                self._point_hits[("coordinator_kill", point)]
                <= self.config.coordinator_kill_skip
            ):
                return False
            self._coordinator_killed = True
        self._record("coordinator_kill", f"coordinator@{point}")
        return True

    def check_lease_expire(self, point: str) -> bool:
        """The ``coordinator.lease_expire`` site: True when the leader's
        ZooKeeper session should expire at this failover point (one-shot;
        the leader process survives but is deposed and fenced)."""
        if not self.enabled or self.config.lease_expire_at != point:
            return False
        with self._lock:
            if self._lease_expired:
                return False
            self._point_hits[("lease_expire", point)] += 1
            if self._point_hits[("lease_expire", point)] <= self.config.lease_expire_skip:
                return False
            self._lease_expired = True
        self._record("lease_expire", f"coordinator@{point}")
        return True

    def check_handshake_drop(self, point: str) -> bool:
        """The ``handshake.drop`` site: True when this handshake's *response*
        is lost on the wire — the server-side mutation happened, but the
        client must re-issue the call idempotently."""
        if not self.enabled:
            return False
        if self.config.handshake_drop_at == point:
            fire = False
            with self._lock:
                if not self._handshake_dropped:
                    self._handshake_dropped = True
                    fire = True
            if fire:
                self._record("handshake_drop", f"handshake@{point}")
                return True
        rate = self.config.handshake_drop_rate
        if rate and self._rng(f"handshake/{point}").random() < rate:
            if self._take_event_budget():
                self._record("handshake_drop", f"handshake@{point}")
                return True
        return False

    # ------------------------------------------- ML training / checkpoints

    def check_train_kill(self, job_id: str, iteration: int) -> None:
        """The ``ml.iteration_kill`` site: crash iterative training at an
        iteration boundary (one-shot — the resumed/replayed run survives).

        Fires *after* the iteration's checkpoint window, so a checkpointing
        run resumes from exactly the killed iteration and stays
        weight-for-weight identical to an uninterrupted run.
        """
        if not self.enabled:
            return
        point = self.config.kill_train_at
        if not point or iteration < point:
            return
        with self._lock:
            if self._killed_train:
                return
            self._killed_train = True
        self._record("iteration_kill", f"ml-train-{job_id}")
        raise TrainingInterrupted(
            f"injected training crash of job {job_id!r} at iteration {iteration}",
            iteration=iteration,
        )

    def check_checkpoint_write(self, site: str) -> None:
        """The ``checkpoint.write_fail`` site: fail one checkpoint commit in
        the write-then-rename window (the tmp file exists, the committed
        name never appears — atomicity keeps older checkpoints valid)."""
        if not self.enabled:
            return
        rate = self.config.checkpoint_write_fail_rate
        if rate and self._rng(f"ckptw/{site}").random() < rate:
            if self._take_event_budget():
                self._record("checkpoint_write_fail", site)
                raise CheckpointError(f"injected checkpoint write failure at {site}")

    def corrupt_checkpoint(self, payload: bytes, site: str) -> bytes:
        """The ``checkpoint.corrupt`` site: flip one payload byte *after*
        the store computed its checksum, so every load detects the damage
        and falls back to the previous version (or a fresh start)."""
        if not self.enabled or not self.config.checkpoint_corrupt_rate:
            return payload
        if self._rng(f"ckptc/{site}").random() < self.config.checkpoint_corrupt_rate:
            if self._take_event_budget() and payload:
                self._record("checkpoint_corrupt", site)
                return payload[:-1] + bytes([payload[-1] ^ 0xFF])
        return payload

    # -------------------------------------------------------- storage sites

    def corrupt_replica(self, payload: bytes, site: str) -> bytes:
        """The ``dfs.replica_corrupt`` site: return a damaged copy of a
        block replica being stored.  The DataNode calls this *after*
        recording the checksum, so the rot is always detectable — a flipped
        middle byte models the classic silent single-bit disk error."""
        if not self.enabled or not self.config.dfs_replica_corrupt_rate:
            return payload
        if self._rng(f"dfscorrupt/{site}").random() < self.config.dfs_replica_corrupt_rate:
            if self._take_event_budget() and payload:
                self._record("replica_corrupt", site)
                mid = len(payload) // 2
                return payload[:mid] + bytes([payload[mid] ^ 0xFF]) + payload[mid + 1 :]
        return payload

    def check_dfs_read(self, site: str) -> None:
        """The ``dfs.read_error`` site: fail one replica read transiently
        (raises :class:`BlockError`; the reader fails over to the next
        replica).  ``site`` includes the reading client, so each client
        owns its own RNG stream and concurrent readers stay deterministic."""
        if not self.enabled:
            return
        rate = self.config.dfs_read_error_rate
        if rate and self._rng(f"dfsread/{site}").random() < rate:
            if self._take_event_budget():
                self._record("dfs_read_error", site)
                raise BlockError(f"injected replica read error at {site}")

    def check_datanode_down(self, index: int, ops: int) -> bool:
        """The ``dfs.datanode_down`` site: True when DataNode ``index``
        should go down, one-shot, once it has served
        ``dfs_kill_datanode_after`` block operations."""
        if not self.enabled or self.config.dfs_kill_datanode != index:
            return False
        if ops < self.config.dfs_kill_datanode_after:
            return False
        with self._lock:
            if self._datanode_killed:
                return False
            self._datanode_killed = True
        self._record("datanode_down", f"datanode-{index}")
        return True

    def check_dfs_enospc(self, site: str) -> None:
        """The ``dfs.enospc`` site: one replica write hits a full disk
        (raises :class:`StorageFullError`; the writer redirects the replica
        or escalates through the caller's ladder)."""
        if not self.enabled:
            return
        rate = self.config.dfs_enospc_rate
        if rate and self._rng(f"dfsenospc/{site}").random() < rate:
            if self._take_event_budget():
                self._record("enospc", site)
                raise StorageFullError(f"injected ENOSPC at {site}")

    # --------------------------------------------------------- broker sites

    def check_producer_append(self, site: str) -> None:
        """Transient append failure *before* the broker commits the record —
        safe to retry without duplication."""
        if not self.enabled:
            return
        rate = self.config.producer_drop_rate
        if rate and self._rng(f"produce/{site}").random() < rate:
            if self._take_event_budget():
                self._record("producer_drop", site)
                raise ChannelTimeoutError(f"injected append timeout at {site}")

    def corrupt_fetch(self, payload: bytes, site: str) -> bytes:
        """Possibly return a bit-flipped copy of a fetched broker record."""
        if not self.enabled or not self.config.broker_corrupt_rate:
            return payload
        if self._rng(f"corrupt/{site}").random() < self.config.broker_corrupt_rate:
            if self._take_event_budget():
                self._record("corrupt", site)
                # Flip the trailing pickle STOP byte: every framing (per-row,
                # block, sequenced block) ends in it, so every decode path
                # rejects the result — corruption is always *detectable*.
                return payload[:-1] + bytes([payload[-1] ^ 0xFF])
        return payload

    def check_duplicate_fetch(self, site: str) -> bool:
        """True when this fetch should be re-delivered (consumer died after
        processing, before committing — the at-least-once window)."""
        if not self.enabled or not self.config.broker_duplicate_rate:
            return False
        if self._rng(f"dup/{site}").random() < self.config.broker_duplicate_rate:
            if self._take_event_budget():
                self._record("duplicate", site)
                return True
        return False
